"""Size and unit helpers used throughout the package.

The paper speaks in binary units (4 KB sub-blocks, 4 MB macro pages,
512 MB on-package, 4 GB total), so ``KB``/``MB``/``GB`` here are the
binary (IEC) quantities.
"""

from __future__ import annotations

from .errors import ConfigError

KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB

_SUFFIXES = {
    "B": 1,
    "KB": KB,
    "K": KB,
    "MB": MB,
    "M": MB,
    "GB": GB,
    "G": GB,
}


def parse_size(text: str | int) -> int:
    """Parse a human-readable size (``"4MB"``, ``"512M"``, ``"4096"``) to bytes.

    Integers pass through unchanged. Raises :class:`ConfigError` on
    unknown suffixes or non-positive sizes.
    """
    if isinstance(text, int):
        if text <= 0:
            raise ConfigError(f"size must be positive, got {text}")
        return text
    s = text.strip().upper().replace(" ", "")
    for suffix in sorted(_SUFFIXES, key=len, reverse=True):
        if s.endswith(suffix):
            number = s[: -len(suffix)]
            break
    else:
        suffix, number = "B", s
    try:
        value = float(number)
    except ValueError as exc:
        raise ConfigError(f"cannot parse size {text!r}") from exc
    result = int(value * _SUFFIXES[suffix])
    if result <= 0:
        raise ConfigError(f"size must be positive, got {text!r}")
    return result


def format_size(nbytes: int) -> str:
    """Format a byte count with the largest exact binary suffix.

    >>> format_size(4 * MB)
    '4MB'
    >>> format_size(1536)
    '1536B'
    """
    if nbytes <= 0:
        raise ConfigError(f"size must be positive, got {nbytes}")
    for suffix, mult in (("GB", GB), ("MB", MB), ("KB", KB)):
        if nbytes % mult == 0:
            return f"{nbytes // mult}{suffix}"
    return f"{nbytes}B"


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Integer log2 of an exact power of two; :class:`ConfigError` otherwise."""
    if not is_power_of_two(value):
        raise ConfigError(f"{value} is not a power of two")
    return value.bit_length() - 1
