"""Post-L3 memory latency of the four Fig 5 organisations.

Section II's Simics comparison prices memory with fixed latencies
(Table II): off-package = 34 path + 50 DRAM core + 116 queuing = 200
cycles; on-package = 20 path + 50 core = 70 cycles; the DRAM L4 cache
hits in 2 x 70 = 140 and adds 70 before a miss goes off-package.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..cache.dramcache import DramCacheModel
from ..cache.stackdist import StackDistanceProfile
from ..config import LatencyComponents
from ..errors import ConfigError

#: Table II fixed components of the Simics-style model
SIMICS_DRAM_CORE_CYCLES = 50
SIMICS_QUEUING_CYCLES = 116


class MemoryOrganization(Enum):
    """The four bars of Fig 5."""

    BASELINE = "baseline"              # all memory off-package
    L4_CACHE = "l4-cache"              # on-package DRAM as an L4 cache
    STATIC_ONPKG = "static-onpkg"      # lowest addresses mapped on-package
    ALL_ONPKG = "all-onpkg"            # the ideal


@dataclass(frozen=True)
class FixedLatencies:
    """The fixed-latency memory model of Section II."""

    offpkg: int
    onpkg: int

    @classmethod
    def from_components(cls, components: LatencyComponents | None = None) -> "FixedLatencies":
        c = components or LatencyComponents()
        return cls(
            offpkg=c.offpkg_overhead + SIMICS_DRAM_CORE_CYCLES + SIMICS_QUEUING_CYCLES,
            onpkg=c.onpkg_overhead + SIMICS_DRAM_CORE_CYCLES,
        )


def amat_for_organization(
    org: MemoryOrganization,
    profile: StackDistanceProfile,
    *,
    onpkg_capacity_bytes: int,
    l3_capacity_bytes: int,
    lowaddr_onpkg_fraction: float | None = None,
    latencies: FixedLatencies | None = None,
) -> float:
    """Average latency of one post-L3 memory request under ``org``.

    ``lowaddr_onpkg_fraction`` (STATIC only): fraction of post-L3
    requests whose address falls in the lowest ``onpkg_capacity_bytes``
    of memory — computed by the caller from the actual trace.
    """
    lat = latencies or FixedLatencies.from_components()
    if org is MemoryOrganization.BASELINE:
        return float(lat.offpkg)
    if org is MemoryOrganization.ALL_ONPKG:
        return float(lat.onpkg)
    if org is MemoryOrganization.L4_CACHE:
        l4 = DramCacheModel(onpkg_capacity_bytes, onpkg_access_cycles=lat.onpkg)
        # the L4 sees the post-L3 stream; its miss rate must be measured
        # against references that already missed L3 (inclusion: a post-L3
        # reference hits L4 iff its stack distance is between the two
        # capacities)
        m3 = profile.miss_rate(l3_capacity_bytes)
        m4 = profile.miss_rate(l4.effective_capacity_bytes)
        if m3 <= 0:
            return float(l4.hit_cycles)
        local_miss = min(1.0, m4 / m3)
        return (1.0 - local_miss) * l4.hit_cycles + local_miss * (
            l4.miss_penalty_cycles + lat.offpkg
        )
    if org is MemoryOrganization.STATIC_ONPKG:
        if lowaddr_onpkg_fraction is None:
            raise ConfigError("STATIC_ONPKG needs lowaddr_onpkg_fraction")
        f = lowaddr_onpkg_fraction
        return f * lat.onpkg + (1.0 - f) * lat.offpkg
    raise ConfigError(f"unknown organization {org}")  # pragma: no cover


def static_lowaddr_fraction(
    addresses: np.ndarray,
    profile: StackDistanceProfile,
    l3_capacity_bytes: int,
    onpkg_capacity_bytes: int,
) -> float:
    """Fraction of post-L3 requests served by a static low-address mapping."""
    mask = profile.miss_mask(l3_capacity_bytes)
    post_l3 = np.asarray(addresses, dtype=np.int64)[mask]
    if post_l3.size == 0:
        return 1.0
    return float((post_l3 < onpkg_capacity_bytes).mean())
