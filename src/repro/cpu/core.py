"""A simple blocking core for functional trace replay.

Complements the analytic :mod:`repro.cpu.system` model: replays a
reference stream through functional caches (per-set LRU) and charges
latencies access by access. Used by tests to sanity-check the analytic
AMAT against a mechanical simulation on small streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cache.sets import SetAssociativeCache
from ..config import CacheHierarchyConfig
from ..errors import SimulationError


@dataclass
class CoreStats:
    references: int = 0
    cycles: float = 0.0
    l1_hits: int = 0
    l2_hits: int = 0
    l3_hits: int = 0
    memory_accesses: int = 0

    @property
    def amat(self) -> float:
        return self.cycles / self.references if self.references else 0.0


class BlockingCore:
    """One core, three cache levels, blocking on every access."""

    def __init__(self, caches: CacheHierarchyConfig, memory_latency: float):
        if memory_latency < 0:
            raise SimulationError("memory latency must be non-negative")
        self.caches = caches
        self.l1 = SetAssociativeCache(caches.l1)
        self.l2 = SetAssociativeCache(caches.l2)
        self.l3 = SetAssociativeCache(caches.l3)
        self.memory_latency = memory_latency
        self.stats = CoreStats()

    def access(self, addr: int) -> float:
        """Charge one reference; returns its latency in cycles."""
        c = self.caches
        s = self.stats
        s.references += 1
        latency = float(c.l1.latency_cycles)
        if self.l1.access(addr):
            s.l1_hits += 1
        else:
            latency += c.l2.latency_cycles
            if self.l2.access(addr):
                s.l2_hits += 1
            else:
                latency += c.l3.latency_cycles
                if self.l3.access(addr):
                    s.l3_hits += 1
                else:
                    latency += self.memory_latency
                    s.memory_accesses += 1
        s.cycles += latency
        return latency

    def run(self, addresses: np.ndarray) -> CoreStats:
        for a in np.asarray(addresses, dtype=np.int64):
            self.access(int(a))
        return self.stats
