"""Blocking-core IPC model over the cache hierarchy (Fig 5).

Cycles = instructions x base CPI + memory references x (AMAT - L1 hit
time). The model only needs *relative* IPC across memory organisations,
which is what Fig 5 plots (IPC improvement over the baseline).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.hierarchy import CacheHierarchy
from ..cache.stackdist import StackDistanceProfile
from ..config import CacheHierarchyConfig
from ..errors import ConfigError
from ..trace.record import TraceChunk
from .amat import (
    FixedLatencies,
    MemoryOrganization,
    amat_for_organization,
    static_lowaddr_fraction,
)


@dataclass(frozen=True)
class IpcResult:
    """IPC of one workload under one memory organisation."""

    organization: MemoryOrganization
    ipc: float
    amat_cycles: float
    memory_latency: float

    def improvement_over(self, baseline: "IpcResult") -> float:
        """Relative IPC gain (the Fig 5 y-axis)."""
        return self.ipc / baseline.ipc - 1.0


class IpcModel:
    """Price a reference stream under the four memory organisations."""

    def __init__(
        self,
        caches: CacheHierarchyConfig | None = None,
        *,
        onpkg_capacity_bytes: int,
        base_cpi: float = 1.0,
        refs_per_instruction: float = 0.3,
        latencies: FixedLatencies | None = None,
    ):
        if not 0 < refs_per_instruction <= 1:
            raise ConfigError("refs_per_instruction must be in (0, 1]")
        self.caches = caches or CacheHierarchyConfig()
        self.hierarchy = CacheHierarchy(self.caches)
        self.onpkg_capacity_bytes = onpkg_capacity_bytes
        self.base_cpi = base_cpi
        self.refs_per_instruction = refs_per_instruction
        self.latencies = latencies or FixedLatencies.from_components()

    def evaluate(
        self,
        trace: TraceChunk,
        org: MemoryOrganization,
        profile: StackDistanceProfile | None = None,
    ) -> IpcResult:
        if profile is None:
            profile = StackDistanceProfile(trace.addr, self.caches.l3.line_bytes)
        l3_c = self.caches.l3.capacity_bytes
        kwargs = {}
        if org is MemoryOrganization.STATIC_ONPKG:
            kwargs["lowaddr_onpkg_fraction"] = static_lowaddr_fraction(
                trace.addr, profile, l3_c, self.onpkg_capacity_bytes
            )
        mem_latency = amat_for_organization(
            org,
            profile,
            onpkg_capacity_bytes=self.onpkg_capacity_bytes,
            l3_capacity_bytes=l3_c,
            latencies=self.latencies,
            **kwargs,
        )
        amat = self.hierarchy.amat_cycles(profile, mem_latency)
        # stalls beyond the pipelined L1 hit
        stall_per_ref = max(0.0, amat - self.caches.l1.latency_cycles)
        cpi = self.base_cpi + self.refs_per_instruction * stall_per_ref
        return IpcResult(
            organization=org, ipc=1.0 / cpi, amat_cycles=amat, memory_latency=mem_latency
        )

    def compare_all(self, trace: TraceChunk) -> dict[MemoryOrganization, IpcResult]:
        profile = StackDistanceProfile(trace.addr, self.caches.l3.line_bytes)
        return {org: self.evaluate(trace, org, profile) for org in MemoryOrganization}


def fig5_comparison(
    trace: TraceChunk, *, onpkg_capacity_bytes: int,
    caches: CacheHierarchyConfig | None = None,
) -> dict[MemoryOrganization, IpcResult]:
    """One workload's Fig 5 bars."""
    return IpcModel(caches, onpkg_capacity_bytes=onpkg_capacity_bytes).compare_all(trace)
