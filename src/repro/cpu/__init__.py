"""CPU performance model — the Simics-style comparison of Section II.

A blocking-core model: total cycles = compute cycles + memory-stall
cycles, with stalls priced by the cache hierarchy + one of four memory
organisations (Fig 5): baseline (all off-package), a 1 GB DRAM L4 cache,
static on-package mapping, or the all-on-package ideal.
"""

from .amat import MemoryOrganization, amat_for_organization
from .system import IpcModel, IpcResult, fig5_comparison

__all__ = [
    "MemoryOrganization",
    "amat_for_organization",
    "IpcModel",
    "IpcResult",
    "fig5_comparison",
]
