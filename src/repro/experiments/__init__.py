"""Experiment runners — one per table/figure of the paper.

Each module exposes ``run(fast=True) -> Table`` (or a list of tables)
printing the same rows/series the paper reports, on the scaled geometry
documented in :mod:`repro.experiments.common` and EXPERIMENTS.md. The
``repro-experiments`` CLI (``python -m repro.experiments``) dispatches
by experiment id.
"""

from . import common

__all__ = ["common"]
