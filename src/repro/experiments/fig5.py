"""Fig 5: IPC of four on-package memory organisations, ten NPB workloads.

Shape criteria (the paper's Section II argument):

* workloads whose footprint fits on-package: static mapping ~= the
  all-on-package ideal and beats the L4 cache;
* the huge-footprint workloads (DC.B, FT.C): static mapping's gain is
  small — it can lose to the L4 cache (the motivation for migration).
"""

from __future__ import annotations

from ..config import CacheHierarchyConfig, CacheLevelConfig
from ..cpu.amat import MemoryOrganization
from ..cpu.system import IpcModel
from ..stats.report import Table
from ..units import KB, MB
from ..workloads.npb import NPB_FOOTPRINTS_MB
from .common import CPU_SCALE, SECTION2_ONPKG, default_accesses, npb_trace


def scaled_caches() -> CacheHierarchyConfig:
    """Table II's hierarchy divided by CPU_SCALE (floors keep sets valid)."""
    def scale(cap: int) -> int:
        return max(8 * 1024, cap // CPU_SCALE)

    return CacheHierarchyConfig(
        l1=CacheLevelConfig(max(4 * 1024, 32 * KB * 4 // CPU_SCALE) , 8, 2),
        l2=CacheLevelConfig(scale(256 * KB * 4), 8, 5),
        l3=CacheLevelConfig(scale(8 * MB), 16, 25, shared=True),
        n_cores=4,
    )


def ipc_improvements(n: int | None = None) -> dict[str, dict[MemoryOrganization, float]]:
    """Relative IPC over the baseline for each organisation (Fig 5 bars)."""
    n = n or min(default_accesses(), 400_000)
    model = IpcModel(
        scaled_caches(), onpkg_capacity_bytes=max(4096, SECTION2_ONPKG // CPU_SCALE)
    )
    out: dict[str, dict[MemoryOrganization, float]] = {}
    for name in sorted(NPB_FOOTPRINTS_MB):
        results = model.compare_all(npb_trace(name, n))
        base = results[MemoryOrganization.BASELINE]
        out[name] = {
            org: res.improvement_over(base) for org, res in results.items()
        }
    return out


def run(fast: bool = True) -> Table:
    improvements = ipc_improvements(200_000 if fast else None)
    table = Table(
        "Fig 5 — IPC improvement over baseline (1 GB on-package, scaled "
        f"1/{CPU_SCALE})",
        ["workload", "L4 cache", "static on-pkg", "all on-pkg (ideal)"],
    )
    for name, imp in improvements.items():
        table.add_row(
            name,
            f"{imp[MemoryOrganization.L4_CACHE]:+.1%}",
            f"{imp[MemoryOrganization.STATIC_ONPKG]:+.1%}",
            f"{imp[MemoryOrganization.ALL_ONPKG]:+.1%}",
        )
    table.add_footnote(
        "footprint < 1 GB => static ~= ideal; DC.B/FT.C => static gain small"
    )
    return table


if __name__ == "__main__":
    run().print()
