"""Chaos soak: RAS subsystem under elevated correctable-error pressure.

Not a paper figure — an acceptance gate for the runtime RAS subsystem
(:mod:`repro.ras`). Each of the three swap designs runs a hot/cold
trace with data-content tracking on, background CE injection at 10x
the nominal rate, two scheduled CE bursts (dying rows), and a latent
CE that only the patrol scrubber can surface. The run must:

* finish with **zero** data violations (shadow-memory verified, plus a
  full final table sweep),
* perform at least one predictive frame retirement per design,
* keep the translation table audit-clean (pairing invariant + retired
  remap mirrors),

and it prints each design's RAS and resilience tables so the capacity /
η degradation trajectory is part of the experiment log.
"""

from __future__ import annotations

import numpy as np

from ..config import MigrationAlgorithm, MigrationConfig, SystemConfig
from ..core.simulator import EpochSimulator
from ..errors import ReproError
from ..resilience.faults import FaultEvent, FaultKind, FaultPlan
from ..stats.report import Table, ras_table, resilience_table
from ..trace.record import TraceChunk, make_chunk
from ..units import KB, MB

#: per-frame per-epoch background CE probability (nominal -> 10x)
NOMINAL_CE_RATE = 0.002
SOAK_CE_RATE = 10 * NOMINAL_CE_RATE

SWAP_INTERVAL = 400
FAST_EPOCHS = 60
FULL_EPOCHS = 240


def soak_config(algorithm: str) -> SystemConfig:
    """Small geometry with swap windows a few epochs long, so retirement
    finds free epoch boundaries between back-to-back migrations."""
    return SystemConfig(
        total_bytes=16 * MB,
        onpkg_bytes=2 * MB,
        migration=MigrationConfig(
            macro_page_bytes=64 * KB,
            swap_interval=SWAP_INTERVAL,
            algorithm=algorithm,
        ),
    ).with_ras(
        enabled=True,
        seed=7,
        ce_base_rate=SOAK_CE_RATE,
        ce_threshold=6,
        ce_leak=0.5,
        ce_cost_cycles=20,
        scrub_interval_epochs=4,
        scrub_frames_per_pass=4,
        spare_pages=3,
        min_usable_frames=8,
        wear_penalty=0.5,
    )


def soak_trace(n_epochs: int, seed: int = 11) -> TraceChunk:
    """Hot/cold mixture over the data region (spares/Ω never touched)."""
    n = n_epochs * SWAP_INTERVAL
    rng = np.random.default_rng(seed)
    hot = rng.random(n) < 0.85
    hot_addr = MB // 2 + rng.integers(0, 3 * MB // 2, n)
    cold_addr = rng.integers(0, 12 * MB, n)
    addr = (np.where(hot, hot_addr, cold_addr) // 64) * 64
    time = np.cumsum(rng.integers(1, 30, n))
    return make_chunk(addr.astype(np.int64), time=time.astype(np.int64))


def soak_fault_plan() -> FaultPlan:
    """Two dying rows (CE bursts) plus one latent CE for the scrubber."""
    return FaultPlan(
        events=(
            FaultEvent(epoch=5, kind=FaultKind.CE_BURST, param=3),
            FaultEvent(epoch=12, kind=FaultKind.SCRUB_LATENT, param=17),
            FaultEvent(epoch=30, kind=FaultKind.CE_BURST, param=9),
        ),
        seed=3,
    )


def run(fast: bool = True) -> list[Table]:
    n_epochs = FAST_EPOCHS if fast else FULL_EPOCHS
    tables: list[Table] = []
    for algorithm in MigrationAlgorithm.ALL:
        sim = EpochSimulator(soak_config(algorithm), track_data=True)
        sim.attach_faults(soak_fault_plan())
        result = sim.run(soak_trace(n_epochs))
        ras = result.ras

        # ---- hard gates -------------------------------------------------
        leftover = sim.shadow.verify_table(sim.table)
        if result.data_violations or leftover:
            raise ReproError(
                f"{algorithm}: chaos soak lost data — "
                f"{result.data_violations} demand violations, "
                f"{len(leftover)} final-sweep violations"
            )
        if ras.frames_retired < 1:
            raise ReproError(
                f"{algorithm}: chaos soak performed no predictive "
                f"retirement (CE telemetry never crossed its threshold)"
            )
        sim.table.audit()
        sim.table.check_invariants()

        t = ras_table(result)
        t.title = f"Chaos soak ({algorithm}) — RAS summary"
        t.add_footnote(
            f"background CE rate {SOAK_CE_RATE} per frame-epoch "
            f"(10x nominal {NOMINAL_CE_RATE}); data integrity verified "
            f"against the shadow memory: 0 violations"
        )
        tables.append(t)
        rt = resilience_table(result)
        rt.title = f"Chaos soak ({algorithm}) — resilience summary"
        tables.append(rt)
    return tables


if __name__ == "__main__":
    for table in run():
        table.print()
