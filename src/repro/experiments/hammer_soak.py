"""Hammer soak: row-disturbance hardening under refresh pressure.

Not a paper figure — an acceptance gate for the disturbance subsystem
(:mod:`repro.ras.disturb`). Each of the three swap designs runs a
hammer workload (the majority of accesses alternate between two
aggressor rows in one off-package bank, forcing a row activation per
access) with tREFI/tRFC refresh enabled in both regions, data-content
tracking on, and two scheduled ``ROW_DISTURB`` bursts. The mitigated
runs must:

* finish with **zero** data violations (shadow-memory verified, plus a
  full final table sweep) and **zero** unmitigated flip bursts — the
  ladder (victim refresh -> throttle/migration bias) keeps up,
* show the mitigation working: at least one victim refresh and at
  least one escalation per design,
* account for every injected hammer burst,
* keep the translation table audit-clean.

A control run with ``mitigate=False`` then proves the detection side:
the same workload lands real victim-row flips and **every** corrupted
sub-block surfaces as a data violation — disturbance never corrupts
silently.
"""

from __future__ import annotations

import numpy as np

from ..config import (
    MigrationAlgorithm,
    MigrationConfig,
    SystemConfig,
    offpkg_dram_timing,
    onpkg_dram_timing,
)
from ..core.simulator import EpochSimulator
from ..errors import ReproError
from ..resilience.faults import FaultEvent, FaultKind, FaultPlan
from ..stats.report import Table, disturb_table, resilience_table
from ..trace.record import TraceChunk, make_chunk
from ..units import KB, MB

SWAP_INTERVAL = 400
FAST_EPOCHS = 50
FULL_EPOCHS = 200

#: fraction of accesses devoted to hammering the aggressor pair
HAMMER_FRACTION = 0.6


def soak_config(algorithm: str, *, mitigate: bool = True) -> SystemConfig:
    """Small geometry, refresh on in both tiers, disturbance armed."""
    return SystemConfig(
        total_bytes=16 * MB,
        onpkg_bytes=2 * MB,
        offpkg_dram=offpkg_dram_timing(refresh=True),
        onpkg_dram=onpkg_dram_timing(refresh=True),
        migration=MigrationConfig(
            macro_page_bytes=64 * KB,
            swap_interval=SWAP_INTERVAL,
            algorithm=algorithm,
        ),
    ).with_disturb(
        enabled=True,
        seed=5,
        act_threshold=24,
        alert_level=0.5,
        act_leak=2.0,
        mitigate=mitigate,
        # the aggressors are also the hottest pages, so the swap policy
        # pulls them on-package within a few epochs (migration as
        # mitigation); a one-refresh budget makes the ladder's throttle
        # rung observable before that happens
        victim_refresh_max=1,
        flips_per_victim=2,
        migration_bias=4.0,
        throttle_cycles=300,
    )


#: concurrent aggressor pairs; one swap per epoch boundary can only
#: dissolve pairs one at a time, so hammering outlives the one-refresh
#: victim budget and the ladder's escalation rungs become observable
N_PAIRS = 4


def hammer_trace(n_epochs: int, seed: int = 13) -> TraceChunk:
    """Off-package aggressor row pairs, strictly alternated within each
    pair (every access is a row activation), over a hot/cold background
    (all reads: a flipped victim sub-block is never healed by a later
    store, so detection accounting is exact)."""
    timing = offpkg_dram_timing()
    row_stride = 8192 * timing.n_channels * timing.n_banks
    pairs = []
    for k in range(N_PAIRS):
        base = 2 * MB + (5 + 3 * k) * 64 * KB
        pairs.append((base, base + 2 * row_stride))
    aggressors = np.array(pairs, dtype=np.int64)
    n = n_epochs * SWAP_INTERVAL
    rng = np.random.default_rng(seed)
    hot = rng.random(n) < 0.7
    hot_addr = MB // 2 + rng.integers(0, 3 * MB // 2, n)
    cold_addr = rng.integers(0, 12 * MB, n)
    addr = (np.where(hot, hot_addr, cold_addr) // 64) * 64
    ham = rng.random(n) < HAMMER_FRACTION
    seq = np.arange(int(ham.sum()))
    addr[ham] = aggressors[(seq // 2) % N_PAIRS, seq % 2]
    time = np.cumsum(rng.integers(1, 30, n))
    return make_chunk(addr.astype(np.int64), time=time.astype(np.int64))


def hammer_fault_plan() -> FaultPlan:
    """Two hammer bursts on top of the workload's organic hammering."""
    return FaultPlan(
        events=(
            FaultEvent(epoch=6, kind=FaultKind.ROW_DISTURB, param=0),
            FaultEvent(epoch=18, kind=FaultKind.ROW_DISTURB, param=2),
        ),
        seed=5,
    )


def _run_one(algorithm: str, n_epochs: int, *, mitigate: bool):
    sim = EpochSimulator(
        soak_config(algorithm, mitigate=mitigate), track_data=True
    )
    plan = hammer_fault_plan()
    sim.attach_faults(plan)
    result = sim.run(hammer_trace(n_epochs))
    leftover = sim.shadow.verify_table(sim.table)
    return sim, plan, result, leftover


def run(fast: bool = True) -> list[Table]:
    n_epochs = FAST_EPOCHS if fast else FULL_EPOCHS
    tables: list[Table] = []
    for algorithm in MigrationAlgorithm.ALL:
        sim, plan, result, leftover = _run_one(
            algorithm, n_epochs, mitigate=True
        )
        d = result.disturb

        # ---- hard gates -------------------------------------------------
        if result.data_violations or leftover:
            raise ReproError(
                f"{algorithm}: hammer soak lost data under mitigation — "
                f"{result.data_violations} demand violations, "
                f"{len(leftover)} final-sweep violations"
            )
        if d.flip_bursts:
            raise ReproError(
                f"{algorithm}: {d.flip_bursts} disturbance bursts went "
                f"unmitigated despite mitigate=True"
            )
        if d.hammer_bursts != len(plan):
            raise ReproError(
                f"{algorithm}: {len(plan)} ROW_DISTURB faults scheduled "
                f"but only {d.hammer_bursts} bursts landed"
            )
        if d.victim_refreshes < 1:
            raise ReproError(
                f"{algorithm}: mitigation never fired a victim refresh "
                f"(activation telemetry never crossed its alert level)"
            )
        if d.throttles < 1:
            raise ReproError(
                f"{algorithm}: the ladder never escalated past the "
                f"victim-refresh budget"
            )
        sim.table.audit()
        sim.table.check_invariants()

        t = disturb_table(result)
        t.title = f"Hammer soak ({algorithm}) — disturbance summary"
        t.add_footnote(
            f"refresh enabled in both tiers "
            f"(offpkg tRFC {sim.config.offpkg_dram.refresh_cycles} cy / "
            f"onpkg {sim.config.onpkg_dram.refresh_cycles} cy per "
            f"{sim.config.offpkg_dram.refresh_interval}-cycle tREFI); "
            f"data integrity verified against the shadow memory: "
            f"0 violations"
        )
        tables.append(t)
        rt = resilience_table(result)
        rt.title = f"Hammer soak ({algorithm}) — resilience summary"
        tables.append(rt)

    # ---- unmitigated control: flips land and are always detected -------
    sim, _plan, result, leftover = _run_one(
        MigrationAlgorithm.LIVE, n_epochs, mitigate=False
    )
    d = result.disturb
    if d.flip_cells < 1:
        raise ReproError(
            "control run (mitigate=False) landed no victim flips — the "
            "hammer workload is not exercising the disturbance model"
        )
    reported = result.data_violations + len(leftover)
    if reported < d.flip_cells:
        raise ReproError(
            f"SILENT CORRUPTION: {d.flip_cells} victim sub-blocks "
            f"corrupted but only {reported} surfaced as data violations"
        )
    t = disturb_table(result)
    t.title = "Hammer soak (live, mitigate=False) — detection control"
    t.add_footnote(
        f"all {d.flip_cells} corrupted sub-blocks surfaced as data "
        f"violations ({result.data_violations} at demand reads, "
        f"{len(leftover)} in the final sweep): zero silent corruption"
    )
    tables.append(t)
    return tables


if __name__ == "__main__":
    for table in run():
        table.print()
