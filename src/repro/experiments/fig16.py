"""Fig 16: memory power of the hybrid system vs off-package-only.

Normalised energy (hybrid demand + migration traffic, over the
off-package-only system on the same trace), swept over swap interval and
small granularities (4 / 16 / 64 KB).

Shape criteria: overhead grows with swap frequency and granularity; the
minimum sits near (100K interval, 4 KB) — the paper observes ~2x there.
"""

from __future__ import annotations

from ..config import MigrationAlgorithm
from ..power.energy import MemoryEnergyModel
from ..stats.report import Table
from ..units import KB
from .common import all_migration_workloads, default_accesses
from .fig11 import simulate

PAGES = (4 * KB, 16 * KB, 64 * KB)
INTERVALS = (1_000, 10_000, 100_000)


def run(fast: bool = True) -> Table:
    n = min(default_accesses(), 400_000) if fast else default_accesses()
    workloads = all_migration_workloads()[:3] if fast else all_migration_workloads()
    model = MemoryEnergyModel()
    table = Table(
        "Fig 16 — hybrid memory power normalised to off-package-only",
        ["workload"] + [f"{p // KB}KB/{i // 1000}K" for p in PAGES for i in INTERVALS],
    )
    for workload in workloads:
        cells = []
        for page in PAGES:
            for interval in INTERVALS:
                res = simulate(workload, MigrationAlgorithm.LIVE, page, interval, n)
                cells.append(f"{model.report(res).normalized:.2f}x")
        table.add_row(workload, *cells)
    table.add_footnote(
        "overhead grows with swap frequency/granularity; minimum ~ (4KB, 100K)"
    )
    return table


if __name__ == "__main__":
    run().print()
