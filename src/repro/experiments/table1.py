"""Table I: NPB 3.3 memory footprints.

The paper measures resident footprints of the ten workloads; our models
carry those values as parameters, and this experiment *verifies* the
generated traces actually realise them: the measured unique-page
footprint of each scaled trace must approach the configured (scaled)
footprint.
"""

from __future__ import annotations

from ..stats.report import Table
from ..trace.stats import footprint_bytes
from ..units import MB
from ..workloads.npb import NPB_FOOTPRINTS_MB
from .common import CPU_SCALE, default_accesses, npb_trace


def run(fast: bool = True) -> Table:
    n = min(default_accesses(), 300_000 if fast else 600_000)
    table = Table(
        "Table I — NPB 3.3 memory footprints (paper vs generated, scaled 1/%d)"
        % CPU_SCALE,
        ["workload", "paper (MB)", "model target (MB)", "measured (MB)", "coverage"],
    )
    for name, paper_mb in sorted(NPB_FOOTPRINTS_MB.items()):
        target = max(4096, paper_mb * MB // CPU_SCALE)
        trace = npb_trace(name, n)
        measured = footprint_bytes(trace)
        table.add_row(
            name,
            paper_mb,
            f"{target / MB:.1f}",
            f"{measured / MB:.1f}",
            f"{measured / target:.0%}",
        )
    table.add_footnote(
        "coverage < 100% just means the scaled trace did not touch every "
        "page yet; it approaches 100% as the trace grows"
    )
    return table


if __name__ == "__main__":
    run().print()
