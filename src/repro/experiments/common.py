"""Shared experiment presets: scaled geometry and trace cache.

The paper's trace study runs trillions of accesses against 4 GB of
memory with 512 MB on-package. A laptop-scale Python run keeps every
*ratio* intact and shrinks absolute sizes by ``MIGRATION_SCALE``:

* memory geometry: 4 GB / ``SCALE`` total, 512 MB / ``SCALE`` on-package
  (the 12.5% on-package ratio of Table III is preserved);
* workload footprints: each workload keeps its paper
  footprint-to-on-package ratio;
* macro page sizes and the 4 KB sub-block stay at paper values (they are
  the experiment variables);
* access counts shrink from trillions to millions — results are reported
  both as full-run and converged-tail averages.

EXPERIMENTS.md records the exact factors next to each result.
"""

from __future__ import annotations

import os
from functools import lru_cache

from ..config import SystemConfig, scaled_config
from ..trace.cache import shared_cache
from ..trace.record import TraceChunk
from ..units import GB, KB, MB
from ..workloads.registry import MIGRATION_STUDY_WORKLOADS, generate_trace

#: divide the paper's 4 GB / 512 MB geometry by this
MIGRATION_SCALE = 32

#: paper footprint / 512 MB on-package, per migration-study workload
FOOTPRINT_RATIO: dict[str, float] = {
    "FT.C": 10.0,       # 5147 MB
    "MG.C": 6.7,        # 3426 MB
    "pgbench": 5.0,     # > 2 GB
    "indexer": 4.5,     # > 2 GB
    "SPECjbb": 6.0,     # 3 GB
    "SPEC2006": 5.6,    # 2.87 GB mixture
}

#: the granularity axis of Figs 11-14
GRANULARITIES = (4 * KB, 16 * KB, 64 * KB, 256 * KB, 1 * MB, 4 * MB)

#: the swap-interval axis (accesses per epoch)
SWAP_INTERVALS = (1_000, 10_000, 100_000)

#: default trace length per workload (accesses)
DEFAULT_ACCESSES = 1_200_000
FAST_ACCESSES = 400_000


def fast_mode() -> bool:
    """Trim grids/trace lengths when REPRO_FAST is set (CI-friendly)."""
    return os.environ.get("REPRO_FAST", "").strip() not in ("", "0", "false")


def migration_config(onpkg_paper_mb: int = 512, **migration_kwargs) -> SystemConfig:
    """The scaled Table III system.

    ``onpkg_paper_mb`` is the paper-units on-package capacity (Fig 15
    sweeps 128/256/512 MB); it is divided by ``MIGRATION_SCALE`` like
    everything else.
    """
    cfg = scaled_config(MIGRATION_SCALE)
    cfg = SystemConfig(
        total_bytes=cfg.total_bytes,
        onpkg_bytes=onpkg_paper_mb * MB // MIGRATION_SCALE,
    )
    if migration_kwargs:
        cfg = cfg.with_migration(**migration_kwargs)
    return cfg


def scaled_footprint(workload: str, onpkg_bytes: int | None = None) -> int:
    """This workload's footprint in the scaled geometry.

    Capped just below the total memory size: the paper's FT.C/DC.B
    footprints nominally exceed the 4 GB trace-study memory too — the
    resident set must fit, minus the reserved Ω macro page.
    """
    if onpkg_bytes is None:
        onpkg_bytes = 512 * MB // MIGRATION_SCALE
    total = 4 * GB // MIGRATION_SCALE
    ratio = FOOTPRINT_RATIO.get(workload, 5.0)
    footprint = min(int(onpkg_bytes * ratio), total - 4 * MB)
    # round to a whole number of 4 KB blocks
    return max(4096, footprint // 4096 * 4096)


@lru_cache(maxsize=32)
def _migration_trace_inproc(
    workload: str, n: int, seed: int, onpkg_bytes: int | None
) -> TraceChunk:
    return generate_trace(
        workload, n, seed, footprint_bytes=scaled_footprint(workload, onpkg_bytes)
    )


def migration_trace(
    workload: str, n: int, seed: int = 0, onpkg_bytes: int | None = None
) -> TraceChunk:
    """Cached scaled trace for one migration-study workload.

    With ``REPRO_TRACE_CACHE`` set (see :mod:`repro.trace.cache`), the
    trace is shared *across processes*: whichever campaign worker asks
    first generates and publishes it, everyone else gets a zero-copy
    memmap of the same file. Without the env var, a per-process LRU is
    used as before.
    """
    cache = shared_cache()
    if cache is None:
        return _migration_trace_inproc(workload, n, seed, onpkg_bytes)
    footprint = scaled_footprint(workload, onpkg_bytes)
    return cache.get_or_create(
        {"kind": "migration", "workload": workload, "n": n, "seed": seed,
         "footprint": footprint},
        lambda: generate_trace(workload, n, seed, footprint_bytes=footprint),
    )


def migration_stream(
    workload: str,
    n: int,
    seed: int = 0,
    onpkg_bytes: int | None = None,
    *,
    chunk_accesses: int,
):
    """Streamed scaled trace for one migration-study workload.

    Unlike :func:`migration_trace` this never materializes the full
    trace (and never touches the trace cache): chunks are generated on
    demand with O(``chunk_accesses`` + phase) memory, for feeding
    :meth:`repro.core.simulator.EpochSimulator.run_stream` or the
    sharded runner on very long runs. Pick ``chunk_accesses`` as a
    multiple of the simulator's ``swap_interval``
    (:func:`repro.trace.stream.aligned_chunk_size`) so chunk boundaries
    coincide with epoch boundaries.

    ``SPEC2006`` is a multiprogrammed mixture without a generator-side
    stream; it falls back to chunk views over the materialized mixture
    (O(trace) memory, same consumer protocol).
    """
    from ..trace.stream import iter_chunks
    from ..workloads.registry import get_workload

    footprint = scaled_footprint(workload, onpkg_bytes)
    if workload == "SPEC2006":
        trace = migration_trace(workload, n, seed, onpkg_bytes)
        return iter_chunks(trace, chunk_accesses)
    wl = get_workload(workload, footprint_bytes=footprint)
    return wl.stream(n, seed, chunk_accesses=chunk_accesses)


def default_accesses() -> int:
    return FAST_ACCESSES if fast_mode() else DEFAULT_ACCESSES


# ---------------------------------------------------------------------------
# Section II (Simics-style) presets: Fig 4 / Fig 5
# ---------------------------------------------------------------------------

#: divide the paper's capacities (8 MB L3, 1 GB on-package, Table I
#: footprints) by this for the cache/IPC study
CPU_SCALE = 64

#: Fig 4's x-axis in paper units (bytes); scaled by CPU_SCALE when run
FIG4_CAPACITIES = (8 * MB, 16 * MB, 32 * MB, 64 * MB, 128 * MB,
                   256 * MB, 512 * MB, 1 * GB)

#: the paper's on-package capacity for Section II (1 GB)
SECTION2_ONPKG = 1 * GB


@lru_cache(maxsize=16)
def _npb_trace_inproc(workload: str, n: int, seed: int) -> TraceChunk:
    from ..workloads.npb import NPB_FOOTPRINTS_MB

    footprint = max(4096, NPB_FOOTPRINTS_MB[workload] * MB // CPU_SCALE)
    return generate_trace(workload, n, seed, footprint_bytes=footprint)


def npb_trace(workload: str, n: int, seed: int = 0) -> TraceChunk:
    """Cached scaled NPB trace for the Fig 4/5 study.

    Cross-process via ``REPRO_TRACE_CACHE`` like :func:`migration_trace`.
    """
    cache = shared_cache()
    if cache is None:
        return _npb_trace_inproc(workload, n, seed)
    from ..workloads.npb import NPB_FOOTPRINTS_MB

    footprint = max(4096, NPB_FOOTPRINTS_MB[workload] * MB // CPU_SCALE)
    return cache.get_or_create(
        {"kind": "npb", "workload": workload, "n": n, "seed": seed,
         "footprint": footprint},
        lambda: generate_trace(workload, n, seed, footprint_bytes=footprint),
    )


def all_migration_workloads() -> tuple[str, ...]:
    return MIGRATION_STUDY_WORKLOADS
