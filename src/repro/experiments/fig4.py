"""Fig 4: LLC miss rate vs capacity (8 MB -> 1 GB), ten NPB workloads.

Shape criterion: each curve flattens once the capacity passes the
workload's working set — the paper's argument that a bigger LLC stops
paying for itself.
"""

from __future__ import annotations

from ..cache.stackdist import StackDistanceProfile
from ..stats.report import Table
from ..units import MB
from ..workloads.npb import NPB_FOOTPRINTS_MB
from .common import CPU_SCALE, FIG4_CAPACITIES, default_accesses, npb_trace


def miss_rate_curves(n: int | None = None) -> dict[str, list[float]]:
    """Miss rate of every workload at every Fig 4 capacity (paper units)."""
    n = n or min(default_accesses(), 400_000)
    curves: dict[str, list[float]] = {}
    scaled = [max(4096, c // CPU_SCALE) for c in FIG4_CAPACITIES]
    for name in sorted(NPB_FOOTPRINTS_MB):
        trace = npb_trace(name, n)
        profile = StackDistanceProfile(trace.addr)
        curves[name] = profile.miss_rates(scaled)
    return curves


def run(fast: bool = True) -> Table:
    curves = miss_rate_curves(200_000 if fast else None)
    table = Table(
        "Fig 4 — LLC miss rate vs capacity (capacities in paper units, "
        f"simulated at 1/{CPU_SCALE} scale)",
        ["workload"] + [f"{c // MB}MB" for c in FIG4_CAPACITIES],
    )
    for name, rates in curves.items():
        table.add_row(name, *[f"{r:.1%}" for r in rates])
    table.add_footnote("curves should flatten past each workload's working set")
    return table


if __name__ == "__main__":
    run().print()
