"""Refresh scenario family: the tREFI/tRFC latency tax across designs.

Not a paper figure — the paper's timing model ignores refresh (it cites
Smart Refresh as related work). With real refresh scheduling in both
DRAM models this experiment quantifies the tax: each swap design runs
the same hot/cold trace with refresh disabled, off-package only
(DDR3-style tRFC 160 ns), and both tiers (on-package banks are smaller:
tRFC 60 ns), and reports average latency, the refresh overhead versus
the design's refresh-off row, and the on-package service fraction — the
migration story must survive refresh intact.

The per-design x per-mode grid fans out through the campaign
supervisor (``repro-experiments refresh --jobs N --manifest PATH``
resumes like ``table4``). The simulations run the fused fast path: the
time-warp refresh model commutes with segment boundaries, so the fused
and stepwise schedules agree bit-for-bit (see
``tests/test_fused_equivalence.py``).
"""

from __future__ import annotations

import numpy as np

from ..campaign import CampaignTask
from ..config import (
    MigrationAlgorithm,
    MigrationConfig,
    SystemConfig,
    offpkg_dram_timing,
    onpkg_dram_timing,
)
from ..core.simulator import EpochSimulator
from ..stats.report import Table
from ..trace.record import TraceChunk, make_chunk
from ..units import KB, MB

#: refresh modes swept per design
MODES = ("none", "offpkg", "both")

SWAP_INTERVAL = 500
FAST_EPOCHS = 80
FULL_EPOCHS = 400


def refresh_config(algorithm: str, mode: str) -> SystemConfig:
    return SystemConfig(
        total_bytes=16 * MB,
        onpkg_bytes=2 * MB,
        offpkg_dram=offpkg_dram_timing(refresh=mode in ("offpkg", "both")),
        onpkg_dram=onpkg_dram_timing(refresh=mode == "both"),
        migration=MigrationConfig(
            macro_page_bytes=64 * KB,
            swap_interval=SWAP_INTERVAL,
            algorithm=algorithm,
        ),
    )


def refresh_trace(n_epochs: int, seed: int = 23) -> TraceChunk:
    """Hot/cold mixture (same shape as the soak traces)."""
    n = n_epochs * SWAP_INTERVAL
    rng = np.random.default_rng(seed)
    hot = rng.random(n) < 0.85
    hot_addr = MB // 2 + rng.integers(0, 3 * MB // 2, n)
    cold_addr = rng.integers(0, 12 * MB, n)
    addr = (np.where(hot, hot_addr, cold_addr) // 64) * 64
    time = np.cumsum(rng.integers(1, 30, n))
    return make_chunk(addr.astype(np.int64), time=time.astype(np.int64))


def point(algorithm: str, mode: str, n_epochs: int) -> dict:
    """One grid point, as a JSON-safe dict (campaign-worker friendly)."""
    sim = EpochSimulator(refresh_config(algorithm, mode))
    result = sim.run(refresh_trace(n_epochs))
    return {
        "algorithm": algorithm,
        "mode": mode,
        "avg_latency": result.average_latency,
        "tail_latency": result.tail_average_latency(),
        "onpkg_fraction": result.onpkg_fraction,
        "swaps": result.swaps_triggered,
    }


def points(n_epochs: int, supervisor=None) -> list[dict]:
    """The full grid, optionally fanned out through a supervisor
    (points that exhaust their retries are omitted; :func:`run` adds a
    partial-results footnote)."""
    grid = [
        (alg, mode) for alg in MigrationAlgorithm.ALL for mode in MODES
    ]
    if supervisor is None:
        return [point(alg, mode, n_epochs) for alg, mode in grid]
    campaign = supervisor.run(
        [
            CampaignTask(f"refresh/{alg}/{mode}", point, (alg, mode, n_epochs))
            for alg, mode in grid
        ]
    )
    return [
        campaign.result(f"refresh/{alg}/{mode}")
        for alg, mode in grid
        if campaign.by_id[f"refresh/{alg}/{mode}"].ok
        and campaign.result(f"refresh/{alg}/{mode}") is not None
    ]


def run(fast: bool = True, supervisor=None) -> Table:
    n_epochs = FAST_EPOCHS if fast else FULL_EPOCHS
    rows = points(n_epochs, supervisor=supervisor)
    base = {
        r["algorithm"]: r["avg_latency"] for r in rows if r["mode"] == "none"
    }
    timing = offpkg_dram_timing(refresh=True)
    table = Table(
        "Refresh — tREFI/tRFC scheduling tax per design",
        ["design", "refresh", "avg latency", "overhead", "on-pkg fraction"],
    )
    for r in rows:
        ref = base.get(r["algorithm"])
        overhead = (
            f"{r['avg_latency'] / ref - 1:+.1%}" if ref else "n/a"
        )
        table.add_row(
            r["algorithm"],
            r["mode"],
            f"{r['avg_latency']:.1f}",
            overhead,
            f"{r['onpkg_fraction']:.1%}",
        )
    table.add_footnote(
        f"tREFI {timing.refresh_interval} cycles; tRFC "
        f"{timing.refresh_cycles} (off-package) / "
        f"{onpkg_dram_timing(refresh=True).refresh_cycles} (on-package) "
        f"cycles; duty cycle "
        f"{timing.refresh_cycles / timing.refresh_interval:.1%} off-package"
    )
    table.add_footnote(
        "the N design's number is dominated by stall windows, and "
        "refresh-stretched copies shift which accesses a stall swallows "
        "— its overhead column reflects that phase sensitivity, not the "
        "refresh tax itself (run with migrate=False for the pure tax: "
        "~+1% off-package, ~+2% both)"
    )
    expected = len(MigrationAlgorithm.ALL) * len(MODES)
    if len(rows) < expected:
        table.add_footnote(
            f"PARTIAL: {expected - len(rows)} grid point(s) exhausted "
            f"their retry budget and are missing"
        )
    return table


if __name__ == "__main__":
    run().print()
