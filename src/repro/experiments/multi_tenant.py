"""Multi-tenant soak: 8 tenants, churn, QoS, full data-integrity gates.

Not a paper figure — the acceptance gate for the tenancy subsystem
(:mod:`repro.tenancy`). Each of the three swap designs serves an
8-tenant heterogeneous mix through one shared controller with a
proportional-share capacity policy, data-content tracking on, and
churn: two tenants are evicted a third of the way through and two late
arrivals take over their reclaimed page windows. The run must:

* finish with **zero** shadow-memory data violations (plus a clean
  final table sweep),
* record **zero** cross-tenant reads in the isolation oracle,
* keep the translation table audit-clean after every reclamation,
* actually churn (every tenant eventually departs and is reclaimed).

The per-design runs fan out through the campaign supervisor
(``repro-experiments multi-tenant --jobs N --manifest PATH`` resumes
like ``table4``).
"""

from __future__ import annotations

from ..campaign import CampaignTask
from ..config import MigrationAlgorithm, MigrationConfig, SystemConfig
from ..errors import ReproError
from ..stats.report import Table
from ..tenancy import MultiTenantSimulator, ProportionalSharePolicy
from ..units import KB, MB
from ..workloads.tenants import tenant_mix

SWAP_INTERVAL = 400
N_TENANTS = 8
FAST_ACCESSES = 6_000
FULL_ACCESSES = 20_000


def soak_config(algorithm: str) -> SystemConfig:
    """Small geometry (32 on-package slots for 8 tenants) so the QoS
    partitioning and churned windows are actually contended."""
    return SystemConfig(
        total_bytes=16 * MB,
        onpkg_bytes=2 * MB,
        migration=MigrationConfig(
            macro_page_bytes=64 * KB,
            swap_interval=SWAP_INTERVAL,
            algorithm=algorithm,
        ),
    )


def point(algorithm: str, accesses: int) -> dict:
    """One design's soak, as a JSON-safe dict (campaign-worker friendly)."""
    config = soak_config(algorithm)
    sim = MultiTenantSimulator(
        config,
        policy=ProportionalSharePolicy(),
        track_data=True,
        solo_baselines=True,
    )
    for spec, trace in tenant_mix(
        config, N_TENANTS, accesses=accesses, seed=13, churn=True
    ):
        sim.add_tenant(spec, trace)
    result = sim.run()

    # ---- hard gates -----------------------------------------------------
    leftover = sim.sim.shadow.verify_table(sim.table)
    if result.data_violations or leftover:
        raise ReproError(
            f"{algorithm}: multi-tenant soak lost data — "
            f"{result.data_violations} demand violations, "
            f"{len(leftover)} final-sweep violations"
        )
    if sim.oracle.n_violations:
        raise ReproError(
            f"{algorithm}: {sim.oracle.n_violations} cross-tenant read(s) — "
            f"first: {sim.oracle.violations[0].format()}"
        )
    sim.table.audit()
    sim.table.check_invariants()
    if sim.engine.tenants_released < N_TENANTS:
        raise ReproError(
            f"{algorithm}: only {sim.engine.tenants_released} tenant "
            f"reclamations ran — churn never exercised the release path"
        )

    return {
        "algorithm": algorithm,
        "swaps": result.swaps_triggered,
        "suppressed_qos": result.swaps_suppressed_qos,
        "released": sim.engine.tenants_released,
        "reclaimed_bytes": sim.engine.reclaimed_bytes,
        "tenants": [
            {
                "tenant": f"{tenant_id}:{m.name}",
                "accesses": m.accesses,
                "hit_rate": m.hit_rate,
                "avg_latency": m.average_latency,
                "swaps": m.swaps_triggered,
                "slowdown": m.slowdown,
                "interference": m.interference_index,
            }
            for tenant_id, m in sorted(result.tenants.items())
        ],
    }


def points(accesses: int, supervisor=None) -> list[dict]:
    """One soak per design, optionally fanned out through a supervisor
    (designs that exhaust their retries are omitted; :func:`run` adds a
    partial-results footnote)."""
    if supervisor is None:
        return [point(alg, accesses) for alg in MigrationAlgorithm.ALL]
    campaign = supervisor.run(
        [
            CampaignTask(f"multi-tenant/{alg}", point, (alg, accesses))
            for alg in MigrationAlgorithm.ALL
        ]
    )
    return [
        campaign.result(f"multi-tenant/{alg}")
        for alg in MigrationAlgorithm.ALL
        if campaign.by_id[f"multi-tenant/{alg}"].ok
        and campaign.result(f"multi-tenant/{alg}") is not None
    ]


def run(fast: bool = True, supervisor=None) -> list[Table]:
    accesses = FAST_ACCESSES if fast else FULL_ACCESSES
    rows = points(accesses, supervisor=supervisor)
    tables: list[Table] = []
    for r in rows:
        t = Table(
            f"Multi-tenant soak ({r['algorithm']}) — per-tenant summary",
            ["tenant", "accesses", "hit rate", "avg latency", "swaps",
             "slowdown", "interference"],
        )
        for m in r["tenants"]:
            t.add_row(
                m["tenant"],
                m["accesses"],
                f"{m['hit_rate']:.1%}",
                f"{m['avg_latency']:.1f}",
                m["swaps"],
                "n/a" if m["slowdown"] is None else f"{m['slowdown']:.2f}x",
                "n/a" if m["interference"] is None
                else f"{m['interference']:.1%}",
            )
        t.add_footnote(
            f"{r['released']} tenants reclaimed ({r['reclaimed_bytes']} B "
            f"of reclamation copies); {r['suppressed_qos']} swap(s) "
            f"QoS-suppressed; 0 cross-tenant reads; 0 data violations; "
            f"table audit clean"
        )
        tables.append(t)
    expected = len(MigrationAlgorithm.ALL)
    if len(rows) < expected:
        t = Table("Multi-tenant soak — PARTIAL", ["design", "status"])
        done = {r["algorithm"] for r in rows}
        for alg in MigrationAlgorithm.ALL:
            t.add_row(alg, "ok" if alg in done else "FAILED/RETRIES EXHAUSTED")
        tables.append(t)
    return tables


if __name__ == "__main__":
    for table in run():
        table.print()
