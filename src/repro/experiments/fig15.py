"""Fig 15: sensitivity to on-package capacity (128 / 256 / 512 MB).

Shape criteria: latency rises as the on-package region shrinks, but the
migrated system stays well below the no-migration latency at every size.
"""

from __future__ import annotations

from ..config import MigrationAlgorithm
from ..core.hetero_memory import baseline_latency
from ..stats.report import Table, format_cycles
from ..units import KB
from .common import (
    all_migration_workloads,
    default_accesses,
    migration_config,
    migration_trace,
)
from .fig11 import simulate

CAPACITIES_MB = (128, 256, 512)
#: a good mid-grid operating point for the sweep
PAGE = 64 * KB
INTERVAL = 1_000


def run(fast: bool = True) -> Table:
    n = min(default_accesses(), 400_000) if fast else default_accesses()
    workloads = all_migration_workloads()[:3] if fast else all_migration_workloads()
    table = Table(
        "Fig 15 — avg latency vs on-package capacity (paper MB, scaled), "
        f"Live {PAGE // KB}KB/{INTERVAL}",
        ["workload"]
        + [f"{mb}MB w/" for mb in CAPACITIES_MB]
        + ["512MB w/o migration"],
    )
    for workload in workloads:
        cells = []
        for mb in CAPACITIES_MB:
            res = simulate(workload, MigrationAlgorithm.LIVE, PAGE, INTERVAL, n, mb)
            cells.append(format_cycles(res.average_latency))
        static = baseline_latency(
            migration_config(512), migration_trace(workload, n), "static"
        )
        table.add_row(workload, *cells, format_cycles(static.average_latency))
    table.add_footnote(
        "w/ migration should degrade gracefully 512->128MB and stay below w/o"
    )
    return table


if __name__ == "__main__":
    run().print()
