"""Tables II and III: the simulation configurations, printed from the
live config objects (so the printout can never drift from the code)."""

from __future__ import annotations

from ..config import SystemConfig, paper_config
from ..stats.report import Table
from ..units import format_size
from ..workloads.npb import NPB_FOOTPRINTS_MB
from .common import FOOTPRINT_RATIO, MIGRATION_SCALE, migration_config


def run_table2(fast: bool = True) -> Table:
    cfg = SystemConfig()
    c, t = cfg.latency, cfg.offpkg_dram
    table = Table(
        "Table II — baseline processor and latency components (from repro.config)",
        ["parameter", "value"],
    )
    rows = [
        ("cores / frequency", f"{cfg.caches.n_cores} x {cfg.frequency_hz / 1e9:.1f} GHz"),
        ("L1 (I+D, private)", f"{format_size(cfg.caches.l1.capacity_bytes)}, "
                              f"{cfg.caches.l1.ways}-way, {cfg.caches.l1.latency_cycles}-cycle"),
        ("L2 (private)", f"{format_size(cfg.caches.l2.capacity_bytes)}, "
                         f"{cfg.caches.l2.ways}-way, {cfg.caches.l2.latency_cycles}-cycle"),
        ("L3 (shared)", f"{format_size(cfg.caches.l3.capacity_bytes)}, "
                        f"{cfg.caches.l3.ways}-way, {cfg.caches.l3.latency_cycles}-cycle"),
        ("memory controller processing", f"{c.controller_processing}-cycle"),
        ("controller-to-core", f"{c.controller_to_core_each_way}-cycle each way"),
        ("package pin", f"{c.package_pin_each_way}-cycle each way"),
        ("PCB wire", f"{c.pcb_wire_round_trip}-cycle round-trip"),
        ("interposer pin", f"{c.interposer_pin_each_way}-cycle each way"),
        ("intra-package wire", f"{c.intra_package_round_trip}-cycle round-trip"),
        ("off-package path total", f"{c.offpkg_overhead}-cycle"),
        ("on-package path total", f"{c.onpkg_overhead}-cycle"),
        ("off-package DRAM", f"{t.n_channels} ch x {t.n_banks} banks, "
                             f"hit {t.hit_cycles} / conflict {t.miss_cycles} cycles"),
        ("on-package DRAM", f"{cfg.onpkg_dram.n_banks} banks, "
                            f"hit {cfg.onpkg_dram.hit_cycles} / conflict "
                            f"{cfg.onpkg_dram.miss_cycles} cycles"),
    ]
    for name, value in rows:
        table.add_row(name, value)
    return table


def run_table3(fast: bool = True) -> Table:
    paper = paper_config()
    scaled = migration_config()
    table = Table(
        "Table III — trace-simulation parameters (paper vs scaled run)",
        ["parameter", "paper", f"scaled (1/{MIGRATION_SCALE})"],
    )
    table.add_row("total memory", format_size(paper.total_bytes), format_size(scaled.total_bytes))
    table.add_row("on-package memory", format_size(paper.onpkg_bytes), format_size(scaled.onpkg_bytes))
    table.add_row("macro page size", "4KB .. 4MB", "4KB .. 4MB (unscaled)")
    table.add_row("sub-block size", format_size(paper.migration.subblock_bytes),
                  format_size(scaled.migration.subblock_bytes))
    table.add_row("swap intervals", "1K / 10K / 100K accesses", "same")
    for workload, ratio in FOOTPRINT_RATIO.items():
        paper_fp = (
            f"{NPB_FOOTPRINTS_MB[workload]}MB" if workload in NPB_FOOTPRINTS_MB
            else "> 2GB"
        )
        from .common import scaled_footprint

        table.add_row(f"workload {workload}", paper_fp, format_size(scaled_footprint(workload)))
    table.add_footnote("all six migration-study footprints exceed the on-package size")
    return table


if __name__ == "__main__":
    run_table2().print()
    run_table3().print()
