"""Fig 10: pure-hardware management cost vs macro page size.

Exact analytic reproduction (no scaling): bits needed to manage 1 GB of
on-package memory at granularities from 4 KB to 4 MB, including the
paper's 9,228-bit reference point at 4 MB.
"""

from __future__ import annotations

from ..migration.overhead import hardware_bits
from ..stats.report import Table
from ..units import GB, KB, MB

PAGE_SIZES = (4 * KB, 16 * KB, 64 * KB, 256 * KB, 1 * MB, 4 * MB)


def run(fast: bool = True) -> Table:
    table = Table(
        "Fig 10 — hardware bits to manage 1 GB on-package memory",
        ["macro page", "entries", "table bits", "bitmaps+policy bits", "total bits"],
    )
    for page in PAGE_SIZES:
        cost = hardware_bits(1 * GB, page)
        table.add_row(
            f"{page // KB}KB",
            cost.n_entries,
            cost.table_bits,
            cost.fill_bitmap_bits + cost.plru_bits + cost.multiqueue_bits,
            cost.total_bits,
        )
    table.add_footnote(
        "paper reference: 9,228 bits at 4 MB; pure hardware deemed "
        "feasible only for pages >= 1 MB"
    )
    return table


if __name__ == "__main__":
    run().print()
