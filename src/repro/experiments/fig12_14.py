"""Figs 12-14: Live-Migration latency vs granularity, one figure per
swap interval (1K / 10K / 100K accesses).

Shape criteria: the most frequent interval (Fig 12) reaches the lowest
minima; the optimal granularity is workload-dependent and shifts with
the interval.
"""

from __future__ import annotations

from ..config import MigrationAlgorithm
from ..stats.report import Table, format_cycles
from ..units import KB
from .common import (
    GRANULARITIES,
    SWAP_INTERVALS,
    all_migration_workloads,
    default_accesses,
)
from .fig11 import simulate

FIGURE_OF_INTERVAL = {1_000: "Fig 12", 10_000: "Fig 13", 100_000: "Fig 14"}


def latency_grid(
    interval: int, n: int, granularities=GRANULARITIES, workloads=None
) -> dict[str, list[float]]:
    workloads = workloads or all_migration_workloads()
    grid: dict[str, list[float]] = {}
    for workload in workloads:
        grid[workload] = [
            simulate(workload, MigrationAlgorithm.LIVE, g, interval, n).average_latency
            for g in granularities
        ]
    return grid


def run(fast: bool = True) -> list[Table]:
    n = min(default_accesses(), 400_000) if fast else default_accesses()
    grans = (4 * KB, 64 * KB, 1024 * KB) if fast else GRANULARITIES
    workloads = all_migration_workloads()[:3] if fast else all_migration_workloads()
    tables = []
    for interval in SWAP_INTERVALS:
        grid = latency_grid(interval, n, grans, workloads)
        table = Table(
            f"{FIGURE_OF_INTERVAL[interval]} — Live Migration avg latency "
            f"(cycles), interval = {interval}",
            ["workload"] + [f"{g // KB}KB" for g in grans],
        )
        for workload, series in grid.items():
            table.add_row(workload, *[format_cycles(v) for v in series])
        tables.append(table)
    tables[-1].add_footnote(
        "minima should be lowest at the 1K interval; optimum granularity "
        "varies per workload"
    )
    return tables


if __name__ == "__main__":
    for t in run():
        t.print()
