"""Figs 12-14: Live-Migration latency vs granularity, one figure per
swap interval (1K / 10K / 100K accesses).

Shape criteria: the most frequent interval (Fig 12) reaches the lowest
minima; the optimal granularity is workload-dependent and shifts with
the interval.
"""

from __future__ import annotations

from ..campaign import CampaignTask
from ..config import MigrationAlgorithm
from ..stats.report import Table, format_cycles
from ..units import KB
from .common import (
    GRANULARITIES,
    SWAP_INTERVALS,
    all_migration_workloads,
    default_accesses,
)
from .fig11 import simulate

FIGURE_OF_INTERVAL = {1_000: "Fig 12", 10_000: "Fig 13", 100_000: "Fig 14"}


def series(workload: str, interval: int, granularities, n: int) -> list[float]:
    """One grid row (a campaign point): latency per granularity.

    Module-level and list-of-float-valued so a campaign supervisor can
    run it in a worker process and persist it in a run manifest.
    """
    return [
        simulate(workload, MigrationAlgorithm.LIVE, g, interval, n).average_latency
        for g in granularities
    ]


def latency_grid(
    interval: int, n: int, granularities=GRANULARITIES, workloads=None,
    supervisor=None,
) -> dict[str, list[float]]:
    """Per-workload latency series for one swap interval.

    With a supervisor, each workload's series is a campaign point;
    points that exhaust their retries are omitted from the grid (the
    caller reports the gap)."""
    workloads = workloads or all_migration_workloads()
    if supervisor is None:
        return {
            w: series(w, interval, tuple(granularities), n) for w in workloads
        }
    campaign = supervisor.run([
        CampaignTask(f"fig12-14/{interval}/{w}", series,
                     (w, interval, tuple(granularities), n))
        for w in workloads
    ])
    return {
        w: campaign.result(f"fig12-14/{interval}/{w}")
        for w in workloads
        if campaign.by_id[f"fig12-14/{interval}/{w}"].ok
        and campaign.result(f"fig12-14/{interval}/{w}") is not None
    }


def run(fast: bool = True, supervisor=None) -> list[Table]:
    n = min(default_accesses(), 400_000) if fast else default_accesses()
    grans = (4 * KB, 64 * KB, 1024 * KB) if fast else GRANULARITIES
    workloads = all_migration_workloads()[:3] if fast else all_migration_workloads()
    tables = []
    for interval in SWAP_INTERVALS:
        grid = latency_grid(interval, n, grans, workloads, supervisor=supervisor)
        table = Table(
            f"{FIGURE_OF_INTERVAL[interval]} — Live Migration avg latency "
            f"(cycles), interval = {interval}",
            ["workload"] + [f"{g // KB}KB" for g in grans],
        )
        for workload, series_ in grid.items():
            table.add_row(workload, *[format_cycles(v) for v in series_])
        missing = [w for w in workloads if w not in grid]
        if missing:
            table.add_footnote(
                f"PARTIAL: {len(missing)} point(s) exhausted their retry "
                f"budget and are missing: {', '.join(missing)}"
            )
        tables.append(table)
    tables[-1].add_footnote(
        "minima should be lowest at the 1K interval; optimum granularity "
        "varies per workload"
    )
    return tables


if __name__ == "__main__":
    for t in run():
        t.print()
