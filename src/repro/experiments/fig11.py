"""Fig 11 (a/b/c): average memory latency of N vs N-1 vs Live Migration
across granularities, one panel per swap interval.

Shape criteria:

* at coarse granularity (4 MB) with frequent swapping, N is far worse
  than N-1 (the stall dominates); Live <= N-1;
* at 4 KB the three algorithms converge.
"""

from __future__ import annotations

from functools import lru_cache

from ..config import MigrationAlgorithm
from ..core.hetero_memory import HeterogeneousMainMemory
from ..core.simulator import SimulationResult
from ..stats.report import Table, format_cycles
from ..units import KB
from .common import (
    GRANULARITIES,
    SWAP_INTERVALS,
    all_migration_workloads,
    default_accesses,
    migration_config,
    migration_trace,
)

ALGORITHMS = (
    MigrationAlgorithm.N,
    MigrationAlgorithm.N_MINUS_1,
    MigrationAlgorithm.LIVE,
)


@lru_cache(maxsize=1024)
def simulate(
    workload: str,
    algorithm: str,
    page_bytes: int,
    interval: int,
    n: int,
    onpkg_paper_mb: int = 512,
) -> SimulationResult:
    """One cell of the Fig 11-16 grids (cached across experiments)."""
    cfg = migration_config(
        onpkg_paper_mb,
        algorithm=algorithm,
        macro_page_bytes=page_bytes,
        swap_interval=interval,
    )
    trace = migration_trace(workload, n)
    return HeterogeneousMainMemory(cfg).run(trace)


def run(fast: bool = True) -> list[Table]:
    n = default_accesses() if not fast else min(default_accesses(), 400_000)
    grans = (4 * KB, 256 * KB, 4096 * KB) if fast else GRANULARITIES
    workloads = all_migration_workloads()[:3] if fast else all_migration_workloads()
    tables = []
    for interval in SWAP_INTERVALS:
        table = Table(
            f"Fig 11 — avg memory latency (cycles), swap interval = {interval} accesses",
            ["workload", "granularity"] + [a for a in ALGORITHMS],
        )
        for workload in workloads:
            for page in grans:
                row = [workload, f"{page // KB}KB"]
                for algo in ALGORITHMS:
                    res = simulate(workload, algo, page, interval, n)
                    row.append(format_cycles(res.average_latency))
                table.add_row(*row)
        table.add_footnote("expect N >> N-1 >= Live at 4MB; convergence at 4KB")
        tables.append(table)
    return tables


if __name__ == "__main__":
    for t in run():
        t.print()
