"""CLI: regenerate any of the paper's tables/figures.

    python -m repro.experiments.runner fig11 --full
    repro-experiments table4
    repro-experiments all --jobs 4 --task-timeout 900 --manifest run.json

Every invocation drives its work through the fault-tolerant
:class:`~repro.campaign.CampaignSupervisor`:

* ``all`` fans whole experiments out as campaign tasks — one crashed or
  hung experiment is retried, then recorded as failed, and the sweep
  continues (nonzero exit code only at the end);
* the grid experiments (``table4``, ``fig12-14``) additionally submit
  their per-workload simulation points through the supervisor;
* ``--jobs 1`` with no ``--task-timeout`` (the default) executes tasks
  inline in submission order — byte-identical to the old serial loop;
* ``--manifest PATH`` persists per-task status so a killed sweep
  resumes by skipping completed tasks (their output is reprinted from
  the manifest, not recomputed).
"""

from __future__ import annotations

import argparse
import sys
import time

from ..campaign import CampaignSupervisor, CampaignTask, RetryPolicy
from . import (
    chaos_soak,
    fig4,
    fig5,
    fig10,
    fig11,
    fig12_14,
    fig15,
    fig16,
    hammer_soak,
    multi_tenant,
    refresh,
    table1,
    table2_3,
    table4,
)

EXPERIMENTS = {
    "table1": table1.run,
    "table2": table2_3.run_table2,
    "table3": table2_3.run_table3,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12-14": fig12_14.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "table4": table4.run,
    "chaos-soak": chaos_soak.run,
    "hammer-soak": hammer_soak.run,
    "multi-tenant": multi_tenant.run,
    "refresh": refresh.run,
}

#: experiments whose inner (workload x config) grids fan out through
#: the supervisor when run individually
GRID_EXPERIMENTS = {"table4", "fig12-14", "refresh", "multi-tenant"}


def render_experiment(name: str, fast: bool) -> str:
    """Run one experiment, return its tables rendered exactly as
    :meth:`~repro.stats.report.Table.print` would emit them.

    Module-level so ``all`` campaigns can run it in worker processes;
    the returned string is JSON-serialisable, so a manifest-backed
    sweep reprints completed experiments on resume without recomputing.
    """
    out = EXPERIMENTS[name](fast=fast)
    tables = out if isinstance(out, list) else [out]
    return "".join("\n" + t.render() + "\n\n" for t in tables)


def build_supervisor(args) -> CampaignSupervisor:
    """A supervisor configured from the CLI flags."""
    return CampaignSupervisor(
        jobs=args.jobs,
        task_timeout=args.task_timeout,
        retry=RetryPolicy(max_attempts=args.max_retries + 1),
        manifest_path=args.manifest,
    )


def _run_all(names: list[str], fast: bool, supervisor: CampaignSupervisor) -> int:
    tasks = [CampaignTask(name, render_experiment, (name, fast)) for name in names]
    report = supervisor.run(tasks)
    for name in names:
        outcome = report.by_id[name]
        if outcome.ok and outcome.result is not None:
            sys.stdout.write(outcome.result)
        if outcome.status == "skipped":
            print(f"[{name} skipped — already completed in the manifest]",
                  file=sys.stderr)
        elif outcome.ok:
            print(f"[{name} done in {outcome.duration_s:.1f}s]", file=sys.stderr)
        else:
            print(f"[{name} FAILED after {outcome.attempts} attempt(s): "
                  f"{outcome.error}]", file=sys.stderr)
    if not report.ok:
        report.table().print()
        failed = ", ".join(o.task_id for o in report.failed)
        print(f"[{len(report.failed)}/{len(names)} experiments failed: {failed}]",
              file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (table/figure number) or 'all'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full grids and trace lengths (slower; default is a fast subset)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for campaign fan-out (default 1: serial, "
             "byte-identical to the classic runner)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-task wall-clock budget; a hung task is killed and retried",
    )
    parser.add_argument(
        "--max-retries", type=int, default=1, metavar="K",
        help="retries per task after the first attempt (default 1)",
    )
    parser.add_argument(
        "--manifest", default=None, metavar="PATH",
        help="campaign manifest path: enables resume (completed tasks are "
             "skipped on re-invocation)",
    )
    args = parser.parse_args(argv)

    fast = not args.full
    supervisor = build_supervisor(args)  # validates the flags up front
    if args.experiment == "all":
        return _run_all(sorted(EXPERIMENTS), fast, supervisor)

    name = args.experiment
    t0 = time.perf_counter()
    if name in GRID_EXPERIMENTS:
        out = EXPERIMENTS[name](fast=fast, supervisor=supervisor)
    else:
        out = EXPERIMENTS[name](fast=fast)
    for table in out if isinstance(out, list) else [out]:
        table.print()
    print(f"[{name} done in {time.perf_counter() - t0:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
