"""CLI: regenerate any of the paper's tables/figures.

    python -m repro.experiments.runner fig11 --full
    repro-experiments table4
    repro-experiments all
"""

from __future__ import annotations

import argparse
import sys
import time

from . import fig4, fig5, fig10, fig11, fig12_14, fig15, fig16, table1, table2_3, table4

EXPERIMENTS = {
    "table1": table1.run,
    "table2": table2_3.run_table2,
    "table3": table2_3.run_table3,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12-14": fig12_14.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "table4": table4.run,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (table/figure number) or 'all'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full grids and trace lengths (slower; default is a fast subset)",
    )
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        t0 = time.time()
        out = EXPERIMENTS[name](fast=not args.full)
        for table in out if isinstance(out, list) else [out]:
            table.print()
        print(f"[{name} done in {time.time() - t0:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
