"""Table IV: per-workload effectiveness of controller-based migration.

For each of the six workloads: the DRAM core latency, the latency
without migration (static mapping), the best latency with migration over
a (granularity x interval) grid, and the effectiveness η. The paper's
average η is 83% with 512 MB on-package out of 4 GB (12.5%); we use the
measured all-on-package latency as the η floor (see
:mod:`repro.core.metrics`).
"""

from __future__ import annotations

from ..campaign import CampaignTask
from ..config import MigrationAlgorithm
from ..core.hetero_memory import HeterogeneousMainMemory, baseline_latency
from ..core.metrics import EffectivenessReport
from ..stats.report import Table
from ..units import KB
from .common import (
    all_migration_workloads,
    default_accesses,
    migration_config,
    migration_trace,
)
from .fig11 import simulate

#: the grid searched for "best latency w/ migration"
BEST_GRID_PAGES = (4 * KB, 16 * KB, 64 * KB, 256 * KB, 1024 * KB)
BEST_GRID_INTERVALS = (1_000, 10_000)

#: Table IV compares steady states: the paper's runs are ~10^6x longer
#: than a scaled trace, so the converged tail is the comparable number
TAIL_FRACTION = 0.5


def best_migrated_latency(workload: str, n: int) -> tuple[float, tuple[int, int]]:
    best, best_cfg = float("inf"), (0, 0)
    for page in BEST_GRID_PAGES:
        for interval in BEST_GRID_INTERVALS:
            res = simulate(workload, MigrationAlgorithm.LIVE, page, interval, n)
            tail = res.tail_average_latency(TAIL_FRACTION)
            if tail < best:
                best, best_cfg = tail, (page, interval)
    return best, best_cfg


def point(workload: str, n: int) -> dict:
    """One Table IV row (a campaign point), as a JSON-safe dict.

    Module-level and dict-valued so a :class:`~repro.campaign.CampaignSupervisor`
    can run it in a worker process and persist the result in a run
    manifest for campaign-level resume.
    """
    cfg = migration_config()
    trace = migration_trace(workload, n)
    static = baseline_latency(cfg, trace, "static")
    ideal = baseline_latency(cfg, trace, "all-onpkg")
    best, _ = best_migrated_latency(workload, n)
    # observed off-package service mix = the Table IV "DRAM core" row
    system = HeterogeneousMainMemory(cfg, migrate=False)
    system.run(trace)
    return {
        "workload": workload,
        "dram_core_latency": system.dram_core_latency(),
        "latency_without_migration": static.average_latency,
        "latency_with_migration": best,
        "floor_latency": ideal.average_latency,
    }


def reports(
    n: int | None = None, workloads=None, supervisor=None
) -> list[EffectivenessReport]:
    """Per-workload effectiveness rows, optionally fanned out through a
    campaign supervisor (points that exhaust their retries are omitted;
    see :func:`run` for the partial-results footnote)."""
    n = n or default_accesses()
    workloads = workloads or all_migration_workloads()
    if supervisor is None:
        return [EffectivenessReport(**point(w, n)) for w in workloads]
    campaign = supervisor.run(
        [CampaignTask(f"table4/{w}", point, (w, n)) for w in workloads]
    )
    return [
        EffectivenessReport(**campaign.result(f"table4/{w}"))
        for w in workloads
        if campaign.by_id[f"table4/{w}"].ok
        and campaign.result(f"table4/{w}") is not None
    ]


def run(fast: bool = True, supervisor=None) -> Table:
    n = min(default_accesses(), 400_000) if fast else default_accesses()
    workloads = all_migration_workloads()[:3] if fast else all_migration_workloads()
    rows = reports(n, workloads, supervisor=supervisor)
    table = Table(
        "Table IV — effectiveness of memory-controller-based data migration",
        ["workload", "DRAM core (cy)", "w/o migration", "best w/", "ideal", "η"],
    )
    for r in rows:
        table.add_row(
            r.workload,
            f"{r.dram_core_latency:.0f}",
            f"{r.latency_without_migration:.1f}",
            f"{r.latency_with_migration:.1f}",
            f"{r.floor_latency:.1f}",
            f"{min(1.0, r.effectiveness):.1%}",
        )
    if rows:
        avg = sum(min(1.0, r.effectiveness) for r in rows) / len(rows)
        table.add_footnote(f"average effectiveness = {avg:.1%} (paper: 83%)")
    missing = [w for w in workloads if w not in {r.workload for r in rows}]
    if missing:
        table.add_footnote(
            f"PARTIAL: {len(missing)} point(s) exhausted their retry "
            f"budget and are missing: {', '.join(missing)}"
        )
    return table


if __name__ == "__main__":
    run().print()
