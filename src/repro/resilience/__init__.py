"""Resilience subsystem: fault injection, checkpoint/restore, degradation.

Four pillars (ISSUE: robustness):

* :mod:`.faults` — deterministic seeded fault injection (migration
  aborts, stuck table bits, bitmap corruption, transient DRAM errors
  with an ECC detect/correct/retry model, trace-file corruption
  helpers).
* :mod:`.checkpoint` — versioned, digest-verified checkpoint/restore of
  a whole campaign, plus the :func:`~.checkpoint.run_resumable` driver.
* :mod:`.degradation` — structured :class:`~.degradation.DegradationEvent`
  records emitted whenever a resilience mechanism fires (the engine's
  quarantine/static-mapping fallback lives in
  :mod:`repro.migration.engine`).
* invariant auditing / watchdog — wired into
  :class:`repro.core.simulator.EpochSimulator` and
  :meth:`repro.migration.table.TranslationTable.audit`, configured by
  :class:`repro.config.ResilienceConfig`.
"""

from .checkpoint import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    CheckpointBundle,
    load_checkpoint,
    restore_simulator,
    run_resumable,
    save_checkpoint,
)
from .degradation import (
    ABORT_RECOVERED,
    AUDIT_FAILED,
    DRAM_CORRECTED,
    DRAM_RETRIED,
    DRAM_UNCORRECTABLE,
    FRAME_RETIRED,
    MIGRATION_QUARANTINED,
    RETIREMENT_SUPPRESSED,
    SWAP_FAILED,
    TABLE_REPAIRED,
    TRACE_SALVAGED,
    WATCHDOG_BREACH,
    DegradationEvent,
    summarize_events,
)
from .faults import (
    CORE_FAULT_KINDS,
    EccModel,
    EccOutcome,
    FaultEvent,
    FaultKind,
    FaultPlan,
    corrupt_trace_file,
    truncate_trace_file,
)

__all__ = [
    "ABORT_RECOVERED",
    "AUDIT_FAILED",
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CORE_FAULT_KINDS",
    "CheckpointBundle",
    "DegradationEvent",
    "DRAM_CORRECTED",
    "DRAM_RETRIED",
    "DRAM_UNCORRECTABLE",
    "EccModel",
    "EccOutcome",
    "FRAME_RETIRED",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "MIGRATION_QUARANTINED",
    "RETIREMENT_SUPPRESSED",
    "SWAP_FAILED",
    "TABLE_REPAIRED",
    "TRACE_SALVAGED",
    "WATCHDOG_BREACH",
    "corrupt_trace_file",
    "load_checkpoint",
    "restore_simulator",
    "run_resumable",
    "save_checkpoint",
    "summarize_events",
    "truncate_trace_file",
]
