"""Versioned checkpoint/restore of a whole simulation campaign.

A checkpoint captures everything a chunked-trace run needs to continue
bit-identically: the system configuration, the simulator's complete
mutable state (translation table, epoch monitor, in-flight migration
timelines, DRAM device queues, fault plan) and the partially
accumulated :class:`~repro.core.simulator.SimulationResult` — plus a
caller-supplied ``extra`` dict (e.g. how many trace chunks were
consumed).

File format::

    8 bytes   magic  b"RPCKPT01"
    4 bytes   little-endian format version
    32 bytes  SHA-256 of the payload
    payload   pickled state bundle

The digest turns silent bit rot or truncation into a clean
:class:`~repro.errors.CheckpointError` instead of an unpickling crash
or — worse — a subtly wrong resume. Writes go through a temp file and
an atomic rename so a crash mid-checkpoint never destroys the previous
good checkpoint.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import struct
from typing import Any

from ..errors import CheckpointError

CHECKPOINT_MAGIC = b"RPCKPT01"
CHECKPOINT_VERSION = 1
_PREFIX = struct.Struct("<8sI32s")


@dataclasses.dataclass
class CheckpointBundle:
    """What :func:`load_checkpoint` hands back."""

    config: Any                 # SystemConfig
    migrate: bool
    detailed_dram: bool
    simulator_state: dict
    result: Any                 # SimulationResult
    extra: dict


def save_checkpoint(path: str | os.PathLike, simulator, result,
                    extra: dict | None = None) -> None:
    """Snapshot a simulator + partial result to ``path`` (atomically)."""
    payload = pickle.dumps(
        {
            "version": CHECKPOINT_VERSION,
            "config": simulator.config,
            "migrate": simulator.migrate,
            "detailed_dram": simulator.detailed_dram,
            "simulator_state": simulator.state_dict(),
            "result": result,
            "extra": dict(extra or {}),
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    digest = hashlib.sha256(payload).digest()
    path = os.fspath(path)
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(_PREFIX.pack(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, digest))
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def load_checkpoint(path: str | os.PathLike) -> CheckpointBundle:
    """Read and verify a checkpoint file; raises :class:`CheckpointError`
    on bad magic, unknown version, or payload corruption."""
    path = os.fspath(path)
    try:
        with open(path, "rb") as fh:
            prefix = fh.read(_PREFIX.size)
            payload = fh.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if len(prefix) != _PREFIX.size:
        raise CheckpointError(f"{path}: truncated checkpoint header")
    magic, version, digest = _PREFIX.unpack(prefix)
    if magic != CHECKPOINT_MAGIC:
        raise CheckpointError(f"{path}: bad checkpoint magic {magic!r}")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: unsupported checkpoint version {version} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    if hashlib.sha256(payload).digest() != digest:
        raise CheckpointError(
            f"{path}: payload digest mismatch — the checkpoint is corrupt "
            f"or was truncated ({len(payload)} payload bytes)"
        )
    state = pickle.loads(payload)
    return CheckpointBundle(
        config=state["config"],
        migrate=state["migrate"],
        detailed_dram=state["detailed_dram"],
        simulator_state=state["simulator_state"],
        result=state["result"],
        extra=state["extra"],
    )


def restore_simulator(bundle: CheckpointBundle):
    """Build a fresh simulator from a bundle and load its state."""
    from ..core.simulator import EpochSimulator  # local: avoid import cycle

    simulator = EpochSimulator(
        bundle.config, migrate=bundle.migrate,
        detailed_dram=bundle.detailed_dram,
    )
    simulator.load_state_dict(bundle.simulator_state)
    return simulator


def run_resumable(
    config,
    trace_path: str | os.PathLike,
    checkpoint_path: str | os.PathLike,
    *,
    chunk_records: int = 1 << 20,
    migrate: bool = True,
    salvage: bool = False,
):
    """Run (or resume) a chunked-trace campaign with checkpoint-per-chunk.

    If ``checkpoint_path`` exists, the campaign resumes after the last
    completed chunk; otherwise it starts fresh. Either way the
    simulator state is checkpointed after every chunk, so a killed
    process loses at most one chunk of work. For the resumed result to
    be field-for-field identical to an uninterrupted run, use a
    ``chunk_records`` that is a multiple of the configured
    ``swap_interval`` (epoch boundaries then align across chunkings).

    Returns the completed :class:`~repro.core.simulator.SimulationResult`.
    """
    from ..core.simulator import EpochSimulator, SimulationResult
    from ..trace.io import TraceReader

    checkpoint_path = os.fspath(checkpoint_path)
    if os.path.exists(checkpoint_path):
        bundle = load_checkpoint(checkpoint_path)
        if bundle.extra.get("chunk_records") != chunk_records:
            raise CheckpointError(
                f"checkpoint was taken with chunk_records="
                f"{bundle.extra.get('chunk_records')}, cannot resume with "
                f"{chunk_records}"
            )
        simulator = restore_simulator(bundle)
        result = bundle.result
        chunks_done = bundle.extra["chunks_done"]
    else:
        simulator = EpochSimulator(config, migrate=migrate)
        result = SimulationResult()
        chunks_done = 0

    reader = TraceReader(trace_path, chunk_records=chunk_records,
                         salvage=salvage)
    for index, chunk in enumerate(reader):
        if index < chunks_done:
            continue                      # already folded into the result
        simulator.run_into(chunk, result)
        save_checkpoint(
            checkpoint_path, simulator, result,
            extra={"chunks_done": index + 1, "chunk_records": chunk_records},
        )
    return result
