"""Deterministic, seeded fault injection for resilience campaigns.

A :class:`FaultPlan` is a reproducible schedule of faults keyed by epoch
index. The epoch simulator consults it at every epoch boundary and
perturbs the live system accordingly:

* ``ABORT_SWAP`` — the next scheduled migration aborts at a chosen copy
  step; the engine rolls the translation table back and surfaces a
  :class:`~repro.errors.MigrationError` (the P-bit machinery's promise —
  a torn swap never leaves an unresolvable page — is exactly what the
  rollback exercises).
* ``STUCK_P_BIT`` / ``STUCK_F_BIT`` / ``BITMAP_CORRUPTION`` — flip raw
  table state behind the API, the way an SEU in the on-chip SRAM table
  would; the periodic audit must detect and repair it.
* ``DRAM_TRANSIENT`` — transient read errors in the DRAM arrays, run
  through an ECC-style detect/correct/retry model (:class:`EccModel`).

Everything is derived from the plan's seed (per-epoch RNG streams), so
a campaign scenario replays bit-identically — including across a
checkpoint/restore boundary, because the plan itself is part of the
simulator's checkpointed state.

Trace-file faults (truncation, corruption) are not applied through the
plan — they target files at rest; see ``truncate_trace_file`` /
``corrupt_trace_file`` below and the salvage path in
:class:`~repro.trace.io.TraceReader`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..config import ResilienceConfig
from ..errors import FaultInjectionError


class FaultKind(str, Enum):
    """The injectable fault categories."""

    ABORT_SWAP = "abort-swap"
    STUCK_P_BIT = "stuck-p-bit"
    STUCK_F_BIT = "stuck-f-bit"
    BITMAP_CORRUPTION = "bitmap-corruption"
    DRAM_TRANSIENT = "dram-transient"
    #: a correctable-error burst on an on-package frame: the frame's CE
    #: leaky bucket jumps straight past its retirement threshold (no-op
    #: unless the run has ``RASConfig(enabled=True)``)
    CE_BURST = "ce-burst"
    #: a latent correctable error parked in an idle frame — only the
    #: patrol scrubber's next pass over that frame surfaces it into CE
    #: telemetry (no-op without RAS)
    SCRUB_LATENT = "scrub-latent"
    #: an aggressive row-activation (rowhammer) burst: the targeted
    #: row's activation bucket jumps straight past the disturbance
    #: threshold, so its physical neighbours take bit flips unless the
    #: mitigation ladder intervenes (no-op unless the run has
    #: ``DisturbConfig(enabled=True)``)
    ROW_DISTURB = "row-disturb"


#: kinds a default :meth:`FaultPlan.random` draws from. Deliberately the
#: original five: the RAS kinds are no-ops unless the simulator runs
#: with ``RASConfig(enabled=True)`` (and ``ROW_DISTURB`` without
#: ``DisturbConfig(enabled=True)``), and extending the default tuple
#: would shift every existing seeded campaign's draws. RAS/disturbance
#: campaigns opt in via ``FaultPlan.random(..., kinds=(...,))`` or
#: explicit events.
CORE_FAULT_KINDS = (
    FaultKind.ABORT_SWAP,
    FaultKind.STUCK_P_BIT,
    FaultKind.STUCK_F_BIT,
    FaultKind.BITMAP_CORRUPTION,
    FaultKind.DRAM_TRANSIENT,
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: fires at the start of epoch ``epoch``.

    ``param`` is kind-specific: the copy step index for ``ABORT_SWAP``,
    the slot index for the bit flips, the error count for
    ``DRAM_TRANSIENT`` (0 picks a seeded default), the target frame
    index for ``CE_BURST`` / ``SCRUB_LATENT`` (wrapped onto a usable
    frame by the RAS controller), and the aggressor-row selector for
    ``ROW_DISTURB`` (wrapped onto one of the epoch's active rows by the
    disturbance controller).

    ``subblocks`` refines ``ABORT_SWAP`` only: when the targeted copy
    step is a Live Migration fill, that many sub-blocks land before the
    abort fires (a micro-boundary abort); 0 aborts at the step boundary.
    """

    epoch: int
    kind: FaultKind
    param: int = 0
    subblocks: int = 0


class FaultPlan:
    """A seeded, replayable schedule of :class:`FaultEvent`s."""

    def __init__(self, events: tuple[FaultEvent, ...] | list[FaultEvent] = (),
                 *, seed: int = 0):
        self.seed = int(seed)
        self.events = tuple(sorted(events, key=lambda e: e.epoch))
        self._by_epoch: dict[int, list[FaultEvent]] = {}
        for ev in self.events:
            self._by_epoch.setdefault(ev.epoch, []).append(ev)

    @classmethod
    def random(
        cls,
        seed: int,
        n_epochs: int,
        n_slots: int,
        *,
        rate: float = 0.15,
        kinds: tuple[FaultKind, ...] | None = None,
    ) -> "FaultPlan":
        """Draw a random plan: each epoch faults with probability ``rate``."""
        if not 0 <= rate <= 1:
            raise FaultInjectionError(f"fault rate {rate} outside [0, 1]")
        rng = np.random.default_rng(seed)
        kinds = kinds or CORE_FAULT_KINDS
        events = []
        for epoch in range(n_epochs):
            if rng.random() >= rate:
                continue
            kind = kinds[int(rng.integers(len(kinds)))]
            if kind is FaultKind.ABORT_SWAP:
                param = int(rng.integers(0, 12))          # copy step index
            elif kind is FaultKind.DRAM_TRANSIENT:
                param = int(rng.integers(1, 4))           # error count
            else:
                param = int(rng.integers(0, max(1, n_slots)))  # slot
            events.append(FaultEvent(epoch=epoch, kind=kind, param=param))
        return cls(events, seed=seed)

    def events_for_epoch(self, epoch: int) -> list[FaultEvent]:
        return self._by_epoch.get(epoch, [])

    def epoch_rng(self, epoch: int) -> np.random.Generator:
        """Fresh per-epoch RNG stream, independent of consumption order
        (checkpoint/resume must not shift later epochs' draws)."""
        return np.random.default_rng((self.seed, epoch))

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, n_events={len(self.events)})"


@dataclass(frozen=True)
class EccOutcome:
    """Aggregate result of pushing one epoch's transient errors through ECC."""

    corrected: int
    retried: int
    uncorrectable: int
    extra_cycles: int


class EccModel:
    """Detect/correct/retry model for transient DRAM read errors.

    Single-bit flips are corrected inline by SECDED at a fixed cycle
    cost. Detected-but-uncorrectable errors trigger controller re-reads
    (transient errors usually vanish on retry); an error that survives
    ``max_retries`` re-reads is declared uncorrectable and surfaced to
    the caller as a degradation event.
    """

    #: probability a transient error is single-bit (inline-correctable)
    P_CORRECTABLE = 0.85
    #: probability one re-read of a multi-bit transient comes back clean
    P_RETRY_OK = 0.7

    def __init__(self, config: ResilienceConfig):
        self.correction_cycles = config.ecc_correction_cycles
        self.retry_cycles = config.ecc_retry_cycles
        self.max_retries = config.max_ecc_retries

    def run(self, n_errors: int, rng: np.random.Generator) -> EccOutcome:
        corrected = retried = uncorrectable = 0
        extra = 0
        for _ in range(n_errors):
            if rng.random() < self.P_CORRECTABLE:
                corrected += 1
                extra += self.correction_cycles
                continue
            recovered = False
            for _attempt in range(self.max_retries):
                extra += self.retry_cycles
                if rng.random() < self.P_RETRY_OK:
                    recovered = True
                    break
            if recovered:
                retried += 1
            else:
                uncorrectable += 1
        return EccOutcome(corrected, retried, uncorrectable, extra)


# ----------------------------------------------------------------------
# file-at-rest faults for trace-robustness campaigns
# ----------------------------------------------------------------------
def truncate_trace_file(path: str | os.PathLike, drop_bytes: int) -> int:
    """Chop ``drop_bytes`` off the end of a trace file; returns new size."""
    if drop_bytes < 0:
        raise FaultInjectionError("drop_bytes must be >= 0")
    size = os.path.getsize(path)
    new_size = max(0, size - drop_bytes)
    with open(path, "r+b") as fh:
        fh.truncate(new_size)
    return new_size


def corrupt_trace_file(
    path: str | os.PathLike, offset: int, data: bytes = b"\xff"
) -> None:
    """Overwrite ``len(data)`` bytes at ``offset`` (header or body)."""
    size = os.path.getsize(path)
    if not 0 <= offset < size:
        raise FaultInjectionError(f"offset {offset} outside file of {size} bytes")
    with open(path, "r+b") as fh:
        fh.seek(offset)
        fh.write(data)
