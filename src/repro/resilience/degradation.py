"""Structured degradation events and the quarantine bookkeeping.

When the resilience machinery corrects, retries, or gives up on a
fault, it records a :class:`DegradationEvent` instead of printing or
raising. A campaign driver inspects the event stream afterwards: every
injected fault must be accounted for here (acceptance criterion of the
fault-campaign suite), and a quarantined run can be distinguished from
a clean one without diffing latencies.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass


#: canonical event kinds (free-form strings are allowed, these are the
#: ones the built-in machinery emits)
SWAP_FAILED = "swap-failed"
ABORT_RECOVERED = "abort-recovered"
AUDIT_FAILED = "audit-failed"
TABLE_REPAIRED = "table-repaired"
MIGRATION_QUARANTINED = "migration-quarantined"
WATCHDOG_BREACH = "watchdog-breach"
DRAM_CORRECTED = "dram-corrected"
DRAM_RETRIED = "dram-retried"
DRAM_UNCORRECTABLE = "dram-uncorrectable"
TRACE_SALVAGED = "trace-salvaged"
FRAME_RETIRED = "frame-retired"
RETIREMENT_SUPPRESSED = "retirement-suppressed"
VICTIM_REFRESHED = "victim-refreshed"
HAMMER_THROTTLED = "hammer-throttled"
ROW_DISTURB_FLIPS = "row-disturb-flips"


@dataclass(frozen=True)
class DegradationEvent:
    """One recovered-or-surfaced fault in a simulation run.

    ``time`` is the simulation cycle of the epoch boundary where the
    event was observed; ``epoch`` the running epoch index. ``recovered``
    is True when the system corrected or contained the fault and kept
    serving, False when functionality was permanently reduced (e.g. an
    uncorrectable DRAM error or the migration engine quarantining).
    """

    time: int
    epoch: int
    kind: str
    detail: str
    recovered: bool = True


def summarize_events(events: list[DegradationEvent]) -> dict[str, int]:
    """Event count per kind (for reports and campaign assertions)."""
    return dict(Counter(e.kind for e in events))
