"""Chunked binary trace I/O.

File format (little-endian):

* 16-byte header: magic ``b"RPTRACE1"`` + uint64 record count
* raw :data:`~repro.trace.record.TRACE_DTYPE` records

The writer appends chunks and patches the count on close; the reader
streams fixed-size chunks so multi-gigabyte traces never have to fit in
memory at once.
"""

from __future__ import annotations

import io
import os
import struct
from typing import Iterator

import numpy as np

from ..errors import TraceError
from .record import TRACE_DTYPE, TraceChunk

_MAGIC = b"RPTRACE1"
_HEADER = struct.Struct("<8sQ")


class TraceWriter:
    """Append-only trace file writer; use as a context manager."""

    def __init__(self, path: str | os.PathLike):
        self._path = os.fspath(path)
        self._fh: io.BufferedWriter | None = open(self._path, "wb")
        self._count = 0
        self._last_time: int | None = None
        self._fh.write(_HEADER.pack(_MAGIC, 0))

    def write(self, chunk: TraceChunk) -> None:
        if self._fh is None:
            raise TraceError("writer already closed")
        if len(chunk) == 0:
            return
        first = int(chunk.time[0])
        if self._last_time is not None and first < self._last_time:
            raise TraceError(
                f"chunk starts at t={first} before previous end t={self._last_time}"
            )
        self._last_time = int(chunk.time[-1])
        self._fh.write(chunk.records.tobytes())
        self._count += len(chunk)

    def close(self) -> None:
        if self._fh is None:
            return
        self._fh.seek(0)
        self._fh.write(_HEADER.pack(_MAGIC, self._count))
        self._fh.close()
        self._fh = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TraceReader:
    """Stream a trace file in chunks of ``chunk_records`` accesses."""

    def __init__(self, path: str | os.PathLike, chunk_records: int = 1 << 20):
        if chunk_records <= 0:
            raise TraceError("chunk_records must be positive")
        self._path = os.fspath(path)
        self._chunk_records = chunk_records
        with open(self._path, "rb") as fh:
            header = fh.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise TraceError(f"{self._path}: truncated header")
        magic, count = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise TraceError(f"{self._path}: bad magic {magic!r}")
        self.count = count
        expected = _HEADER.size + count * TRACE_DTYPE.itemsize
        actual = os.path.getsize(self._path)
        if actual != expected:
            raise TraceError(
                f"{self._path}: size {actual} does not match header count {count}"
            )

    def __len__(self) -> int:
        return self.count

    def __iter__(self) -> Iterator[TraceChunk]:
        with open(self._path, "rb") as fh:
            fh.seek(_HEADER.size)
            remaining = self.count
            while remaining > 0:
                n = min(remaining, self._chunk_records)
                raw = fh.read(n * TRACE_DTYPE.itemsize)
                records = np.frombuffer(raw, dtype=TRACE_DTYPE).copy()
                yield TraceChunk(records, validate=False)
                remaining -= n

    def read_all(self) -> TraceChunk:
        chunks = list(self)
        if not chunks:
            return TraceChunk(np.empty(0, dtype=TRACE_DTYPE), validate=False)
        return TraceChunk(np.concatenate([c.records for c in chunks]), validate=False)


def write_trace(path: str | os.PathLike, chunk: TraceChunk) -> None:
    """Write a whole trace in one call."""
    with TraceWriter(path) as w:
        w.write(chunk)


def read_trace(path: str | os.PathLike) -> TraceChunk:
    """Read a whole trace into memory."""
    return TraceReader(path).read_all()
