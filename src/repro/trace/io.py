"""Chunked binary trace I/O.

File format (little-endian):

* 16-byte header: magic ``b"RPTRACE1"`` + uint64 record count
* raw :data:`~repro.trace.record.TRACE_DTYPE` records

The writer appends chunks and patches the count on close; the reader
streams fixed-size chunks so multi-gigabyte traces never have to fit in
memory at once.

Robustness: :meth:`TraceWriter.close` fsyncs the data before patching
the header and patches it even when the caller's ``with`` block raised,
so a crashed producer leaves a readable file covering every record it
managed to write. :class:`TraceReader` cross-checks the header count
against the file size; ``salvage=True`` recovers the whole trailing
records of a truncated/over-long file instead of raising.
"""

from __future__ import annotations

import io
import os
import struct
from typing import Iterator

import numpy as np

from ..errors import TraceError
from .record import TRACE_DTYPE, TraceChunk

_MAGIC = b"RPTRACE1"
_HEADER = struct.Struct("<8sQ")


class TraceWriter:
    """Append-only trace file writer; use as a context manager."""

    def __init__(self, path: str | os.PathLike):
        self._path = os.fspath(path)
        self._fh: io.BufferedWriter | None = open(self._path, "wb")
        self._count = 0
        self._last_time: int | None = None
        self._fh.write(_HEADER.pack(_MAGIC, 0))

    def write(self, chunk: TraceChunk) -> None:
        if self._fh is None:
            raise TraceError("writer already closed")
        if len(chunk) == 0:
            return
        first = int(chunk.time[0])
        if self._last_time is not None and first < self._last_time:
            raise TraceError(
                f"chunk starts at t={first} before previous end t={self._last_time}"
            )
        self._last_time = int(chunk.time[-1])
        self._fh.write(chunk.records.tobytes())
        self._count += len(chunk)

    def sync(self) -> None:
        """Flush buffered records to stable storage (data only — the
        header still says 0 until :meth:`close`; a reader can recover
        the records with ``salvage=True``)."""
        if self._fh is None:
            raise TraceError("writer already closed")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Patch the record count into the header and close.

        Crash-safe ordering: the data is flushed and fsynced *before*
        the header seek/patch, so the count never claims records that
        are not durably on disk. The close itself is finally-protected —
        even if the fsync or header patch fails, the descriptor is
        released and the writer is unusable afterwards.
        """
        if self._fh is None:
            return
        fh, self._fh = self._fh, None
        try:
            fh.flush()
            os.fsync(fh.fileno())
            fh.seek(0)
            fh.write(_HEADER.pack(_MAGIC, self._count))
            fh.flush()
            os.fsync(fh.fileno())
        finally:
            fh.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TraceReader:
    """Stream a trace file in chunks of ``chunk_records`` accesses.

    The header's record count is validated against the file size. On
    mismatch the default is a :class:`~repro.errors.TraceError` naming
    the offending byte offsets; with ``salvage=True`` the reader instead
    serves every *whole* record present in the data section (dropping a
    torn trailing partial record) — :attr:`salvaged` tells how the count
    was derived and :attr:`dropped_bytes` how much tail was discarded.
    """

    def __init__(self, path: str | os.PathLike, chunk_records: int = 1 << 20,
                 *, salvage: bool = False):
        if chunk_records <= 0:
            raise TraceError("chunk_records must be positive")
        self._path = os.fspath(path)
        self._chunk_records = chunk_records
        self.salvaged = False
        self.dropped_bytes = 0
        with open(self._path, "rb") as fh:
            header = fh.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise TraceError(
                f"{self._path}: truncated header "
                f"({len(header)} of {_HEADER.size} bytes)"
            )
        magic, count = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise TraceError(f"{self._path}: bad magic {magic!r}")
        self.count = count
        itemsize = TRACE_DTYPE.itemsize
        expected = _HEADER.size + count * itemsize
        actual = os.path.getsize(self._path)
        if actual != expected:
            if not salvage:
                raise TraceError(
                    f"{self._path}: header claims {count} records "
                    f"(= bytes [{_HEADER.size}, {expected})) but the file "
                    f"is {actual} bytes; pass salvage=True to recover the "
                    f"{max(0, actual - _HEADER.size) // itemsize} whole "
                    f"records present"
                )
            data_bytes = max(0, actual - _HEADER.size)
            self.count = data_bytes // itemsize
            self.dropped_bytes = data_bytes - self.count * itemsize
            self.salvaged = True

    def __len__(self) -> int:
        return self.count

    def __iter__(self) -> Iterator[TraceChunk]:
        with open(self._path, "rb") as fh:
            fh.seek(_HEADER.size)
            remaining = self.count
            while remaining > 0:
                n = min(remaining, self._chunk_records)
                raw = fh.read(n * TRACE_DTYPE.itemsize)
                if len(raw) != n * TRACE_DTYPE.itemsize:
                    raise TraceError(
                        f"{self._path}: short read at byte "
                        f"{fh.tell() - len(raw)} (file changed under us?)"
                    )
                # frombuffer views are read-only and pin `raw`; the copy
                # detaches a writable chunk and frees the raw bytes
                records = np.frombuffer(raw, dtype=TRACE_DTYPE).copy()  # repro-lint: disable=hot-path-copy
                yield TraceChunk(records, validate=False)
                remaining -= n

    def read_all(self) -> TraceChunk:
        chunks = list(self)
        if not chunks:
            return TraceChunk(np.empty(0, dtype=TRACE_DTYPE), validate=False)
        return TraceChunk(np.concatenate([c.records for c in chunks]), validate=False)


def open_trace_mmap(path: str | os.PathLike) -> TraceChunk:
    """Zero-copy :class:`TraceChunk` backed by a memory-mapped file.

    The records array is an ``np.memmap`` view (read-only) of the data
    section, so opening a multi-gigabyte trace costs no RSS up front and
    concurrent processes share one page-cache copy. The header count
    must match the file size exactly — a torn file is an error here, not
    a salvage candidate, because mmap consumers (the trace cache) only
    ever see atomically-published files.
    """
    path = os.fspath(path)
    with open(path, "rb") as fh:
        header = fh.read(_HEADER.size)
    if len(header) != _HEADER.size:
        raise TraceError(
            f"{path}: truncated header ({len(header)} of {_HEADER.size} bytes)"
        )
    magic, count = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise TraceError(f"{path}: bad magic {magic!r}")
    expected = _HEADER.size + count * TRACE_DTYPE.itemsize
    actual = os.path.getsize(path)
    if actual != expected:
        raise TraceError(
            f"{path}: header claims {count} records ({expected} bytes) but "
            f"the file is {actual} bytes; refusing to mmap a torn file"
        )
    if count == 0:
        return TraceChunk(np.empty(0, dtype=TRACE_DTYPE), validate=False)
    records = np.memmap(
        path, dtype=TRACE_DTYPE, mode="r", offset=_HEADER.size, shape=(count,)
    )
    return TraceChunk(records, validate=False)


def write_trace(path: str | os.PathLike, chunk: TraceChunk) -> None:
    """Write a whole trace in one call."""
    with TraceWriter(path) as w:
        w.write(chunk)


def read_trace(path: str | os.PathLike, *, salvage: bool = False) -> TraceChunk:
    """Read a whole trace into memory."""
    return TraceReader(path, salvage=salvage).read_all()
