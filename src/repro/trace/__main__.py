"""Trace tooling CLI.

    python -m repro.trace gen pgbench out.rptrace -n 1000000 --footprint 2GB
    python -m repro.trace stats out.rptrace
    python -m repro.trace head out.rptrace -n 10
"""

from __future__ import annotations

import argparse
import sys

from ..units import format_size, parse_size
from ..workloads.registry import available_workloads, generate_trace
from .io import TraceReader, TraceWriter
from .stats import access_skew, compute_stats


def _cmd_gen(args: argparse.Namespace) -> int:
    footprint = parse_size(args.footprint) if args.footprint else None
    chunk = generate_trace(args.workload, args.n, seed=args.seed,
                           footprint_bytes=footprint)
    with TraceWriter(args.path) as writer:
        writer.write(chunk)
    print(f"wrote {len(chunk)} accesses to {args.path}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    reader = TraceReader(args.path)
    chunk = reader.read_all()
    stats = compute_stats(chunk)
    print(f"accesses:   {stats.n_accesses}")
    print(f"footprint:  {format_size(max(1, stats.footprint_bytes))} "
          f"({stats.unique_pages} x {format_size(stats.page_bytes)} pages)")
    print(f"writes:     {stats.write_fraction:.1%}")
    print(f"duration:   {stats.duration_cycles} cycles "
          f"({stats.duration_cycles / max(1, stats.n_accesses):.1f} cycles/access)")
    print(f"skew:       {access_skew(chunk, stats.page_bytes):.1%} of accesses "
          f"in the hottest 10% of pages")
    return 0


def _cmd_head(args: argparse.Namespace) -> int:
    reader = TraceReader(args.path, chunk_records=args.n)
    for chunk in reader:
        for rec in chunk.records[: args.n]:
            rw = "W" if rec["rw"] else "R"
            print(f"t={rec['time']:<12} cpu={rec['cpu']} {rw} 0x{rec['addr']:012x}")
        break
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.trace", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("gen", help="generate a workload trace file")
    gen.add_argument("workload", choices=available_workloads())
    gen.add_argument("path")
    gen.add_argument("-n", type=int, default=1_000_000, help="accesses")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--footprint", default=None, help='e.g. "2GB" (default: paper value)')
    gen.set_defaults(fn=_cmd_gen)

    stats = sub.add_parser("stats", help="summarise a trace file")
    stats.add_argument("path")
    stats.set_defaults(fn=_cmd_stats)

    head = sub.add_parser("head", help="print the first records")
    head.add_argument("path")
    head.add_argument("-n", type=int, default=10)
    head.set_defaults(fn=_cmd_head)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
