"""Streaming trace protocol: epoch-aligned chunk iterators.

A *trace stream* is any iterable of :class:`TraceChunk` whose chunks,
concatenated in order, form one valid time-ordered trace. Feeding a
stream to :meth:`repro.core.simulator.EpochSimulator.run_stream` keeps
peak memory at O(chunk) instead of O(trace) — the simulator's epoch
segmentation restarts at every chunk boundary, so a stream reproduces
the whole-trace run exactly **iff every chunk (except the last) holds a
multiple of ``swap_interval`` accesses** (chunk boundaries then coincide
with epoch boundaries). :func:`aligned_chunk_size` picks such a size;
:func:`rechunk` re-windows an arbitrary stream onto one.

The generator side of the protocol is
:meth:`repro.workloads.base.SyntheticWorkload.stream`, which produces
chunks directly without ever materializing the full trace.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from ..errors import TraceError
from .record import TRACE_DTYPE, TraceChunk

#: protocol alias — anything that yields TraceChunks in time order
TraceStream = Iterable[TraceChunk]


def aligned_chunk_size(chunk_accesses: int, swap_interval: int) -> int:
    """Round ``chunk_accesses`` up to a whole number of epochs."""
    if chunk_accesses <= 0 or swap_interval <= 0:
        raise TraceError("chunk_accesses and swap_interval must be positive")
    epochs = -(-chunk_accesses // swap_interval)
    return epochs * swap_interval


def iter_chunks(trace: TraceChunk, chunk_accesses: int) -> Iterator[TraceChunk]:
    """Zero-copy chunk views over an already materialized trace.

    Each yielded chunk is a slice *view* (the :class:`TraceChunk`
    aliasing contract), so this adapter adds no memory beyond the
    trace itself — it exists to feed materialized traces through the
    same streaming entry points.
    """
    if chunk_accesses <= 0:
        raise TraceError("chunk_accesses must be positive")
    n = len(trace)
    for start in range(0, n, chunk_accesses):
        yield trace[start:min(start + chunk_accesses, n)]


def rechunk(stream: TraceStream, chunk_accesses: int) -> Iterator[TraceChunk]:
    """Re-window a stream onto exactly ``chunk_accesses``-sized chunks.

    Buffers at most one source chunk plus one output chunk, so memory
    stays O(max chunk). The access sequence is unchanged — only the
    window boundaries move (use with :func:`aligned_chunk_size` to make
    an arbitrary stream epoch-aligned).
    """
    if chunk_accesses <= 0:
        raise TraceError("chunk_accesses must be positive")
    pending: list[np.ndarray] = []
    buffered = 0
    for chunk in stream:
        records = chunk.records
        while records.shape[0]:
            take = min(chunk_accesses - buffered, records.shape[0])
            pending.append(records[:take])
            buffered += take
            records = records[take:]
            if buffered == chunk_accesses:
                # single-part windows stay zero-copy views (slices of a
                # structured array are contiguous); multi-part windows
                # are freshly concatenated, hence already contiguous
                out = pending[0] if len(pending) == 1 else np.concatenate(pending)
                yield TraceChunk(out, validate=False)
                pending = []
                buffered = 0
    if buffered:
        out = pending[0] if len(pending) == 1 else np.concatenate(pending)
        yield TraceChunk(out, validate=False)


def materialize(stream: TraceStream) -> TraceChunk:
    """Concatenate a whole stream into one :class:`TraceChunk`.

    O(trace) memory by definition — for tests and for consumers that
    genuinely need random access (the streaming-equivalence oracle).
    """
    parts = [chunk.records for chunk in stream]
    if not parts:
        return TraceChunk(np.empty(0, dtype=TRACE_DTYPE), validate=False)
    return TraceChunk(np.concatenate(parts), validate=False)
