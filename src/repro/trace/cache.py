"""Cross-process content-addressed trace cache.

Campaign workers simulate the same (workload, n, seed, footprint) traces
over and over. Generation is deterministic but expensive, so the cache
publishes each generated trace once, on disk, keyed by a sha256 of its
canonical parameters; every other process — concurrent or later — maps
the published file zero-copy (:func:`~repro.trace.io.open_trace_mmap`)
instead of regenerating.

Concurrency protocol (readers need no locks):

* **Atomic publish** — the writer generates into a private temp file in
  the cache directory and ``os.replace``\\ s it onto the final name. A
  reader therefore sees either a complete, valid file or no file at
  all; a crashed writer leaves only a ``*.tmp-*`` orphan that is never
  opened as a cache entry, and a corrupt entry (torn header/size) is
  treated as a miss and regenerated over.
* **Generation lock** — writers race on an ``O_CREAT | O_EXCL`` lock
  file so each trace is generated once even when several workers miss
  simultaneously; losers poll for the winner's publish. A lock older
  than ``stale_lock_s`` (its holder crashed) is broken.
* **Audit trail** — every actual generation appends one line to
  ``generation.log`` (``O_APPEND``, single short write, so concurrent
  lines never interleave). Tests assert "each trace generated exactly
  once across the campaign" from this log.

The cache directory is configured with the ``REPRO_TRACE_CACHE``
environment variable (see :func:`shared_cache`); the campaign
supervisor's ``trace_cache_dir`` parameter exports it to workers.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from typing import Callable

from ..errors import TraceError
from .io import TraceWriter, open_trace_mmap
from .record import TraceChunk

#: environment variable naming the shared cache directory
TRACE_CACHE_ENV = "REPRO_TRACE_CACHE"

_LOG_NAME = "generation.log"


def canonical_key(params: dict) -> str:
    """Stable content key of a parameter dict (sha256 of canonical JSON)."""
    blob = json.dumps(params, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


class TraceCache:
    """On-disk, multi-process trace store keyed by generation parameters.

    ``hits`` / ``misses`` count this process's lookups: a hit mapped an
    already-published file, a miss ran the generator (exactly one
    process takes the miss for any given key).
    """

    def __init__(self, root: str | os.PathLike, *,
                 stale_lock_s: float = 300.0,
                 poll_interval_s: float = 0.02,
                 wait_timeout_s: float = 600.0):
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.stale_lock_s = stale_lock_s
        self.poll_interval_s = poll_interval_s
        self.wait_timeout_s = wait_timeout_s
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def path_for(self, params: dict) -> str:
        return os.path.join(self.root, canonical_key(params) + ".trace")

    def get_or_create(
        self, params: dict, generate: Callable[[], TraceChunk]
    ) -> TraceChunk:
        """Return the trace for ``params``, generating it at most once.

        The returned chunk is always a read-only memmap view of the
        published file — including for the generating process — so a
        campaign's working set of traces is shared page-cache, not
        per-process heap.
        """
        path = self.path_for(params)
        chunk = self._try_open(path)
        if chunk is not None:
            self.hits += 1
            return chunk

        lock = path + ".lock"
        deadline = time.monotonic() + self.wait_timeout_s
        while True:
            chunk = self._try_open(path)
            if chunk is not None:
                self.hits += 1
                return chunk
            if self._acquire(lock):
                try:
                    # double-check: the previous holder may have
                    # published between our miss and our acquire
                    chunk = self._try_open(path)
                    if chunk is not None:
                        self.hits += 1
                        return chunk
                    self.misses += 1
                    self._publish(path, generate())
                    self._log_generation(params)
                    return open_trace_mmap(path)
                finally:
                    try:
                        os.unlink(lock)
                    except OSError:
                        pass
            if time.monotonic() > deadline:
                raise TraceError(
                    f"timed out after {self.wait_timeout_s:.0f}s waiting for "
                    f"another process to publish {path} (lock: {lock})"
                )
            time.sleep(self.poll_interval_s)

    def generation_count(self, params: dict | None = None) -> int:
        """Lines in the audit log — total, or for one key."""
        log = os.path.join(self.root, _LOG_NAME)
        if not os.path.exists(log):
            return 0
        want = canonical_key(params) if params is not None else None
        count = 0
        with open(log, "r", encoding="utf-8") as fh:
            for line in fh:
                if not line.strip():
                    continue
                if want is None or json.loads(line)["key"] == want:
                    count += 1
        return count

    # ------------------------------------------------------------------
    def _try_open(self, path: str) -> TraceChunk | None:
        try:
            return open_trace_mmap(path)
        except FileNotFoundError:
            return None
        except TraceError:
            # torn/corrupt entry: impossible via atomic publish, but a
            # damaged cache directory must degrade to regeneration, not
            # wedge every consumer
            return None

    def _acquire(self, lock: str) -> bool:
        try:
            fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            try:
                age = time.time() - os.path.getmtime(lock)  # repro-lint: disable=wall-clock - lock staleness vs file mtime, never feeds results
            except OSError:
                return False  # lock vanished; caller retries
            if age > self.stale_lock_s:
                # the holder crashed mid-generation; break its lock and
                # let the retry loop race for a fresh one
                try:
                    os.unlink(lock)
                except OSError:
                    pass
            return False
        try:
            os.write(fd, f"{os.getpid()}\n".encode())
        finally:
            os.close(fd)
        return True

    def _publish(self, path: str, chunk: TraceChunk) -> None:
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=os.path.basename(path) + ".tmp-"
        )
        os.close(fd)
        try:
            with TraceWriter(tmp) as w:
                w.write(chunk)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _log_generation(self, params: dict) -> None:
        line = json.dumps(
            {"key": canonical_key(params), "params": params},
            sort_keys=True, default=str,
        ) + "\n"
        fd = os.open(
            os.path.join(self.root, _LOG_NAME),
            os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644,
        )
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)


#: one instance per directory so hit/miss counters aggregate in-process
_INSTANCES: dict[str, TraceCache] = {}


def shared_cache() -> TraceCache | None:
    """The process-wide cache named by ``REPRO_TRACE_CACHE``, if any."""
    root = os.environ.get(TRACE_CACHE_ENV, "").strip()
    if not root:
        return None
    cache = _INSTANCES.get(root)
    if cache is None:
        cache = _INSTANCES[root] = TraceCache(root)
    return cache
