"""Memory-trace substrate.

A trace is a time-ordered sequence of main-memory accesses, each with a
physical address, originating CPU, timestamp (core cycles) and
read/write flag — exactly the record the paper collects from COTSon
(Section IV). Traces are held in numpy structured arrays
(:class:`~repro.trace.record.TraceChunk`) and can be streamed to/from
disk in chunks.
"""

from .record import TRACE_DTYPE, READ, WRITE, TraceChunk, make_chunk
from .io import TraceReader, TraceWriter, read_trace, write_trace
from .stats import TraceStats, compute_stats, footprint_bytes
from .filters import concat, downsample, interleave, time_window
from .stream import (
    TraceStream,
    aligned_chunk_size,
    iter_chunks,
    materialize,
    rechunk,
)

__all__ = [
    "TraceStream",
    "aligned_chunk_size",
    "iter_chunks",
    "materialize",
    "rechunk",
    "TRACE_DTYPE",
    "READ",
    "WRITE",
    "TraceChunk",
    "make_chunk",
    "TraceReader",
    "TraceWriter",
    "read_trace",
    "write_trace",
    "TraceStats",
    "compute_stats",
    "footprint_bytes",
    "concat",
    "downsample",
    "interleave",
    "time_window",
]
