"""Trace statistics: footprint, read/write mix, page-touch histograms."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import format_size
from .record import WRITE, TraceChunk


@dataclass(frozen=True)
class TraceStats:
    """Summary of one trace (or a concatenation of chunks)."""

    n_accesses: int
    n_writes: int
    footprint_bytes: int
    unique_pages: int
    page_bytes: int
    duration_cycles: int

    @property
    def write_fraction(self) -> float:
        return self.n_writes / self.n_accesses if self.n_accesses else 0.0

    def describe(self) -> str:
        return (
            f"{self.n_accesses} accesses, footprint {format_size(max(self.footprint_bytes, 1))}, "
            f"{self.write_fraction:.0%} writes, {self.duration_cycles} cycles"
        )


def footprint_bytes(chunk: TraceChunk, page_bytes: int = 4096) -> int:
    """Memory footprint = unique pages touched x page size.

    This mirrors how Table I footprints are measured (resident pages,
    not max address).
    """
    if len(chunk) == 0:
        return 0
    pages = np.unique(chunk.addr // page_bytes)
    return int(pages.size) * page_bytes


def compute_stats(chunk: TraceChunk, page_bytes: int = 4096) -> TraceStats:
    """Compute :class:`TraceStats` in one vectorised pass."""
    n = len(chunk)
    if n == 0:
        return TraceStats(0, 0, 0, 0, page_bytes, 0)
    pages = np.unique(chunk.addr // page_bytes)
    return TraceStats(
        n_accesses=n,
        n_writes=int((chunk.rw == WRITE).sum()),
        footprint_bytes=int(pages.size) * page_bytes,
        unique_pages=int(pages.size),
        page_bytes=page_bytes,
        duration_cycles=int(chunk.time[-1] - chunk.time[0]),
    )


def page_access_counts(chunk: TraceChunk, page_bytes: int) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(page_ids, counts)`` sorted by descending count."""
    pages, counts = np.unique(chunk.addr // page_bytes, return_counts=True)
    order = np.argsort(counts)[::-1]
    return pages[order], counts[order]


def access_skew(chunk: TraceChunk, page_bytes: int, top_fraction: float = 0.1) -> float:
    """Fraction of accesses landing in the hottest ``top_fraction`` of pages.

    A quick locality metric: ~``top_fraction`` for a uniform trace,
    approaching 1.0 for a highly skewed one.
    """
    _, counts = page_access_counts(chunk, page_bytes)
    if counts.size == 0:
        return 0.0
    k = max(1, int(np.ceil(counts.size * top_fraction)))
    return float(counts[:k].sum() / counts.sum())
