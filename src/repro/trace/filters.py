"""Trace transformations: windows, downsampling, multiprogrammed merges.

``interleave`` is how the paper's *SPEC2006 Mixture* workload is formed:
four single-program traces (gcc, mcf, perl, zeusmp) merged by timestamp
into one multiprogrammed stream, each given a disjoint address slice.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import TraceError
from .record import TRACE_DTYPE, TraceChunk


def concat(chunks: Sequence[TraceChunk]) -> TraceChunk:
    """Concatenate already time-ordered chunks into one."""
    if not chunks:
        return TraceChunk(np.empty(0, dtype=TRACE_DTYPE), validate=False)
    out = TraceChunk(np.concatenate([c.records for c in chunks]))
    return out


def time_window(chunk: TraceChunk, start: int, end: int) -> TraceChunk:
    """Records with ``start <= time < end`` (binary search — O(log n))."""
    if end < start:
        raise TraceError(f"empty window [{start}, {end})")
    lo = int(np.searchsorted(chunk.time, start, side="left"))
    hi = int(np.searchsorted(chunk.time, end, side="left"))
    return chunk[lo:hi]


def downsample(chunk: TraceChunk, keep_every: int) -> TraceChunk:
    """Keep every ``keep_every``-th record (systematic sampling)."""
    if keep_every <= 0:
        raise TraceError("keep_every must be positive")
    return chunk[::keep_every]


def interleave(
    chunks: Sequence[TraceChunk],
    *,
    cpu_ids: Sequence[int] | None = None,
    offsets: Sequence[int] | None = None,
) -> TraceChunk:
    """Merge per-program traces into one multiprogrammed trace.

    Parameters
    ----------
    chunks:
        One trace per program, each time-ordered.
    cpu_ids:
        CPU id to stamp on each program's records (defaults to 0,1,2,...).
    offsets:
        Byte offset added to each program's addresses so their footprints
        occupy disjoint regions (defaults to 0 for all — caller's choice).

    Records are merged by timestamp with a stable sort, so simultaneous
    accesses keep program order.
    """
    if not chunks:
        return TraceChunk(np.empty(0, dtype=TRACE_DTYPE), validate=False)
    if cpu_ids is None:
        cpu_ids = list(range(len(chunks)))
    if offsets is None:
        offsets = [0] * len(chunks)
    if not (len(chunks) == len(cpu_ids) == len(offsets)):
        raise TraceError("chunks, cpu_ids and offsets must have equal length")

    parts = []
    for chunk, cpu, off in zip(chunks, cpu_ids, offsets):
        # detach before stamping cpu/addr — the caller's chunk must
        # survive unmodified
        rec = chunk.records.copy()  # repro-lint: disable=hot-path-copy
        rec["cpu"] = cpu
        rec["addr"] += off
        parts.append(rec)
    merged = np.concatenate(parts)
    merged = merged[np.argsort(merged["time"], kind="stable")]
    return TraceChunk(merged)


def remap_into(chunk: TraceChunk, region_bytes: int, base: int = 0) -> TraceChunk:
    """Fold addresses into ``[base, base + region_bytes)`` preserving locality.

    Used to fit a synthetic footprint into a scaled memory space: page
    identity is preserved modulo the region, so hot pages stay hot.
    """
    if region_bytes <= 0:
        raise TraceError("region_bytes must be positive")
    rec = chunk.records.copy()
    rec["addr"] = base + (rec["addr"] % region_bytes)
    return TraceChunk(rec, validate=False)
