"""Trace record layout.

One record per main-memory access (post-LLC, as in the paper's
trace-based methodology): 48-bit physical address, CPU id, cycle
timestamp, and read/write flag.
"""

from __future__ import annotations

import numpy as np

from ..errors import TraceError

#: read/write flag values
READ: int = 0
WRITE: int = 1

#: structured dtype of one access record
TRACE_DTYPE = np.dtype(
    [
        ("addr", np.int64),   # physical byte address
        ("cpu", np.int16),    # originating core
        ("time", np.int64),   # core-cycle timestamp
        ("rw", np.int8),      # READ or WRITE
    ]
)


class TraceChunk:
    """A contiguous, time-ordered slice of a memory trace.

    Thin wrapper over a structured numpy array providing validation and
    convenient field views (views, not copies).
    """

    __slots__ = ("records",)

    def __init__(self, records: np.ndarray, *, validate: bool = True):
        if records.dtype != TRACE_DTYPE:
            raise TraceError(f"expected dtype {TRACE_DTYPE}, got {records.dtype}")
        self.records = records
        if validate:
            self.validate()

    # -- field views ------------------------------------------------------
    @property
    def addr(self) -> np.ndarray:
        return self.records["addr"]

    @property
    def cpu(self) -> np.ndarray:
        return self.records["cpu"]

    @property
    def time(self) -> np.ndarray:
        return self.records["time"]

    @property
    def rw(self) -> np.ndarray:
        return self.records["rw"]

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, key) -> "TraceChunk":
        """Sub-chunk by slice or mask (never a scalar index).

        Aliasing contract: a **slice** key returns a zero-copy *view*
        over the same records — mutating the parent's records mutates
        the slice and vice versa (this is what makes the epoch loop
        allocation-free). Mask / fancy-index keys return a fresh copy
        (plain numpy semantics). A caller that intends to mutate a
        sliced chunk must take an explicit ``.copy()`` first.
        """
        if isinstance(key, (int, np.integer)):
            raise TraceError("index a TraceChunk with slices/masks, not scalars")
        return TraceChunk(self.records[key], validate=False)

    def __eq__(self, other) -> bool:
        return isinstance(other, TraceChunk) and np.array_equal(self.records, other.records)

    def validate(self) -> None:
        """Check invariants: addresses non-negative, time non-decreasing,
        rw flags in {READ, WRITE}."""
        r = self.records
        if len(r) == 0:
            return
        if r["addr"].min() < 0:
            raise TraceError("negative physical address in trace")
        if np.any(np.diff(r["time"]) < 0):
            raise TraceError("trace timestamps are not non-decreasing")
        bad = (r["rw"] != READ) & (r["rw"] != WRITE)
        if bad.any():
            raise TraceError("rw flag must be READ(0) or WRITE(1)")

    def copy(self) -> "TraceChunk":
        return TraceChunk(self.records.copy(), validate=False)

    def __repr__(self) -> str:
        n = len(self)
        if n == 0:
            return "TraceChunk(empty)"
        return (
            f"TraceChunk(n={n}, time=[{self.time[0]}..{self.time[-1]}], "
            f"writes={int((self.rw == WRITE).sum())})"
        )


def make_chunk(addr, time=None, cpu=0, rw=READ, *, validate: bool = True) -> TraceChunk:
    """Build a :class:`TraceChunk` from field arrays (broadcasting scalars).

    ``time`` defaults to ``arange(n)`` — one access per cycle.
    """
    addr = np.asarray(addr, dtype=np.int64)
    n = addr.shape[0]
    records = np.empty(n, dtype=TRACE_DTYPE)
    records["addr"] = addr
    records["time"] = np.arange(n, dtype=np.int64) if time is None else np.asarray(time, dtype=np.int64)
    records["cpu"] = np.broadcast_to(np.asarray(cpu, dtype=np.int16), (n,))
    records["rw"] = np.broadcast_to(np.asarray(rw, dtype=np.int8), (n,))
    return TraceChunk(records, validate=validate)
