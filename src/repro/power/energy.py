"""Energy accounting per Section IV-D [21].

Constants: 5 pJ/bit for the DRAM core access (both regions),
1.66 pJ/bit for the on-package interconnect, 13 pJ/bit for the
off-package interconnect. An access moves one cache line; a migration
moves whole macro pages, paying DRAM core at both ends plus the
interconnect(s) it crosses. Fig 16 normalises the hybrid system's total
energy to the off-package-only system on the same trace — the paper's
minimum observed overhead is ~2x at (100K interval, 4 KB pages).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import PowerConfig
from ..core.simulator import SimulationResult
from ..errors import ConfigError


@dataclass(frozen=True)
class PowerReport:
    """Energy breakdown of one simulated run (picojoules)."""

    demand_energy_pj: float
    migration_energy_pj: float
    baseline_energy_pj: float     # same accesses, off-package only

    @property
    def total_pj(self) -> float:
        return self.demand_energy_pj + self.migration_energy_pj

    @property
    def normalized(self) -> float:
        """Fig 16's y-axis: hybrid total / off-package-only total."""
        if self.baseline_energy_pj <= 0:
            raise ConfigError("baseline energy must be positive")
        return self.total_pj / self.baseline_energy_pj


class MemoryEnergyModel:
    """Price accesses and migrations in picojoules."""

    def __init__(self, config: PowerConfig | None = None):
        self.config = config or PowerConfig()

    def access_energy_pj(self, *, onpkg: bool, n_accesses: int = 1) -> float:
        c = self.config
        bits = 8 * c.access_bytes * n_accesses
        link = c.onpkg_link_pj_per_bit if onpkg else c.offpkg_link_pj_per_bit
        return bits * (c.dram_core_pj_per_bit + link)

    def migration_energy_pj(self, *, cross_boundary_bytes: int, onchip_bytes: int = 0) -> float:
        """A migrated byte is read from one DRAM and written to another
        (2x core) and traverses both interconnects when it crosses the
        package boundary (the data leaves one region and enters the other
        through the controller)."""
        c = self.config
        cross_bits = 8 * cross_boundary_bytes
        on_bits = 8 * onchip_bytes
        cross = cross_bits * (
            2 * c.dram_core_pj_per_bit + c.onpkg_link_pj_per_bit + c.offpkg_link_pj_per_bit
        )
        onchip = on_bits * (2 * c.dram_core_pj_per_bit + 2 * c.onpkg_link_pj_per_bit)
        return cross + onchip

    def background_energy_pj(
        self, *, capacity_gb: float, duration_cycles: int, frequency_hz: float = 3.2e9
    ) -> float:
        """Refresh/standby energy over a run (0 unless configured)."""
        if self.config.background_mw_per_gb <= 0 or duration_cycles <= 0:
            return 0.0
        seconds = duration_cycles / frequency_hz
        milliwatts = self.config.background_mw_per_gb * capacity_gb
        return milliwatts * seconds * 1e9  # mW*s = mJ = 1e9 pJ

    def report(
        self,
        result: SimulationResult,
        *,
        total_capacity_gb: float = 0.0,
        frequency_hz: float = 3.2e9,
    ) -> PowerReport:
        """Energy of one heterogeneous run vs its off-package-only twin.

        ``total_capacity_gb`` (with a non-zero
        :attr:`PowerConfig.background_mw_per_gb`) adds background power —
        identical capacity on both sides, but it dilutes the relative
        migration overhead (see ``benchmarks/bench_refresh.py``).
        """
        demand = self.access_energy_pj(
            onpkg=True, n_accesses=result.onpkg_accesses
        ) + self.access_energy_pj(onpkg=False, n_accesses=result.offpkg_accesses)
        onchip_bytes = result.migrated_bytes - result.cross_boundary_migrated_bytes
        migration = self.migration_energy_pj(
            cross_boundary_bytes=result.cross_boundary_migrated_bytes,
            onchip_bytes=max(0, onchip_bytes),
        )
        background = self.background_energy_pj(
            capacity_gb=total_capacity_gb,
            duration_cycles=result.duration_cycles,
            frequency_hz=frequency_hz,
        )
        baseline = (
            self.access_energy_pj(onpkg=False, n_accesses=result.n_accesses) + background
        )
        return PowerReport(
            demand_energy_pj=demand + background,
            migration_energy_pj=migration,
            baseline_energy_pj=baseline,
        )
