"""Memory power model (Section IV-D, Fig 16)."""

from .energy import MemoryEnergyModel, PowerReport

__all__ = ["MemoryEnergyModel", "PowerReport"]
