"""Physical-address arithmetic: macro pages, sub-blocks, region decode.

The paper assumes a 48-bit physical address. With 4 MB macro pages the
low 22 bits are the in-page offset and the upper 26 bits are the macro
page index (Fig 6). The memory controller decodes the region (on- vs
off-package) from the MSBs of the *machine* address: machine pages
``[0, n_onpkg_pages)`` live on package, the rest on the DIMMs.

Everything here is vectorised: functions accept scalars or numpy arrays
of addresses and return the matching shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import AddressError, ConfigError
from .units import is_power_of_two, log2_exact

#: Width of the physical address space assumed by the paper (Fig 6).
PHYSICAL_ADDRESS_BITS = 48


@dataclass(frozen=True)
class AddressMap:
    """Geometry of the heterogeneous memory space.

    Parameters
    ----------
    total_bytes:
        Capacity of the whole main memory (on- plus off-package).
    onpkg_bytes:
        Capacity of the on-package region. Machine pages below
        ``onpkg_bytes / macro_page_bytes`` are on-package.
    macro_page_bytes:
        Migration granularity (4 KB .. 4 MB in the paper).
    subblock_bytes:
        Live-migration transfer unit (4 KB in the paper).
    """

    total_bytes: int
    onpkg_bytes: int
    macro_page_bytes: int
    subblock_bytes: int = 4096

    def __post_init__(self) -> None:
        for name in ("total_bytes", "onpkg_bytes", "macro_page_bytes", "subblock_bytes"):
            v = getattr(self, name)
            if not is_power_of_two(v):
                raise ConfigError(f"{name}={v} must be a power of two")
        if self.onpkg_bytes >= self.total_bytes:
            raise ConfigError(
                "on-package capacity must be smaller than total memory: "
                f"{self.onpkg_bytes} >= {self.total_bytes}"
            )
        if self.macro_page_bytes > self.onpkg_bytes:
            raise ConfigError("macro page cannot exceed on-package capacity")
        if self.subblock_bytes > self.macro_page_bytes:
            raise ConfigError("sub-block cannot exceed the macro page")
        if self.total_bytes > (1 << PHYSICAL_ADDRESS_BITS):
            raise ConfigError("total memory exceeds the 48-bit physical space")

    # -- derived geometry ------------------------------------------------
    @property
    def offset_bits(self) -> int:
        """Bits of in-macro-page offset (22 for 4 MB pages)."""
        return log2_exact(self.macro_page_bytes)

    @property
    def page_bits(self) -> int:
        """Bits of macro page index within the 48-bit space."""
        return PHYSICAL_ADDRESS_BITS - self.offset_bits

    @property
    def n_total_pages(self) -> int:
        """Macro pages covering the whole memory."""
        return self.total_bytes // self.macro_page_bytes

    @property
    def n_onpkg_pages(self) -> int:
        """Macro pages (slots) in the on-package region — the paper's *N*."""
        return self.onpkg_bytes // self.macro_page_bytes

    @property
    def n_offpkg_pages(self) -> int:
        return self.n_total_pages - self.n_onpkg_pages

    @property
    def subblocks_per_page(self) -> int:
        return self.macro_page_bytes // self.subblock_bytes

    @property
    def ghost_page(self) -> int:
        """Reserved off-package macro page Ω backing the empty slot.

        The paper reserves the highest macro page of the space (e.g.
        0x800 in an 8 GB space with 4 MB pages).
        """
        return self.n_total_pages - 1

    # -- vectorised address decomposition ---------------------------------
    def page_of(self, addr):
        """Macro page index of physical address(es)."""
        return np.asarray(addr, dtype=np.int64) >> self.offset_bits

    def offset_of(self, addr):
        """In-page offset of physical address(es)."""
        return np.asarray(addr, dtype=np.int64) & (self.macro_page_bytes - 1)

    def compose(self, page, offset=0):
        """Rebuild address(es) from macro page index and offset."""
        page = np.asarray(page, dtype=np.int64)
        offset = np.asarray(offset, dtype=np.int64)
        if np.any(page < 0) or np.any(page >= (1 << self.page_bits)):
            raise AddressError("macro page index out of the 48-bit space")
        if np.any(offset < 0) or np.any(offset >= self.macro_page_bytes):
            raise AddressError("offset outside the macro page")
        return (page << self.offset_bits) | offset

    def subblock_of(self, addr):
        """Sub-block index *within its macro page* of address(es)."""
        return self.offset_of(addr) >> log2_exact(self.subblock_bytes)

    def is_onpkg_machine_page(self, machine_page):
        """Region decode: True where a *machine* page is on-package.

        This is the MSB decode of Section II-A — pages below N map to the
        on-package region.
        """
        return np.asarray(machine_page, dtype=np.int64) < self.n_onpkg_pages

    def check_addresses(self, addr) -> None:
        """Validate that address(es) fall inside the configured memory."""
        a = np.asarray(addr, dtype=np.int64)
        if a.size and (a.min() < 0 or a.max() >= self.total_bytes):
            raise AddressError(
                f"address outside [0, {self.total_bytes}): "
                f"min={a.min() if a.size else None} max={a.max() if a.size else None}"
            )


def interleave_bits(addr, shift: int, ways: int):
    """Simple modulo interleave used for channel/bank hashing.

    Returns ``(addr >> shift) % ways`` — vectorised.
    """
    if ways <= 0:
        raise ConfigError("ways must be positive")
    return (np.asarray(addr, dtype=np.int64) >> shift) % ways
