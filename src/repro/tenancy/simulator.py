"""Multi-tenant front-end over one :class:`EpochSimulator`.

One shared simulator (one controller, one translation table, one
migration engine) serves many tenant workloads:

1. the :class:`~repro.tenancy.scheduler.TenantScheduler` interleaves
   the tenant traces into a tagged quantum stream;
2. each tenant's chunks are rewritten into its
   :class:`~repro.tenancy.domain.TenantDomain` window and fed to the
   shared simulator (fused fast path and all);
3. an optional :class:`~repro.tenancy.qos.CapacityPolicy` hangs off the
   migration engine and partitions the on-package slots;
4. an :class:`~repro.tenancy.isolation.IsolationOracle` watches every
   translated chunk for cross-tenant data flow;
5. tenant departures reclaim translation state via the engine's
   ``release_tenant`` path — deferred to a quiescent chunk boundary
   when a swap is in flight — and return the page window to the
   registry for later arrivals.

A single tenant degenerates to the plain simulator: zero-base window
(chunks untouched), zero time shift, structurally neutral QoS — the
run is bit-identical to ``EpochSimulator.run`` on the same trace, and
``tests/test_tenancy.py`` pins that.
"""

from __future__ import annotations

import numpy as np

from ..config import SystemConfig
from ..core.simulator import EpochSimulator, SimulationResult
from ..errors import TenancyError
from ..trace.record import TraceChunk
from .domain import TenantRegistry, TenantSpec
from .isolation import IsolationOracle
from .metrics import TenantMetrics
from .qos import CapacityPolicy
from .scheduler import AdmitEvent, ChunkEvent, DepartEvent, TenantScheduler


class MultiTenantSimulator:
    """Schedule, translate and attribute many tenant workloads."""

    def __init__(
        self,
        config: SystemConfig,
        *,
        policy: CapacityPolicy | None = None,
        migrate: bool = True,
        fused: bool = True,
        track_data: bool = False,
        isolation: bool = True,
        scrub_on_free: bool = True,
        quantum_epochs: int = 1,
        solo_baselines: bool = False,
        chunk_callback=None,
    ):
        self.config = config
        self._migrate = migrate
        self._fused = fused
        self.sim = EpochSimulator(
            config, migrate=migrate, fused=fused, track_data=track_data
        )
        self.registry = TenantRegistry(self.sim.table)
        self.scheduler = TenantScheduler(
            config.migration.swap_interval, quantum_epochs=quantum_epochs
        )
        self.policy = policy
        if policy is not None:
            policy.bind(self.registry, self.sim.table)
            self.sim.engine.qos = policy
        self.oracle = IsolationOracle(self.sim.table.amap) if isolation else None
        self.scrub_on_free = scrub_on_free
        self.solo_baselines = solo_baselines
        #: test hook: called as ``chunk_callback(self, event)`` after
        #: every fed chunk (quota/audit assertions in the property tests)
        self.chunk_callback = chunk_callback
        self.metrics: dict[int, TenantMetrics] = {}
        self.domains = {}
        self._traces: dict[int, TraceChunk] = {}
        #: departures waiting for a quiescent boundary to reclaim
        self._pending_release: list[tuple[int, np.ndarray]] = []
        self._ran = False

    # ------------------------------------------------------------------
    @property
    def table(self):
        return self.sim.table

    @property
    def engine(self):
        return self.sim.engine

    @property
    def violations(self):
        """Cross-tenant violations recorded by the isolation oracle."""
        return [] if self.oracle is None else self.oracle.violations

    def add_tenant(self, spec: TenantSpec, trace: TraceChunk) -> None:
        self.scheduler.add(spec, trace)
        self._traces[spec.tenant_id] = trace

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        if self._ran:
            raise TenancyError("MultiTenantSimulator.run is one-shot")
        self._ran = True
        result = SimulationResult()
        for event in self.scheduler.schedule():
            if isinstance(event, AdmitEvent):
                self._admit(event)
            elif isinstance(event, ChunkEvent):
                self._feed(event, result)
            else:
                self._depart(event)
        self._drain_releases(force=True)
        if self.solo_baselines:
            self._run_solo_baselines()
        result.tenants = self.metrics
        return result

    # ------------------------------------------------------------------
    def _admit(self, event: AdmitEvent) -> None:
        if self._pending_release:
            # the arrival may need a window a departed tenant still
            # holds: settle reclamation first
            self._drain_releases(force=True)
        domain = self.registry.admit(event.spec)
        self.domains[event.tenant_id] = domain
        self.metrics[event.tenant_id] = TenantMetrics(
            tenant_id=event.tenant_id,
            name=event.spec.name,
            arrived_epoch=event.epoch,
        )

    def _feed(self, event: ChunkEvent, result: SimulationResult) -> None:
        domain = self.domains[event.tenant_id]
        chunk = domain.translate(event.chunk)
        if self.oracle is not None:
            self.oracle.observe(event.tenant_id, chunk)
        controller = self.sim.controller
        engine = self.sim.engine
        before = controller.counters()
        swaps0 = engine.swaps_triggered
        migrated0 = engine.migrated_bytes
        self.sim.run_into(chunk, result)
        after = controller.counters()
        m = self.metrics[event.tenant_id]
        m.accesses += after[0] - before[0]
        m.total_latency += after[1] - before[1]
        m.onpkg_accesses += after[2] - before[2]
        d_off = after[3] - before[3]
        m.offpkg_accesses += d_off
        m.swaps_triggered += engine.swaps_triggered - swaps0
        m.migrated_bytes += engine.migrated_bytes - migrated0
        m.chunks += 1
        m.consumed = event.consumed
        if self.policy is not None:
            self.policy.observe(event.tenant_id, d_off)
        self._drain_releases()
        if self.chunk_callback is not None:
            self.chunk_callback(self, event)

    def _depart(self, event: DepartEvent) -> None:
        domain = self.domains.pop(event.tenant_id)
        self.metrics[event.tenant_id].departed_epoch = event.epoch
        self._pending_release.append((event.tenant_id, domain.pages))
        self._drain_releases()

    def _drain_releases(self, force: bool = False) -> None:
        """Reclaim departed tenants' translation state when quiescent.

        ``release_tenant`` refuses to run mid-swap (P/F bits live), so
        departures queue until a chunk boundary finds the engine idle.
        ``force`` (end of run, or an arrival that needs the window)
        instead waits the in-flight window out by dating the release at
        its end time.
        """
        engine = self.sim.engine
        while self._pending_release:
            now = self.sim._last_time + 1 if self.sim._epoch_index else 0
            if engine.active is not None and engine.active.in_flight(now):
                if not force:
                    return
                now = engine.active.end
            tenant_id, pages = self._pending_release[0]
            engine.release_tenant(now, pages, scrub=self.scrub_on_free)
            if self.oracle is not None and self.scrub_on_free:
                self.oracle.scrub(pages)
            self.registry.release(tenant_id)
            self._pending_release.pop(0)

    def _run_solo_baselines(self) -> None:
        """Re-run each tenant's consumed trace prefix alone (fresh
        simulator, same config) to anchor slowdown/interference."""
        for tenant_id, m in self.metrics.items():
            prefix = self._traces[tenant_id][: m.consumed]
            if len(prefix) == 0:
                continue
            solo = EpochSimulator(
                self.config, migrate=self._migrate, fused=self._fused
            )
            m.solo_average_latency = solo.run(prefix).average_latency
