"""Round-robin tenant front-end: many traces, one controller stream.

The scheduler owns admission/departure timing and the interleave; it
deliberately knows nothing about page windows or the translation table.
It deals exclusively in *tenant-virtual* chunks — address rewriting is
the admitted :class:`~repro.tenancy.domain.TenantDomain`'s job — so the
events it yields are a pure schedule:

* :class:`AdmitEvent` — a tenant's ``arrive_epoch`` has come; the
  consumer must allocate its window before the first chunk;
* :class:`ChunkEvent` — one scheduling quantum of one tenant's trace
  (``quantum_epochs`` swap intervals of accesses), timestamps rebased
  onto the shared controller clock;
* :class:`DepartEvent` — the tenant's trace is exhausted or its
  ``depart_epoch`` passed; the consumer reclaims its state.

Time rebasing shifts a chunk forward only when the shared clock has
run past the chunk's native start (``shift = max(0, clock - t0)``). A
single tenant therefore gets shift 0 on every chunk — its stream
reaches the simulator untouched, which is half of the single-tenant
bit-identity guarantee (the other half is the zero-base window).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..errors import TenancyError
from ..trace.record import TraceChunk, make_chunk
from .domain import TenantSpec


@dataclass(frozen=True)
class AdmitEvent:
    epoch: int
    tenant_id: int
    spec: TenantSpec


@dataclass(frozen=True)
class ChunkEvent:
    epoch: int
    tenant_id: int
    #: tenant-virtual chunk, timestamps already on the shared clock
    chunk: TraceChunk
    #: accesses of this tenant's trace consumed so far (solo baselines)
    consumed: int


@dataclass(frozen=True)
class DepartEvent:
    epoch: int
    tenant_id: int


class _Entry:
    __slots__ = ("spec", "trace", "cursor")

    def __init__(self, spec: TenantSpec, trace: TraceChunk):
        self.spec = spec
        self.trace = trace
        self.cursor = 0


class TenantScheduler:
    """Interleave tenant traces into one tagged, time-ordered stream."""

    def __init__(self, swap_interval: int, quantum_epochs: int = 1):
        if swap_interval <= 0:
            raise TenancyError("swap_interval must be positive")
        if quantum_epochs <= 0:
            raise TenancyError("quantum_epochs must be positive")
        self.swap_interval = swap_interval
        self.quantum = quantum_epochs * swap_interval
        self.epoch = 0
        self.clock = 0
        self._pending: list[_Entry] = []
        self._active: deque[_Entry] = deque()

    def add(self, spec: TenantSpec, trace: TraceChunk) -> None:
        """Register a tenant workload (before or during iteration)."""
        known = [e.spec.tenant_id for e in self._pending] + [
            e.spec.tenant_id for e in self._active
        ]
        if spec.tenant_id in known:
            raise TenancyError(f"tenant {spec.tenant_id} already scheduled")
        self._pending.append(_Entry(spec, trace))
        self._pending.sort(key=lambda e: e.spec.arrive_epoch)

    def schedule(self):
        """Yield Admit/Chunk/Depart events until every tenant is done."""
        while self._pending or self._active:
            if not self._active:
                # idle gap: jump the epoch clock to the next arrival
                self.epoch = max(self.epoch, self._pending[0].spec.arrive_epoch)
            while self._pending and self._pending[0].spec.arrive_epoch <= self.epoch:
                entry = self._pending.pop(0)
                self._active.append(entry)
                yield AdmitEvent(self.epoch, entry.spec.tenant_id, entry.spec)
            if not self._active:
                continue
            entry = self._active.popleft()
            spec = entry.spec
            if spec.depart_epoch is not None and self.epoch >= spec.depart_epoch:
                yield DepartEvent(self.epoch, spec.tenant_id)
                continue
            view = entry.trace[entry.cursor : entry.cursor + self.quantum]
            if len(view) == 0:
                yield DepartEvent(self.epoch, spec.tenant_id)
                continue
            shift = max(0, self.clock - int(view.time[0]))
            chunk = (
                view
                if shift == 0
                else make_chunk(
                    view.addr,
                    time=view.time + shift,
                    cpu=view.cpu,
                    rw=view.rw,
                    validate=False,
                )
            )
            entry.cursor += len(view)
            yield ChunkEvent(self.epoch, spec.tenant_id, chunk, entry.cursor)
            self.clock = int(chunk.time[-1])
            self.epoch += -(-len(view) // self.swap_interval)
            if entry.cursor >= len(entry.trace):
                yield DepartEvent(self.epoch, spec.tenant_id)
            else:
                self._active.append(entry)
