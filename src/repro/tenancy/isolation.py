"""Cross-tenant data-flow oracle (last-writer tracking).

The :class:`~repro.datamodel.shadow.ShadowMemory` proves every read
returns the bytes last written *to that page* — but a recycled page
window passes that check even when the bytes came from a departed
tenant, because the page id and write generation still match. This
oracle closes that gap: it tracks, per 4 KB sub-block of the physical
space, **which tenant** last wrote it, and flags any read that observes
a foreign tenant's data.

A hypervisor scrub (the default on tenant release) marks the freed
window ``HYPERVISOR``-owned, so a well-behaved reclamation path records
zero violations; running with ``scrub_on_free=False`` demonstrates the
leak the oracle exists to catch — the shadow memory stays clean while
the oracle reports every residue read.

The oracle is pure observation: it sees the translated (physical)
chunks before they reach the simulator and never influences a simulated
number.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import log2_exact

#: sub-block never written by any tenant (boot state)
UNWRITTEN = -1
#: sub-block scrubbed by the hypervisor on tenant release
HYPERVISOR = -2

#: stored violation records are capped; the total count keeps growing
MAX_RECORDED = 200


@dataclass(frozen=True)
class CrossTenantViolation:
    """One read that observed another tenant's data."""

    time: int
    page: int
    subblock: int
    reader: int
    writer: int

    def format(self) -> str:
        return (
            f"t={self.time}: tenant {self.reader} read page {self.page} "
            f"sub-block {self.subblock} last written by tenant {self.writer}"
        )


class IsolationOracle:
    """Per-sub-block last-writer map over the physical address space."""

    def __init__(self, amap):
        self.amap = amap
        self.n_subblocks = amap.subblocks_per_page
        self._sb_shift = log2_exact(amap.subblock_bytes)
        #: flat [page * n_subblocks + subblock] -> last-writer tenant id
        self.writer = np.full(
            amap.n_total_pages * self.n_subblocks, UNWRITTEN, dtype=np.int64
        )
        self.violations: list[CrossTenantViolation] = []
        self.n_violations = 0
        self.reads = 0
        self.writes = 0

    def observe(self, tenant_id: int, chunk) -> None:
        """Fold one translated (physical) chunk of one tenant's accesses."""
        n = len(chunk)
        if n == 0:
            return
        cells = np.asarray(chunk.addr, dtype=np.int64) >> self._sb_shift
        w = np.asarray(chunk.rw) != 0
        pos = np.arange(n, dtype=np.int64)
        wcells = cells[w]
        self.writes += int(wcells.shape[0])
        self.reads += n - int(wcells.shape[0])
        if wcells.size:
            uniq, inverse = np.unique(wcells, return_inverse=True)
            first = np.full(uniq.shape[0], n, dtype=np.int64)
            np.minimum.at(first, inverse, pos[w])
        else:
            uniq = np.zeros(0, dtype=np.int64)
            first = np.zeros(0, dtype=np.int64)
        rcells = cells[~w]
        if rcells.size:
            owner = self.writer[rcells]
            foreign = (owner >= 0) & (owner != tenant_id)
            if bool(foreign.any()):
                fc = rcells[foreign]
                fp = pos[~w][foreign]
                fo = owner[foreign]
                # a foreign cell is cleansed once the tenant's own first
                # write (this chunk) precedes the read
                own_first = np.full(fc.shape[0], n, dtype=np.int64)
                if uniq.size:
                    idx = np.searchsorted(uniq, fc)
                    valid = idx < uniq.shape[0]
                    match = np.zeros(fc.shape[0], dtype=bool)
                    match[valid] = uniq[idx[valid]] == fc[valid]
                    own_first[match] = first[idx[match]]
                bad = fp < own_first
                self.n_violations += int(bad.sum())
                times = np.asarray(chunk.time)
                for c, p, o in zip(
                    fc[bad].tolist(), fp[bad].tolist(), fo[bad].tolist()
                ):
                    if len(self.violations) >= MAX_RECORDED:
                        break
                    self.violations.append(
                        CrossTenantViolation(
                            time=int(times[p]),
                            page=int(c // self.n_subblocks),
                            subblock=int(c % self.n_subblocks),
                            reader=tenant_id,
                            writer=int(o),
                        )
                    )
        if uniq.size:
            self.writer[uniq] = tenant_id

    def scrub(self, pages) -> None:
        """Hypervisor scrub: the freed pages' cells change hands."""
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0:
            return
        cells = (
            pages[:, None] * self.n_subblocks
            + np.arange(self.n_subblocks, dtype=np.int64)
        ).ravel()
        self.writer[cells] = HYPERVISOR
