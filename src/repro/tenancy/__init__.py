"""Multi-tenant translation domains over the on-chip controller.

See :mod:`repro.tenancy.simulator` for the composition; the pieces:

* :mod:`~repro.tenancy.domain` — tenant specs, page windows, registry;
* :mod:`~repro.tenancy.scheduler` — trace interleaving front-end;
* :mod:`~repro.tenancy.qos` — on-package capacity partitioning;
* :mod:`~repro.tenancy.isolation` — cross-tenant data-flow oracle;
* :mod:`~repro.tenancy.metrics` — per-tenant attribution.
"""

from .domain import TenantDomain, TenantRegistry, TenantSpec
from .isolation import (
    HYPERVISOR,
    UNWRITTEN,
    CrossTenantViolation,
    IsolationOracle,
)
from .metrics import TenantMetrics
from .qos import (
    CapacityPolicy,
    HotSetAwarePolicy,
    ProportionalSharePolicy,
    StaticQuotaPolicy,
)
from .scheduler import AdmitEvent, ChunkEvent, DepartEvent, TenantScheduler
from .simulator import MultiTenantSimulator

__all__ = [
    "AdmitEvent",
    "CapacityPolicy",
    "ChunkEvent",
    "CrossTenantViolation",
    "DepartEvent",
    "HYPERVISOR",
    "HotSetAwarePolicy",
    "IsolationOracle",
    "MultiTenantSimulator",
    "ProportionalSharePolicy",
    "StaticQuotaPolicy",
    "TenantDomain",
    "TenantMetrics",
    "TenantRegistry",
    "TenantScheduler",
    "TenantSpec",
    "UNWRITTEN",
]
