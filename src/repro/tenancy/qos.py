"""On-package capacity partitioning (QoS) policies.

The migration engine consults one :class:`CapacityPolicy` (its ``qos``
hook) at every swap-trigger evaluation. The policy sees the candidate
promotion (the hottest off-package page) and answers with either

* a **veto** (the promotion is suppressed this epoch and counted in
  ``swaps_suppressed_qos``), or
* an **exclusion set** of slots the demotion victim must avoid — at its
  quota a tenant may only displace one of its *own* promoted pages, so
  its on-package footprint cannot grow at a neighbour's expense.

Accounting unit: a tenant "uses" an on-package slot when the slot holds
one of its promoted off-package-home pages (``pair[s] >= n_slots`` and
the page is in the tenant's window). Identity-resident home pages of a
window that happens to cover the on-package tier are free — they are
the paper's baseline mapping, not capacity the tenant won through
migration — which makes a single full-space tenant structurally
unconstrained and keeps the bit-identity guarantee.

Policies: :class:`StaticQuotaPolicy` (hard per-tenant slot counts),
:class:`ProportionalSharePolicy` (weights split the usable slots), and
:class:`HotSetAwarePolicy` (EWMA of off-package demand re-splits the
slots toward the tenants actually missing).
"""

from __future__ import annotations

import numpy as np

from ..errors import TenancyError
from .domain import TenantRegistry


class CapacityPolicy:
    """Base class: quota bookkeeping + the engine-facing ``constrain``."""

    def __init__(self):
        self.registry: TenantRegistry | None = None
        self.table = None
        self._quota_cache: dict[int, int] = {}
        self._quota_key: tuple | None = None

    def bind(self, registry: TenantRegistry, table) -> None:
        """Attach to a run (MultiTenantSimulator calls this once)."""
        self.registry = registry
        self.table = table

    def capacity(self) -> int:
        """Slots the policies may hand out: usable minus the reserved
        EMPTY slot of the N-1/live designs."""
        reserve = 1 if self.table._reserve_empty_slot else 0
        return max(0, self.table.n_usable_slots - reserve)

    # -- quota computation (cached on registry version + demand state) --
    def _demand_key(self):
        return 0

    def quotas(self) -> dict[int, int]:
        key = (self.registry.version, self._demand_key())
        if key != self._quota_key:
            self._quota_cache = self._compute_quotas()
            self._quota_key = key
        return self._quota_cache

    def _compute_quotas(self) -> dict[int, int]:
        raise NotImplementedError

    # -- live usage from the translation table --------------------------
    def _transposition_slots(self) -> tuple[np.ndarray, np.ndarray]:
        """``(slots, owners)`` of slots holding promoted off-home pages."""
        pair = self.table.pair
        slots = np.flatnonzero((pair >= self.table.n_slots) & ~self.table.retired)
        owners = self.registry.tenant_of_pages(pair[slots])
        return slots, owners

    def usage(self) -> dict[int, int]:
        """Per-tenant count of on-package slots holding promoted pages."""
        _, owners = self._transposition_slots()
        ids, counts = np.unique(owners[owners >= 0], return_counts=True)
        return dict(zip(ids.tolist(), counts.tolist()))

    def observe(self, tenant_id: int, offpkg_accesses: int) -> None:
        """Demand feedback after each tenant chunk (hot-set policy hook)."""

    def constrain(self, mru_page: int) -> tuple[str | None, set[int]]:
        """Engine hook: ``(veto_reason | None, demotion_exclusion_set)``."""
        if mru_page < self.table.n_slots:
            # home restoration: the page is returning to its baseline
            # slot, which frees a promoted page's frame — never charged
            return None, set()
        owner = self.registry.owner_of(mru_page)
        if owner is None:
            return None, set()
        quota = self.quotas().get(owner)
        if quota is None:
            return None, set()
        if quota <= 0:
            return f"tenant {owner} has no on-package slot quota", set()
        slots, owners = self._transposition_slots()
        own = slots[owners == owner]
        if own.shape[0] < quota:
            return None, set()
        # at (or, after a quota re-split, above) cap: the swap may only
        # displace one of the tenant's own promoted pages — net zero
        return None, set(range(self.table.n_slots)) - set(own.tolist())


class StaticQuotaPolicy(CapacityPolicy):
    """Hard per-tenant slot counts from ``TenantSpec.quota_slots``.

    Tenants with ``quota_slots=None`` are unconstrained. Quotas are
    *not* validated against capacity: an over-committed static split is
    a deliberate operator choice, and the table itself bounds total
    occupancy.
    """

    def _compute_quotas(self) -> dict[int, int]:
        return {
            d.tenant_id: d.spec.quota_slots
            for d in self.registry.domains.values()
            if d.spec.quota_slots is not None
        }


class ProportionalSharePolicy(CapacityPolicy):
    """Weights split the usable slots; every tenant gets at least one."""

    def _compute_quotas(self) -> dict[int, int]:
        domains = list(self.registry.domains.values())
        if not domains:
            return {}
        total_w = sum(d.spec.weight for d in domains)
        cap = self.capacity()
        return {
            d.tenant_id: max(1, int(cap * d.spec.weight / total_w))
            for d in domains
        }


class HotSetAwarePolicy(CapacityPolicy):
    """Demand-driven split: slots follow the off-package miss traffic.

    An EWMA (``alpha``) of each tenant's per-chunk off-package accesses
    estimates its hot-set pressure; the usable slots are split as
    ``floor`` each plus the remainder proportionally to demand. Until
    demand data exists (cold start, freshly arrived tenant) the split
    falls back to the weight proportions. Quotas shrink as neighbours
    heat up, so a tenant can transiently sit above its new quota — the
    at-cap exclusion then pins its usage (own-victim-only swaps) while
    natural demotions decay it.
    """

    def __init__(self, alpha: float = 0.3, floor: int = 1):
        super().__init__()
        if not 0 < alpha <= 1:
            raise TenancyError("alpha must be in (0, 1]")
        if floor < 0:
            raise TenancyError("floor must be >= 0")
        self.alpha = alpha
        self.floor = floor
        self._demand: dict[int, float] = {}
        self._version = 0

    def observe(self, tenant_id: int, offpkg_accesses: int) -> None:
        prev = self._demand.get(tenant_id, 0.0)
        self._demand[tenant_id] = (
            (1 - self.alpha) * prev + self.alpha * offpkg_accesses
        )
        self._version += 1

    def _demand_key(self):
        return self._version

    def _compute_quotas(self) -> dict[int, int]:
        domains = list(self.registry.domains.values())
        if not domains:
            return {}
        cap = self.capacity()
        demand = {d.tenant_id: self._demand.get(d.tenant_id, 0.0) for d in domains}
        total = sum(demand.values())
        if total <= 0:
            total_w = sum(d.spec.weight for d in domains)
            return {
                d.tenant_id: max(1, int(cap * d.spec.weight / total_w))
                for d in domains
            }
        spare = max(0, cap - self.floor * len(domains))
        return {
            d.tenant_id: self.floor + int(spare * demand[d.tenant_id] / total)
            for d in domains
        }
