"""Tenant translation domains over one on-chip controller.

The paper's controller assumes a single OS image owning the whole
physical space and one translation table. Virtualization-scale serving
multiplexes many tenants through the same on-package tier, so this
module partitions the *physical page* space (the table's left column)
into contiguous per-tenant windows:

* :class:`TenantSpec` — the static description of one tenant (footprint,
  QoS weight/quota, arrival/departure epochs);
* :class:`TenantDomain` — one admitted tenant: a base page plus a
  virtual->physical address rewrite for its trace chunks;
* :class:`TenantRegistry` — first-fit window allocator with hole
  merging, so churned-out windows are reusable by later arrivals, and
  vectorised page->tenant ownership lookups for the QoS policies.

Machine-frame placement (which window pages currently sit on-package)
stays entirely the migration engine's business; the registry only ever
talks about physical page ids, which is what keeps the single-tenant
path bit-identical to a plain :class:`~repro.core.simulator.EpochSimulator`
run: a tenant based at page 0 gets its chunks back untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TenancyError
from ..migration.table import TranslationTable
from ..trace.record import TraceChunk, make_chunk


@dataclass(frozen=True)
class TenantSpec:
    """Static description of one tenant workload."""

    tenant_id: int
    name: str
    #: footprint in macro pages (the unit the translation table manages)
    n_pages: int
    #: share weight for proportional / hot-set QoS policies
    weight: float = 1.0
    #: hard on-package slot quota (static policy; None = unlimited)
    quota_slots: int | None = None
    #: scheduler epoch at which the tenant arrives
    arrive_epoch: int = 0
    #: scheduler epoch at which the tenant is evicted (None = runs its
    #: trace to exhaustion)
    depart_epoch: int | None = None

    def __post_init__(self):
        if self.n_pages <= 0:
            raise TenancyError(f"tenant {self.tenant_id}: n_pages must be positive")
        if self.weight <= 0:
            raise TenancyError(f"tenant {self.tenant_id}: weight must be positive")
        if self.quota_slots is not None and self.quota_slots < 0:
            raise TenancyError(
                f"tenant {self.tenant_id}: quota_slots must be >= 0"
            )


class TenantDomain:
    """One admitted tenant: a contiguous physical page window.

    The tenant addresses a private virtual space
    ``[0, n_pages * macro_page_bytes)``; :meth:`translate` rewrites a
    chunk into the window. A domain based at page 0 returns the chunk
    object unchanged — zero-copy, and the anchor of the single-tenant
    bit-identity guarantee.
    """

    def __init__(self, spec: TenantSpec, base_page: int, amap):
        self.spec = spec
        self.base_page = base_page
        self.amap = amap
        self.n_pages = spec.n_pages
        self.footprint_bytes = spec.n_pages * amap.macro_page_bytes

    @property
    def tenant_id(self) -> int:
        return self.spec.tenant_id

    @property
    def pages(self) -> np.ndarray:
        """The physical pages of this tenant's window."""
        return np.arange(
            self.base_page, self.base_page + self.n_pages, dtype=np.int64
        )

    def translate(self, chunk: TraceChunk) -> TraceChunk:
        """Rewrite a tenant-virtual chunk into the physical window."""
        if len(chunk) == 0:
            return chunk
        lo = int(chunk.addr.min())
        hi = int(chunk.addr.max())
        if lo < 0 or hi >= self.footprint_bytes:
            raise TenancyError(
                f"tenant {self.tenant_id}: trace addresses "
                f"[{lo}, {hi}] exceed the declared footprint of "
                f"{self.n_pages} pages ({self.footprint_bytes} bytes)"
            )
        if self.base_page == 0:
            return chunk
        return make_chunk(
            chunk.addr + self.base_page * self.amap.macro_page_bytes,
            time=chunk.time,
            cpu=chunk.cpu,
            rw=chunk.rw,
            validate=False,
        )

    def __repr__(self) -> str:
        return (
            f"TenantDomain(id={self.tenant_id}, name={self.spec.name!r}, "
            f"pages=[{self.base_page}..{self.base_page + self.n_pages}))"
        )


class TenantRegistry:
    """First-fit allocator of physical page windows.

    Windows live in ``[0, limit)`` where ``limit`` excludes the ghost
    page Ω and any RAS spare pages — tenants can never be handed pages
    outside the data address space. Freed windows merge back into the
    hole list so a later arrival of the same footprint is guaranteed to
    fit (reclaimed-slots-reusable is a tested invariant).
    """

    def __init__(self, table: TranslationTable):
        self.amap = table.amap
        self.limit = (
            min(table.reserved_pages)
            if table.reserved_pages
            else self.amap.ghost_page
        )
        self.domains: dict[int, TenantDomain] = {}
        #: bumped on every admit/release; QoS policies key their quota
        #: caches on it
        self.version = 0
        #: free [start, end) windows, sorted, non-adjacent
        self._holes: list[tuple[int, int]] = [(0, self.limit)]
        self._lookup_version = -1
        self._bases = np.zeros(0, dtype=np.int64)
        self._ends = np.zeros(0, dtype=np.int64)
        self._ids = np.zeros(0, dtype=np.int64)

    @property
    def free_pages(self) -> int:
        return sum(e - s for s, e in self._holes)

    def admit(self, spec: TenantSpec) -> TenantDomain:
        """Allocate the first window that fits ``spec.n_pages``."""
        if spec.tenant_id in self.domains:
            raise TenancyError(f"tenant {spec.tenant_id} is already admitted")
        for i, (start, end) in enumerate(self._holes):
            if end - start >= spec.n_pages:
                carved = start + spec.n_pages
                if carved == end:
                    del self._holes[i]
                else:
                    self._holes[i] = (carved, end)
                domain = TenantDomain(spec, start, self.amap)
                self.domains[spec.tenant_id] = domain
                self.version += 1
                return domain
        raise TenancyError(
            f"tenant {spec.tenant_id}: no contiguous window of "
            f"{spec.n_pages} pages free ({self.free_pages} pages in "
            f"{len(self._holes)} fragments)"
        )

    def release(self, tenant_id: int) -> TenantDomain:
        """Return a tenant's window to the hole list (merging neighbours)."""
        domain = self.domains.pop(tenant_id, None)
        if domain is None:
            raise TenancyError(f"tenant {tenant_id} is not admitted")
        start, end = domain.base_page, domain.base_page + domain.n_pages
        self._holes.append((start, end))
        self._holes.sort()
        merged: list[tuple[int, int]] = []
        for s, e in self._holes:
            if merged and s <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], e))
            else:
                merged.append((s, e))
        self._holes = merged
        self.version += 1
        return domain

    # ------------------------------------------------------------------
    # ownership lookups (QoS policies, isolation oracle)
    # ------------------------------------------------------------------
    def _refresh_lookup(self) -> None:
        if self._lookup_version == self.version:
            return
        domains = sorted(self.domains.values(), key=lambda d: d.base_page)
        self._bases = np.array([d.base_page for d in domains], dtype=np.int64)
        self._ends = np.array(
            [d.base_page + d.n_pages for d in domains], dtype=np.int64
        )
        self._ids = np.array([d.tenant_id for d in domains], dtype=np.int64)
        self._lookup_version = self.version

    def tenant_of_pages(self, pages: np.ndarray) -> np.ndarray:
        """Vectorised page -> tenant id (-1 for unowned pages)."""
        self._refresh_lookup()
        pages = np.asarray(pages, dtype=np.int64)
        out = np.full(pages.shape, -1, dtype=np.int64)
        if self._bases.size == 0 or pages.size == 0:
            return out
        idx = np.searchsorted(self._bases, pages, side="right") - 1
        valid = idx >= 0
        hit = np.zeros(pages.shape, dtype=bool)
        hit[valid] = pages[valid] < self._ends[idx[valid]]
        out[hit] = self._ids[idx[hit]]
        return out

    def owner_of(self, page: int) -> int | None:
        """Tenant id owning ``page``, or None."""
        owner = int(self.tenant_of_pages(np.array([page]))[0])
        return None if owner < 0 else owner
