"""Per-tenant attribution of controller and migration work.

The multi-tenant simulator snapshots the controller's counters around
every tenant chunk; the deltas accumulate here. ``solo_average_latency``
is filled by the opt-in solo-baseline pass (the same trace prefix run
alone on a fresh simulator), which anchors the two interference
figures:

* **slowdown** — shared-run average latency over solo average latency;
* **interference index** — ``max(0, slowdown - 1)``: the fraction of
  every access the tenant pays for its noisy neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TenantMetrics:
    """One tenant's share of a multi-tenant run."""

    tenant_id: int
    name: str
    arrived_epoch: int = 0
    departed_epoch: int | None = None
    accesses: int = 0
    total_latency: int = 0
    onpkg_accesses: int = 0
    offpkg_accesses: int = 0
    swaps_triggered: int = 0
    migrated_bytes: int = 0
    chunks: int = 0
    #: accesses of the tenant's own trace consumed (solo-baseline prefix)
    consumed: int = 0
    solo_average_latency: float | None = field(default=None)

    @property
    def average_latency(self) -> float:
        return self.total_latency / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of the tenant's accesses served on-package."""
        return self.onpkg_accesses / self.accesses if self.accesses else 0.0

    @property
    def slowdown(self) -> float | None:
        """Shared-run vs solo average latency (None without a baseline)."""
        if self.solo_average_latency is None or self.solo_average_latency <= 0:
            return None
        return self.average_latency / self.solo_average_latency

    @property
    def interference_index(self) -> float | None:
        """Noisy-neighbour tax: ``max(0, slowdown - 1)``."""
        s = self.slowdown
        return None if s is None else max(0.0, s - 1.0)
