"""The migration controller (Fig 3's "Migration Controller" box).

At each epoch boundary (every ``swap_interval`` memory accesses) the
engine compares the hottest off-package macro page against the coldest
on-package one and, if the hottest was accessed more often, schedules a
hottest-coldest swap (Section III-A):

* **N** — the whole exchange stalls execution (no empty slot to overlap
  with);
* **N-1** — the Fig 8 step sequence runs in the background; the incoming
  page keeps being served off-package until its copy-in completes;
* **Live** — the incoming page is available sub-block by sub-block,
  critical (most-recently-used) sub-block first with wraparound (Fig 9).

While a swap is in flight the P/F bits block re-triggering, exactly as
in the paper ("the existence of P bit and F bit prevents triggering
another swap if the previous swap is not complete yet").

The engine applies a scheduled plan's table updates eagerly while
recording a *routing timeline* — ``(time, on_package, machine_page)``
change points — for every page the swap touches. The epoch simulator
overrides those few pages' resolution per access time; every other page
resolves through the table's dense mirrors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..address import AddressMap
from ..config import BusConfig, MigrationConfig, MigrationAlgorithm, ResilienceConfig
from ..errors import (
    FaultInjectionError,
    MigrationError,
    SwapAbortError,
    TranslationTableError,
)
from ..resilience.degradation import (
    ABORT_RECOVERED,
    FRAME_RETIRED,
    MIGRATION_QUARANTINED,
    SWAP_FAILED,
    DegradationEvent,
)
from .algorithms import (
    CopyStep,
    SwapPlan,
    TableUpdate,
    build_basic_swap_steps,
    build_swap_steps,
)
from .policies import EpochMonitor
from .recovery import recovery_plan
from .table import EMPTY, TranslationTable

#: largest page space for which the epoch fold uses dense (bincount)
#: aggregation; bigger configurations keep the sort-based np.unique pass
_DENSE_FOLD_PAGES = 1 << 16


@dataclass(frozen=True)
class FillInfo:
    """Timing of the incoming hot page's copy-in."""

    page: int
    slot: int
    start: int                  # cycle the copy-in begins
    end: int                    # cycle the last byte lands
    subblock_cycles: int        # transfer time of one sub-block
    n_subblocks: int
    first_subblock: int         # critical-first start point (MRU sub-block)
    live: bool                  # sub-block granularity vs whole page
    old_onpkg: bool
    old_machine: int

    def available_at(self, subblock: np.ndarray) -> np.ndarray:
        """Cycle each sub-block becomes servable on-package (vectorised)."""
        sb = np.asarray(subblock, dtype=np.int64)
        if not self.live:
            return np.full(sb.shape, self.end, dtype=np.int64)
        order = (sb - self.first_subblock) % self.n_subblocks
        return self.start + (order + 1) * self.subblock_cycles


@dataclass
class ActiveMigration:
    """One in-flight (or just-completed) swap with its routing timelines."""

    #: None for a plan-less stall window (abort recovery started without
    #: a schedulable plan, or a RAS frame retirement's copy-out)
    plan: SwapPlan | None
    start: int
    end: int
    fill: FillInfo | None
    #: page -> [(change_time, on_package, machine_page)], time-ascending;
    #: resolution before the first entry is the pre-swap state
    timelines: dict[int, list[tuple[int, bool, int]]] = field(default_factory=dict)
    #: True for the copy-back window of a data-safe abort recovery or a
    #: frame retirement: the table already holds the final state (no
    #: timelines), but execution stalls while the copies drain
    recovery: bool = False
    #: lazy array form of the timelines (built on first resolution; the
    #: timelines are final once the plan walk that built them returns)
    _timeline_arrays: dict | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def stall(self) -> bool:
        return (self.plan is not None and self.plan.stall) or self.recovery

    def in_flight(self, now: int) -> bool:
        return now < self.end

    def timeline_arrays(self) -> dict:
        """``page -> (change_times, on_package, machine_page)`` parallel
        arrays — the fused loop resolves against the same timelines every
        epoch of the swap window, so the conversion is done once."""
        cache = self._timeline_arrays
        if cache is None:
            cache = self._timeline_arrays = {
                page: (
                    np.array([t for t, _, _ in tl], dtype=np.int64),
                    np.array([o for _, o, _ in tl], dtype=bool),
                    np.array([m for _, _, m in tl], dtype=np.int64),
                )
                for page, tl in self.timelines.items()
            }
        return cache


@dataclass(frozen=True)
class SwapDecision:
    """Outcome of one epoch-boundary evaluation (for logging/tests)."""

    triggered: bool
    reason: str
    mru: int | None = None
    lru: int | None = None


class MigrationEngine:
    """Epoch monitor + trigger + plan scheduler."""

    def __init__(
        self,
        amap: AddressMap,
        config: MigrationConfig,
        bus: BusConfig | None = None,
        *,
        resilience: ResilienceConfig | None = None,
        reserved_pages: frozenset[int] | set[int] = frozenset(),
        onpkg_refresh=None,
        offpkg_refresh=None,
    ):
        self.amap = amap
        self.config = config
        self.bus = bus or BusConfig()
        self.resilience = resilience or ResilienceConfig()
        #: optional per-region :class:`~repro.dram.refresh.RefreshSchedule`
        #: (set by EpochSimulator when the region's timing enables
        #: refresh): a copy touching a refreshing region stalls for every
        #: tRFC window its transfer overlaps. None = classic durations.
        self.onpkg_refresh = onpkg_refresh
        self.offpkg_refresh = offpkg_refresh
        basic = config.algorithm == MigrationAlgorithm.N
        self.table = TranslationTable(
            amap, reserve_empty_slot=not basic, reserved_pages=reserved_pages
        )
        self.monitor = EpochMonitor(amap.n_onpkg_pages)
        self.active: ActiveMigration | None = None
        self.swaps_triggered = 0
        self.swaps_suppressed_busy = 0
        self.swaps_suppressed_cold = 0
        self.swaps_suppressed_qos = 0
        self.swaps_failed = 0
        self.migrated_bytes = 0
        self.cross_boundary_bytes = 0
        # graceful-degradation state
        self.quarantined = False
        self.consecutive_failures = 0
        self.degradation_events: list[DegradationEvent] = []
        self.epochs_observed = 0
        self._abort_at_step: int | None = None
        self._abort_subblocks = 0
        # data-safe abort recovery accounting
        self.abort_recoveries = 0
        self.recovery_bytes = 0
        #: optional data-content mirror (set by EpochSimulator track_data=True);
        #: fed every copy the plans perform, at the cycle it lands
        self.shadow = None
        #: optional RAS wear model (set by RasController): counts every
        #: copy's destination writes and, when its penalty weight is
        #: positive, biases the hottest-page swap-candidate ranking
        self.wear = None
        #: optional row-disturbance controller (set by DisturbController):
        #: when its migration bias is positive, aggressively-activated
        #: pages rank higher as swap candidates — migration doubles as
        #: hammer mitigation by pulling them on-package, where tRFC is
        #: short and victim refresh is cheap
        self.disturb = None
        #: optional multi-tenant capacity/QoS policy (set by
        #: MultiTenantSimulator): consulted at every trigger evaluation;
        #: it can veto a promotion outright or restrict which slots may
        #: be demoted to make room for it
        self.qos = None
        # RAS predictive-retirement accounting
        self.frames_retired = 0
        self.retired_bytes = 0
        # multi-tenant reclamation accounting
        self.tenants_released = 0
        self.reclaimed_bytes = 0
        # last-touched sub-block per off-package page, as parallel sorted
        # arrays (one np.unique pass per epoch, no per-epoch dict build)
        self._last_sb_pages: np.ndarray | None = None
        self._last_sb_vals: np.ndarray | None = None
        # dense per-page scratch for the epoch fold (small page spaces
        # only; values are always written before they are read)
        self._fold_scratch: np.ndarray | None = None

    # ------------------------------------------------------------------
    def observe_epoch(
        self,
        slots: np.ndarray,
        slot_times: np.ndarray,
        offpkg_pages: np.ndarray,
        off_times: np.ndarray,
        off_subblocks: np.ndarray | None = None,
    ) -> None:
        """Feed one epoch's accesses to the recency/frequency trackers."""
        off = np.asarray(offpkg_pages, dtype=np.int64)
        if off.size:
            off_times = np.asarray(off_times, dtype=np.int64)
            n_total = self.amap.n_total_pages
            # dense fold for small page spaces: np.flatnonzero of the
            # count vector is exactly np.unique's sorted page list, and
            # with non-decreasing epoch times the *last* write per page
            # is the per-page maximum that np.maximum.at computes —
            # both checked, so the sorting fallback stays bit-identical
            dense = n_total <= _DENSE_FOLD_PAGES and bool(
                (off_times[1:] >= off_times[:-1]).all()
            )
            if dense:
                counts_dense = np.bincount(off, minlength=n_total)
                pages = np.flatnonzero(counts_dense)
                counts = counts_dense[pages]
                scratch = self._fold_scratch
                if scratch is None or scratch.shape[0] != n_total:
                    scratch = self._fold_scratch = np.zeros(
                        n_total, dtype=np.int64
                    )
                scratch[off] = off_times
                last = scratch[pages]
            else:
                # one unique pass shared between the monitor's frequency
                # aggregation and the critical-block recency bookkeeping
                pages, inverse, counts = np.unique(
                    off, return_inverse=True, return_counts=True
                )
                last = np.zeros(pages.shape[0], dtype=np.int64)
                np.maximum.at(last, inverse, off_times)
            self.monitor.fold_epoch(slots, slot_times, pages, counts, last)
            if off_subblocks is not None:
                self._last_sb_pages = pages
                if dense:
                    scratch[off] = np.arange(off.shape[0], dtype=np.int64)
                    self._last_sb_vals = np.asarray(off_subblocks)[scratch[pages]]
                else:
                    last_idx = np.zeros(pages.shape[0], dtype=np.int64)
                    last_idx[inverse] = np.arange(off.shape[0])
                    self._last_sb_vals = np.asarray(off_subblocks)[last_idx]
            else:
                self._last_sb_pages = None
                self._last_sb_vals = None
        else:
            empty = np.zeros(0, dtype=np.int64)
            self.monitor.fold_epoch(slots, slot_times, empty, empty, empty)
            self._last_sb_pages = None
            self._last_sb_vals = None

    def _mru_first_subblock(self, page: int) -> int:
        """Last sub-block the given off-package page was touched at (for
        critical-block-first fills); 0 when unseen this epoch."""
        pages = self._last_sb_pages
        if pages is None:
            return 0
        i = int(np.searchsorted(pages, page))
        if i < pages.shape[0] and int(pages[i]) == page:
            return int(self._last_sb_vals[i])
        return 0

    def maybe_swap(self, now: int) -> SwapDecision:
        """Epoch-boundary evaluation: trigger a hottest-coldest swap?

        Failures (a torn plan application, an injected abort) are
        contained here: the table rolls back to its pre-swap state, the
        failure is recorded as a :class:`DegradationEvent`, and after
        ``resilience.max_consecutive_failures`` of them in a row the
        engine quarantines itself (static-mapping degraded mode).
        """
        self.epochs_observed += 1
        if self.quarantined:
            self.monitor.new_epoch()
            return SwapDecision(False, "migration quarantined (degraded mode)")
        try:
            decision = self._evaluate_swap(now)
        except MigrationError as exc:
            self.swaps_failed += 1
            self.monitor.new_epoch()
            # a data-safe recovered abort left the system fully
            # consistent (routing AND data), so it never counts toward
            # the quarantine threshold
            recovered = getattr(exc, "recovered", False)
            self._note_failure(now, f"swap failed: {exc}", count=not recovered)
            return SwapDecision(False, f"swap failed: {exc}")
        if decision.triggered:
            self.consecutive_failures = 0
        return decision

    def note_audit_failure(self, now: int, detail: str) -> None:
        """An external invariant audit failed; counts toward quarantine.

        The auditor records its own event, so this only advances the
        consecutive-failure counter.
        """
        self._note_failure(now, detail, record=False)

    def _note_failure(
        self, now: int, detail: str, *, record: bool = True, count: bool = True
    ) -> None:
        if count:
            self.consecutive_failures += 1
        if record:
            self.degradation_events.append(
                DegradationEvent(
                    time=now, epoch=self.epochs_observed, kind=SWAP_FAILED,
                    detail=detail, recovered=True,
                )
            )
        if self.consecutive_failures >= self.resilience.max_consecutive_failures:
            self.quarantine(now, f"{self.consecutive_failures} consecutive failures")

    def quarantine(self, now: int, reason: str) -> None:
        """Stop migrating: roll back to the static mapping, keep serving.

        The table returns to the boot-time identity mapping (every page
        resolvable at its home location) and the engine answers every
        future epoch with "no swap". Demand accesses keep flowing — the
        system degrades to Section II's static mapping instead of dying.
        """
        if self.quarantined:
            return
        if self.shadow is not None:
            self._shadow_quarantine(now)
        displaced = self.table.reset_identity()
        restore_bytes = displaced * self.amap.macro_page_bytes
        self.active = None
        self._abort_at_step = None
        self._abort_subblocks = 0
        self.quarantined = True
        self.degradation_events.append(
            DegradationEvent(
                time=now, epoch=self.epochs_observed, kind=MIGRATION_QUARANTINED,
                detail=(
                    f"{reason}; restored {displaced} displaced pages "
                    f"({restore_bytes} bytes) to the static mapping"
                ),
                recovered=False,
            )
        )

    def _shadow_quarantine(self, now: int) -> None:
        """Mirror the quarantine's physical copy-home in the shadow.

        The table already reflects an in-flight plan's final mapping
        (plans apply their table ops atomically when scheduled), and the
        quarantine's copy-home is modelled as instantaneous — so the
        in-flight plan's remaining copies drain first rather than being
        torn, keeping the shadow aligned with the table the recovery
        plan is computed from. An audit-path quarantine on an
        unrepairable table is best-effort: if the corrupt state no
        longer resolves a surviving copy for some page, that page's data
        is lost and later reads will record violations.
        """
        horizon = now
        if self.active is not None:
            horizon = max(horizon, self.active.end)
        self.shadow.flush(horizon)
        self.shadow.drop_pending()
        try:
            target = self._reset_target_table()
            steps = recovery_plan(self.table, [], target_table=target)
        except (MigrationError, TranslationTableError):
            return
        for step in steps:
            self.shadow.apply_copy(step.src, step.dst)

    def _reset_target_table(self) -> TranslationTable:
        """A fresh table in the exact state :meth:`TranslationTable.
        reset_identity` produces — retirement (which quarantine cannot
        undo: the frames are physically dead) carried over."""
        target = TranslationTable(
            self.amap, reserve_empty_slot=False,
            reserved_pages=self.table.reserved_pages,
        )
        for slot in sorted(self.table.remap):
            target.retire_slot(slot, self.table.remap[slot])
        if self.table._reserve_empty_slot:
            usable = np.flatnonzero(~target.retired)
            if usable.size == 0:
                raise TranslationTableError(
                    "every on-package frame is retired; no empty slot possible"
                )
            target.set_empty(int(usable[-1]))
        return target

    def inject_abort(self, at_copy_step: int, *, subblocks: int = 0) -> None:
        """Arm a one-shot fault: the next scheduled swap aborts at the
        given copy step (modulo the plan's copy count). ``subblocks``
        lands that many sub-blocks first when the step is a Live fill
        (a micro-boundary abort)."""
        self._abort_at_step = int(at_copy_step)
        self._abort_subblocks = int(subblocks)

    def _evaluate_swap(self, now: int) -> SwapDecision:
        if self.active is not None and self.active.in_flight(now):
            self.swaps_suppressed_busy += 1
            self.monitor.new_epoch()
            return SwapDecision(False, "previous swap still in flight (P/F busy)")

        wear_penalty = None
        if self.wear is not None and self.wear.penalty_weight > 0:
            # endurance-aware candidate ranking: penalise pages whose
            # off-package machine frame has absorbed many writes (the
            # demoted LRU page would be written right back onto it)
            wear_penalty = lambda pages: self.wear.penalty(  # noqa: E731
                self.table.machine_of[np.asarray(pages, dtype=np.int64)]
            )
        score_penalty = wear_penalty
        if self.disturb is not None and self.disturb.bias_weight > 0:
            # hammer-aware ranking: an aggressor page's *negative*
            # penalty (a bonus) pulls it on-package, where disturbance
            # is cheap to mitigate; composes with the wear penalty
            score_penalty = lambda pages, _wear=wear_penalty: (  # noqa: E731
                -self.disturb.page_bonus(pages)
                if _wear is None
                else _wear(pages) - self.disturb.page_bonus(pages)
            )
        hottest = self.monitor.hottest_page(wear_penalty=score_penalty)
        if hottest is None:
            self.monitor.new_epoch()
            return SwapDecision(False, "no off-package accesses this epoch")
        mru_page, mru_count = hottest

        # never migrate the reserved ghost page
        if mru_page == self.amap.ghost_page:
            self.monitor.new_epoch()
            return SwapDecision(False, "hottest page is the reserved Ω page")

        # nor a RAS spare, nor a page whose home frame is retired (it
        # lives at its spare for good; promoting it would need a frame
        # its pairing invariant no longer has)
        if mru_page in self.table.reserved_pages:
            self.monitor.new_epoch()
            return SwapDecision(False, "hottest page is a reserved spare page")
        if self.table.is_retired_home(mru_page):
            self.monitor.new_epoch()
            return SwapDecision(
                False, f"hottest page {mru_page}'s home frame is retired"
            )

        # the page may have finished migrating on-package during the very
        # epoch whose counts flagged it (it was served off-package while
        # its fill was in flight) — hardware drops it from the multi-queue
        # at migration time; here we skip the stale candidate
        if bool(self.table.onpkg[mru_page]):
            self.monitor.new_epoch()
            return SwapDecision(False, f"hottest page {mru_page} already on-package")

        qos_veto: str | None = None
        qos_exclude: set[int] = set()
        if self.qos is not None:
            qos_veto, qos_exclude = self.qos.constrain(mru_page)
        if qos_veto is not None:
            self.swaps_suppressed_qos += 1
            self.monitor.new_epoch()
            return SwapDecision(False, f"QoS: {qos_veto}", mru=mru_page)

        empty = self.table.empty_slot()
        exclude = set(self.table.retired_slots())
        if empty is not None:
            exclude.add(empty)
        if len(exclude) >= self.table.n_slots:
            # degenerate geometry: every slot is retired or the empty
            # one — there is nothing to demote, so nothing to swap
            self.monitor.new_epoch()
            return SwapDecision(False, "no occupied on-package slot to demote")
        if qos_exclude:
            exclude |= qos_exclude
            if len(exclude) >= self.table.n_slots:
                # at quota with no own slot to recycle: suppress
                self.swaps_suppressed_qos += 1
                self.monitor.new_epoch()
                return SwapDecision(
                    False,
                    "QoS: every demotion candidate is excluded",
                    mru=mru_page,
                )
        lru_slot = self.monitor.coldest_slot(exclude=exclude)
        lru_page = self.table.page_in_slot(lru_slot)
        if lru_page == EMPTY:
            self.monitor.new_epoch()
            return SwapDecision(False, "coldest slot is empty")

        if self.config.hottest_coldest_trigger:
            lru_count = self.monitor.slot_epoch_count(lru_slot)
            if mru_count <= lru_count:
                self.swaps_suppressed_cold += 1
                self.monitor.new_epoch()
                return SwapDecision(
                    False,
                    f"MRU count {mru_count} <= LRU count {lru_count}",
                    mru=mru_page,
                    lru=lru_page,
                )

        first_subblock = self._mru_first_subblock(mru_page)
        self._schedule(now, mru_page, lru_page, first_subblock)
        self.monitor.new_epoch()
        return SwapDecision(True, "hottest-coldest swap", mru=mru_page, lru=lru_page)

    # ------------------------------------------------------------------
    def _copy_cycles(self, step: CopyStep) -> int:
        bw = (
            self.bus.offpkg_bytes_per_cycle
            if step.cross_boundary
            else self.bus.onpkg_bytes_per_cycle
        )
        return max(1, int(round(step.nbytes / bw)))

    def _copy_duration(self, start: int, step: CopyStep) -> int:
        """Wall duration of one copy starting at ``start``.

        The bus-limited transfer time, stretched by any tRFC window of
        the DRAM regions the step touches: a swap copy landing on a
        refreshing bank stalls until the window closes. A cross-boundary
        step touching both regions takes the worse of the two stretches
        (the transfer cannot proceed while either end is refreshing).
        """
        base = self._copy_cycles(step)
        if self.onpkg_refresh is None and self.offpkg_refresh is None:
            return base
        touches_on = touches_off = False
        for loc in (step.src, step.dst):
            if loc is None:
                continue
            touches_on |= loc[0] == "slot"
            touches_off |= loc[0] == "mach"
        duration = base
        if touches_on and self.onpkg_refresh is not None:
            duration = max(duration, self.onpkg_refresh.stretch(start, base))
        if touches_off and self.offpkg_refresh is not None:
            duration = max(duration, self.offpkg_refresh.stretch(start, base))
        return duration

    def _schedule(self, now: int, mru: int, lru: int, first_subblock: int) -> None:
        cfg = self.config
        if cfg.algorithm == MigrationAlgorithm.N:
            plan = build_basic_swap_steps(self.table, mru, lru)
        else:
            plan = build_swap_steps(self.table, mru, lru)
        live = cfg.algorithm == MigrationAlgorithm.LIVE

        # an armed abort fires at a chosen copy step (one-shot); the
        # snapshot makes plan application transactional, so a torn swap
        # rolls back instead of leaving a half-written table
        abort_at: int | None = None
        abort_subblocks = 0
        if self._abort_at_step is not None:
            n_copies = sum(1 for s in plan.steps if isinstance(s, CopyStep))
            abort_at = self._abort_at_step % max(1, n_copies)
            abort_subblocks = self._abort_subblocks
            self._abort_at_step = None
            self._abort_subblocks = 0
        snapshot = self.table.state_dict()

        affected = self._affected_pages(plan)
        # walk the plan, applying updates eagerly and recording when each
        # affected page's resolution changes; entry 0 is the pre-swap state
        before = {p: self.table.resolve(p) for p in affected}
        t_begin = np.int64(-(1 << 62))
        timelines: dict[int, list[tuple[int, bool, int]]] = {
            p: [(int(t_begin), before[p][0], before[p][1])] for p in affected
        }
        t = now
        fill: FillInfo | None = None
        incoming_end = None
        copy_index = 0
        crit_first = first_subblock if cfg.critical_block_first else 0
        #: copy prefix actually executed, as (src, dst, complete) — the
        #: recovery planner replays it over the pre-swap content map
        executed: list[tuple] = []
        #: time-stamped shadow ops mirroring every executed copy
        shadow_ops: list[tuple[int, str, tuple]] = []
        try:
            for step in plan.steps:
                if isinstance(step, CopyStep):
                    if abort_at is not None and copy_index == abort_at:
                        detail = ""
                        if live and step.incoming and abort_subblocks > 0:
                            # micro-boundary abort: part of the Live fill
                            # already landed (destination is garbage as a
                            # whole page, hence complete=False)
                            duration = self._copy_duration(t, step)
                            n_sb = self.amap.subblocks_per_page
                            sbc = max(1, duration // n_sb)
                            landed = min(int(abort_subblocks), n_sb - 1)
                            order = tuple(
                                (crit_first + k) % n_sb for k in range(landed)
                            )
                            executed.append((step.src, step.dst, False))
                            adv = min(landed * sbc, duration)
                            shadow_ops.append(
                                (t + adv, "copy", (step.src, step.dst, order))
                            )
                            t += adv
                            detail = f" after {landed} landed sub-block(s)"
                        raise FaultInjectionError(
                            f"swap {plan.case.value} aborted at copy step "
                            f"{copy_index} ({step.label}){detail}"
                        )
                    copy_index += 1
                    duration = self._copy_duration(t, step)
                    if step.incoming:
                        n_sb = self.amap.subblocks_per_page
                        fill = FillInfo(
                            page=plan.mru,
                            slot=step.dest_slot,
                            start=t,
                            end=t + duration,
                            subblock_cycles=max(1, duration // n_sb),
                            n_subblocks=n_sb,
                            first_subblock=crit_first,
                            live=live,
                            old_onpkg=before[plan.mru][0],
                            old_machine=before[plan.mru][1],
                        )
                        incoming_end = t + duration
                    if self.shadow is not None:
                        self._collect_shadow_copy(
                            shadow_ops, step, t, duration,
                            live and step.incoming, crit_first,
                        )
                    executed.append((step.src, step.dst, True))
                    t += duration
                    # a completed incoming copy clears the F bit
                    if step.incoming and self.table.filling:
                        self.table.end_fill()
                        self._record_changes(timelines, before, t)
                else:
                    if cfg.os_assisted:
                        # the OS periodic routine performs the table update: a
                        # user/kernel round trip before the new mapping is live
                        t += cfg.os_update_cycles
                    step.apply(self.table)
                    self._record_changes(timelines, before, t)
        except (FaultInjectionError, TranslationTableError) as exc:
            # the executed copy prefix physically happened: it wore its
            # destinations regardless of how the abort is handled
            self._observe_copy_wear(executed)
            recovered = False
            if self.resilience.data_safe_abort:
                end = self._recover_abort(
                    now, t, snapshot, executed, shadow_ops, exc
                )
                # the copy-back window stalls execution like an N-design
                # exchange; the table is already back at the snapshot
                self.active = ActiveMigration(
                    plan=plan, start=now, end=end, fill=None, timelines={},
                    recovery=True,
                )
                recovered = isinstance(exc, FaultInjectionError)
            else:
                if self.shadow is not None:
                    # bare rollback: the executed copies physically
                    # happened — mirror them so the shadow exposes
                    # exactly what the memory now holds
                    self.shadow.flush(now)
                    for _, kind, payload in shadow_ops:
                        if kind == "copy":
                            self.shadow.apply_copy(*payload)
                self.table.load_state_dict(snapshot)
            raise SwapAbortError(str(exc), recovered=recovered) from exc

        if plan.stall:
            # N design: the table is updated only once data finished moving,
            # and execution halts — every affected page flips at `now` from
            # the observer's perspective (nothing runs during the window)
            for page, tl in timelines.items():
                final = tl[-1]
                timelines[page] = [tl[0], (now, final[1], final[2])]

        if self.shadow is not None:
            if plan.stall:
                # nothing executes during the window: data and routing
                # flip together at `now`, and no forwarding link is ever
                # observable
                for _, kind, payload in shadow_ops:
                    if kind == "copy":
                        self.shadow.schedule(now, "copy", payload)
                self.shadow.schedule(now, "close", ())
            else:
                for op_t, kind, payload in shadow_ops:
                    self.shadow.schedule(op_t, kind, payload)
                # the plan's table updates are all live at its end: the
                # copy engine quiesces and its forwarding links die
                self.shadow.schedule(t, "close", ())

        self._observe_copy_wear(executed)
        self.active = ActiveMigration(
            plan=plan, start=now, end=t, fill=None if plan.stall else fill,
            timelines=timelines,
        )
        self.swaps_triggered += 1
        self.migrated_bytes += plan.total_copy_bytes
        self.cross_boundary_bytes += plan.cross_boundary_bytes
        if incoming_end is None:
            raise MigrationError("swap plan has no incoming copy")  # pragma: no cover

    def _observe_copy_wear(self, executed: list[tuple]) -> None:
        """Count executed copies' destination writes in the wear model.

        Every plan copy moves one whole macro page; destinations in the
        off-package array (``("mach", p)``) wear that machine frame.
        """
        if self.wear is None:
            return
        for _src, dst, _complete in executed:
            if dst is not None and dst[0] == "mach":
                self.wear.observe_copy(dst[1], self.amap.macro_page_bytes)

    # ------------------------------------------------------------------
    # RAS predictive frame retirement
    # ------------------------------------------------------------------
    def retire_frame(self, now: int, slot: int, spare: int) -> int:
        """Permanently retire on-package frame ``slot``, copying its data
        out first: the occupant page goes home, the slot's own page is
        re-homed at the reserved ``spare`` machine page.

        The copies run under stall (a plan-less recovery-style window,
        like a data-safe abort's copy-back), then the table update is
        atomic via :meth:`TranslationTable.retire_slot`. Returns the
        cycle the copy-out window closes. The caller (the RAS
        controller) enforces the retirement *policy* — spare budget,
        minimum usable frames, not the empty slot; this method enforces
        only mechanical soundness (quiescence, no quarantine).
        """
        from ..ras.retirement import retirement_moves

        if self.quarantined:
            raise MigrationError("engine is quarantined; cannot retire frames")
        if self.active is not None and self.active.in_flight(now):
            raise MigrationError(
                "a swap is in flight (P/F busy); retirement must wait"
            )
        steps = retirement_moves(
            self.table, slot, spare, self.amap.macro_page_bytes
        )
        if self.shadow is not None:
            # the copy-out runs under stall: nothing executes inside the
            # window, so the data lands synchronously
            self.shadow.flush(now)
            for step in steps:
                self.shadow.apply_copy(step.src, step.dst)
        occupant = self.table.retire_slot(slot, spare)
        if self.wear is not None:
            for step in steps:
                if step.dst is not None and step.dst[0] == "mach":
                    self.wear.observe_copy(step.dst[1], step.nbytes)
        end = now
        for s in steps:
            end += self._copy_duration(end, s)
        nbytes = sum(s.nbytes for s in steps)
        self.active = ActiveMigration(
            plan=None, start=now, end=end, fill=None, timelines={},
            recovery=True,
        )
        self.frames_retired += 1
        self.retired_bytes += nbytes
        self.degradation_events.append(
            DegradationEvent(
                time=now, epoch=self.epochs_observed, kind=FRAME_RETIRED,
                detail=(
                    f"frame {slot} retired (occupant page {occupant} sent "
                    f"home, page {slot} re-homed at spare {spare}); "
                    f"{nbytes} bytes copied, stalled until cycle {end}; "
                    f"{self.table.n_usable_slots} usable frames remain"
                ),
                recovered=True,
            )
        )
        return end

    # ------------------------------------------------------------------
    # multi-tenant domain reclamation
    # ------------------------------------------------------------------
    def forget_pages(self, pages, slots=()) -> None:
        """Drop released pages from the trigger's candidate state.

        The epoch fold (:meth:`observe_epoch`) runs before the
        boundary's :meth:`maybe_swap`, and a tenant release is legal in
        between: without this purge the monitor's ``np.unique``-derived
        page arrays — and the critical-block recency arrays kept beside
        them — could nominate a page whose tenant is gone, promoting a
        dead page into a live slot.
        """
        parr = np.array(sorted({int(p) for p in pages}), dtype=np.int64)
        self.monitor.forget_pages(parr, slots=slots)
        if self._last_sb_pages is not None and parr.size:
            keep = ~np.isin(self._last_sb_pages, parr)
            if not bool(keep.all()):
                self._last_sb_pages = self._last_sb_pages[keep]
                self._last_sb_vals = self._last_sb_vals[keep]
                if self._last_sb_pages.size == 0:
                    self._last_sb_pages = None
                    self._last_sb_vals = None

    def release_tenant(self, now: int, pages, *, scrub: bool = True) -> int:
        """Reclaim a departed tenant's translation state (hypervisor path).

        Every transposition involving one of ``pages`` is undone to the
        identity mapping via :meth:`TranslationTable.release_pages`,
        with the surviving partner page's data copied home first; the
        copies run under a plan-less stall window exactly like a frame
        retirement's copy-out. ``scrub`` models hypervisor zero-fill of
        the freed pages (scrub-on-free) in the data shadow; disabling
        it lets tests demonstrate cross-tenant data leaks. Returns the
        cycle the reclamation window closes.
        """
        if self.active is not None and self.active.in_flight(now):
            raise MigrationError(
                "a swap is in flight (P/F busy); reclamation must wait"
            )
        outcome = self.table.release_pages(pages)
        if self.shadow is not None:
            # the copies run under stall: nothing executes inside the
            # window, so the data lands synchronously
            self.shadow.flush(now)
            for src, dst in outcome.moves:
                self.shadow.apply_copy(src, dst)
            if scrub:
                for p in sorted({int(q) for q in pages}):
                    on, machine = self.table.resolve(p)
                    loc = ("slot", machine) if on else ("mach", machine)
                    self.shadow.scrub_page(p, loc)
        end = now
        nbytes = 0
        for src, dst in outcome.moves:
            step = CopyStep(
                label="reclaim",
                nbytes=self.amap.macro_page_bytes,
                cross_boundary=not (src[0] == "slot" and dst[0] == "slot"),
                src=src,
                dst=dst,
            )
            if self.wear is not None and dst[0] == "mach":
                self.wear.observe_copy(dst[1], step.nbytes)
            end += self._copy_duration(end, step)
            nbytes += step.nbytes
        if outcome.moves:
            self.active = ActiveMigration(
                plan=None, start=now, end=end, fill=None, timelines={},
                recovery=True,
            )
        self.forget_pages(pages, slots=outcome.undone_slots)
        self.tenants_released += 1
        self.reclaimed_bytes += nbytes
        return end

    def _collect_shadow_copy(
        self,
        ops: list[tuple[int, str, tuple]],
        step: CopyStep,
        start: int,
        duration: int,
        live_fill: bool,
        first_subblock: int,
    ) -> None:
        """Translate one executed copy into time-stamped shadow ops.

        A Live fill lands sub-block by sub-block in critical-first
        wraparound order (mirroring :meth:`FillInfo.available_at`, with
        land times capped at the copy's end); any other copy lands whole
        at its end. A fully-landed copy opens a write-forwarding link.
        """
        end = start + duration
        if live_fill:
            n_sb = self.amap.subblocks_per_page
            sbc = max(1, duration // n_sb)
            for k in range(n_sb):
                sb = (first_subblock + k) % n_sb
                ops.append(
                    (min(start + (k + 1) * sbc, end), "copy",
                     (step.src, step.dst, (sb,)))
                )
        else:
            ops.append((end, "copy", (step.src, step.dst, None)))
        ops.append((end, "link", (step.src, step.dst)))

    def _recover_abort(
        self,
        now: int,
        t_abort: int,
        snapshot: dict,
        executed: list[tuple],
        shadow_ops: list[tuple[int, str, tuple]],
        exc: Exception,
    ) -> int:
        """Data-safe late abort: copy surviving duplicates home, then
        restore the pre-swap table.

        A bare table rollback restores *routing* but not *data*: past
        the Ω-resolution copy the victim page's home bytes are already
        overwritten, so the rolled-back table would route reads at dead
        data (the protocol checker's ``valid-copy`` counterexample) —
        and an N-design exchange torn between copies strands a page's
        only live copy in the bounce buffer under a bit-identical table.
        The recovery planner replays the executed copy prefix over the
        pre-swap content map and emits copy-back moves, preferring the
        surviving on-package duplicate; their transfer time stalls
        execution exactly like an N-design exchange. Returns the cycle
        the copy-back window closes.
        """
        pre = TranslationTable(
            self.amap, reserve_empty_slot=self.table._reserve_empty_slot,
            reserved_pages=self.table.reserved_pages,
        )
        pre.load_state_dict(snapshot)
        try:
            steps = recovery_plan(pre, executed, prefer_table=self.table)
        except (MigrationError, TranslationTableError):  # pragma: no cover
            # unrepairable mid-state; fall back to bare rollback (the
            # shadow, if tracking, will expose whatever was lost)
            steps = []
        if self.shadow is not None:
            # everything up to the abort physically happened, and the
            # copy-back runs under stall — apply both synchronously
            self.shadow.flush(now)
            for _, kind, payload in shadow_ops:
                if kind == "copy":
                    self.shadow.apply_copy(*payload)
            for step in steps:
                self.shadow.apply_copy(step.src, step.dst)
        self.table.load_state_dict(snapshot)
        end = t_abort
        for s in steps:
            end += self._copy_duration(end, s)
        nbytes = sum(s.nbytes for s in steps)
        self.abort_recoveries += 1
        self.recovery_bytes += nbytes
        self.degradation_events.append(
            DegradationEvent(
                time=now, epoch=self.epochs_observed, kind=ABORT_RECOVERED,
                detail=(
                    f"{exc}; {len(steps)} copy-back step(s), {nbytes} bytes, "
                    f"stalled until cycle {end}"
                ),
                recovered=True,
            )
        )
        return end

    def _affected_pages(self, plan: SwapPlan) -> set[int]:
        pages = {plan.mru, plan.lru}
        empty = self.table.empty_slot()
        if empty is not None:
            pages.add(empty)  # the ghost page
        for page in (plan.mru, plan.lru):
            if page < self.table.n_slots:
                # identity home: a low page id doubles as its home slot id
                partner = self.table.page_in_slot(page)  # repro-lint: disable=domain-confusion
                if partner != EMPTY:
                    pages.add(partner)
            slot = self.table.slot_of(page)
            if slot is not None:
                pages.add(slot)  # the slot's own (possibly MS/ghost) page
        pages.discard(EMPTY)
        return pages

    def _record_changes(
        self,
        timelines: dict[int, list[tuple[int, bool, int]]],
        before: dict[int, tuple[bool, int]],
        t: int,
    ) -> None:
        for page, old in before.items():
            new = self.table.resolve(page)
            if new != old:
                timelines[page].append((t, new[0], new[1]))
                before[page] = new

    # ------------------------------------------------------------------
    @property
    def busy_until(self) -> int:
        return self.active.end if self.active is not None else 0

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Complete mutable engine state (table, monitor, in-flight swap)."""
        return {
            "table": self.table.state_dict(),
            "monitor": self.monitor.state_dict(),
            "active": self.active,
            "swaps_triggered": self.swaps_triggered,
            "swaps_suppressed_busy": self.swaps_suppressed_busy,
            "swaps_suppressed_cold": self.swaps_suppressed_cold,
            "swaps_suppressed_qos": self.swaps_suppressed_qos,
            "swaps_failed": self.swaps_failed,
            "migrated_bytes": self.migrated_bytes,
            "cross_boundary_bytes": self.cross_boundary_bytes,
            "quarantined": self.quarantined,
            "consecutive_failures": self.consecutive_failures,
            "degradation_events": list(self.degradation_events),
            "epochs_observed": self.epochs_observed,
            "abort_at_step": self._abort_at_step,
            "abort_subblocks": self._abort_subblocks,
            "abort_recoveries": self.abort_recoveries,
            "recovery_bytes": self.recovery_bytes,
            "frames_retired": self.frames_retired,
            "retired_bytes": self.retired_bytes,
            "tenants_released": self.tenants_released,
            "reclaimed_bytes": self.reclaimed_bytes,
            "last_subblock": (
                {}
                if self._last_sb_pages is None
                else dict(
                    zip(self._last_sb_pages.tolist(), self._last_sb_vals.tolist())
                )
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        self.table.load_state_dict(state["table"])
        self.monitor.load_state_dict(state["monitor"])
        self.active = state["active"]
        self.swaps_triggered = state["swaps_triggered"]
        self.swaps_suppressed_busy = state["swaps_suppressed_busy"]
        self.swaps_suppressed_cold = state["swaps_suppressed_cold"]
        # .get(): checkpoints written before the tenancy subsystem
        self.swaps_suppressed_qos = state.get("swaps_suppressed_qos", 0)
        self.swaps_failed = state["swaps_failed"]
        self.migrated_bytes = state["migrated_bytes"]
        self.cross_boundary_bytes = state["cross_boundary_bytes"]
        self.quarantined = state["quarantined"]
        self.consecutive_failures = state["consecutive_failures"]
        self.degradation_events = list(state["degradation_events"])
        self.epochs_observed = state["epochs_observed"]
        self._abort_at_step = state["abort_at_step"]
        # .get(): checkpoints written before data-safe abort recovery
        self._abort_subblocks = state.get("abort_subblocks", 0)
        self.abort_recoveries = state.get("abort_recoveries", 0)
        self.recovery_bytes = state.get("recovery_bytes", 0)
        self.frames_retired = state.get("frames_retired", 0)
        self.retired_bytes = state.get("retired_bytes", 0)
        self.tenants_released = state.get("tenants_released", 0)
        self.reclaimed_bytes = state.get("reclaimed_bytes", 0)
        sb = dict(state["last_subblock"])
        if sb:
            pages = np.array(sorted(sb), dtype=np.int64)
            self._last_sb_pages = pages
            self._last_sb_vals = np.array(
                [sb[p] for p in pages.tolist()], dtype=np.int64
            )
        else:
            self._last_sb_pages = None
            self._last_sb_vals = None
