"""Hardware and OS cost models (Section III-B, Fig 10).

The pure-hardware scheme's cost is the translation table (28 bits per
entry at 4 MB pages: a 26-bit right column + P + F), the fill bitmap
(one bit per sub-block) and the replacement state (clock bitmap + the
780-bit multi-queue). The paper's reference point: 1 GB on-package at
4 MB granularity needs 9,228 bits; the count explodes as the macro page
shrinks (Fig 10), which is why sub-1 MB granularities go OS-assisted.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..address import PHYSICAL_ADDRESS_BITS
from ..errors import ConfigError
from ..units import log2_exact


@dataclass(frozen=True)
class HardwareCost:
    """Bit-level cost breakdown of the pure-hardware scheme."""

    n_entries: int
    bits_per_entry: int
    table_bits: int
    fill_bitmap_bits: int
    plru_bits: int
    multiqueue_bits: int

    @property
    def total_bits(self) -> int:
        return self.table_bits + self.fill_bitmap_bits + self.plru_bits + self.multiqueue_bits


def hardware_bits(
    onpkg_bytes: int,
    macro_page_bytes: int,
    *,
    subblock_bytes: int = 4096,
    address_bits: int = PHYSICAL_ADDRESS_BITS,
    mq_levels: int = 3,
    mq_capacity: int = 10,
) -> HardwareCost:
    """Hardware cost of managing ``onpkg_bytes`` at a given granularity.

    Reproduces Fig 10 (and the 9,228-bit example: 1 GB at 4 MB pages).
    """
    if macro_page_bytes > onpkg_bytes:
        raise ConfigError("macro page larger than the on-package region")
    n_entries = onpkg_bytes // macro_page_bytes
    offset_bits = log2_exact(macro_page_bytes)
    page_id_bits = address_bits - offset_bits          # right column width
    bits_per_entry = page_id_bits + 2                  # + P bit + F bit
    fill_bitmap_bits = max(1, macro_page_bytes // subblock_bytes)
    plru_bits = n_entries                              # clock: 1 bit per slot
    multiqueue_bits = mq_levels * mq_capacity * page_id_bits
    return HardwareCost(
        n_entries=n_entries,
        bits_per_entry=bits_per_entry,
        table_bits=n_entries * bits_per_entry,
        fill_bitmap_bits=fill_bitmap_bits,
        plru_bits=plru_bits,
        multiqueue_bits=multiqueue_bits,
    )


def translation_cycles(os_assisted: bool, *, hw_cycles: int = 2) -> int:
    """Per-access cost of the extra translation layer.

    The RAM+CAM table conservatively adds 2 cycles per access. Under the
    OS-assisted scheme the table lives in software but steady-state
    lookups still go through a hardware remap register/TLB-like path, so
    the per-access cost is the same; the OS pays per *update* instead
    (see :func:`os_assisted_update_cycles`).
    """
    return hw_cycles


def os_assisted_update_cycles(
    n_table_updates: int, *, switch_cycles: int = 127
) -> int:
    """OS overhead of one swap: each table update is a user/kernel round
    trip (~127 cycles [19]) performed by the periodic OS routine."""
    if n_table_updates < 0:
        raise ConfigError("n_table_updates must be non-negative")
    return n_table_updates * switch_cycles
