"""Data-safe late-abort recovery: copy-back plan computation.

ROADMAP's open hazard: the engine's transactional table rollback alone
is only data-safe when a swap aborts *before* the Ω-resolution copy.
After it, the incoming page's old home has been overwritten, and the
restored routing points at dead data (the protocol checker's
``valid-copy`` counterexample). Worse, the basic N design moves data
*before* its table update, so an exchange torn between copies leaves
the table bit-identical to its snapshot while a page's only live copy
sits in the controller's bounce buffer.

Recovery therefore cannot diff table states; it has to reason about
where each page's current data physically is:

1. seed a *content map* (machine location -> page) from the pre-swap
   table — at schedule time every page has exactly one live copy, at
   its resolved location;
2. replay the executed copy prefix over the map (a completed copy
   duplicates its source page at the destination; a partial Live fill
   leaves the destination garbage);
3. for every page whose pre-swap home no longer holds its data, emit a
   copy from a surviving duplicate back home.

The emitted moves form a partial permutation over locations (targets
are distinct pre-swap resolutions, sources are distinct current
holders), so they are ordered destination-before-source-overwrite;
cycles (a swapped pair both needing their homes back, the quarantine
``reset_identity`` case) are broken by staging one page through the
controller's bounce buffer ``("buf", 0)`` — which is provably free by
then, because the buffer is never a copy-back *target* and therefore
always sits on an acyclic chain that drains before any cycle must be
broken.

Both the runtime engine (:meth:`~repro.migration.engine.MigrationEngine`)
and the protocol model checker
(:func:`repro.analysis.protocol.fault_invariant_analysis`) compute
their recovery from this one module, so the model checks exactly the
moves the engine performs.
"""

from __future__ import annotations

from ..errors import MigrationError
from .algorithms import CopyStep, Location
from .table import TranslationTable

#: the controller-side bounce buffer (also used by the N design's
#: stalling exchanges)
BUFFER: Location = ("buf", 0)


def _loc(resolution: tuple[bool, int]) -> Location:
    on, machine = resolution
    return ("slot", machine) if on else ("mach", machine)


def _data_pages(table: TranslationTable) -> list[int]:
    """Every macro page that carries data.

    The reserved Ω page does not, and neither do the RAS spare pages:
    a spare's *machine* frame holds a retired page's data, which the
    content map reaches through that retired page's resolution — the
    spare's own physical-page id is outside the trace address space.
    """
    dead = table.reserved_pages | {table.amap.ghost_page}
    return [p for p in range(table.amap.n_total_pages) if p not in dead]


def content_of_table(table: TranslationTable) -> dict[Location, int]:
    """Location -> page map of a quiescent (or mid-fill) table.

    Whole-page resolution is used on purpose: a filling page still
    resolves to its fully-valid old copy, so the map never claims a
    half-landed fill as a live copy.
    """
    return {_loc(table.resolve(p)): p for p in _data_pages(table)}


def apply_executed_copies(
    content: dict[Location, int | None],
    executed: list[tuple[Location, Location, bool]],
) -> None:
    """Replay a plan's executed copy prefix over a content map, in order.

    ``executed`` entries are ``(src, dst, complete)``; an incomplete
    copy (a Live fill torn mid-stream) leaves the destination garbage.
    """
    for src, dst, complete in executed:
        content[dst] = content.get(src) if complete else None


def recovery_moves(
    content: dict[Location, int | None],
    target_of: dict[int, Location],
    page_bytes: int,
    *,
    prefer: dict[int, Location] | None = None,
) -> list[CopyStep]:
    """Copy steps returning every page to its target location.

    ``content`` maps each machine location to the page whose *current*
    data it holds (``None``/absent = garbage); ``target_of`` maps each
    page to where it must end up (its pre-swap resolution, or its home
    for the quarantine path). ``prefer`` optionally names, per page, the
    source location to copy from when several duplicates survive (the
    engine passes the aborted mid-state's resolution — the paper's
    "surviving on-package duplicate").

    The returned steps are safe to execute in order: no step overwrites
    a location another pending step still needs to read.
    """
    holders: dict[int, list[Location]] = {}
    for loc, page in content.items():
        if page is not None:
            holders.setdefault(page, []).append(loc)

    #: src -> (dst, page); sources and destinations are each distinct
    pending: dict[Location, tuple[Location, int]] = {}
    for page, target in target_of.items():
        if content.get(target) == page:
            continue
        candidates = holders.get(page)
        if not candidates:
            raise MigrationError(
                f"no surviving copy of page {page} to recover from"
            )
        src = None
        if prefer is not None and prefer.get(page) in candidates:
            src = prefer[page]
        if src is None or src == BUFFER:
            # deterministic choice; the bounce buffer only as last resort
            table_locs = sorted(c for c in candidates if c != BUFFER)
            src = table_locs[0] if table_locs else BUFFER
        if src in pending:  # pragma: no cover - sources are distinct
            raise MigrationError(f"two pages claim recovery source {src}")
        pending[src] = (target, page)

    def step(page: int, src: Location, dst: Location) -> CopyStep:
        return CopyStep(
            f"recover page {page}: {src[0]} {src[1]} -> {dst[0]} {dst[1]}",
            page_bytes,
            cross_boundary="mach" in (src[0], dst[0]),
            src=src,
            dst=dst,
        )

    steps: list[CopyStep] = []
    while pending:
        progress = False
        for src in list(pending):
            dst, page = pending[src]
            if dst not in pending:  # destination is no one's unread source
                steps.append(step(page, src, dst))
                del pending[src]
                progress = True
        if progress:
            continue
        # only cycles remain; break one by staging through the bounce
        # buffer (never a target, so its chain drained above)
        if BUFFER in pending:  # pragma: no cover - see module docstring
            raise MigrationError("bounce buffer busy while breaking a cycle")
        src = sorted(pending)[0]
        dst, page = pending[src]
        steps.append(step(page, src, BUFFER))
        del pending[src]
        pending[BUFFER] = (dst, page)
    return steps


def recovery_plan(
    pre_table: TranslationTable,
    executed: list[tuple[Location, Location, bool]],
    *,
    target_table: TranslationTable | None = None,
    prefer_table: TranslationTable | None = None,
) -> list[CopyStep]:
    """Convenience wrapper: recovery moves for an aborted swap.

    ``pre_table`` is the pre-swap snapshot state (a table the caller
    reconstructed from the engine's snapshot); ``executed`` the copy
    prefix the aborted plan performed. ``target_table`` defaults to the
    pre-swap table itself (abort recovery); the quarantine path passes a
    boot-identity table instead. ``prefer_table`` (the aborted
    mid-state) picks which duplicate to copy from.
    """
    content: dict[Location, int | None] = dict(content_of_table(pre_table))
    apply_executed_copies(content, executed)
    target = target_table if target_table is not None else pre_table
    target_of = {p: _loc(target.resolve(p)) for p in _data_pages(target)}
    prefer = None
    if prefer_table is not None:
        prefer = {
            p: _loc(prefer_table.resolve(p)) for p in _data_pages(prefer_table)
        }
    page_bytes = pre_table.amap.macro_page_bytes
    return recovery_moves(content, target_of, page_bytes, prefer=prefer)
