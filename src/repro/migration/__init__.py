"""The migration layer — the paper's primary contribution.

A second level of address translation (physical page -> machine page)
lives in the on-chip memory controller. The
:class:`~repro.migration.table.TranslationTable` is the bidirectional
RAM/CAM structure of Fig 6/7/9 with its pending (P) and filling (F)
bits; :mod:`~repro.migration.algorithms` builds the exact step sequences
of Fig 8 for the four swap cases; :mod:`~repro.migration.policies`
implements the clock-pseudo-LRU coldest tracker and multi-queue hottest
tracker; :class:`~repro.migration.engine.MigrationEngine` monitors
epochs and drives hottest-coldest swaps under the N / N-1 / Live
Migration timing disciplines; :mod:`~repro.migration.overhead` prices
the hardware (Fig 10) and the OS-assisted alternative.
"""

from .table import EMPTY, PageCategory, TranslationTable
from .algorithms import CopyStep, SwapCase, TableUpdate, build_swap_steps, classify_case
from .policies import EpochMonitor, ExactPolicies
from .engine import ActiveMigration, MigrationEngine, SwapDecision
from .overhead import hardware_bits, os_assisted_update_cycles, translation_cycles

__all__ = [
    "EMPTY",
    "PageCategory",
    "TranslationTable",
    "SwapCase",
    "CopyStep",
    "TableUpdate",
    "classify_case",
    "build_swap_steps",
    "EpochMonitor",
    "ExactPolicies",
    "MigrationEngine",
    "ActiveMigration",
    "SwapDecision",
    "hardware_bits",
    "os_assisted_update_cycles",
    "translation_cycles",
]
