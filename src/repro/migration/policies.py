"""Hot/cold page tracking policies.

The hardware (Section III-B) tracks the on-package LRU macro page with a
clock-based pseudo-LRU bitmap (one bit per slot) and the off-package MRU
macro page with a 3-level x 10-entry multi-queue:

* :class:`ExactPolicies` — those exact structures, updated per access;
  used by the detailed simulator and the policy unit tests.
* :class:`EpochMonitor` — the vectorised equivalent used by the epoch
  simulator: coldest = on-package slot with the oldest last touch (what
  the clock hand converges to), hottest = off-package page with the
  highest epoch access count, recency-tie-broken (what the multi-queue
  surfaces). ``tests/test_policies.py`` checks the two agree on shared
  streams.
"""

from __future__ import annotations

import numpy as np

from ..cache.replacement import ClockPseudoLRU, MultiQueue
from ..errors import MigrationError


class ExactPolicies:
    """Per-access clock pseudo-LRU (slots) + multi-queue (off-pkg pages)."""

    def __init__(self, n_slots: int, *, mq_levels: int = 3, mq_capacity: int = 10):
        self.clock = ClockPseudoLRU(n_slots)
        self.mq = MultiQueue(mq_levels, mq_capacity)

    def observe(self, *, slot: int | None, offpkg_page: int | None) -> None:
        """Record one access: it hit a slot (on-package) XOR an off-package page."""
        if (slot is None) == (offpkg_page is None):
            raise MigrationError("exactly one of slot / offpkg_page must be given")
        if slot is not None:
            self.clock.touch(slot)
        else:
            self.mq.touch(offpkg_page)

    def coldest_slot(self) -> int:
        return self.clock.victim()

    def hottest_page(self) -> int | None:
        return self.mq.hottest()

    def forget_page(self, page: int) -> None:
        self.mq.forget(page)

    @property
    def state_bits(self) -> int:
        return self.clock.state_bits + self.mq.state_bits


class EpochMonitor:
    """Vectorised epoch statistics feeding the swap trigger.

    Keeps, across epochs, each slot's last-touch time and accumulates the
    current epoch's per-page counts for off-package accesses.
    """

    def __init__(self, n_slots: int):
        if n_slots <= 0:
            raise MigrationError("n_slots must be positive")
        self.n_slots = n_slots
        self.slot_last_touch = np.full(n_slots, -1, dtype=np.int64)
        self.slot_epoch_counts = np.zeros(n_slots, dtype=np.int64)
        self._off_pages = np.zeros(0, dtype=np.int64)
        self._off_counts = np.zeros(0, dtype=np.int64)
        self._off_last = np.zeros(0, dtype=np.int64)

    def observe_epoch(
        self,
        slots: np.ndarray,
        slot_times: np.ndarray,
        offpkg_pages: np.ndarray,
        off_times: np.ndarray,
    ) -> None:
        """Fold one epoch's accesses into the monitor (all arrays 1-D)."""
        off = np.asarray(offpkg_pages, dtype=np.int64)
        if off.size:
            pages, inverse, counts = np.unique(off, return_inverse=True, return_counts=True)
            last = np.zeros(pages.shape[0], dtype=np.int64)
            np.maximum.at(last, inverse, np.asarray(off_times, dtype=np.int64))
        else:
            pages = counts = last = np.zeros(0, dtype=np.int64)
        self.fold_epoch(slots, slot_times, pages, counts, last)

    def fold_epoch(
        self,
        slots: np.ndarray,
        slot_times: np.ndarray,
        off_pages: np.ndarray,
        off_counts: np.ndarray,
        off_last: np.ndarray,
    ) -> None:
        """:meth:`observe_epoch` with the off-package page aggregation
        (unique pages, per-page counts and last-touch times) already
        computed — the migration engine shares one ``np.unique`` pass
        between the monitor and its own recency bookkeeping."""
        slots = np.asarray(slots, dtype=np.int64)
        if slots.size:
            st = np.asarray(slot_times, dtype=np.int64)
            if bool((st[1:] >= st[:-1]).all()):
                # non-decreasing epoch times: a gather-max scatter's
                # last write per slot IS the per-slot maximum
                self.slot_last_touch[slots] = np.maximum(
                    self.slot_last_touch[slots], st
                )
            else:
                # last touch per slot: maximum time per slot id
                np.maximum.at(self.slot_last_touch, slots, st)
            self.slot_epoch_counts += np.bincount(slots, minlength=self.n_slots)
        self._off_pages = off_pages
        self._off_counts = off_counts
        self._off_last = off_last

    def coldest_slot(self, exclude: set[int] | None = None) -> int:
        """Slot with the oldest last touch (never-touched slots first)."""
        order = np.lexsort((np.arange(self.n_slots), self.slot_last_touch))
        if exclude:
            for s in order:
                if int(s) not in exclude:
                    return int(s)
            raise MigrationError("all slots excluded")
        return int(order[0])

    def hottest_page(self, wear_penalty=None) -> tuple[int, int] | None:
        """``(page, epoch_count)`` of the hottest off-package page.

        ``wear_penalty`` (RAS wear leveling) maps a page array to a
        per-page score penalty: candidates are ranked by
        ``count - penalty`` so a worn-out machine page loses the swap
        even when slightly hotter. The *returned* count is always the
        raw epoch count, so the hottest-coldest trigger comparison is
        unchanged. ``None`` keeps the selection bit-identical to the
        endurance-blind ranking.
        """
        if self._off_pages.size == 0:
            return None
        if wear_penalty is None:
            # highest count, most recent touch breaking ties
            idx = np.lexsort((self._off_last, self._off_counts))[-1]
        else:
            score = self._off_counts.astype(np.float64)
            score -= np.asarray(wear_penalty(self._off_pages), dtype=np.float64)
            idx = np.lexsort((self._off_last, score))[-1]
        return int(self._off_pages[idx]), int(self._off_counts[idx])

    def slot_epoch_count(self, slot: int) -> int:
        return int(self.slot_epoch_counts[slot])

    def new_epoch(self) -> None:
        self.slot_epoch_counts[:] = 0
        self._off_pages = np.zeros(0, dtype=np.int64)
        self._off_counts = np.zeros(0, dtype=np.int64)
        self._off_last = np.zeros(0, dtype=np.int64)

    def forget_pages(self, pages: np.ndarray, slots=()) -> None:
        """Purge released pages/slots from the monitor (tenant churn).

        The off-package fold (the ``np.unique``-derived page arrays set
        by :meth:`fold_epoch`) survives until the boundary's swap
        evaluation consumes it, and a tenant release is legal in
        between — without this filter a freed page could win the
        hottest ranking and be promoted after its owner is gone.
        Reclaimed ``slots`` get their recency cleared: a never-touched
        slot sorts coldest, so freed capacity is immediately demotable.
        """
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size and self._off_pages.size:
            keep = ~np.isin(self._off_pages, pages)
            if not bool(keep.all()):
                self._off_pages = self._off_pages[keep]
                self._off_counts = self._off_counts[keep]
                self._off_last = self._off_last[keep]
        for slot in slots:
            self.slot_last_touch[slot] = -1
            self.slot_epoch_counts[slot] = 0

    # -- checkpoint support ------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "slot_last_touch": self.slot_last_touch.copy(),
            "slot_epoch_counts": self.slot_epoch_counts.copy(),
            "off_pages": self._off_pages.copy(),
            "off_counts": self._off_counts.copy(),
            "off_last": self._off_last.copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        if state["slot_last_touch"].shape[0] != self.n_slots:
            raise MigrationError("monitor snapshot has a different slot count")
        self.slot_last_touch = state["slot_last_touch"].copy()
        self.slot_epoch_counts = state["slot_epoch_counts"].copy()
        self._off_pages = state["off_pages"].copy()
        self._off_counts = state["off_counts"].copy()
        self._off_last = state["off_last"].copy()
