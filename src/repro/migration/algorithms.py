"""Hottest-coldest swap step sequences — the four cases of Fig 8.

A swap brings the MRU (hottest) off-package macro page on-package and
demotes the LRU (coldest) on-package page. The case depends on whether
each is an original or a migrated page:

====== ==================== ====================
case   MRU (off-package)    LRU (on-package)
====== ==================== ====================
A      OS (id >= N)          OF (id < N)
B      OS                    MF (id >= N)
C      MS (id < N)           OF
D      MS                    MF
====== ==================== ====================

Each sequence is a list of :class:`CopyStep` / :class:`TableUpdate`
items executed in order by the engine. Copies take time (page bytes /
bus bandwidth); updates are instantaneous compound table mutations
applied between copies. The sequences are constructed so that **at every
instant every page resolves to a valid physical copy** — the property
the paper's P bit exists for ("the program execution will not be
halted"). ``tests/test_swap_sequences.py`` replays all four cases
asserting exactly that.

The N (basic) design has no empty slot: swaps are direct exchanges and
the whole sequence *stalls execution* (Section III-A, Basic Design).
The same builder emits N-mode sequences with ``stall=True`` markers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import MigrationError
from .table import EMPTY, PageCategory, TranslationTable


class SwapCase(Enum):
    """Fig 8's four MRU/LRU category combinations, plus the ghost case.

    G: the hottest off-package page is the current *Ghost* (its data
    sits at Ω backing the empty slot). Fig 8 does not enumerate it, but
    it arises as soon as a demoted page becomes hot again before any
    other swap re-homes it; the promotion is a straightforward fill of
    its own (empty) slot followed by the usual LRU demotion.
    """

    A = "OS-OF"
    B = "OS-MF"
    C = "MS-OF"
    D = "MS-MF"
    G = "GHOST"


#: a machine location: ("slot", i) on-package or ("mach", p) off-package
Location = tuple[str, int]


@dataclass(frozen=True)
class CopyStep:
    """Move one macro page's data between two machine locations."""

    label: str
    nbytes: int
    cross_boundary: bool = True   # False: on-package to on-package
    incoming: bool = False        # the hot page's copy-in (live-fill eligible)
    #: machine page the incoming copy streams from (for fill routing)
    source_machine: int | None = None
    #: slot the incoming copy streams to
    dest_slot: int | None = None
    #: structured endpoints, for replay/verification (see tests)
    src: Location | None = None
    dst: Location | None = None


@dataclass(frozen=True)
class TableUpdate:
    """A compound, atomic set of table mutations.

    ``ops`` is a tuple of ``(method_name, args)`` applied to the
    :class:`TranslationTable` in order, with no time passing in between.
    """

    label: str
    ops: tuple[tuple[str, tuple], ...]

    def apply(self, table: TranslationTable) -> None:
        for method, args in self.ops:
            getattr(table, method)(*args)


@dataclass(frozen=True)
class SwapPlan:
    """A complete swap: ordered steps plus bookkeeping for the engine."""

    case: SwapCase
    mru: int
    lru: int
    steps: tuple[CopyStep | TableUpdate, ...]
    stall: bool = False           # N design: execution halts for the whole plan

    @property
    def total_copy_bytes(self) -> int:
        return sum(s.nbytes for s in self.steps if isinstance(s, CopyStep))

    @property
    def cross_boundary_bytes(self) -> int:
        return sum(
            s.nbytes for s in self.steps if isinstance(s, CopyStep) and s.cross_boundary
        )


def classify_case(table: TranslationTable, mru: int, lru: int) -> SwapCase:
    """Determine the Fig 8 case from the two pages' categories."""
    mru_cat = table.category(mru)
    lru_cat = table.category(lru)
    if mru_cat is PageCategory.GHOST:
        return SwapCase.G
    if mru_cat not in (PageCategory.ORIGINAL_SLOW, PageCategory.MIGRATED_SLOW):
        raise MigrationError(f"MRU page {mru} is not off-package ({mru_cat})")
    if lru_cat not in (PageCategory.ORIGINAL_FAST, PageCategory.MIGRATED_FAST):
        raise MigrationError(f"LRU page {lru} is not on-package ({lru_cat})")
    if mru_cat is PageCategory.ORIGINAL_SLOW:
        return SwapCase.A if lru_cat is PageCategory.ORIGINAL_FAST else SwapCase.B
    return SwapCase.C if lru_cat is PageCategory.ORIGINAL_FAST else SwapCase.D


def _demote_lru_steps(
    table: TranslationTable, lru: int, page_bytes: int
) -> tuple[CopyStep | TableUpdate, ...]:
    """Trailing steps that demote the LRU page and free its slot.

    OF LRU (cases A, C): copy it to Ω, mark its slot empty.
    MF LRU (cases B, D): first park its slot's own page at Ω (pending),
    then copy the LRU page home and mark the slot empty.
    """
    cat = table.category(lru)
    if cat is PageCategory.ORIGINAL_FAST:
        ghost = table.amap.ghost_page
        return (
            CopyStep(f"copy LRU {lru}: slot {lru} -> Ω", page_bytes,
                     src=("slot", lru), dst=("mach", ghost)),
            TableUpdate(f"slot {lru} becomes empty", (("set_empty", (lru,)),)),
        )
    # MF: lru >= N stored in slot r; page r's data is at machine `lru`
    r = table.slot_of(lru)
    if r is None:
        raise MigrationError(f"MF LRU page {lru} has no slot")
    ghost = table.amap.ghost_page
    return (
        CopyStep(f"copy page {r}: machine {lru} -> Ω", page_bytes,
                 src=("mach", lru), dst=("mach", ghost)),
        TableUpdate(f"row {r} pending", (("set_pending", (r, True)),)),
        CopyStep(f"copy LRU {lru}: slot {r} -> machine {lru}", page_bytes,
                 src=("slot", r), dst=("mach", lru)),
        TableUpdate(f"slot {r} becomes empty", (("set_empty", (r,)),)),
    )


def build_swap_steps(table: TranslationTable, mru: int, lru: int) -> SwapPlan:
    """Build the N-1 / Live Migration step sequence for one swap.

    The same sequence serves both algorithms; only the *availability
    granularity* of the incoming copy differs (whole page for N-1,
    per sub-block for Live), which the engine decides. The table is
    **not** mutated here; the engine applies the :class:`TableUpdate`
    items as the plan executes.
    """
    case = classify_case(table, mru, lru)
    page_bytes = table.amap.macro_page_bytes
    e = table.empty_slot()
    if e is None:
        raise MigrationError("N-1/Live swap requires an empty slot")
    steps: list[CopyStep | TableUpdate] = []

    if case is SwapCase.G:
        # the hot page IS the ghost: fill its own slot (the empty one)
        # from Ω, then demote the LRU page into the freed Ω
        if mru != e:
            raise MigrationError(f"ghost page {mru} does not own the empty slot {e}")
        steps.append(
            TableUpdate(
                f"map ghost {mru} back to slot {e}",
                (("set_pair", (e, mru)), ("begin_fill", (e, table.amap.ghost_page))),
            )
        )
        steps.append(
            CopyStep(
                f"copy ghost {mru}: Ω -> slot {e}",
                page_bytes,
                incoming=True,
                source_machine=table.amap.ghost_page,
                dest_slot=e,
                src=("mach", table.amap.ghost_page),
                dst=("slot", e),
            )
        )
        steps.extend(_demote_lru_steps(table, lru, page_bytes))
        return SwapPlan(case=case, mru=mru, lru=lru, steps=tuple(steps), stall=False)

    lru_overlaps = False
    if case in (SwapCase.A, SwapCase.B):
        # MRU is OS at its own machine page: stream it into the empty slot.
        # begin_fill keeps the MRU resolving to its (still valid) old copy
        # while the data streams in; the engine grants per-sub-block
        # availability under Live Migration and whole-page-at-completion
        # under plain N-1.
        fill_ops: tuple[tuple[str, tuple], ...] = (
            ("set_pair", (e, mru)),
            ("set_pending", (e, True)),
            ("begin_fill", (e, mru)),
        )
        steps.append(TableUpdate(f"map MRU {mru} -> slot {e} (pending)", fill_ops))
        steps.append(
            CopyStep(
                f"copy MRU {mru}: machine {mru} -> slot {e}",
                page_bytes,
                incoming=True,
                source_machine=mru,
                dest_slot=e,
                src=("mach", mru),
                dst=("slot", e),
            )
        )
        steps.append(
            CopyStep(f"copy ghost {e}: Ω -> machine {mru}", page_bytes,
                     src=("mach", table.amap.ghost_page), dst=("mach", mru))
        )
        steps.append(TableUpdate(f"row {e} pending clear", (("set_pending", (e, False)),)))
    else:
        # MRU is MS: its data is at machine q (its pair partner's page)
        q = table.page_in_slot(mru)
        if q == EMPTY or q == mru:
            raise MigrationError(f"page {mru} is not MS")
        if q == lru:
            # the LRU *is* the MRU's pair partner (a case Fig 8 does not
            # enumerate): the promote sequence below already relocates the
            # partner into the empty slot, so there is nothing left to
            # demote this epoch — a later swap evicts it if it stays cold
            lru_overlaps = True
        # 1. relocate q's data from slot `mru` into the empty slot
        steps.append(
            CopyStep(
                f"copy occupant {q}: slot {mru} -> slot {e}",
                page_bytes,
                cross_boundary=False,
                src=("slot", mru),
                dst=("slot", e),
            )
        )
        fill_ops = (
            ("set_pair", (mru, mru)),
            ("set_pair", (e, q)),
            ("set_pending", (e, True)),
            ("begin_fill", (mru, q)),
        )
        steps.append(
            TableUpdate(f"rehome {q} -> slot {e}; map MRU {mru} -> slot {mru}", fill_ops)
        )
        # 2. stream the MRU page home
        steps.append(
            CopyStep(
                f"copy MRU {mru}: machine {q} -> slot {mru}",
                page_bytes,
                incoming=True,
                source_machine=q,
                dest_slot=mru,
                src=("mach", q),
                dst=("slot", mru),
            )
        )
        # 3. resolve the ghost: its data goes to q's old machine page
        steps.append(
            CopyStep(f"copy ghost {e}: Ω -> machine {q}", page_bytes,
                     src=("mach", table.amap.ghost_page), dst=("mach", q))
        )
        steps.append(TableUpdate(f"row {e} pending clear", (("set_pending", (e, False)),)))

    if lru_overlaps:
        # demote the relocated partner out of the slot the promote just
        # filled, restoring the one-empty-slot invariant: its data (the
        # ghost page e's data arrived at machine q) is parked at Ω while
        # the partner streams home
        q = table.page_in_slot(mru)
        ghost = table.amap.ghost_page
        steps.extend(
            (
                CopyStep(f"copy page {e}: machine {q} -> Ω", page_bytes,
                         src=("mach", q), dst=("mach", ghost)),
                TableUpdate(f"row {e} pending", (("set_pending", (e, True)),)),
                CopyStep(f"copy partner {q}: slot {e} -> machine {q}", page_bytes,
                         src=("slot", e), dst=("mach", q)),
                TableUpdate(f"slot {e} becomes empty", (("set_empty", (e,)),)),
            )
        )
    else:
        steps.extend(_demote_lru_steps(table, lru, page_bytes))
    return SwapPlan(case=case, mru=mru, lru=lru, steps=tuple(steps), stall=False)


def build_basic_swap_steps(table: TranslationTable, mru: int, lru: int) -> SwapPlan:
    """The N (basic) design: direct stalling exchanges, no empty slot.

    Every byte moved halts execution (the paper: data must be swapped
    before the table is updated). Exchanges restore migrated pages to
    their home locations first so the pairing invariant holds.
    """
    case = classify_case(table, mru, lru)
    page_bytes = table.amap.macro_page_bytes
    steps: list[CopyStep | TableUpdate] = []

    def exchange(slot: int, machine: int, new_page: int, label: str) -> None:
        # the exchange goes through a controller-side bounce buffer: the
        # slot's page is staged on-chip (cheap), the off-package page
        # streams in, the staged page streams out — 2 boundary crossings
        steps.append(
            CopyStep(f"stage: slot {slot} -> buffer", page_bytes,
                     cross_boundary=False, src=("slot", slot), dst=("buf", 0))
        )
        steps.append(
            CopyStep(
                f"exchange in: machine {machine} -> slot {slot}",
                page_bytes,
                incoming=new_page == mru,
                source_machine=machine,
                dest_slot=slot,
                src=("mach", machine),
                dst=("slot", slot),
            )
        )
        steps.append(
            CopyStep(f"exchange out: buffer -> machine {machine}", page_bytes,
                     src=("buf", 0), dst=("mach", machine))
        )
        steps.append(TableUpdate(label, (("set_pair", (slot, new_page)),)))

    if case is SwapCase.A:
        exchange(lru, mru, mru, f"slot {lru} := MRU {mru}")
    elif case is SwapCase.B:
        r = table.slot_of(lru)
        exchange(r, lru, r, f"restore page {r} home")
        exchange(r, mru, mru, f"slot {r} := MRU {mru}")
    elif case is SwapCase.C:
        q = table.page_in_slot(mru)
        exchange(mru, q, mru, f"restore MRU {mru} home")
    else:  # D
        q = table.page_in_slot(mru)
        exchange(mru, q, mru, f"restore MRU {mru} home")
        if q != lru:
            # (if the LRU is the MRU's partner, the restore above already
            # demoted it)
            r = table.slot_of(lru)
            exchange(r, lru, r, f"restore page {r} home; demote LRU {lru}")
    return SwapPlan(case=case, mru=mru, lru=lru, steps=tuple(steps), stall=True)
