"""The bidirectional physical->machine translation table (Figs 6, 7, 9).

Row ``r`` of the table describes on-package slot ``r``. Its right column
holds the macro page currently stored in that slot; by the paper's
invariant ("if macro page n (n < N) is located in the on-package region,
it can only be in the position of the n-th row"), a row pairing
``r <-> q`` simultaneously means *slot r holds page q's data* and *page
r's data lives at off-package machine page q* — the table encodes a set
of transpositions. The reserved off-package page Ω backs the N-1
design's "empty" slot: a row whose right column is EMPTY means the slot
is free and its page is the *Ghost* (data at Ω).

Two per-row bits refine resolution during a swap:

* **P (pending)** — the RAM direction ``r -> right-column`` is bypassed
  and page ``r`` resolves to Ω; the CAM direction (page->slot) still
  works. This is what lets a swap proceed without ever losing a valid
  physical copy.
* **F (filling)** — the slot is receiving data sub-block by sub-block
  (Live Migration, Fig 9); a bitmap says which 4 KB sub-blocks have
  landed, and only those resolve on-package.

The table keeps two dense mirror arrays (``machine_of`` page->machine
and ``onpkg`` flags) incrementally updated on every mutation, so the
epoch simulator can translate a whole access chunk with one fancy-index
— the RAM/CAM structures themselves stay hardware-sized.

The RAS subsystem (``repro.ras``) adds *predictive frame retirement*:
a slot whose DRAM row is decaying is taken out of service for good.
A retired row's right column is EMPTY but the slot never counts as the
free slot again, and the slot's home page ``r`` is permanently re-homed
at a reserved spare machine page (``remap[r]``) — one of the
``reserved_pages`` handed to the constructor, which are invisible to
the trace address space. All other machinery (swaps, audits, recovery)
simply sees a table with fewer usable slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..address import AddressMap
from ..errors import TranslationTableError

#: right-column sentinel for the empty slot (represented by Ω in hardware)
EMPTY: int = -1


@dataclass(frozen=True)
class ReleaseOutcome:
    """Result of :meth:`TranslationTable.release_pages`.

    ``moves`` are the macro-page copies the caller must perform (they
    were computed from the *pre-release* state, so they are valid only
    if executed as given, in order); each endpoint is a
    ``("slot", i)`` / ``("mach", p)`` machine location. ``undone_slots``
    are the rows whose pairing changed (for recency bookkeeping), and
    ``new_empty`` is the row the EMPTY column relocated to when the
    release un-ghosted a surviving page (None otherwise).
    """

    moves: tuple[tuple[tuple[str, int], tuple[str, int]], ...]
    undone_slots: tuple[int, ...]
    new_empty: int | None


class PageCategory(Enum):
    """The five macro-page categories of Section III-A."""

    ORIGINAL_FAST = "OF"     # id < N, resident in its own slot
    ORIGINAL_SLOW = "OS"     # id >= N, resident at its own machine page
    MIGRATED_FAST = "MF"     # id >= N, resident in an on-package slot
    MIGRATED_SLOW = "MS"     # id < N, resident at its partner's machine page
    GHOST = "GHOST"          # id < N, resident at the reserved page Ω


class TranslationTable:
    """Pairing-invariant translation table with P/F bits and fill bitmap."""

    def __init__(
        self,
        amap: AddressMap,
        *,
        reserve_empty_slot: bool = True,
        reserved_pages: frozenset[int] | set[int] = frozenset(),
    ):
        self.amap = amap
        n = amap.n_onpkg_pages
        self.n_slots = n
        self._reserve_empty_slot = reserve_empty_slot
        #: off-package machine pages reserved as retirement spares; they
        #: are outside the data address space (like the ghost page Ω)
        self.reserved_pages = frozenset(int(p) for p in reserved_pages)
        for p in self.reserved_pages:
            if not n <= p < amap.ghost_page:
                raise TranslationTableError(
                    f"reserved spare page {p} must be off-package and below Ω"
                )
        #: permanently out-of-service slots (predictive retirement)
        self.retired = np.zeros(n, dtype=bool)
        #: retired slot r -> spare machine page now homing page r's data
        self.remap: dict[int, int] = {}
        #: right column: page stored in each slot (EMPTY for the free slot)
        self.pair = np.arange(n, dtype=np.int64)
        self.p_bit = np.zeros(n, dtype=bool)
        self.f_bit = np.zeros(n, dtype=bool)
        #: one bitmap (a single migration is in flight at a time, Fig 9)
        self.fill_bitmap = np.zeros(amap.subblocks_per_page, dtype=bool)
        self._filling_slot: int | None = None
        self._fill_page: int | None = None      # incoming page
        self._fill_source: int | None = None    # its old machine page
        #: CAM direction: page -> slot, for pages currently in a slot
        self._slot_of: dict[int, int] = {p: p for p in range(n)}

        # epoch-boundary lookup caches (invalidated on any pair/retired
        # mutation): the free slot and the retired-slot set are asked for
        # every epoch but change only when a swap commits or a frame
        # retires
        self._empty_cache: int | None = None
        self._empty_cache_valid = False
        self._retired_cache: frozenset[int] | None = None

        # dense mirrors for vectorised resolution
        total = amap.n_total_pages
        self.machine_of = np.arange(total, dtype=np.int64)
        self.onpkg = np.zeros(total, dtype=bool)
        self.onpkg[:n] = True

        if reserve_empty_slot:
            # N-1 design: sacrifice the last slot; its page becomes the Ghost
            self._set_empty(n - 1)

    # ------------------------------------------------------------------
    # primitive mutations (each maintains the dense mirrors)
    # ------------------------------------------------------------------
    def _sync_page(self, page: int) -> None:
        """Recompute one page's dense-mirror entry from table state."""
        amap = self.amap
        if page == self._fill_page:
            # the incoming page keeps resolving to its old copy until the
            # fill completes; the engine refines per sub-block / per time
            self.machine_of[page] = self._fill_source
            self.onpkg[page] = False
            return
        if page < self.n_slots:
            spare = self.remap.get(page)
            if spare is not None:
                # the page's home frame is retired: permanent spare home
                self.machine_of[page] = spare
                self.onpkg[page] = False
            elif self.p_bit[page]:
                # the ghost page id doubles as a machine frame id
                self.machine_of[page] = amap.ghost_page  # repro-domain: machine_frame
                self.onpkg[page] = False
            else:
                v = int(self.pair[page])
                if v == EMPTY:
                    self.machine_of[page] = amap.ghost_page  # repro-domain: machine_frame
                    self.onpkg[page] = False
                elif v == page:
                    # identity home: low pages home in the same-numbered slot
                    self.machine_of[page] = page  # repro-domain: machine_frame
                    self.onpkg[page] = True
                else:
                    self.machine_of[page] = v
                    self.onpkg[page] = False
        else:
            slot = self._slot_of.get(page)
            if slot is None:
                # un-migrated slow page: machine address == page id
                self.machine_of[page] = page  # repro-domain: machine_frame
                self.onpkg[page] = False
            else:
                self.machine_of[page] = slot
                self.onpkg[page] = True

    def _set_cam(self, slot: int, page: int) -> None:
        # validate before any mutation so a rejected update cannot leave
        # the table half-written
        if page != EMPTY and page in self._slot_of and self._slot_of[page] != slot:
            raise TranslationTableError(
                f"page {page} already mapped to slot {self._slot_of[page]}"
            )
        old = int(self.pair[slot])
        if old != EMPTY and self._slot_of.get(old) == slot:
            del self._slot_of[old]
        self.pair[slot] = page
        if page != EMPTY:
            self._slot_of[page] = slot
        self._empty_cache_valid = False

    def set_pair(self, slot: int, page: int) -> None:
        """Write the right column of ``slot`` to ``page`` (table update)."""
        self._check_slot(slot)
        if not 0 <= page < self.amap.n_total_pages:
            raise TranslationTableError(f"page {page} out of range")
        if self.retired[slot]:
            raise TranslationTableError(f"slot {slot} is retired")
        if page in self.reserved_pages:
            raise TranslationTableError(
                f"page {page} is a reserved spare and cannot be mapped"
            )
        if page in self.remap:
            raise TranslationTableError(
                f"page {page}'s home frame is retired; it lives at spare "
                f"{self.remap[page]} for good"
            )
        old = int(self.pair[slot])
        self._set_cam(slot, page)
        for p in {page, slot, old} - {EMPTY}:
            if 0 <= p < self.amap.n_total_pages:
                self._sync_page(p)

    def set_empty(self, slot: int) -> None:
        """Mark ``slot`` as the empty slot (right column := Ω/EMPTY)."""
        self._check_slot(slot)
        if self.retired[slot]:
            raise TranslationTableError(f"slot {slot} is retired")
        self._set_empty(slot)

    def _set_empty(self, slot: int) -> None:
        # the paper's final swap step marks the row empty AND clears its
        # P bit in one update (Fig 8(d) step 10)
        old = int(self.pair[slot])
        self._set_cam(slot, EMPTY)
        self.f_bit[slot] = False
        self.p_bit[slot] = False
        for p in {slot, old} - {EMPTY}:
            if 0 <= p < self.amap.n_total_pages:
                self._sync_page(p)

    def set_pending(self, slot: int, value: bool) -> None:
        self._check_slot(slot)
        if self.retired[slot]:
            raise TranslationTableError(f"slot {slot} is retired")
        self.p_bit[slot] = value
        self._sync_page(slot)

    def begin_fill(self, slot: int, source_machine_page: int) -> None:
        """Set the F bit: ``slot`` starts receiving its (already CAM-mapped)
        page from ``source_machine_page``, sub-block by sub-block (Fig 9)."""
        self._check_slot(slot)
        if self.retired[slot]:
            raise TranslationTableError(f"slot {slot} is retired")
        if self._filling_slot is not None:
            raise TranslationTableError("another slot is already filling")
        page = int(self.pair[slot])
        if page == EMPTY:
            raise TranslationTableError("fill target slot has no mapped page")
        self.f_bit[slot] = True
        self.fill_bitmap[:] = False
        self._filling_slot = slot
        self._fill_page = page
        self._fill_source = source_machine_page
        self._sync_page(page)

    def fill_subblock(self, subblock: int) -> None:
        if self._filling_slot is None:
            raise TranslationTableError("no fill in progress")
        self.fill_bitmap[subblock] = True
        if bool(self.fill_bitmap.all()):
            self.end_fill()

    def end_fill(self) -> None:
        """Clear the F bit (all sub-blocks landed, or fill aborted)."""
        if self._filling_slot is None:
            return
        slot = self._filling_slot
        page = self._fill_page
        self.f_bit[slot] = False
        self.fill_bitmap[:] = False
        self._filling_slot = None
        self._fill_page = None
        self._fill_source = None
        if page is not None:
            self._sync_page(page)

    @property
    def filling(self) -> bool:
        return self._filling_slot is not None

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(self, page: int, subblock: int | None = None) -> tuple[bool, int]:
        """``(on_package, machine_page)`` of one physical page.

        ``subblock`` refines resolution for a page whose slot is filling:
        already-landed sub-blocks are served on-package, the rest from
        the old off-package copy.
        """
        if not 0 <= page < self.amap.n_total_pages:
            raise TranslationTableError(f"page {page} out of range")
        if page == self._fill_page:
            if subblock is not None and bool(self.fill_bitmap[subblock]):
                return True, self._filling_slot
            return False, self._fill_source
        return bool(self.onpkg[page]), int(self.machine_of[page])

    def resolve_many(self, pages: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised ``(on_package, machine_page)`` via the dense mirrors.

        A filling page resolves off-package here; the engine applies the
        per-sub-block, per-time refinement for the (single) in-flight
        page.
        """
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size and (pages.min() < 0 or pages.max() >= self.amap.n_total_pages):
            raise TranslationTableError(
                f"page index outside [0, {self.amap.n_total_pages}): the trace "
                "addresses exceed the configured memory size"
            )
        return self.onpkg[pages], self.machine_of[pages]

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def category(self, page: int) -> PageCategory:
        """Classify a page into the five categories of Section III-A."""
        if not 0 <= page < self.amap.n_total_pages:
            raise TranslationTableError(f"page {page} out of range")
        n = self.n_slots
        if page < n:
            if page in self.remap:
                # home frame retired: permanently resident at its spare
                return PageCategory.MIGRATED_SLOW
            v = int(self.pair[page])
            if self.p_bit[page] or v == EMPTY:
                return PageCategory.GHOST
            if v == page:
                return PageCategory.ORIGINAL_FAST
            return PageCategory.MIGRATED_SLOW
        if page in self._slot_of:
            return PageCategory.MIGRATED_FAST
        return PageCategory.ORIGINAL_SLOW

    def slot_of(self, page: int) -> int | None:
        """The slot currently holding this page's data, if any."""
        if page < self.n_slots:
            # identity home: slot id == page id for un-migrated fast pages
            return page if int(self.pair[page]) == page else None  # repro-domain: machine_frame
        return self._slot_of.get(page)

    def empty_slot(self) -> int | None:
        """The current empty slot (N-1 design), if any.

        Retired slots also carry an EMPTY right column but are out of
        service for good, so they never count as the free slot.
        """
        if not self._empty_cache_valid:
            empties = np.flatnonzero((self.pair == EMPTY) & ~self.retired)
            self._empty_cache = int(empties[0]) if empties.size else None
            self._empty_cache_valid = True
        return self._empty_cache

    def retired_slots(self) -> frozenset[int]:
        """The set of permanently retired slot ids (cached: retirement is
        rare, but the swap trigger excludes these every epoch)."""
        if self._retired_cache is None:
            self._retired_cache = frozenset(np.flatnonzero(self.retired).tolist())
        return self._retired_cache

    def page_in_slot(self, slot: int) -> int:
        self._check_slot(slot)
        return int(self.pair[slot])

    def resident_pages(self) -> np.ndarray:
        """Pages currently resident on-package (one per occupied slot)."""
        return self.pair[self.pair != EMPTY].copy()

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.n_slots:
            raise TranslationTableError(f"slot {slot} out of range [0, {self.n_slots})")

    # ------------------------------------------------------------------
    # predictive frame retirement (RAS subsystem)
    # ------------------------------------------------------------------
    @property
    def n_retired(self) -> int:
        return int(self.retired.sum())

    @property
    def n_usable_slots(self) -> int:
        """On-package frames still in service (graceful degradation)."""
        return self.n_slots - self.n_retired

    def is_retired_home(self, page: int) -> bool:
        """True when ``page``'s home frame is retired (page lives at a
        spare and must never be promoted on-package again)."""
        return page in self.remap

    def retire_slot(self, slot: int, spare: int) -> int:
        """Permanently take ``slot`` out of service, re-homing its home
        page at the reserved ``spare`` machine page.

        This is only the atomic table update — the data movement (the
        occupant home, page ``slot``'s data to the spare) is the
        engine's job and must be complete before this is called (see
        :func:`repro.ras.retirement.retirement_moves`). Returns the
        occupant page the caller copied home.
        """
        self._check_slot(slot)
        if self.retired[slot]:
            raise TranslationTableError(f"slot {slot} is already retired")
        if spare not in self.reserved_pages:
            raise TranslationTableError(
                f"page {spare} is not a reserved spare page"
            )
        if spare in self.remap.values():
            raise TranslationTableError(f"spare page {spare} already in use")
        if bool(self.p_bit[slot]) or bool(self.f_bit[slot]) or self._filling_slot == slot:
            raise TranslationTableError(
                f"slot {slot} is mid-swap; retirement requires quiescence"
            )
        occupant = int(self.pair[slot])
        if occupant == EMPTY:
            raise TranslationTableError(
                "cannot retire the empty slot (the N-1 design needs it)"
            )
        self._set_cam(slot, EMPTY)
        self.retired[slot] = True
        self.remap[slot] = int(spare)
        self._empty_cache_valid = False
        self._retired_cache = None
        for p in sorted({slot, occupant}):
            self._sync_page(p)
        return occupant

    # ------------------------------------------------------------------
    # multi-tenant slot reclamation (tenancy subsystem)
    # ------------------------------------------------------------------
    def release_pages(self, pages) -> ReleaseOutcome:
        """Undo every transposition involving a released page set.

        A departing tenant's pages must stop occupying on-package slots
        and stop displacing surviving pages: each row ``r <-> q`` where
        either side belongs to ``pages`` returns to the identity
        mapping, with the *surviving* partner's data copied home first
        (at most one copy per row — a transposition has exactly one
        live side worth preserving, or none). Dead pages' old locations
        keep stale bytes; scrub-on-free is the caller's job.

        When the release leaves a freed identity row while the current
        ghost page survives, the EMPTY row relocates onto the freed row
        (one Ω -> slot copy brings the ghost page home), so freed
        capacity absorbs the ghost role instead of a live page paying
        Ω latency for it.

        Like retirement, this requires swap quiescence. The mutation is
        applied with direct right-column writes (one bulk update, the
        way a hypervisor would patch the table), which bypass
        ``_set_cam`` — so the epoch-boundary ``empty_slot`` cache is
        invalidated explicitly below.
        """
        page_set = {int(p) for p in pages}
        for p in sorted(page_set):
            if not 0 <= p < self.amap.ghost_page:
                raise TranslationTableError(
                    f"released page {p} outside the data space [0, "
                    f"{self.amap.ghost_page})"
                )
            if p in self.reserved_pages:
                raise TranslationTableError(
                    f"released page {p} is a reserved RAS spare"
                )
        if (
            self._filling_slot is not None
            or bool(self.f_bit.any())
            or bool(self.p_bit.any())
        ):
            raise TranslationTableError(
                "release requires a quiescent table (a swap is in flight)"
            )

        # plan phase: copies are computed against the pre-release state
        moves: list[tuple[tuple[str, int], tuple[str, int]]] = []
        undone: list[tuple[int, int]] = []
        for slot in range(self.n_slots):
            if self.retired[slot]:
                continue
            q = int(self.pair[slot])
            # q == slot is the identity-home test (nothing to undo)
            if q == EMPTY or q == slot:  # repro-lint: disable=domain-confusion
                continue
            # slot doubles as the row's home-page id in the pairing
            if q not in page_set and slot not in page_set:  # repro-lint: disable=domain-confusion
                continue
            undone.append((slot, q))
            if q not in page_set:
                # occupant survives: its data goes home off-package
                moves.append((("slot", slot), ("mach", q)))
            elif slot not in page_set:
                # home page survives: its data returns to its own slot
                moves.append((("mach", q), ("slot", slot)))

        undone_slots = [slot for slot, _ in undone]
        relocate: tuple[int, int] | None = None
        e = self.empty_slot()
        if e is not None and e not in page_set:
            # the ghost page survives the release; a freed identity row
            # can take over the EMPTY role
            identity_after = set(undone_slots)
            identity_after.update(
                s for s in range(self.n_slots) if int(self.pair[s]) == s
            )
            candidates = [
                s
                for s in sorted(page_set)
                # a released page id below n_slots doubles as a row index
                if s < self.n_slots  # repro-lint: disable=domain-confusion
                and not self.retired[s]
                and s != e  # repro-lint: disable=domain-confusion
                and s in identity_after
            ]
            if candidates:
                # mirror boot's usable[-1] convention: highest row
                r = max(candidates)
                moves.append((("mach", self.amap.ghost_page), ("slot", e)))
                relocate = (e, r)

        # apply phase: direct bulk writes (bypassing _set_cam)
        for slot, q in undone:
            del self._slot_of[q]
            self.pair[slot] = slot
            self._slot_of[slot] = slot
            self._sync_page(slot)
            self._sync_page(q)
        if relocate is not None:
            e, r = relocate
            self.pair[e] = e
            self._slot_of[e] = e
            self.pair[r] = EMPTY
            self._slot_of.pop(r, None)
            self._sync_page(e)
            self._sync_page(r)
            undone_slots.extend((e, r))
        # THE direct writes above never went through _set_cam, so the
        # epoch-boundary empty-slot cache would go stale without this
        self._empty_cache_valid = False
        return ReleaseOutcome(
            moves=tuple(moves),
            undone_slots=tuple(undone_slots),
            new_empty=None if relocate is None else relocate[1],
        )

    # ------------------------------------------------------------------
    # snapshot / restore / recovery (resilience subsystem)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Complete mutable state as plain arrays/values (copyable)."""
        return {
            "pair": self.pair.copy(),
            "p_bit": self.p_bit.copy(),
            "f_bit": self.f_bit.copy(),
            "fill_bitmap": self.fill_bitmap.copy(),
            "filling_slot": self._filling_slot,
            "fill_page": self._fill_page,
            "fill_source": self._fill_source,
            "slot_of": dict(self._slot_of),
            "machine_of": self.machine_of.copy(),
            "onpkg": self.onpkg.copy(),
            "retired": self.retired.copy(),
            "remap": dict(self.remap),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (same geometry assumed)."""
        if state["pair"].shape[0] != self.n_slots:
            raise TranslationTableError(
                f"snapshot has {state['pair'].shape[0]} slots, table has "
                f"{self.n_slots}"
            )
        self.pair = state["pair"].copy()
        self.p_bit = state["p_bit"].copy()
        self.f_bit = state["f_bit"].copy()
        self.fill_bitmap = state["fill_bitmap"].copy()
        self._filling_slot = state["filling_slot"]
        self._fill_page = state["fill_page"]
        self._fill_source = state["fill_source"]
        self._slot_of = dict(state["slot_of"])
        self.machine_of = state["machine_of"].copy()
        self.onpkg = state["onpkg"].copy()
        # pre-RAS snapshots carry no retirement state (back-compat)
        retired = state.get("retired")
        self.retired = (
            retired.copy() if retired is not None
            else np.zeros(self.n_slots, dtype=bool)
        )
        self.remap = dict(state.get("remap", {}))
        self._empty_cache_valid = False
        self._retired_cache = None

    def reset_identity(self) -> int:
        """Roll back to the boot-time identity mapping (quarantine path).

        Conceptually the migration controller quiesces, copies every
        displaced page home, and clears all swap state, leaving the
        static mapping of Section II. Returns how many macro pages were
        away from their home location (for recovery-cost accounting).
        """
        n = self.n_slots
        home = np.arange(n, dtype=np.int64)
        home[self.retired] = EMPTY  # retired frames stay out of service
        displaced = int((self.pair != home).sum())
        self.pair = home.copy()
        self._empty_cache_valid = False
        self._retired_cache = None
        self.p_bit[:] = False
        self.f_bit[:] = False
        self.fill_bitmap[:] = False
        self._filling_slot = None
        self._fill_page = None
        self._fill_source = None
        self._slot_of = {p: p for p in range(n) if not self.retired[p]}
        total = self.amap.n_total_pages
        self.machine_of = np.arange(total, dtype=np.int64)
        self.onpkg = np.zeros(total, dtype=bool)
        self.onpkg[:n] = True
        for page, spare in self.remap.items():
            self.machine_of[page] = spare
            self.onpkg[page] = False
        if self._reserve_empty_slot:
            usable = np.flatnonzero(~self.retired)
            if usable.size == 0:
                raise TranslationTableError(
                    "every on-package frame is retired; no empty slot possible"
                )
            self._set_empty(int(usable[-1]))
        return displaced

    def audit(self) -> None:
        """Strict between-epoch consistency sweep (resilience audits).

        On top of :meth:`check_invariants`, require that no swap residue
        is left between epochs: the engine applies a plan's table updates
        atomically at schedule time, so at every epoch boundary P bits,
        F bits and the fill bitmap must be quiescent. A violation means
        the state was corrupted behind the API (or a swap was torn by a
        fault) and the caller should :meth:`repair`.
        """
        self.check_invariants()
        if self._filling_slot is None:
            if bool(self.f_bit.any()):
                raise TranslationTableError(
                    f"stray F bit on slots {np.flatnonzero(self.f_bit).tolist()} "
                    "with no fill in progress"
                )
            if bool(self.fill_bitmap.any()):
                raise TranslationTableError("stray fill bitmap with no fill in progress")
        else:
            expected = np.zeros(self.n_slots, dtype=bool)
            expected[self._filling_slot] = True
            if not np.array_equal(self.f_bit, expected):
                raise TranslationTableError(
                    f"F bits {np.flatnonzero(self.f_bit).tolist()} do not match "
                    f"the filling slot {self._filling_slot}"
                )
        if bool(self.p_bit.any()):
            raise TranslationTableError(
                f"stray P bit on slots {np.flatnonzero(self.p_bit).tolist()} "
                "between epochs"
            )
        # full mirror check (check_invariants only spot-checks)
        for slot in range(self.n_slots):
            page = int(self.pair[slot])
            if page == EMPTY or page == self._fill_page:
                continue
            if not bool(self.onpkg[page]) or int(self.machine_of[page]) != slot:
                raise TranslationTableError(
                    f"dense mirror disagrees with row {slot} (page {page})"
                )

    def repair(self) -> list[str]:
        """Clear recoverable corruption; returns a description of each fix.

        Handles flipped P/F bits, bitmap residue and stale dense mirrors
        — the single-event-upset class of faults. Structural damage the
        pairing invariant cannot absorb (duplicate right-column entries)
        is not repairable in place; callers fall back to
        :meth:`reset_identity`.
        """
        fixes: list[str] = []
        # rebuild the CAM from the right column (the authoritative state)
        rebuilt: dict[int, int] = {}
        for slot in range(self.n_slots):
            page = int(self.pair[slot])
            if page == EMPTY:
                continue
            if page in rebuilt:
                raise TranslationTableError(
                    f"unrepairable: page {page} in rows {rebuilt[page]} and {slot}"
                )
            rebuilt[page] = slot
        if rebuilt != self._slot_of:
            self._slot_of = rebuilt
            fixes.append("rebuilt CAM from right column")
        if self._filling_slot is None:
            if bool(self.f_bit.any()):
                fixes.append(
                    f"cleared stray F bits {np.flatnonzero(self.f_bit).tolist()}"
                )
                self.f_bit[:] = False
            if bool(self.fill_bitmap.any()):
                fixes.append("cleared stray fill bitmap")
                self.fill_bitmap[:] = False
        if bool(self.p_bit.any()):
            fixes.append(f"cleared stray P bits {np.flatnonzero(self.p_bit).tolist()}")
            self.p_bit[:] = False
        self._rebuild_mirrors()
        self.check_invariants()
        return fixes

    def _rebuild_mirrors(self) -> None:
        """Recompute the dense mirrors from the table proper."""
        n = self.n_slots
        total = self.amap.n_total_pages
        self.machine_of = np.arange(total, dtype=np.int64)
        self.onpkg = np.zeros(total, dtype=bool)
        self.onpkg[:n] = True
        for slot in range(n):
            self._sync_page(slot)
            page = int(self.pair[slot])
            # page != slot is the deliberate identity-home test: slot s
            # natively holds page s, so inequality means "migrated pair"
            if page != EMPTY and page != slot:  # repro-lint: disable=domain-confusion
                self._sync_page(page)
        if self._fill_page is not None:
            self._sync_page(self._fill_page)

    def check_invariants(self) -> None:
        """Assert the structural invariants; used by tests and the engine.

        * every non-EMPTY right column appears in exactly one row;
        * CAM dict mirrors the right column exactly;
        * dense mirrors agree with scalar resolution for mapped pages;
        * at most one slot is filling.
        """
        seen: dict[int, int] = {}
        for slot in range(self.n_slots):
            v = int(self.pair[slot])
            if v == EMPTY:
                continue
            if v in seen:
                raise TranslationTableError(
                    f"page {v} mapped to slots {seen[v]} and {slot}"
                )
            seen[v] = slot
        if seen != self._slot_of:
            raise TranslationTableError("CAM dict out of sync with right column")
        if int(self.f_bit.sum()) > 1:
            raise TranslationTableError("more than one slot filling")
        # retirement structure: flags, remap and mirrors must agree
        if bool((self.retired & (self.pair != EMPTY)).any()):
            raise TranslationTableError(
                f"retired slots {np.flatnonzero(self.retired & (self.pair != EMPTY)).tolist()} "
                "still have a mapped page"
            )
        if set(self.remap) != set(np.flatnonzero(self.retired).tolist()):
            raise TranslationTableError("remap keys disagree with retired flags")
        spares = list(self.remap.values())
        if len(set(spares)) != len(spares):
            raise TranslationTableError("two retired frames share a spare page")
        for page, spare in self.remap.items():
            if spare not in self.reserved_pages:
                raise TranslationTableError(
                    f"retired page {page} remapped to non-reserved page {spare}"
                )
            if bool(self.onpkg[page]) or int(self.machine_of[page]) != spare:
                raise TranslationTableError(
                    f"dense mirror disagrees with retired page {page} -> {spare}"
                )
        # spot-check mirrors against scalar resolution
        for page in list(seen)[:64] + list(range(min(self.n_slots, 64))):
            if page == self._fill_page:
                continue
            on, machine = self.resolve(page)
            if bool(self.onpkg[page]) != on or int(self.machine_of[page]) != machine:
                raise TranslationTableError(f"dense mirror out of sync for page {page}")
