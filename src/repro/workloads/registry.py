"""Name -> workload factory registry.

The six migration-study workloads (Section IV / Table III) plus all ten
NPB workloads (Section II) are addressable by name. The special name
``"SPEC2006"`` denotes the multiprogrammed mixture, which is a trace
factory rather than a single :class:`SyntheticWorkload` — use
:func:`generate_trace` to treat every name uniformly.
"""

from __future__ import annotations

from typing import Callable

from ..errors import WorkloadError
from ..trace.record import TraceChunk
from .base import SyntheticWorkload
from .npb import NPB_FOOTPRINTS_MB, npb_workload
from .server import indexer_workload, pgbench_workload, specjbb_workload
from .spec import spec2006_mixture, spec_workload, SPEC_FOOTPRINTS_MB

#: the six workloads of the trace-based migration study (Table III)
MIGRATION_STUDY_WORKLOADS = ("FT.C", "MG.C", "pgbench", "indexer", "SPECjbb", "SPEC2006")

_FACTORIES: dict[str, Callable[..., SyntheticWorkload]] = {}
for _name in NPB_FOOTPRINTS_MB:
    _FACTORIES[_name] = (lambda n: lambda footprint_bytes=None: npb_workload(n, footprint_bytes))(_name)
for _name in SPEC_FOOTPRINTS_MB:
    _FACTORIES[f"spec.{_name}"] = (
        lambda n: lambda footprint_bytes=None: spec_workload(n, footprint_bytes)
    )(_name)
_FACTORIES["pgbench"] = pgbench_workload
_FACTORIES["indexer"] = indexer_workload
_FACTORIES["SPECjbb"] = specjbb_workload


def available_workloads() -> list[str]:
    """All registered workload names (including ``"SPEC2006"``)."""
    return sorted(_FACTORIES) + ["SPEC2006"]


def get_workload(name: str, footprint_bytes: int | None = None) -> SyntheticWorkload:
    """Look up a single-model workload by name."""
    if name == "SPEC2006":
        raise WorkloadError(
            "SPEC2006 is a multiprogrammed mixture; use generate_trace() "
            "or workloads.spec.spec2006_mixture()"
        )
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {available_workloads()}"
        ) from None
    return factory(footprint_bytes)


def generate_trace(
    name: str,
    n: int,
    seed: int = 0,
    *,
    footprint_bytes: int | None = None,
) -> TraceChunk:
    """Generate ``n`` accesses for any registered workload name."""
    if name == "SPEC2006":
        return spec2006_mixture(n, seed, total_footprint_bytes=footprint_bytes)
    return get_workload(name, footprint_bytes).generate(n, seed)
