"""Workload model framework.

A :class:`SyntheticWorkload` is a footprint, a read/write mix, an access
arrival rate, and a cycle of *phases*. Each phase emits addresses from
one pattern primitive; between phases the zipf hot set *drifts* (a
fraction of the popularity permutation is reshuffled). Hot-set drift is
what makes dynamic migration matter: a static mapping captures only the
initial hot pages, while the migration controller follows the drift.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from ..errors import WorkloadError
from ..trace.record import READ, WRITE, TraceChunk, make_chunk
from . import generators as g


@dataclass(frozen=True)
class PatternSpec:
    """One access-pattern primitive plus its parameters."""

    kind: str     # zipf | stream | stream_hot | random | chase | cluster | txn
    params: dict = field(default_factory=dict)

    _KINDS = ("zipf", "stream", "stream_hot", "random", "chase", "cluster", "txn")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise WorkloadError(f"unknown pattern kind {self.kind!r}")

    def generate(
        self,
        n: int,
        footprint: int,
        rng: np.random.Generator,
        permutation: np.ndarray,
    ) -> np.ndarray:
        if self.kind == "zipf":
            return g.zipf_hot(n, footprint, rng, permutation=permutation, **self.params)
        if self.kind == "stream":
            return g.sequential_stream(n, footprint, rng, **self.params)
        if self.kind == "stream_hot":
            return g.stream_with_hot(n, footprint, rng, permutation=permutation, **self.params)
        if self.kind == "random":
            return g.uniform_random(n, footprint, rng)
        if self.kind == "chase":
            return g.pointer_chase(n, footprint, rng, **self.params)
        if self.kind == "cluster":
            return g.gaussian_cluster(n, footprint, rng, **self.params)
        if self.kind == "txn":
            return g.transactional(n, footprint, rng, **self.params)
        raise WorkloadError(f"unknown pattern kind {self.kind!r}")  # pragma: no cover


@dataclass(frozen=True)
class PhaseSpec:
    """A phase: a weighted pattern within the workload's phase cycle."""

    pattern: PatternSpec
    weight: float = 1.0
    #: fraction of the hot-set permutation reshuffled when this phase ends
    drift: float = 0.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise WorkloadError("phase weight must be positive")
        if not 0.0 <= self.drift <= 1.0:
            raise WorkloadError("drift must be in [0, 1]")


def rotate_permutation(perm: np.ndarray, fraction: float, rng: np.random.Generator) -> np.ndarray:
    """Reshuffle a random ``fraction`` of a permutation's positions."""
    if fraction <= 0.0:
        return perm
    n = perm.shape[0]
    k = max(2, int(n * min(fraction, 1.0)))
    idx = rng.choice(n, size=k, replace=False)
    out = perm.copy()
    out[idx] = perm[idx[rng.permutation(k)]]
    return out


@dataclass(frozen=True)
class SyntheticWorkload:
    """A named, reproducible synthetic memory workload.

    Parameters
    ----------
    name:
        Registry name (e.g. ``"FT.C"``).
    footprint_bytes:
        Total touched memory (Table I / Table III values by default).
    phases:
        The phase cycle; repeated until ``n`` accesses are produced.
    write_fraction:
        Probability an access is a WRITE.
    cycles_per_access:
        Mean inter-arrival gap in core cycles (memory intensity).
    phase_len:
        Accesses per phase instance.
    n_cpus:
        Cores issuing accesses (stamped round-robin with jitter).
    """

    name: str
    footprint_bytes: int
    phases: tuple[PhaseSpec, ...]
    write_fraction: float = 0.25
    cycles_per_access: float = 20.0
    phase_len: int = 200_000
    n_cpus: int = 4
    #: fraction of accesses arriving in back-to-back bursts
    burst_fraction: float = 0.85
    #: mean intra-burst gap (cycles)
    burst_gap: float = 3.0

    def __post_init__(self) -> None:
        if not self.phases:
            raise WorkloadError(f"{self.name}: needs at least one phase")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise WorkloadError("write_fraction must be in [0, 1]")
        if self.cycles_per_access <= 0 or self.phase_len <= 0 or self.n_cpus <= 0:
            raise WorkloadError("rates and sizes must be positive")
        if not 0.0 <= self.burst_fraction < 1.0 or self.burst_gap < 1.0:
            raise WorkloadError("burst_fraction must be in [0,1) and burst_gap >= 1")
        if self.cycles_per_access <= self.burst_fraction * self.burst_gap:
            raise WorkloadError("cycles_per_access too small for the burst model")

    def with_footprint(self, footprint_bytes: int) -> "SyntheticWorkload":
        """A scaled copy — used by experiment presets (see DESIGN.md §2)."""
        from dataclasses import replace

        if footprint_bytes < g.BLOCK:
            raise WorkloadError("footprint too small")
        return replace(self, footprint_bytes=footprint_bytes)

    def _part_sizes(self, n: int):
        """The deterministic phase-part decomposition of an ``n``-access
        run — shared by :meth:`generate` and :meth:`stream` so both walk
        the phase cycle (and drift the hot set) identically."""
        weights = np.array([p.weight for p in self.phases], dtype=float)
        weights /= weights.sum()
        produced = 0
        phase_i = 0
        while produced < n:
            phase = self.phases[phase_i % len(self.phases)]
            k = min(self.phase_len, n - produced)
            # phases share the cycle proportionally to weight
            k = max(1, int(round(k * weights[phase_i % len(self.phases)] * len(self.phases))))
            k = min(k, n - produced)
            yield phase, k
            produced += k
            phase_i += 1

    def generate(self, n: int, seed: int = 0, *, start_time: int = 0) -> TraceChunk:
        """Produce ``n`` accesses as a validated :class:`TraceChunk`."""
        if n < 0:
            raise WorkloadError("n must be non-negative")
        # zlib.crc32 is stable across processes (str hash() is salted)
        rng = np.random.default_rng(zlib.crc32(self.name.encode()) ^ seed)
        perm = g.make_hot_permutation(self.footprint_bytes, rng)

        parts: list[np.ndarray] = []
        for phase, k in self._part_sizes(n):
            parts.append(phase.pattern.generate(k, self.footprint_bytes, rng, perm))
            if phase.drift > 0:
                perm = rotate_permutation(perm, phase.drift, rng)

        addr = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        # bursty arrivals: post-LLC miss streams come in clusters (MLP,
        # row-buffer runs) separated by compute gaps. A burst access is a
        # few cycles after its predecessor; the long-gap mean is chosen so
        # the overall mean gap equals cycles_per_access.
        in_burst = rng.random(n) < self.burst_fraction
        long_mean = max(
            1.0,
            (self.cycles_per_access - self.burst_fraction * self.burst_gap)
            / max(1e-9, 1.0 - self.burst_fraction),
        )
        gaps = np.where(
            in_burst,
            rng.geometric(1.0 / self.burst_gap, size=n),
            rng.geometric(1.0 / long_mean, size=n),
        ).astype(np.int64)
        time = start_time + np.cumsum(gaps)
        cpu = (np.arange(n, dtype=np.int64) + rng.integers(0, self.n_cpus, size=n)) % self.n_cpus
        rw = np.where(rng.random(n) < self.write_fraction, WRITE, READ)
        return make_chunk(addr, time=time, cpu=cpu.astype(np.int16), rw=rw.astype(np.int8))

    def _long_gap_mean(self) -> float:
        return max(
            1.0,
            (self.cycles_per_access - self.burst_fraction * self.burst_gap)
            / max(1e-9, 1.0 - self.burst_fraction),
        )

    def _stamp_part(
        self,
        addr: np.ndarray,
        part_index: int,
        offset: int,
        t_start: int,
        base_seed: int,
    ) -> TraceChunk:
        """Stamp one phase part with times/cpus/rw from a part-derived RNG."""
        k = addr.shape[0]
        srng = np.random.default_rng((base_seed, part_index))
        in_burst = srng.random(k) < self.burst_fraction
        gaps = np.where(
            in_burst,
            srng.geometric(1.0 / self.burst_gap, size=k),
            srng.geometric(1.0 / self._long_gap_mean(), size=k),
        ).astype(np.int64)
        time = t_start + np.cumsum(gaps)
        cpu = (
            np.arange(offset, offset + k, dtype=np.int64)
            + srng.integers(0, self.n_cpus, size=k)
        ) % self.n_cpus
        rw = np.where(srng.random(k) < self.write_fraction, WRITE, READ)
        return make_chunk(
            addr, time=time, cpu=cpu.astype(np.int16), rw=rw.astype(np.int8),
            validate=False,
        )

    def stream(
        self,
        n: int,
        seed: int = 0,
        *,
        chunk_accesses: int | None = None,
        start_time: int = 0,
    ):
        """Yield ``n`` accesses as :class:`TraceChunk` windows without
        ever materializing the full trace (peak memory is
        O(``chunk_accesses`` + ``phase_len``), independent of ``n``).

        The *address* sequence is bit-identical to :meth:`generate`
        (same address RNG, same phase-part walk, same hot-set drift).
        The time/cpu/rw stamps come from per-part derived RNGs instead
        of the tail of the shared stream — :meth:`generate` draws its
        stamping arrays for the whole trace *after* all addresses, which
        would force O(n) memory — so stamps differ from :meth:`generate`
        but are **chunk-size invariant**: the yielded content depends
        only on ``(n, seed, start_time)``, never on ``chunk_accesses``.

        ``chunk_accesses`` should be a multiple of the simulator's
        ``swap_interval`` (see :func:`repro.trace.stream.aligned_chunk_size`)
        so chunk boundaries coincide with epoch boundaries; ``None``
        yields natural phase-part-sized chunks.
        """
        from ..trace.stream import rechunk

        if n < 0:
            raise WorkloadError("n must be non-negative")

        def parts():
            base_seed = zlib.crc32(self.name.encode()) ^ seed
            rng = np.random.default_rng(base_seed)
            perm = g.make_hot_permutation(self.footprint_bytes, rng)
            offset = 0
            t_cursor = start_time
            for part_index, (phase, k) in enumerate(self._part_sizes(n)):
                addr = phase.pattern.generate(k, self.footprint_bytes, rng, perm)
                if phase.drift > 0:
                    perm = rotate_permutation(perm, phase.drift, rng)
                chunk = self._stamp_part(
                    addr, part_index, offset, t_cursor, base_seed
                )
                offset += k
                t_cursor = int(chunk.time[-1])
                yield chunk

        if chunk_accesses is None:
            return parts()
        return rechunk(parts(), chunk_accesses)
