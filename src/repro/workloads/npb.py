"""NAS Parallel Benchmark 3.3 workload models (Table I).

Footprints are taken verbatim from the paper's Table I (CLASS C, except
DC which is CLASS B). Seven of the ten fit under 1 GB — the property
Fig 5's static-mapping result hinges on.

The access-pattern sketches follow each kernel's published structure:

* **FT** — 3D FFT: long unit-stride sweeps alternating with large-stride
  transpose sweeps over a huge array; little reuse between sweeps.
* **MG** — V-cycle multigrid: most accesses on the finest grid
  (streaming) with periodic excursions to much smaller coarse grids
  (highly reused clusters) — a natural hot/cold split.
* **CG** — conjugate gradient: sparse matrix–vector gathers (skewed
  random) plus dense vector streams.
* **BT/SP/LU** — structured-grid solvers: strided line sweeps in the
  three dimensions.
* **IS** — integer sort: random scatter into buckets + key streams.
* **EP** — embarrassingly parallel: tiny footprint, hot random.
* **UA** — unstructured adaptive: pointer chasing over a medium heap.
* **DC** — data cube (OLAP): transactional zipf over a large store.
"""

from __future__ import annotations

from ..errors import WorkloadError
from ..units import MB
from .base import PatternSpec, PhaseSpec, SyntheticWorkload

#: Table I, verbatim from the paper text (MB).
NPB_FOOTPRINTS_MB: dict[str, int] = {
    "BT.C": 76,
    "CG.C": 92,
    "DC.B": 5876,
    "EP.C": 16,
    "FT.C": 5147,
    "IS.C": 164,
    "LU.C": 615,
    "MG.C": 3426,
    "SP.C": 758,
    "UA.C": 51,
}


def _stream(stride: int = 1) -> PatternSpec:
    return PatternSpec("stream", {"stride_blocks": stride})


def _zipf(alpha: float = 1.1) -> PatternSpec:
    return PatternSpec("zipf", {"alpha": alpha})


def _phases(name: str, footprint: int) -> tuple[PhaseSpec, ...]:
    blocks = footprint // 4096
    kernel = name.split(".")[0]
    if kernel == "FT":
        # sweeps over the whole array interleaved with a reused
        # twiddle/work set scattered through the address space: GB-class
        # cacheable (L4 beats the static map, Fig 5) but slightly larger
        # than the on-package region, keeping migration's effectiveness
        # the lowest of the six (Table IV)
        hot = {"hot_weight": 0.85, "hot_fraction": 0.15, "alpha": 1.0}
        return (
            PhaseSpec(
                PatternSpec("stream_hot", {"stride_blocks": 1, **hot}),
                weight=1.0,
                drift=0.04,
            ),
            PhaseSpec(
                PatternSpec("stream_hot", {"stride_blocks": max(2, blocks // 64), **hot}),
                weight=1.0,
                drift=0.04,
            ),
        )
    if kernel == "MG":
        coarse = PatternSpec(
            "cluster", {"center_block": blocks // 3, "sigma_blocks": max(4.0, blocks / 512)}
        )
        return (
            PhaseSpec(_stream(1), weight=1.0),
            PhaseSpec(coarse, weight=1.5, drift=0.0),
            PhaseSpec(_zipf(1.3), weight=0.8, drift=0.08),
        )
    if kernel == "CG":
        return (
            PhaseSpec(_zipf(1.15), weight=1.5, drift=0.02),
            PhaseSpec(_stream(1), weight=1.0),
        )
    if kernel in ("BT", "SP", "LU"):
        return (
            PhaseSpec(_stream(1), weight=1.0),
            PhaseSpec(_stream(max(2, blocks // 128)), weight=1.0),
            PhaseSpec(_stream(max(3, blocks // 32)), weight=1.0, drift=0.02),
        )
    if kernel == "IS":
        return (
            PhaseSpec(PatternSpec("random"), weight=1.0),
            PhaseSpec(_stream(1), weight=1.0, drift=0.05),
        )
    if kernel == "EP":
        return (PhaseSpec(_zipf(1.4), weight=1.0),)
    if kernel == "UA":
        return (
            PhaseSpec(PatternSpec("chase", {"jump_scale_blocks": 256}), weight=1.0, drift=0.05),
            PhaseSpec(_zipf(1.2), weight=0.5),
        )
    if kernel == "DC":
        # data-cube scans with a large reused aggregate set: like FT, the
        # reuse is GB-class-cacheable but scattered (L4 > static, Fig 5)
        hot = {"hot_weight": 0.85, "hot_fraction": 0.1, "alpha": 1.0}
        return (
            PhaseSpec(PatternSpec("stream_hot", {"stride_blocks": 1, **hot}),
                      weight=1.5, drift=0.08),
            PhaseSpec(PatternSpec("txn", {"n_partitions": 64}), weight=1.0, drift=0.05),
        )
    raise WorkloadError(f"unknown NPB kernel {name!r}")


_WRITE_FRACTION = {
    "FT.C": 0.45, "MG.C": 0.35, "CG.C": 0.15, "BT.C": 0.40, "SP.C": 0.40,
    "LU.C": 0.40, "IS.C": 0.50, "EP.C": 0.10, "UA.C": 0.30, "DC.B": 0.30,
}


def npb_workload(name: str, footprint_bytes: int | None = None) -> SyntheticWorkload:
    """Build the model for one NPB workload (e.g. ``"FT.C"``)."""
    if name not in NPB_FOOTPRINTS_MB:
        raise WorkloadError(
            f"unknown NPB workload {name!r}; choose from {sorted(NPB_FOOTPRINTS_MB)}"
        )
    fp = footprint_bytes if footprint_bytes is not None else NPB_FOOTPRINTS_MB[name] * MB
    return SyntheticWorkload(
        name=name,
        footprint_bytes=fp,
        phases=_phases(name, fp),
        write_fraction=_WRITE_FRACTION[name],
        cycles_per_access=60.0,
        n_cpus=4,
    )
