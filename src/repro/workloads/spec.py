"""SPEC CPU2006 single-program models and the paper's 4-way mixture.

The *SPEC2006 Mixture* trace in the paper combines gcc, mcf, perl and
zeusmp into one multiprogrammed stream (Table III). The mixture's
footprint exceeds 2 GB; each program gets a disjoint address slice and
its own CPU id, merged by timestamp — exactly what
:func:`repro.trace.filters.interleave` implements.
"""

from __future__ import annotations

from ..errors import WorkloadError
from ..trace.filters import interleave
from ..trace.record import TraceChunk
from ..units import MB
from .base import PatternSpec, PhaseSpec, SyntheticWorkload

#: per-program footprints (MB). mcf dominates, as in reality.
SPEC_FOOTPRINTS_MB: dict[str, int] = {
    "gcc": 420,
    "mcf": 1680,
    "perl": 260,
    "zeusmp": 510,
}


def spec_workload(name: str, footprint_bytes: int | None = None) -> SyntheticWorkload:
    """One SPEC2006 program model."""
    if name not in SPEC_FOOTPRINTS_MB:
        raise WorkloadError(f"unknown SPEC program {name!r}")
    fp = footprint_bytes if footprint_bytes is not None else SPEC_FOOTPRINTS_MB[name] * MB
    if name == "gcc":
        phases = (
            PhaseSpec(PatternSpec("chase", {"jump_scale_blocks": 128}), weight=1.0, drift=0.06),
            PhaseSpec(PatternSpec("zipf", {"alpha": 1.5, "spread_blocks": 64}), weight=1.6),
        )
        wf, cpa = 0.30, 100.0
    elif name == "mcf":
        phases = (
            PhaseSpec(PatternSpec("chase", {"jump_scale_blocks": 4096}), weight=0.4, drift=0.02),
            PhaseSpec(PatternSpec("zipf", {"alpha": 1.5, "spread_blocks": 64}), weight=2.0, drift=0.02),
        )
        wf, cpa = 0.20, 40.0
    elif name == "perl":
        phases = (PhaseSpec(PatternSpec("zipf", {"alpha": 1.6, "spread_blocks": 32}), weight=1.0, drift=0.05),)
        wf, cpa = 0.35, 160.0
    else:  # zeusmp: stencil streaming
        phases = (
            PhaseSpec(PatternSpec("stream", {"stride_blocks": 1}), weight=0.6),
            PhaseSpec(PatternSpec("zipf", {"alpha": 1.45, "spread_blocks": 64}), weight=1.2, drift=0.02),
            PhaseSpec(PatternSpec("stream", {"stride_blocks": 64}), weight=0.5, drift=0.02),
        )
        wf, cpa = 0.40, 70.0
    return SyntheticWorkload(
        name=f"spec.{name}",
        footprint_bytes=fp,
        phases=phases,
        write_fraction=wf,
        cycles_per_access=cpa,
        n_cpus=1,
    )


def spec2006_mixture(
    n: int, seed: int = 0, *, total_footprint_bytes: int | None = None
) -> TraceChunk:
    """Generate the 4-program multiprogrammed mixture trace.

    ``total_footprint_bytes`` scales all four programs proportionally
    (used by the scaled experiment presets).
    """
    names = list(SPEC_FOOTPRINTS_MB)
    footprints = [SPEC_FOOTPRINTS_MB[p] * MB for p in names]
    if total_footprint_bytes is not None:
        paper_total = sum(footprints)
        footprints = [max(4096, fp * total_footprint_bytes // paper_total) for fp in footprints]
    per_program = n // len(names)
    chunks, offsets, base = [], [], 0
    align = 4 * MB  # keep program slices macro-page aligned at any granularity
    for i, (prog, fp) in enumerate(zip(names, footprints)):
        wl = spec_workload(prog, footprint_bytes=fp)
        chunks.append(wl.generate(per_program, seed=seed + i))
        offsets.append(base)
        base += (fp + align - 1) // align * align
    return interleave(chunks, cpu_ids=list(range(len(names))), offsets=offsets)
