"""Server workload models (Table III): pgbench, indexer, SPECjbb.

All three have footprints larger than 2 GB in the paper; the models keep
that default and accept a ``footprint_bytes`` override for scaled runs.

* **pgbench** — TPC-B-like PostgreSQL 8.3: zipf-hot table pages (the
  accounts table dominated by hot branches), a sequentially-written WAL
  region, and background vacuum streams; write-heavy.
* **indexer** — Nutch 0.9.1 indexer on HDFS: long document-scan streams
  feeding zipf-hot index/dictionary updates; JVM heap produces drifting
  hot sets.
* **SPECjbb** — 4 JVM copies x 16 warehouses: partitioned transactional
  accesses (warehouse = partition), moderate drift as warehouses churn.
"""

from __future__ import annotations

from ..units import GB, MB
from .base import PatternSpec, PhaseSpec, SyntheticWorkload

PGBENCH_FOOTPRINT = 2 * GB + 512 * MB
INDEXER_FOOTPRINT = 2 * GB + 256 * MB
SPECJBB_FOOTPRINT = 3 * GB


def pgbench_workload(footprint_bytes: int | None = None) -> SyntheticWorkload:
    fp = footprint_bytes if footprint_bytes is not None else PGBENCH_FOOTPRINT
    return SyntheticWorkload(
        name="pgbench",
        footprint_bytes=fp,
        phases=(
            PhaseSpec(PatternSpec("txn", {"n_partitions": 100, "partition_alpha": 1.4}),
                      weight=2.0, drift=0.04),
            PhaseSpec(PatternSpec("stream", {"stride_blocks": 1}), weight=0.4),  # WAL
            PhaseSpec(PatternSpec("zipf", {"alpha": 1.35}), weight=1.0, drift=0.02),
        ),
        write_fraction=0.45,
        cycles_per_access=85.0,
        n_cpus=4,
    )


def indexer_workload(footprint_bytes: int | None = None) -> SyntheticWorkload:
    fp = footprint_bytes if footprint_bytes is not None else INDEXER_FOOTPRINT
    return SyntheticWorkload(
        name="indexer",
        footprint_bytes=fp,
        phases=(
            PhaseSpec(PatternSpec("stream", {"stride_blocks": 1}), weight=0.55),  # doc scan
            PhaseSpec(PatternSpec("zipf", {"alpha": 1.55, "spread_blocks": 64}), weight=2.0, drift=0.04),
            PhaseSpec(PatternSpec("chase", {"jump_scale_blocks": 128}), weight=0.3, drift=0.02),
        ),
        write_fraction=0.35,
        cycles_per_access=70.0,
        n_cpus=4,
    )


def specjbb_workload(footprint_bytes: int | None = None) -> SyntheticWorkload:
    fp = footprint_bytes if footprint_bytes is not None else SPECJBB_FOOTPRINT
    return SyntheticWorkload(
        name="SPECjbb",
        footprint_bytes=fp,
        phases=(
            PhaseSpec(PatternSpec("txn", {"n_partitions": 64, "partition_alpha": 1.12,
                                          "intra_alpha": 1.15, "rotate_partitions": True}),
                      weight=2.0, drift=0.1),
            PhaseSpec(PatternSpec("zipf", {"alpha": 1.2, "spread_blocks": 64}), weight=0.8, drift=0.4),
        ),
        write_fraction=0.30,
        cycles_per_access=80.0,
        n_cpus=4,
        burst_fraction=0.5,
    )
