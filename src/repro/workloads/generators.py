"""Vectorised access-pattern primitives.

Each primitive returns an array of *byte addresses* inside
``[0, footprint)``. They are combined by :mod:`repro.workloads.base`
into phased workload models. All primitives draw from a caller-supplied
``numpy.random.Generator`` so workloads are reproducible by seed.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError

#: granularity at which patterns select locations; accesses then get a
#: random cache-line offset inside the block so row-buffer behaviour is
#: realistic without the pattern arrays being huge.
BLOCK = 4096
LINE = 64


def _check(n: int, footprint: int) -> int:
    if n < 0:
        raise WorkloadError("n must be non-negative")
    if footprint < BLOCK:
        raise WorkloadError(f"footprint {footprint} smaller than one {BLOCK}B block")
    return footprint // BLOCK


def _to_bytes(blocks: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Blocks -> byte addresses with a random line offset inside the block."""
    lines = rng.integers(0, BLOCK // LINE, size=blocks.shape[0])
    return blocks * BLOCK + lines * LINE


def zipf_hot(
    n: int,
    footprint: int,
    rng: np.random.Generator,
    *,
    alpha: float = 1.1,
    permutation: np.ndarray | None = None,
    spread_blocks: int = 1,
) -> np.ndarray:
    """Zipf-distributed block popularity over the footprint.

    ``permutation`` maps popularity rank -> block id; pass a stable
    permutation to keep the *same* hot set across calls, or a fresh one
    to rotate it. Hot blocks are scattered across the address space (not
    clustered at low addresses) so a static lowest-addresses-on-package
    mapping gains little — matching the paper's motivation for dynamic
    migration.
    """
    n_blocks = _check(n, footprint)
    if alpha <= 1.0:
        raise WorkloadError("zipf alpha must be > 1")
    if spread_blocks <= 0 or spread_blocks > n_blocks:
        raise WorkloadError("spread_blocks must be in [1, n_blocks]")
    ranks = rng.zipf(alpha, size=n) - 1
    if spread_blocks > 1:
        # zipf over *groups* of spread_blocks, uniform inside the group:
        # page-level heat without single-block (single-DRAM-row) hotspots
        np.minimum(ranks, n_blocks // spread_blocks - 1, out=ranks)
        ranks = ranks * spread_blocks + rng.integers(0, spread_blocks, size=n)
    np.minimum(ranks, n_blocks - 1, out=ranks)
    if permutation is None:
        permutation = rng.permutation(n_blocks)
    elif permutation.shape[0] != n_blocks:
        raise WorkloadError("permutation length must equal block count")
    return _to_bytes(permutation[ranks], rng)


def make_hot_permutation(
    footprint: int, rng: np.random.Generator, cluster_blocks: int = 64
) -> np.ndarray:
    """A rank->block permutation usable with :func:`zipf_hot`.

    Permutes *clusters* of ``cluster_blocks`` (default 256 KB) rather
    than single blocks: hot data in real programs is spatially clustered
    (arrays, tables, heap arenas), so adjacent popularity ranks map to
    adjacent blocks within a randomly-placed cluster. Without this,
    hotness is uniform at every macro-page granularity and page-level
    migration has nothing to chase. Clusters themselves land anywhere in
    the address space, so a static lowest-addresses mapping still cannot
    capture the hot set.
    """
    n_blocks = footprint // BLOCK
    if n_blocks <= cluster_blocks:
        return rng.permutation(n_blocks)
    n_clusters = n_blocks // cluster_blocks
    cluster_perm = rng.permutation(n_clusters)
    ranks = np.arange(n_clusters * cluster_blocks, dtype=np.int64)
    perm = cluster_perm[ranks // cluster_blocks] * cluster_blocks + ranks % cluster_blocks
    tail = np.arange(n_clusters * cluster_blocks, n_blocks, dtype=np.int64)
    return np.concatenate([perm, tail])


def sequential_stream(
    n: int,
    footprint: int,
    rng: np.random.Generator,
    *,
    start_block: int | None = None,
    stride_blocks: int = 1,
) -> np.ndarray:
    """Wrap-around streaming walk (unit or strided), e.g. FFT sweeps.

    ``start_block`` defaults to a random position: a sweep that restarts
    at address 0 every phase would hand the lowest addresses artificial
    heat, which a static lowest-addresses-on-package mapping would then
    capture — a bias real workloads don't have.
    """
    n_blocks = _check(n, footprint)
    if stride_blocks == 0:
        raise WorkloadError("stride must be non-zero")
    if start_block is None:
        start_block = int(rng.integers(0, n_blocks))
    idx = (start_block + stride_blocks * np.arange(n, dtype=np.int64)) % n_blocks
    return _to_bytes(idx, rng)


def stream_with_hot(
    n: int,
    footprint: int,
    rng: np.random.Generator,
    *,
    permutation: np.ndarray,
    stride_blocks: int = 1,
    start_block: int | None = None,
    hot_weight: float = 0.4,
    hot_fraction: float = 0.1,
    alpha: float = 1.1,
) -> np.ndarray:
    """A streaming sweep interleaved with touches to a persistent hot set.

    The hot set is the first ``hot_fraction`` of the popularity
    permutation — scattered across the address space and stable across
    phases. Interleaving puts the hot-set reuse distances at roughly the
    hot-set size: bigger than an L2/L3 but within a GB-class L4 — the
    FT-style behaviour Section II's L4-vs-static comparison hinges on.
    """
    n_blocks = _check(n, footprint)
    if not 0.0 < hot_weight < 1.0 or not 0.0 < hot_fraction <= 1.0:
        raise WorkloadError("hot_weight in (0,1) and hot_fraction in (0,1] required")
    hot_blocks = max(1, int(n_blocks * hot_fraction))
    if start_block is None:
        start_block = int(rng.integers(0, n_blocks))
    is_hot = rng.random(n) < hot_weight
    # the stream advances only on stream accesses
    stream_steps = np.cumsum(~is_hot) - 1
    stream_idx = (start_block + stride_blocks * stream_steps) % n_blocks
    if alpha > 1.0:
        ranks = np.minimum(rng.zipf(alpha, size=n) - 1, hot_blocks - 1)
    else:
        # alpha <= 1: uniform over the hot set — reuse distances then sit
        # at the hot-set size (the L4 catchment zone) instead of collapsing
        # onto a few ultra-hot lines the L1/L2 already capture
        ranks = rng.integers(0, hot_blocks, size=n)
    hot_idx = permutation[ranks]
    addrs = _to_bytes(np.where(is_hot, hot_idx, stream_idx), rng)
    # hot data (tables, twiddle factors) is reused at *line* granularity:
    # restrict each hot block to a few deterministic lines so line-level
    # reuse survives even in short scaled traces
    lines_per_block = BLOCK // LINE
    hot_line = (hot_idx * 7 + rng.integers(0, 4, size=n)) % lines_per_block
    hot_addr = hot_idx * BLOCK + hot_line * LINE
    return np.where(is_hot, hot_addr, addrs)


def uniform_random(n: int, footprint: int, rng: np.random.Generator) -> np.ndarray:
    """Uniformly random blocks — the locality-free worst case (mcf-like)."""
    n_blocks = _check(n, footprint)
    return _to_bytes(rng.integers(0, n_blocks, size=n), rng)


def pointer_chase(
    n: int,
    footprint: int,
    rng: np.random.Generator,
    *,
    jump_scale_blocks: int = 1024,
) -> np.ndarray:
    """A random walk with heavy-tailed jumps — linked-structure traversal.

    Produces short runs of nearby accesses punctuated by long jumps
    (gcc/mcf-style pointer chasing) without a per-access Python loop:
    the walk is a cumulative sum of i.i.d. two-sided Pareto-ish steps.
    """
    n_blocks = _check(n, footprint)
    signs = rng.choice(np.array([-1, 1]), size=n)
    magnitude = np.rint(jump_scale_blocks / rng.pareto(1.5, size=n).clip(min=0.05)).astype(np.int64)
    steps = signs * np.minimum(magnitude, n_blocks)
    walk = (rng.integers(0, n_blocks) + np.cumsum(steps)) % n_blocks
    return _to_bytes(walk, rng)


def gaussian_cluster(
    n: int,
    footprint: int,
    rng: np.random.Generator,
    *,
    center_block: int,
    sigma_blocks: float,
) -> np.ndarray:
    """Accesses clustered around a centre — a grid level in multigrid."""
    n_blocks = _check(n, footprint)
    blocks = np.rint(rng.normal(center_block, sigma_blocks, size=n)).astype(np.int64) % n_blocks
    return _to_bytes(blocks, rng)


def transactional(
    n: int,
    footprint: int,
    rng: np.random.Generator,
    *,
    n_partitions: int = 16,
    partition_alpha: float = 1.3,
    intra_alpha: float = 1.2,
    rotate_partitions: bool = False,
) -> np.ndarray:
    """OLTP-style accesses: pick a partition (warehouse/table) by zipf,
    then a zipf-hot block inside it — SPECjbb/pgbench-style.

    ``rotate_partitions`` re-draws which partitions are hot on every
    call (phase): warehouse churn. A migration controller then has to
    chase the hot set instead of locking onto it once.
    """
    n_blocks = _check(n, footprint)
    if n_partitions <= 0 or n_partitions > n_blocks:
        raise WorkloadError("invalid partition count")
    part = np.minimum(rng.zipf(partition_alpha, size=n) - 1, n_partitions - 1)
    # scatter hot partitions across the address space — popularity rank
    # must not correlate with address, or a static lowest-addresses
    # mapping would trivially capture the hot set
    if rotate_partitions:
        part = rng.permutation(n_partitions)[part]
    else:
        part = (part * 2654435761) % n_partitions
    blocks_per_part = n_blocks // n_partitions
    local = np.minimum(rng.zipf(intra_alpha, size=n) - 1, blocks_per_part - 1)
    # scatter hot blocks within each partition deterministically
    local = (local * 2654435761) % blocks_per_part
    blocks = part * blocks_per_part + local
    # index/tuple reuse is line-dense: restrict each block to a few
    # deterministic lines so reuse survives at line granularity
    lines_per_block = BLOCK // LINE
    line = (blocks * 7 + rng.integers(0, 4, size=n)) % lines_per_block
    return blocks * BLOCK + line * LINE


def mix(
    n: int,
    rng: np.random.Generator,
    parts: list[tuple[float, np.ndarray]],
) -> np.ndarray:
    """Interleave pre-generated address streams with given weights.

    ``parts`` is ``[(weight, addresses), ...]``; each stream must have at
    least the number of records its weight implies. Selection is random
    per access, preserving each stream's internal order.
    """
    if not parts:
        raise WorkloadError("mix needs at least one part")
    weights = np.array([w for w, _ in parts], dtype=float)
    if (weights <= 0).any():
        raise WorkloadError("mix weights must be positive")
    weights /= weights.sum()
    choice = rng.choice(len(parts), size=n, p=weights)
    out = np.empty(n, dtype=np.int64)
    for i, (_, addrs) in enumerate(parts):
        mask = choice == i
        k = int(mask.sum())
        if k > addrs.shape[0]:
            raise WorkloadError(f"mix part {i} too short: needs {k}, has {addrs.shape[0]}")
        out[mask] = addrs[:k]
    return out
