"""Synthetic workload models.

The paper evaluates on traces from NPB 3.3 (Table I), a SPEC2006
mixture, and three server workloads (Table III). We have no access to
the authors' COTSon traces, so each workload is modelled as a
composition of access-pattern primitives (streaming, strided, zipf hot
set, pointer chase, transactional) with the paper's footprints and a
drifting hot set — the properties the migration study actually
exercises. See DESIGN.md section 2.
"""

from .base import PatternSpec, PhaseSpec, SyntheticWorkload
from .registry import available_workloads, get_workload
from .npb import NPB_FOOTPRINTS_MB, npb_workload
from .spec import spec2006_mixture, spec_workload
from .server import indexer_workload, pgbench_workload, specjbb_workload
from .tenants import TENANT_WORKLOADS, tenant_mix

__all__ = [
    "PatternSpec",
    "PhaseSpec",
    "SyntheticWorkload",
    "available_workloads",
    "get_workload",
    "NPB_FOOTPRINTS_MB",
    "npb_workload",
    "spec_workload",
    "spec2006_mixture",
    "pgbench_workload",
    "indexer_workload",
    "specjbb_workload",
    "TENANT_WORKLOADS",
    "tenant_mix",
]
