"""Tenant mix presets for the multi-tenant scenarios.

Builds ``(TenantSpec, trace)`` pairs sized to a given system geometry:
the base tenants tile the whole data page space, so with churn enabled
the late arrivals are deliberately *only* admissible into a window a
departed tenant freed — every churn run structurally proves reclaimed
windows are reusable.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..errors import WorkloadError
from ..tenancy.domain import TenantSpec
from ..trace.record import TraceChunk
from .registry import generate_trace

#: workload names cycled across the tenants of a mix
TENANT_WORKLOADS = ("pgbench", "indexer", "SPECjbb", "FT.C", "MG.C")


def tenant_mix(
    config: SystemConfig,
    n_tenants: int = 8,
    *,
    accesses: int = 20_000,
    seed: int = 0,
    churn: bool = False,
) -> list[tuple[TenantSpec, TraceChunk]]:
    """A ready-to-schedule mix of ``n_tenants`` heterogeneous tenants.

    Every base tenant gets an equal page-count footprint (together they
    tile the data space) and ``accesses`` trace accesses from a cycled
    workload model. With ``churn=True`` two base tenants depart about a
    third of the way through the run and two late tenants of the same
    footprint arrive afterwards — their windows can only come from the
    reclaimed ones.
    """
    if n_tenants < 1:
        raise WorkloadError("n_tenants must be >= 1")
    amap = config.address_map()
    usable = amap.ghost_page
    pages_each = usable // n_tenants
    if pages_each < 2:
        raise WorkloadError(
            f"{n_tenants} tenants over {usable} data pages leaves "
            f"footprints below 2 pages"
        )
    swap_interval = config.migration.swap_interval
    total_epochs = max(1, n_tenants * accesses // swap_interval)
    depart_epoch = max(2, total_epochs // 3)
    # a departure is only *noticed* when the round-robin reaches the
    # tenant, up to one full rotation after depart_epoch — arrivals wait
    # two rotations so both freed windows exist by then
    arrive_epoch = depart_epoch + 2 * n_tenants
    departing = {1, 3} & set(range(n_tenants)) if churn else set()

    mix: list[tuple[TenantSpec, TraceChunk]] = []
    footprint = pages_each * amap.macro_page_bytes
    for i in range(n_tenants):
        name = TENANT_WORKLOADS[i % len(TENANT_WORKLOADS)]
        spec = TenantSpec(
            tenant_id=i,
            name=name,
            n_pages=pages_each,
            weight=1.0 + 0.5 * (i % 3),
            depart_epoch=depart_epoch if i in departing else None,
        )
        trace = generate_trace(
            name, accesses, seed=seed + i, footprint_bytes=footprint
        )
        mix.append((spec, trace))
    for j in range(len(departing)):
        tenant_id = n_tenants + j
        name = TENANT_WORKLOADS[tenant_id % len(TENANT_WORKLOADS)]
        spec = TenantSpec(
            tenant_id=tenant_id,
            name=name,
            n_pages=pages_each,
            arrive_epoch=arrive_epoch + j,
        )
        trace = generate_trace(
            name, accesses, seed=seed + tenant_id, footprint_bytes=footprint
        )
        mix.append((spec, trace))
    return mix
