"""Mattson LRU stack-distance analysis.

One pass over a reference stream yields, for every access, the number of
*distinct* lines touched since the previous access to the same line (the
LRU stack distance; cold misses get distance infinity). A fully
associative LRU cache of C lines then misses exactly the accesses with
distance >= C — so a single profile prices **every** capacity at once.
That inclusion property is what Fig 4's 8 MB -> 1 GB sweep and the
hierarchy's level filtering are built on.

Implementation: classic offline algorithm — a Fenwick (binary indexed)
tree over access positions counts surviving "last occurrences" between
an access and the previous touch of its line. O(n log n), with the inner
loop kept tight (plain ints, no numpy scalar overhead).
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError

#: distance assigned to cold (first-touch) accesses
COLD = np.iinfo(np.int64).max


def stack_distances(lines: np.ndarray) -> np.ndarray:
    """Per-access LRU stack distances of a line-granular reference stream."""
    lines = np.asarray(lines, dtype=np.int64)
    n = lines.shape[0]
    dist = np.empty(n, dtype=np.int64)
    if n == 0:
        return dist

    # compress line ids to 0..u-1
    _, inv = np.unique(lines, return_inverse=True)
    last = {}  # compressed line -> last position
    tree = [0] * (n + 1)  # Fenwick over positions, 1-based

    def bit_add(i: int, v: int) -> None:
        i += 1
        while i <= n:
            tree[i] += v
            i += i & (-i)

    def bit_sum(i: int) -> int:  # prefix sum of [0, i]
        i += 1
        s = 0
        while i > 0:
            s += tree[i]
            i -= i & (-i)
        return s

    inv_list = inv.tolist()  # plain ints: ~3x faster inner loop
    out = dist  # local alias
    total_marks = 0
    for pos, line in enumerate(inv_list):
        prev = last.get(line)
        if prev is None:
            out[pos] = COLD
        else:
            # distinct lines touched strictly after prev: marks in (prev, pos)
            out[pos] = total_marks - bit_sum(prev)
            bit_add(prev, -1)
            total_marks -= 1
        bit_add(pos, 1)
        total_marks += 1
        last[line] = pos
    return dist


class StackDistanceProfile:
    """A computed profile with capacity queries.

    Parameters
    ----------
    addresses:
        Byte addresses of the reference stream.
    line_bytes:
        Cache line size used to form the line stream.
    """

    def __init__(self, addresses: np.ndarray, line_bytes: int = 64):
        if line_bytes <= 0:
            raise SimulationError("line_bytes must be positive")
        self.line_bytes = line_bytes
        self.lines = np.asarray(addresses, dtype=np.int64) // line_bytes
        self.distances = stack_distances(self.lines)
        self.n = self.lines.shape[0]

    def miss_count(self, capacity_bytes: int) -> int:
        """Misses of a fully associative LRU cache of this capacity."""
        c_lines = max(1, capacity_bytes // self.line_bytes)
        return int((self.distances >= c_lines).sum())

    def miss_rate(self, capacity_bytes: int) -> float:
        return self.miss_count(capacity_bytes) / self.n if self.n else 0.0

    def miss_mask(self, capacity_bytes: int) -> np.ndarray:
        """Boolean mask of the accesses that miss at this capacity —
        i.e. the post-cache (filtered) reference stream."""
        c_lines = max(1, capacity_bytes // self.line_bytes)
        return self.distances >= c_lines

    def miss_rates(self, capacities_bytes: list[int]) -> list[float]:
        """Miss rate at each capacity — one sort instead of k scans."""
        if self.n == 0:
            return [0.0 for _ in capacities_bytes]
        sorted_d = np.sort(self.distances)
        out = []
        for c in capacities_bytes:
            c_lines = max(1, c // self.line_bytes)
            idx = np.searchsorted(sorted_d, c_lines, side="left")
            out.append((self.n - int(idx)) / self.n)
        return out

    @property
    def cold_miss_rate(self) -> float:
        return float((self.distances == COLD).sum() / self.n) if self.n else 0.0
