"""Replacement / recency-tracking policies.

Three policies the paper's hardware uses:

* :class:`LRUPolicy` — exact LRU (reference).
* :class:`ClockPseudoLRU` — the clock-based pseudo-LRU used in real
  processors [17]; the migration controller uses it to find the
  *coldest* on-package macro page with one bit per slot (Fig 10's
  256-bit map).
* :class:`MultiQueue` — the multi-queue algorithm [18] (three levels of
  ten entries each in the paper) used to find the *hottest* off-package
  macro page.
"""

from __future__ import annotations

from collections import OrderedDict, deque

import numpy as np

from ..errors import ConfigError


class LRUPolicy:
    """Exact LRU over a fixed population of slots."""

    def __init__(self, n_slots: int):
        if n_slots <= 0:
            raise ConfigError("n_slots must be positive")
        self.n_slots = n_slots
        # slot -> None, insertion order == recency order (oldest first)
        self._order: OrderedDict[int, None] = OrderedDict((s, None) for s in range(n_slots))

    def touch(self, slot: int) -> None:
        self._order.move_to_end(slot)

    def victim(self) -> int:
        """The least-recently-used slot (not evicted — slots are fixed)."""
        return next(iter(self._order))

    def recency_ranking(self) -> list[int]:
        """Slots oldest-first."""
        return list(self._order)


class ClockPseudoLRU:
    """One reference bit per slot plus a clock hand.

    ``touch`` sets the slot's bit; ``victim`` sweeps the hand, clearing
    set bits, until it lands on a clear one — an O(1)-amortised
    approximation of LRU costing exactly ``n_slots`` bits of state.
    """

    def __init__(self, n_slots: int):
        if n_slots <= 0:
            raise ConfigError("n_slots must be positive")
        self.n_slots = n_slots
        self.bits = np.zeros(n_slots, dtype=bool)
        self.hand = 0

    def touch(self, slot: int) -> None:
        self.bits[slot] = True

    def touch_many(self, slots: np.ndarray) -> None:
        """Vectorised touch — used by the epoch simulator."""
        self.bits[np.asarray(slots, dtype=np.int64)] = True

    def victim(self) -> int:
        """Sweep the clock hand to the first clear-bit slot."""
        for _ in range(2 * self.n_slots):
            if not self.bits[self.hand]:
                chosen = self.hand
                self.hand = (self.hand + 1) % self.n_slots
                return chosen
            self.bits[self.hand] = False
            self.hand = (self.hand + 1) % self.n_slots
        # all bits were set twice around: hand position is as good as any
        return self.hand  # pragma: no cover

    @property
    def state_bits(self) -> int:
        """Hardware cost in bits (Fig 10 accounting)."""
        return self.n_slots


class MultiQueue:
    """Multi-queue frequency/recency tracker [18].

    ``n_levels`` FIFO queues of ``level_capacity`` entries each. A touch
    promotes a page one level (or enqueues it at level 0); overflowing a
    level demotes its oldest entry one level down; overflow of level 0
    evicts. ``hottest`` returns the most recent entry of the highest
    non-empty level — the MRU off-package macro page.
    """

    def __init__(self, n_levels: int = 3, level_capacity: int = 10):
        if n_levels <= 0 or level_capacity <= 0:
            raise ConfigError("levels and capacity must be positive")
        self.n_levels = n_levels
        self.level_capacity = level_capacity
        self._queues: list[deque[int]] = [deque() for _ in range(n_levels)]
        self._level_of: dict[int, int] = {}

    def _demote_overflow(self, level: int) -> None:
        while len(self._queues[level]) > self.level_capacity:
            page = self._queues[level].popleft()
            if level == 0:
                del self._level_of[page]
            else:
                self._queues[level - 1].append(page)
                self._level_of[page] = level - 1
                self._demote_overflow(level - 1)

    def touch(self, page: int) -> None:
        cur = self._level_of.get(page)
        if cur is None:
            new = 0
        else:
            self._queues[cur].remove(page)
            new = min(cur + 1, self.n_levels - 1)
        self._queues[new].append(page)
        self._level_of[page] = new
        self._demote_overflow(new)

    def touch_many(self, pages: np.ndarray) -> None:
        for p in np.asarray(pages, dtype=np.int64):
            self.touch(int(p))

    def hottest(self) -> int | None:
        """MRU page: newest entry of the highest non-empty level."""
        for level in range(self.n_levels - 1, -1, -1):
            if self._queues[level]:
                return self._queues[level][-1]
        return None

    def forget(self, page: int) -> None:
        """Drop a page (it migrated on-package and is no longer tracked)."""
        level = self._level_of.pop(page, None)
        if level is not None:
            self._queues[level].remove(page)

    def __contains__(self, page: int) -> bool:
        return page in self._level_of

    def __len__(self) -> int:
        return len(self._level_of)

    @property
    def state_bits(self) -> int:
        """Hardware cost: queue entries x (page-id width ~26 bits) — the
        paper quotes 780 bits for 3 levels x 10 entries."""
        return self.n_levels * self.level_capacity * 26
