"""The L1/L2/L3 hierarchy of Table II, driven by stack-distance analytics.

For an inclusive LRU hierarchy with one line size, an access hits level k
iff its stack distance is below level k's capacity — so a single profile
yields every level's hit rate *and* the post-LLC main-memory stream
(what the paper's COTSon traces contain).

The per-set reference model (:mod:`repro.cache.sets`) cross-validates
this on small streams in ``tests/test_cache_hierarchy.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import CacheHierarchyConfig
from ..trace.record import TraceChunk
from .stackdist import StackDistanceProfile


@dataclass(frozen=True)
class HierarchyStats:
    """Per-level hit fractions of one reference stream."""

    n_accesses: int
    l1_hit: float
    l2_hit: float
    l3_hit: float

    @property
    def memory_fraction(self) -> float:
        """Fraction of references that reach main memory."""
        return max(0.0, 1.0 - self.l1_hit - self.l2_hit - self.l3_hit)


class CacheHierarchy:
    """Analytic inclusive hierarchy over a stack-distance profile."""

    def __init__(self, config: CacheHierarchyConfig | None = None):
        self.config = config or CacheHierarchyConfig()

    def analyze(self, profile: StackDistanceProfile) -> HierarchyStats:
        cfg = self.config
        # private L1/L2 capacities are per-core; the shared stream model
        # treats them at aggregate capacity (n_cores x private size),
        # the standard multiprogrammed approximation.
        l1_c = cfg.l1.capacity_bytes * cfg.n_cores
        l2_c = cfg.l2.capacity_bytes * cfg.n_cores
        l3_c = cfg.l3.capacity_bytes
        m1 = profile.miss_rate(l1_c)
        m2 = profile.miss_rate(l2_c)
        m3 = profile.miss_rate(l3_c)
        return HierarchyStats(
            n_accesses=profile.n,
            l1_hit=1.0 - m1,
            l2_hit=max(0.0, m1 - m2),
            l3_hit=max(0.0, m2 - m3),
        )

    def memory_trace(self, chunk: TraceChunk, profile: StackDistanceProfile | None = None) -> TraceChunk:
        """Filter a CPU reference stream to the post-LLC memory stream."""
        if profile is None:
            profile = StackDistanceProfile(chunk.addr, self.config.l3.line_bytes)
        mask = profile.miss_mask(self.config.l3.capacity_bytes)
        return TraceChunk(np.ascontiguousarray(chunk.records[mask]), validate=False)

    def amat_cycles(
        self,
        profile: StackDistanceProfile,
        memory_latency_cycles: float,
    ) -> float:
        """Average memory access time with the given main-memory latency."""
        cfg = self.config
        stats = self.analyze(profile)
        return (
            cfg.l1.latency_cycles
            + (1.0 - stats.l1_hit) * cfg.l2.latency_cycles
            + (1.0 - stats.l1_hit - stats.l2_hit) * cfg.l3.latency_cycles
            + stats.memory_fraction * memory_latency_cycles
        )
