"""Cache substrate.

Provides the SRAM hierarchy of Table II (L1/L2/L3), the paper's
15-of-16-way tags-in-DRAM L4 cache model (Section II), LRU / CLOCK /
multi-queue replacement policies, and a Mattson stack-distance profiler
that yields the miss rate of *every* LRU capacity in one pass — the
engine behind Fig 4's capacity sweep and trace filtering.
"""

from .replacement import ClockPseudoLRU, LRUPolicy, MultiQueue
from .sets import SetAssociativeCache
from .stackdist import StackDistanceProfile
from .hierarchy import CacheHierarchy
from .dramcache import DramCacheModel

__all__ = [
    "LRUPolicy",
    "ClockPseudoLRU",
    "MultiQueue",
    "SetAssociativeCache",
    "StackDistanceProfile",
    "CacheHierarchy",
    "DramCacheModel",
]
