"""Set-associative cache — the faithful reference model.

Per-access Python simulation with exact per-set LRU. Used for unit
tests, the DRAM-cache functional model, and cross-validation of the
stack-distance analytics; the big sweeps use
:class:`~repro.cache.stackdist.StackDistanceProfile` instead.
"""

from __future__ import annotations

import numpy as np

from ..config import CacheLevelConfig
from ..errors import ConfigError


class SetAssociativeCache:
    """An LRU set-associative cache with hit/miss accounting."""

    def __init__(self, config: CacheLevelConfig):
        self.config = config
        self.n_sets = config.n_sets
        self.ways = config.ways
        self.line_bytes = config.line_bytes
        # tag storage: -1 = invalid; recency: higher = more recent
        self._tags = np.full((self.n_sets, self.ways), -1, dtype=np.int64)
        self._recency = np.zeros((self.n_sets, self.ways), dtype=np.int64)
        self._tick = 0
        self.hits = 0
        self.misses = 0

    def _index_tag(self, addr: int) -> tuple[int, int]:
        line = addr // self.line_bytes
        return line % self.n_sets, line // self.n_sets

    def access(self, addr: int) -> bool:
        """One access; returns True on hit. Misses allocate (write-allocate)."""
        s, tag = self._index_tag(addr)
        self._tick += 1
        row = self._tags[s]
        hit_ways = np.flatnonzero(row == tag)
        if hit_ways.size:
            self._recency[s, hit_ways[0]] = self._tick
            self.hits += 1
            return True
        self.misses += 1
        empty = np.flatnonzero(row == -1)
        way = empty[0] if empty.size else int(np.argmin(self._recency[s]))
        self._tags[s, way] = tag
        self._recency[s, way] = self._tick
        return False

    def access_many(self, addr: np.ndarray) -> np.ndarray:
        """Boolean hit mask for a batch of accesses (sequential semantics)."""
        out = np.empty(len(addr), dtype=bool)
        for i, a in enumerate(np.asarray(addr, dtype=np.int64)):
            out[i] = self.access(int(a))
        return out

    def contains(self, addr: int) -> bool:
        s, tag = self._index_tag(addr)
        return bool((self._tags[s] == tag).any())

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        self._tags.fill(-1)
        self._recency.fill(0)


def make_cache(capacity_bytes: int, ways: int, line_bytes: int = 64) -> SetAssociativeCache:
    """Convenience constructor without a latency field."""
    if capacity_bytes % (ways * line_bytes):
        raise ConfigError("capacity must be a whole number of sets")
    cfg = CacheLevelConfig(capacity_bytes, ways, latency_cycles=0, line_bytes=line_bytes)
    return SetAssociativeCache(cfg)
