"""The paper's tags-in-DRAM L4 cache model (Section II).

Commodity on-package DRAM has no tag arrays, so the paper implements a
15-way set-associative cache inside a 16-way data layout: each DRAM row
holds 1 tag line + 15 data lines. A lookup reads the tag line first,
then (on a hit) the data line — **two sequential DRAM accesses**, making
the hit latency ~2x the on-package DRAM access time and the miss
determination ~1x before the request is forwarded off-package
(Table II: L4 hit 140 cycles, miss adds 70 on top of memory).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CacheLevelConfig
from ..errors import ConfigError
from .sets import SetAssociativeCache
from .stackdist import StackDistanceProfile


@dataclass(frozen=True)
class DramCacheModel:
    """Latency/capacity model of the 15-of-16-way DRAM L4 cache.

    Parameters
    ----------
    capacity_bytes:
        Raw on-package DRAM capacity (the paper's 1 GB).
    onpkg_access_cycles:
        One on-package DRAM access, path included (Table II: 70).
    data_ways:
        Data lines per set (15; the 16th line holds the tags).
    """

    capacity_bytes: int
    onpkg_access_cycles: int = 70
    data_ways: int = 15
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.onpkg_access_cycles <= 0:
            raise ConfigError("capacity and latency must be positive")
        if not 1 <= self.data_ways < self.data_ways + 1:
            raise ConfigError("data_ways must be >= 1")

    @property
    def effective_capacity_bytes(self) -> int:
        """Data capacity after giving one way per set to tags."""
        return self.capacity_bytes * self.data_ways // (self.data_ways + 1)

    @property
    def hit_cycles(self) -> int:
        """Tag access then data access — sequential (2x DRAM)."""
        return 2 * self.onpkg_access_cycles

    @property
    def miss_penalty_cycles(self) -> int:
        """Tag access that misses, before forwarding off-package (1x DRAM)."""
        return self.onpkg_access_cycles

    def miss_rate(self, profile: StackDistanceProfile) -> float:
        """LRU miss rate at the effective (15/16) capacity."""
        return profile.miss_rate(self.effective_capacity_bytes)

    def average_latency(self, profile: StackDistanceProfile, memory_latency: float) -> float:
        """AMAT contribution of the L4 for post-L3 requests."""
        m = self.miss_rate(profile)
        return (1.0 - m) * self.hit_cycles + m * (self.miss_penalty_cycles + memory_latency)

    def functional_cache(self) -> SetAssociativeCache:
        """A per-set reference simulation of the 15-way layout."""
        sets = self.capacity_bytes // ((self.data_ways + 1) * self.line_bytes)
        cfg = CacheLevelConfig(
            capacity_bytes=sets * self.data_ways * self.line_bytes,
            ways=self.data_ways,
            latency_cycles=self.hit_cycles,
            line_bytes=self.line_bytes,
        )
        return SetAssociativeCache(cfg)
