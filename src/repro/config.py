"""Configuration dataclasses mirroring the paper's Tables II and III.

Latency components (cycles at the 3.2 GHz core clock, Table II):

=====================  ======================================
Memory controller      5 (processing)
Controller-to-core     4 each way
Package pin            5 each way
PCB wire               11 round-trip
Interposer pin         3 each way
Intra-package wire     1 round-trip
DRAM core              50 (Simics model; trace model is detailed)
Queuing (off-package)  116 (Simics model; emerges in trace model)
=====================  ======================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .address import AddressMap
from .errors import ConfigError
from .units import GB, KB, MB


@dataclass(frozen=True)
class LatencyComponents:
    """Fixed latency-path components from Table II (core cycles)."""

    controller_processing: int = 5
    controller_to_core_each_way: int = 4
    package_pin_each_way: int = 5
    pcb_wire_round_trip: int = 11
    interposer_pin_each_way: int = 3
    intra_package_round_trip: int = 1

    @property
    def offpkg_overhead(self) -> int:
        """Non-DRAM, non-queuing cycles of one off-package access.

        controller traversal (processing + 2x core link) + 2x package pin
        + PCB round trip.
        """
        return (
            self.controller_processing
            + 2 * self.controller_to_core_each_way
            + 2 * self.package_pin_each_way
            + self.pcb_wire_round_trip
        )

    @property
    def onpkg_overhead(self) -> int:
        """Non-DRAM cycles of one on-package access.

        controller traversal + 2x interposer pin + intra-package round trip.
        No package pin / PCB legs and (per the paper) negligible queuing.
        """
        return (
            self.controller_processing
            + 2 * self.controller_to_core_each_way
            + 2 * self.interposer_pin_each_way
            + self.intra_package_round_trip
        )


@dataclass(frozen=True)
class DramTiming:
    """Open-page DDR3-style bank timing in core cycles.

    Defaults approximate DDR3-1333 seen from a 3.2 GHz core
    (1 memory cycle ~ 4.8 core cycles; CL=tRCD=tRP=9 memory cycles).
    ``io_cycles`` is the burst/transfer cost per access, lower for the
    high-speed on-package interface.
    """

    t_cas: int = 43          # column access (row-buffer hit cost)
    t_rcd: int = 43          # activate: row to column delay
    t_rp: int = 43           # precharge on a conflict
    io_cycles: int = 19      # data burst on the channel
    n_banks: int = 8
    n_channels: int = 4
    #: finite-queue proxy: a controller has bounded transaction queues and
    #: backpressures the cores when full; in an open-loop trace simulation
    #: that bound caps the per-request queuing wait instead of letting the
    #: backlog grow without limit under bursty overload
    max_queue_wait: int = 2000
    #: refresh modelling (disabled by default): every ``refresh_interval``
    #: cycles all banks block for ``refresh_cycles`` (tREFI ~ 7.8 us and
    #: tRFC ~ 160 ns of DDR3 give ~25000 / ~512 at 3.2 GHz)
    refresh_interval: int = 0
    refresh_cycles: int = 512
    #: write recovery (disabled by default): a WRITE occupies the bank
    #: ``t_wr`` extra cycles after its burst (DDR3 tWR ~ 15 ns ~ 48)
    t_wr: int = 0
    #: per-channel data-bus serialisation (disabled by default): when on,
    #: each access additionally occupies its channel's shared data bus for
    #: ``io_cycles``, serialised across the channel's banks
    channel_bus: bool = False

    def __post_init__(self) -> None:
        for name in ("t_cas", "t_rcd", "t_rp", "io_cycles", "n_banks", "n_channels",
                     "max_queue_wait"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"DramTiming.{name} must be positive")
        if self.refresh_interval < 0 or self.refresh_cycles <= 0:
            raise ConfigError("invalid refresh parameters")
        if self.refresh_interval and self.refresh_cycles >= self.refresh_interval:
            raise ConfigError("refresh window must be shorter than its interval")

    @property
    def hit_cycles(self) -> int:
        """Service time of a row-buffer hit."""
        return self.t_cas + self.io_cycles

    @property
    def miss_cycles(self) -> int:
        """Service time of a row-buffer conflict (precharge + activate + CAS)."""
        return self.t_rp + self.t_rcd + self.t_cas + self.io_cycles


#: core clock the cycle-denominated timings are quoted against (Table II)
DEFAULT_FREQUENCY_HZ = 3.2e9

#: refresh characteristics, in seconds. Retention is a property of the
#: DRAM cell, so both tiers share the JEDEC tREFI of 7.8 us; tRFC is a
#: property of the *array* being refreshed. The off-package DDR3 DIMM
#: refreshes multi-Gbit devices (tRFC ~ 160 ns), while the on-package
#: stacked DRAM splits capacity across 128 small banks whose short rows
#: recharge much faster (tRFC ~ 60 ns) — refresh is cheaper on-package,
#: which is what makes migration double as hot-row mitigation.
DDR3_TREFI_S = 7.8e-6
DDR3_TRFC_S = 160e-9
ONPKG_TRFC_S = 60e-9


def cycles_of(seconds: float, frequency_hz: float = DEFAULT_FREQUENCY_HZ) -> int:
    """A wall-clock duration in (at least one) core cycles."""
    if seconds <= 0 or frequency_hz <= 0:
        raise ConfigError("seconds and frequency_hz must be positive")
    return max(1, int(round(seconds * frequency_hz)))


def offpkg_dram_timing(
    *, refresh: bool = False, frequency_hz: float = DEFAULT_FREQUENCY_HZ
) -> DramTiming:
    """Commodity DDR3 DIMM: 4 channels x 8 banks.

    ``refresh=True`` derives tREFI/tRFC from the DDR3 datasheet values
    at the given core clock (~24 960 / ~512 cycles at 3.2 GHz).
    """
    return DramTiming(
        refresh_interval=cycles_of(DDR3_TREFI_S, frequency_hz) if refresh else 0,
        refresh_cycles=cycles_of(DDR3_TRFC_S, frequency_hz),
    )


def onpkg_dram_timing(
    *, refresh: bool = False, frequency_hz: float = DEFAULT_FREQUENCY_HZ
) -> DramTiming:
    """On-package many-bank DRAM: 128 banks, faster I/O on the interposer.

    Shares the off-package tREFI (cell retention does not change on the
    interposer) but refreshes its small banks in ~60 ns — about a third
    of the DIMM's tRFC (~192 vs ~512 cycles at 3.2 GHz).
    """
    return DramTiming(
        t_cas=43, t_rcd=43, t_rp=43, io_cycles=5, n_banks=128, n_channels=1,
        refresh_interval=cycles_of(DDR3_TREFI_S, frequency_hz) if refresh else 0,
        refresh_cycles=cycles_of(ONPKG_TRFC_S, frequency_hz),
    )


@dataclass(frozen=True)
class CacheLevelConfig:
    """One level of the SRAM cache hierarchy (Table II)."""

    capacity_bytes: int
    ways: int
    latency_cycles: int
    line_bytes: int = 64
    shared: bool = False

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.ways <= 0 or self.latency_cycles < 0:
            raise ConfigError("invalid cache level parameters")
        if self.capacity_bytes % (self.ways * self.line_bytes):
            raise ConfigError("capacity must be a whole number of sets")

    @property
    def n_sets(self) -> int:
        return self.capacity_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class CacheHierarchyConfig:
    """The i7-like private L1/L2 + shared L3 of Table II."""

    l1: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(32 * KB, 8, 2)
    )
    l2: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(256 * KB, 8, 5)
    )
    l3: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(8 * MB, 16, 25, shared=True)
    )
    n_cores: int = 4


class MigrationAlgorithm:
    """Names of the three swap algorithms (Section III-A)."""

    N = "N"
    N_MINUS_1 = "N-1"
    LIVE = "live"

    ALL = (N, N_MINUS_1, LIVE)


@dataclass(frozen=True)
class MigrationConfig:
    """Migration-controller knobs (Section III / Table III)."""

    algorithm: str = MigrationAlgorithm.LIVE
    swap_interval: int = 10_000          # memory accesses per epoch
    macro_page_bytes: int = 1 * MB
    subblock_bytes: int = 4 * KB
    #: pure-hardware translation adds 2 cycles per access (Section III-B)
    hw_translation_cycles: int = 2
    #: user/kernel switch cost of one OS-assisted table update [19]
    os_update_cycles: int = 127
    #: granularity threshold below which the OS-assisted scheme is used
    hw_min_page_bytes: int = 1 * MB
    #: trigger a swap only when the off-package MRU page was accessed
    #: more often than the on-package LRU page during the epoch
    hottest_coldest_trigger: bool = True
    #: live migration copies the MRU sub-block first, then wraps
    critical_block_first: bool = True
    #: extra cycles an off-package demand access pays while a (demand-
    #: priority) background copy shares the DDR channel with it
    interference_cycles: int = 12

    def __post_init__(self) -> None:
        if self.algorithm not in MigrationAlgorithm.ALL:
            raise ConfigError(f"unknown migration algorithm {self.algorithm!r}")
        if self.swap_interval <= 0:
            raise ConfigError("swap_interval must be positive")

    @property
    def os_assisted(self) -> bool:
        """True when the macro page is too small for the pure-HW table."""
        return self.macro_page_bytes < self.hw_min_page_bytes


@dataclass(frozen=True)
class BusConfig:
    """Sustained copy bandwidth in bytes per core cycle.

    Off-package: 64-bit DDR3-1333 = 10.7 GB/s ~ 3.33 B/cycle at 3.2 GHz
    (the paper: a 4 MB macro page takes 374 us to cross the boundary).
    On-package: >= 2 Tbps flip-chip SiP interconnect [3] ~ 78 B/cycle.
    A cross-boundary copy is limited by the off-package bus.
    """

    offpkg_bytes_per_cycle: float = 3.33
    onpkg_bytes_per_cycle: float = 78.0

    def __post_init__(self) -> None:
        if self.offpkg_bytes_per_cycle <= 0 or self.onpkg_bytes_per_cycle <= 0:
            raise ConfigError("bus bandwidths must be positive")

    def copy_cycles(self, nbytes: int) -> int:
        """Cycles to move ``nbytes`` across the package boundary."""
        return int(round(nbytes / self.offpkg_bytes_per_cycle))


@dataclass(frozen=True)
class PowerConfig:
    """Energy-per-bit constants of Section IV-D [21].

    ``background_mw_per_gb`` optionally adds DRAM background power
    (refresh, PLL/DLL, standby) proportional to capacity and wall time —
    disabled by default to match the paper's pure per-bit accounting;
    ``benchmarks/bench_refresh.py`` explores how it moves Fig 16.
    """

    dram_core_pj_per_bit: float = 5.0
    onpkg_link_pj_per_bit: float = 1.66
    offpkg_link_pj_per_bit: float = 13.0
    access_bytes: int = 64               # one cache line per memory access
    background_mw_per_gb: float = 0.0    # ~50 mW/GB is typical for DDR3


@dataclass(frozen=True)
class ResilienceConfig:
    """Fault-tolerance knobs for long trace campaigns (all opt-in).

    The defaults disable every mechanism so the simulator behaves exactly
    as before; campaigns that need crash recovery or fault injection turn
    the individual features on.
    """

    #: epochs between ``table.audit()`` invariant sweeps (0 = never)
    audit_interval: int = 0
    #: data-safe late-abort recovery: an aborted swap copies every page
    #: its executed copy prefix displaced back home (from the surviving
    #: duplicate) before the table rollback, stalling execution for the
    #: copy-back and emitting an ``abort-recovered`` event. Off = the
    #: pre-recovery bare rollback, which can leave routing pointed at
    #: dead data after the Ω-resolution copy (the protocol checker's
    #: ``valid-copy`` counterexample).
    data_safe_abort: bool = True
    #: consecutive swap failures / failed audits before the migration
    #: engine quarantines itself and falls back to static mapping
    max_consecutive_failures: int = 3
    #: per-epoch total-latency budget for the watchdog (0 = no watchdog)
    epoch_cycle_budget: int = 0
    #: what the watchdog does on a breach: abort the run with a
    #: :class:`~repro.errors.WatchdogError` or record a
    #: ``DegradationEvent`` and keep going
    watchdog_action: str = "raise"
    #: cycles an ECC single-bit correction adds to the faulted access
    ecc_correction_cycles: int = 20
    #: cycles one detect-and-retry round trip costs
    ecc_retry_cycles: int = 200
    #: retries before a transient DRAM error is declared uncorrectable
    max_ecc_retries: int = 2

    def __post_init__(self) -> None:
        if self.audit_interval < 0 or self.epoch_cycle_budget < 0:
            raise ConfigError("audit_interval and epoch_cycle_budget must be >= 0")
        if self.max_consecutive_failures <= 0:
            raise ConfigError("max_consecutive_failures must be positive")
        if self.watchdog_action not in ("raise", "degrade"):
            raise ConfigError(
                f"watchdog_action must be 'raise' or 'degrade', "
                f"got {self.watchdog_action!r}"
            )
        if self.ecc_correction_cycles < 0 or self.ecc_retry_cycles < 0:
            raise ConfigError("ECC cycle costs must be >= 0")
        if self.max_ecc_retries < 0:
            raise ConfigError("max_ecc_retries must be >= 0")


@dataclass(frozen=True)
class RASConfig:
    """Runtime reliability (RAS) knobs: CE telemetry, patrol scrub,
    predictive page retirement, and off-package write-endurance.

    Everything defaults off (``enabled=False``); the simulator's default
    path — including the fused fast path and every published number —
    is bit-identical unless a run opts in. With ``enabled=True`` the
    simulator runs stepwise and attaches a
    :class:`~repro.ras.controller.RasController`.
    """

    enabled: bool = False
    #: seed for the per-epoch background-CE arrival stream (independent
    #: of any attached :class:`~repro.resilience.faults.FaultPlan` seed)
    seed: int = 0
    #: probability an on-package frame takes a background correctable
    #: error in a given epoch (per usable frame, Bernoulli per epoch)
    ce_base_rate: float = 0.0
    #: leaky-bucket level at which a frame is predictively retired
    ce_threshold: int = 8
    #: bucket decay per epoch (CEs must *cluster* to trigger retirement)
    ce_leak: float = 0.25
    #: cycles one inline CE correction adds to the epoch
    ce_cost_cycles: int = 20
    #: epochs between patrol-scrub passes (0 disables the scrubber)
    scrub_interval_epochs: int = 0
    #: usable frames scrubbed per pass (round-robin cursor)
    scrub_frames_per_pass: int = 1
    #: one scrub read covers this many bytes of a frame
    scrub_stride_bytes: int = 4 * KB
    #: off-package machine pages (just below the Ω ghost page) reserved
    #: as retirement spares — invisible to the trace address space
    spare_pages: int = 2
    #: never retire below this many usable on-package frames
    min_usable_frames: int = 2
    #: swap-candidate score penalty per ``wear_window`` lifetime writes
    #: to the candidate's off-package machine page (0 = endurance-blind)
    wear_penalty: float = 0.0
    #: lifetime-write normalisation window for the wear penalty
    wear_window: int = 1024

    def __post_init__(self) -> None:
        if not 0.0 <= self.ce_base_rate <= 1.0:
            raise ConfigError(
                f"ce_base_rate {self.ce_base_rate} outside [0, 1]"
            )
        if self.ce_threshold <= 0:
            raise ConfigError("ce_threshold must be positive")
        if self.ce_leak < 0:
            raise ConfigError("ce_leak must be >= 0")
        if self.ce_cost_cycles < 0:
            raise ConfigError("ce_cost_cycles must be >= 0")
        if self.scrub_interval_epochs < 0:
            raise ConfigError("scrub_interval_epochs must be >= 0")
        if self.scrub_frames_per_pass <= 0 or self.scrub_stride_bytes <= 0:
            raise ConfigError(
                "scrub_frames_per_pass and scrub_stride_bytes must be positive"
            )
        if self.spare_pages < 0:
            raise ConfigError("spare_pages must be >= 0")
        if self.min_usable_frames < 1:
            raise ConfigError("min_usable_frames must be >= 1")
        if self.wear_penalty < 0 or self.wear_window <= 0:
            raise ConfigError(
                "wear_penalty must be >= 0 and wear_window positive"
            )
        if self.enabled and self.spare_pages == 0:
            raise ConfigError(
                "an enabled RAS subsystem needs at least one spare page "
                "to retire into"
            )

    def reserved_pages(self, amap: AddressMap) -> frozenset[int]:
        """The spare machine pages: the ``spare_pages`` off-package
        pages directly below the Ω ghost page. Empty when disabled."""
        if not self.enabled or self.spare_pages == 0:
            return frozenset()
        return frozenset(
            range(amap.ghost_page - self.spare_pages, amap.ghost_page)
        )


@dataclass(frozen=True)
class DisturbConfig:
    """Row-disturbance (rowhammer) modelling knobs — all opt-in.

    With ``enabled=True`` the simulator runs stepwise and attaches a
    :class:`~repro.ras.disturb.DisturbController`: per-row activation
    telemetry (leaky buckets, like the RAS CE telemetry) watches every
    bank's activate stream; rows whose buckets cross ``act_threshold``
    between refreshes flip bits in their physical neighbours, visible to
    the data-integrity shadow memory. Mitigation is a three-rung ladder
    (targeted victim refresh -> migration bias -> throttle/retire); with
    ``mitigate=False`` the flips land unchecked so the harness can prove
    the shadow memory catches unmitigated hammering. Defaults keep every
    published number bit-identical.
    """

    enabled: bool = False
    #: seed for the victim-bit-flip stream (independent of FaultPlan)
    seed: int = 0
    #: activations of one row between refreshes before its neighbours
    #: take disturbance flips (real parts are O(10k-100k); scaled down
    #: to epoch-sized experiments like the CE rates)
    act_threshold: int = 64
    #: fraction of ``act_threshold`` at which mitigation engages
    alert_level: float = 0.5
    #: leaky-bucket decay per epoch, in activation units (refresh between
    #: epochs restores charge, so only *clustered* activation hammers)
    act_leak: float = 8.0
    #: run the mitigation ladder; False = detection-only (flips land)
    mitigate: bool = True
    #: targeted victim refreshes granted per row before escalating
    victim_refresh_max: int = 4
    #: sub-block flips landing per victim row on an unmitigated crossing
    flips_per_victim: int = 1
    #: hottest-page score bonus per bucketed activation of a page's rows
    #: (biases migration to pull aggressor pages on-package, where tRFC
    #: is short and victim refresh is cheap); 0 = no bias
    migration_bias: float = 0.0
    #: cycles charged per epoch while an escalated aggressor row is
    #: activation-throttled (graceful degradation, not correctness)
    throttle_cycles: int = 200

    def __post_init__(self) -> None:
        if self.act_threshold <= 0:
            raise ConfigError("act_threshold must be positive")
        if not 0.0 < self.alert_level <= 1.0:
            raise ConfigError(
                f"alert_level {self.alert_level} outside (0, 1]"
            )
        if self.act_leak < 0:
            raise ConfigError("act_leak must be >= 0")
        if self.victim_refresh_max < 0:
            raise ConfigError("victim_refresh_max must be >= 0")
        if self.flips_per_victim <= 0:
            raise ConfigError("flips_per_victim must be positive")
        if self.migration_bias < 0:
            raise ConfigError("migration_bias must be >= 0")
        if self.throttle_cycles < 0:
            raise ConfigError("throttle_cycles must be >= 0")


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration tying the subsystems together."""

    total_bytes: int = 4 * GB
    onpkg_bytes: int = 512 * MB
    latency: LatencyComponents = field(default_factory=LatencyComponents)
    offpkg_dram: DramTiming = field(default_factory=offpkg_dram_timing)
    onpkg_dram: DramTiming = field(default_factory=onpkg_dram_timing)
    caches: CacheHierarchyConfig = field(default_factory=CacheHierarchyConfig)
    migration: MigrationConfig = field(default_factory=MigrationConfig)
    bus: BusConfig = field(default_factory=BusConfig)
    power: PowerConfig = field(default_factory=PowerConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    ras: RASConfig = field(default_factory=RASConfig)
    disturb: DisturbConfig = field(default_factory=DisturbConfig)
    frequency_hz: float = DEFAULT_FREQUENCY_HZ

    def __post_init__(self) -> None:
        # Fail fast: AddressMap validates the geometry.
        amap = self.address_map()
        if self.ras.enabled:
            offpkg_pages = amap.n_total_pages - amap.n_onpkg_pages - 1
            if self.ras.spare_pages >= offpkg_pages:
                raise ConfigError(
                    f"RAS reserves {self.ras.spare_pages} spare pages but "
                    f"only {offpkg_pages} off-package pages exist below Ω"
                )
            if self.ras.min_usable_frames > amap.n_onpkg_pages:
                raise ConfigError(
                    f"min_usable_frames {self.ras.min_usable_frames} exceeds "
                    f"the {amap.n_onpkg_pages} on-package frames"
                )

    def address_map(self) -> AddressMap:
        return AddressMap(
            total_bytes=self.total_bytes,
            onpkg_bytes=self.onpkg_bytes,
            macro_page_bytes=self.migration.macro_page_bytes,
            subblock_bytes=self.migration.subblock_bytes,
        )

    def with_migration(self, **kwargs) -> "SystemConfig":
        """Return a copy with migration fields replaced."""
        return replace(self, migration=replace(self.migration, **kwargs))

    def with_resilience(self, **kwargs) -> "SystemConfig":
        """Return a copy with resilience fields replaced."""
        return replace(self, resilience=replace(self.resilience, **kwargs))

    def with_ras(self, **kwargs) -> "SystemConfig":
        """Return a copy with RAS fields replaced."""
        return replace(self, ras=replace(self.ras, **kwargs))

    def with_disturb(self, **kwargs) -> "SystemConfig":
        """Return a copy with row-disturbance fields replaced."""
        return replace(self, disturb=replace(self.disturb, **kwargs))


def paper_config(**migration_kwargs) -> SystemConfig:
    """Table III configuration: 4 GB total, 512 MB on-package."""
    cfg = SystemConfig()
    if migration_kwargs:
        cfg = cfg.with_migration(**migration_kwargs)
    return cfg


def scaled_config(scale: int = 16, **migration_kwargs) -> SystemConfig:
    """Paper geometry divided by ``scale`` so runs finish quickly.

    Keeps the 12.5% on-package ratio; macro pages are not scaled (they
    are the experiment variable) but must still fit the shrunken
    on-package region.
    """
    if scale <= 0:
        raise ConfigError("scale must be positive")
    cfg = SystemConfig(total_bytes=4 * GB // scale, onpkg_bytes=512 * MB // scale)
    if migration_kwargs:
        cfg = cfg.with_migration(**migration_kwargs)
    return cfg
