"""Streaming accumulators for chunked simulation output.

Latency arrays for multi-million-access runs should not be retained;
these accumulators fold each chunk into O(1)/O(bins) state.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError


class StreamingMean:
    """Mean/min/max/count over a stream of arrays."""

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, values: np.ndarray) -> None:
        v = np.asarray(values)
        if v.size == 0:
            return
        self.count += v.size
        self.total += float(v.sum())
        self.min = min(self.min, float(v.min()))
        self.max = max(self.max, float(v.max()))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class LatencyAccumulator:
    """Mean + fixed-bin histogram + approximate percentiles."""

    def __init__(self, max_latency: int = 1 << 20, n_bins: int = 2048):
        if max_latency <= 0 or n_bins <= 0:
            raise SimulationError("max_latency and n_bins must be positive")
        self.mean = StreamingMean()
        self.edges = np.logspace(0, np.log10(max_latency), n_bins + 1)
        self.counts = np.zeros(n_bins, dtype=np.int64)

    def add(self, latencies: np.ndarray) -> None:
        lat = np.asarray(latencies)
        if lat.size == 0:
            return
        self.mean.add(lat)
        hist, _ = np.histogram(np.clip(lat, 1, self.edges[-1]), bins=self.edges)
        self.counts += hist

    def percentile(self, q: float) -> float:
        """Approximate percentile from the log-spaced histogram."""
        if not 0 <= q <= 100:
            raise SimulationError("percentile must be in [0, 100]")
        total = self.counts.sum()
        if total == 0:
            return 0.0
        target = total * q / 100.0
        cum = np.cumsum(self.counts)
        idx = int(np.searchsorted(cum, target, side="left"))
        idx = min(idx, self.counts.shape[0] - 1)
        return float(self.edges[idx + 1])

    @property
    def average(self) -> float:
        return self.mean.mean
