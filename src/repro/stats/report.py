"""Plain-text tables matching the paper's figure/table layouts.

Every benchmark prints through :class:`Table` so regenerated results
line up with the paper's rows and columns for eyeball comparison.
"""

from __future__ import annotations

from ..errors import ReproError


def format_cycles(value: float) -> str:
    """Compact cycle counts (plain below 10k, k/M above)."""
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e4:
        return f"{value / 1e3:.1f}k"
    return f"{value:.1f}"


class Table:
    """A fixed-column text table with a title and optional footnote."""

    def __init__(self, title: str, columns: list[str]):
        if not columns:
            raise ReproError("a table needs columns")
        self.title = title
        self.columns = columns
        self.rows: list[list[str]] = []
        self.footnotes: list[str] = []

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ReproError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([str(c) for c in cells])

    def add_footnote(self, text: str) -> None:
        self.footnotes.append(text)

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * max(len(self.title), len(sep))]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        for note in self.footnotes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def print(self) -> None:  # noqa: A003 - deliberate, print-like
        print("\n" + self.render() + "\n")


def resilience_table(result) -> Table:
    """Summarise a run's resilience telemetry as a :class:`Table`.

    Takes a :class:`~repro.core.simulator.SimulationResult`; one row per
    degradation-event kind plus the fault/ECC counters, so fault-campaign
    logs read the same way the paper tables do.
    """
    from ..resilience.degradation import summarize_events

    table = Table(
        "Resilience summary",
        ["metric", "count"],
    )
    table.add_row("faults injected", result.faults_injected)
    table.add_row("dram errors corrected", result.dram_errors_corrected)
    table.add_row("dram errors retried", result.dram_errors_retried)
    table.add_row("dram errors uncorrectable", result.dram_errors_uncorrectable)
    for kind, count in sorted(summarize_events(result.degradation_events).items()):
        table.add_row(f"event: {kind}", count)
    table.add_row("quarantined", "yes" if result.quarantined else "no")
    if result.quarantined:
        table.add_footnote(
            "migration quarantined: run finished in static-mapping mode"
        )
    return table


def campaign_table(report) -> Table:
    """Partial-results summary of a campaign as a :class:`Table`.

    Takes a :class:`~repro.campaign.CampaignReport`; one row per task
    (status, attempts, duration, error), plus a footnote totalling the
    completed/failed/skipped split — so a degraded campaign states
    exactly which points it is missing.
    """
    table = Table(
        "Campaign summary",
        ["task", "status", "attempts", "duration", "error"],
    )
    for outcome in report.outcomes:
        table.add_row(
            outcome.task_id,
            outcome.status,
            outcome.attempts,
            f"{outcome.duration_s:.1f}s",
            (outcome.error or "")[:60],
        )
    table.add_footnote(
        f"{len(report.completed)} completed, {len(report.failed)} failed, "
        f"{len(report.skipped)} skipped (already done)"
    )
    if report.failed:
        table.add_footnote(
            "campaign degraded: results above are PARTIAL — failed tasks "
            "exhausted their retry budget"
        )
    return table


def ras_table(result) -> Table:
    """Summarise a run's RAS telemetry as a :class:`Table`.

    Takes a :class:`~repro.core.simulator.SimulationResult` from a run
    with ``RASConfig(enabled=True)``: CE counters by source, patrol-scrub
    traffic, wear totals, one row per predictive retirement, and the
    on-package capacity / η trajectory (first epoch, every epoch the
    usable-frame count changed, last epoch).
    """
    r = result.ras
    if r is None:
        raise ReproError(
            "result carries no RAS report (run with RASConfig(enabled=True))"
        )
    table = Table("RAS summary", ["metric", "value"])
    table.add_row("on-package frames", r.frames_total)
    table.add_row("frames retired", r.frames_retired)
    table.add_row("frames usable", r.frames_usable)
    table.add_row("spares remaining", f"{r.spares_remaining}/{r.spares_total}")
    table.add_row("CEs (demand)", r.ce_demand)
    table.add_row("CEs (scrub)", r.ce_scrub)
    table.add_row("CEs (burst)", r.ce_burst)
    table.add_row("CE+scrub cycles", format_cycles(r.ce_cycles))
    table.add_row("scrub passes", r.scrub_passes)
    table.add_row("scrub reads", r.scrub_reads)
    table.add_row("wear writes (total)", r.wear_total_writes)
    table.add_row("wear writes (max/page)", r.wear_max_page_writes)
    for ev in r.retirements:
        table.add_row(
            f"retired: frame {ev.slot} -> spare {ev.spare}",
            f"epoch {ev.epoch}",
        )
    if r.retirements_suppressed:
        table.add_row("retirements suppressed", r.retirements_suppressed)
    series = r.capacity_series
    if series:
        shown = [series[0]]
        for prev, cur in zip(series, series[1:]):
            if cur[1] != prev[1]:
                shown.append(cur)
        if shown[-1] is not series[-1]:
            shown.append(series[-1])
        for epoch, usable, cap, eta in shown:
            table.add_row(
                f"capacity @ epoch {epoch}",
                f"{usable} frames / {cap} B / eta {eta:.3f}",
            )
    if r.frames_retired:
        table.add_footnote(
            "capacity degraded gracefully: retired frames shrink the "
            "on-package region; eta is each epoch's on-package service "
            "fraction"
        )
    return table

def tenant_table(result) -> Table:
    """Per-tenant summary of a multi-tenant run as a :class:`Table`.

    Takes a :class:`~repro.core.simulator.SimulationResult` from a
    :class:`~repro.tenancy.MultiTenantSimulator` run: one row per
    tenant with its accesses, on-package hit rate, average latency,
    migration work, and — when the run computed solo baselines — the
    slowdown and noisy-neighbour interference index.
    """
    if not result.tenants:
        raise ReproError(
            "result carries no tenant metrics (run via MultiTenantSimulator)"
        )
    table = Table(
        "Per-tenant summary",
        ["tenant", "accesses", "hit rate", "avg latency", "swaps",
         "migrated", "slowdown", "interference"],
    )
    for tenant_id in sorted(result.tenants):
        m = result.tenants[tenant_id]
        slowdown = m.slowdown
        interference = m.interference_index
        table.add_row(
            f"{tenant_id}:{m.name}",
            m.accesses,
            f"{m.hit_rate:.1%}",
            f"{m.average_latency:.1f}",
            m.swaps_triggered,
            format_cycles(m.migrated_bytes),
            "n/a" if slowdown is None else f"{slowdown:.2f}x",
            "n/a" if interference is None else f"{interference:.1%}",
        )
    if result.swaps_suppressed_qos:
        table.add_footnote(
            f"{result.swaps_suppressed_qos} swap(s) vetoed or steered by "
            f"the QoS capacity policy"
        )
    if any(m.slowdown is None for m in result.tenants.values()):
        table.add_footnote(
            "slowdown/interference need solo baselines "
            "(MultiTenantSimulator(solo_baselines=True))"
        )
    return table


def disturb_table(result) -> Table:
    """Summarise a run's row-disturbance telemetry as a :class:`Table`.

    Takes a :class:`~repro.core.simulator.SimulationResult` from a run
    with ``DisturbConfig(enabled=True)``: activation totals, the
    mitigation-ladder counters (victim refreshes, throttles, escalation
    routes) and any unmitigated flips.
    """
    d = result.disturb
    if d is None:
        raise ReproError(
            "result carries no disturbance report (run with "
            "DisturbConfig(enabled=True))"
        )
    table = Table("Row-disturbance summary", ["metric", "value"])
    table.add_row("row activations", d.activations_total)
    table.add_row("rows tracked (final)", d.rows_tracked)
    table.add_row("hammer bursts injected", d.hammer_bursts)
    table.add_row("alert crossings", d.alerts)
    table.add_row("victim refreshes", d.victim_refreshes)
    table.add_row("victim-refresh cycles", format_cycles(d.victim_refresh_cycles))
    table.add_row("throttles", d.throttles)
    table.add_row("throttle cycles", format_cycles(d.throttle_cycles))
    table.add_row("frames pumped for retirement", d.retirements_pumped)
    table.add_row("pages biased into migration", d.pressure_boosts)
    table.add_row("unmitigated flip bursts", d.flip_bursts)
    table.add_row("victim sub-blocks corrupted", d.flip_cells)
    if d.flip_cells:
        table.add_footnote(
            "corrupted sub-blocks are visible to the data-content shadow "
            "memory: every one surfaces as a data violation, never silently"
        )
    return table

