"""Streaming statistics and paper-style table formatting."""

from .accumulators import LatencyAccumulator, StreamingMean
from .report import Table, format_cycles, ras_table, resilience_table, tenant_table

__all__ = [
    "StreamingMean",
    "LatencyAccumulator",
    "Table",
    "format_cycles",
    "ras_table",
    "resilience_table",
    "tenant_table",
]
