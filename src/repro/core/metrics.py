"""Evaluation metrics — Section IV's effectiveness η and friends.

    η = (L_without - L_with) / (L_without - L_floor) x 100%

The paper's Table IV uses the DRAM core latency as the floor; its
abstract phrases the same number as "83% of the ideal case where all
memory can be placed in high-speed on-package memory". In our model the
all-on-package ideal *is* the reachable floor (the paper's fixed 50-cycle
core latency approximates their on-package access), so
:func:`effectiveness` takes the floor explicitly and the Table IV bench
feeds it the measured all-on-package latency. η "approximately reflects
how many memory accesses are routed to the on-package memory region".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError


@dataclass(frozen=True)
class EffectivenessReport:
    """One Table IV row."""

    workload: str
    dram_core_latency: float          # observed off-package service mix (reported)
    latency_without_migration: float
    latency_with_migration: float
    floor_latency: float              # all-on-package ideal (η denominator)

    @property
    def effectiveness(self) -> float:
        return effectiveness(
            self.latency_without_migration,
            self.latency_with_migration,
            self.floor_latency,
        )

    def row(self) -> str:
        return (
            f"{self.workload:<18} core={self.dram_core_latency:7.1f}  "
            f"w/o={self.latency_without_migration:7.1f}  "
            f"w/={self.latency_with_migration:7.1f}  "
            f"ideal={self.floor_latency:7.1f}  "
            f"η={self.effectiveness * 100:5.1f}%"
        )


def effectiveness(
    latency_without: float, latency_with: float, floor_latency: float
) -> float:
    """η: fraction of the possible (baseline -> floor) latency reduction
    achieved by migration. Can exceed 1 if migration beats the floor
    estimate — clip upstream if needed."""
    denom = latency_without - floor_latency
    if denom <= 0:
        raise SimulationError(
            "effectiveness undefined: baseline latency does not exceed the floor"
        )
    return (latency_without - latency_with) / denom


def traffic_reduction(offpkg_fraction_without: float, offpkg_fraction_with: float) -> float:
    """Relative reduction of off-package memory traffic (the abstract's
    headline 83% is the average effectiveness; this is the companion
    traffic metric)."""
    if offpkg_fraction_without <= 0:
        return 0.0
    return 1.0 - offpkg_fraction_with / offpkg_fraction_without
