"""The heterogeneous main memory system (the paper's contribution).

:class:`~repro.core.hetero_memory.HeterogeneousMainMemory` is the public
facade: configure geometry + migration policy, feed it a memory trace,
get latency/traffic/power metrics. Under the hood
:class:`~repro.core.simulator.EpochSimulator` drives the
heterogeneity-aware controller and the migration engine epoch by epoch
(vectorised); :class:`~repro.core.detailed.DetailedSimulator` is the
per-access reference implementation with the exact clock/multi-queue
hardware policies.
"""

from .metrics import EffectivenessReport, effectiveness
from .simulator import EpochSimulator, SimulationResult
from .detailed import DetailedSimulator
from .hetero_memory import BaselineKind, HeterogeneousMainMemory, baseline_latency

__all__ = [
    "EpochSimulator",
    "SimulationResult",
    "DetailedSimulator",
    "HeterogeneousMainMemory",
    "BaselineKind",
    "baseline_latency",
    "effectiveness",
    "EffectivenessReport",
]
