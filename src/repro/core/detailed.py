"""Per-access reference simulator.

Processes the trace one access at a time with the *exact* hardware
structures: scalar table resolution (P/F bits + fill bitmap consulted
per sub-block), clock pseudo-LRU + multi-queue policies updated per
access, lazy application of swap-plan table updates at their scheduled
cycle, and open-page banks serviced in arrival (FIFO) order — the same
queueing semantics as the vectorised fast model, so the two simulators
can be cross-validated access-for-access on migration-free runs (see
``tests/test_simulator.py``).

Orders of magnitude slower than :class:`~repro.core.simulator.
EpochSimulator`; use it for small traces and for trusting the fast path.
"""

from __future__ import annotations

import heapq
from typing import Callable

import numpy as np

from ..config import MigrationAlgorithm, SystemConfig
from ..dram.bank import Bank
from ..dram.timing import DramGeometry
from ..errors import SimulationError
from ..migration.algorithms import (
    CopyStep,
    TableUpdate,
    build_basic_swap_steps,
    build_swap_steps,
)
from ..migration.policies import ExactPolicies
from ..migration.table import EMPTY, TranslationTable
from ..trace.record import TraceChunk
from ..units import log2_exact
from .simulator import SimulationResult


class _Region:
    """One memory region's banks, serviced FIFO per bank."""

    def __init__(self, geometry: DramGeometry, path_overhead: int):
        self.geometry = geometry
        self.path_overhead = path_overhead
        self._banks: dict[int, Bank] = {}

    def access(self, local_addr: int, arrival: int, *, write: bool = False) -> int:
        q = int(self.geometry.queue_of(local_addr))
        bank = self._banks.get(q)
        if bank is None:
            bank = self._banks[q] = Bank(self.geometry.timing)
        row = int(self.geometry.rows_of(local_addr))
        _, finish, _ = bank.access(row, arrival, write=write)
        return finish - arrival + self.path_overhead


class DetailedSimulator:
    """The slow, exact reference implementation."""

    def __init__(self, config: SystemConfig, *, migrate: bool = True):
        self.config = config
        self.migrate = migrate
        self.amap = config.address_map()
        basic = config.migration.algorithm == MigrationAlgorithm.N
        self.table = TranslationTable(self.amap, reserve_empty_slot=not basic)
        self.policies = ExactPolicies(self.amap.n_onpkg_pages)
        self.onpkg = _Region(
            DramGeometry(config.onpkg_dram), config.latency.onpkg_overhead
        )
        self.offpkg = _Region(
            DramGeometry(config.offpkg_dram), config.latency.offpkg_overhead
        )
        self._sb_shift = log2_exact(self.amap.subblock_bytes)
        self._events: list[tuple[int, int, Callable[[], None]]] = []
        self._event_seq = 0
        self._busy_until = 0
        self._stall_until = 0
        self._epoch_off_counts: dict[int, int] = {}
        self._epoch_slot_counts: dict[int, int] = {}
        self._last_subblock: dict[int, int] = {}
        self.swaps_triggered = 0
        self.migrated_bytes = 0
        self.cross_boundary_bytes = 0

    # ------------------------------------------------------------------
    def _push_event(self, t: int, fn: Callable[[], None]) -> None:
        heapq.heappush(self._events, (t, self._event_seq, fn))
        self._event_seq += 1

    def _drain_events(self, now: int) -> None:
        while self._events and self._events[0][0] <= now:
            _, _, fn = heapq.heappop(self._events)
            fn()

    # ------------------------------------------------------------------
    def _schedule_swap(self, now: int, mru: int, lru: int) -> None:
        cfg = self.config.migration
        if cfg.algorithm == MigrationAlgorithm.N:
            plan = build_basic_swap_steps(self.table, mru, lru)
        else:
            plan = build_swap_steps(self.table, mru, lru)
        live = cfg.algorithm == MigrationAlgorithm.LIVE
        t = now
        for step in plan.steps:
            if isinstance(step, TableUpdate):
                if cfg.os_assisted:
                    # user/kernel round trip per OS-managed table update
                    t += cfg.os_update_cycles
                if plan.stall:
                    step.apply(self.table)  # atomic under the halt
                else:
                    self._push_event(t, (lambda s=step: s.apply(self.table)))
                continue
            bw = (
                self.config.bus.offpkg_bytes_per_cycle
                if step.cross_boundary
                else self.config.bus.onpkg_bytes_per_cycle
            )
            duration = max(1, int(round(step.nbytes / bw)))
            if step.incoming and not plan.stall:
                if live:
                    n_sb = self.amap.subblocks_per_page
                    sb_cycles = max(1, duration // n_sb)
                    first = self._last_subblock.get(mru, 0) if cfg.critical_block_first else 0
                    for k in range(n_sb):
                        sb = (first + k) % n_sb
                        self._push_event(
                            t + (k + 1) * sb_cycles,
                            (lambda b=sb: self.table.fill_subblock(b)),
                        )
                else:
                    self._push_event(t + duration, self.table.end_fill)
            t += duration
        if plan.stall:
            self._stall_until = t
        self._busy_until = t
        self.swaps_triggered += 1
        self.migrated_bytes += plan.total_copy_bytes
        self.cross_boundary_bytes += plan.cross_boundary_bytes
        self.policies.mq.forget(mru)

    def _epoch_boundary(self, now: int) -> None:
        try:
            if now < self._busy_until:
                return  # P/F bits block re-triggering
            mru = self.policies.hottest_page()
            if mru is None or mru == self.amap.ghost_page:
                return
            empty = self.table.empty_slot()
            # coldest on-package slot via the clock hand
            lru_slot = self.policies.coldest_slot()
            if empty is not None and lru_slot == empty:
                self.policies.clock.touch(lru_slot)
                lru_slot = self.policies.coldest_slot()
            lru_page = self.table.page_in_slot(lru_slot)
            if lru_page == EMPTY:
                return
            if self.config.migration.hottest_coldest_trigger:
                if self._epoch_off_counts.get(mru, 0) <= self._epoch_slot_counts.get(
                    lru_slot, 0
                ):
                    return
            self._schedule_swap(now, mru, lru_page)
        finally:
            self._epoch_off_counts.clear()
            self._epoch_slot_counts.clear()

    # ------------------------------------------------------------------
    def run(self, trace: TraceChunk) -> SimulationResult:
        result = SimulationResult()
        interval = self.config.migration.swap_interval
        cfg = self.config
        trans_cycles = cfg.migration.hw_translation_cycles
        page_shift = self.amap.offset_bits
        page_mask = self.amap.macro_page_bytes - 1
        n_on = self.amap.n_onpkg_pages

        addr_l = trace.addr.tolist()
        time_l = trace.time.tolist()
        rw_l = trace.rw.tolist()
        for i, (addr, t) in enumerate(zip(addr_l, time_l)):
            is_write = bool(rw_l[i])
            self._drain_events(t)
            page = addr >> page_shift
            offset = addr & page_mask
            sb = offset >> self._sb_shift

            stall_extra = 0
            if t < self._stall_until:
                stall_extra = self._stall_until - t
                t = self._stall_until
                self._drain_events(t)

            on, machine = self.table.resolve(page, sb)
            if on:
                local = (machine << page_shift) | offset
                lat = self.onpkg.access(local, t, write=is_write)
                result.onpkg_accesses += 1
            else:
                local = ((machine - n_on) << page_shift) | offset
                lat = self.offpkg.access(local, t, write=is_write)
                if t < self._busy_until and not stall_extra:
                    lat += cfg.migration.interference_cycles
                result.offpkg_accesses += 1
            lat += trans_cycles + stall_extra
            result.n_accesses += 1
            result.total_latency += lat

            if self.migrate:
                if on:
                    self.policies.observe(slot=machine, offpkg_page=None)
                    self._epoch_slot_counts[machine] = (
                        self._epoch_slot_counts.get(machine, 0) + 1
                    )
                else:
                    self.policies.observe(slot=None, offpkg_page=page)
                    self._epoch_off_counts[page] = self._epoch_off_counts.get(page, 0) + 1
                    self._last_subblock[page] = sb
                if (i + 1) % interval == 0:
                    self._epoch_boundary(t + 1)

        result.swaps_triggered = self.swaps_triggered
        result.migrated_bytes = self.migrated_bytes
        result.cross_boundary_migrated_bytes = self.cross_boundary_bytes
        return result
