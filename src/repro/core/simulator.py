"""Epoch-driven trace simulation of the heterogeneous main memory.

The trace is consumed in epochs of ``swap_interval`` accesses (the
paper's swap-trigger unit). Within an epoch everything is vectorised:
translation via the table's dense mirrors, region split, per-region
DRAM service, with per-access-time overrides for the (at most one)
in-flight migration. At each epoch boundary the migration engine
evaluates the hottest-coldest trigger.

Resilience hooks (all governed by :class:`~repro.config.ResilienceConfig`
and off by default) run at the same boundary: seeded fault injection via
an attached :class:`~repro.resilience.faults.FaultPlan`, ECC handling of
transient DRAM errors, periodic translation-table audits with in-place
repair, and a per-epoch cycle-budget watchdog. The complete simulator
state round-trips through :meth:`EpochSimulator.state_dict`, which is
what the checkpoint/resume machinery serialises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from ..ras import DisturbReport, RasReport

from ..config import SystemConfig
from ..dram.refresh import RefreshSchedule
from ..errors import SimulationError, TranslationTableError, WatchdogError
from ..memctrl.heterogeneous import HeterogeneousController
from ..migration.engine import MigrationEngine
from ..resilience.degradation import (
    AUDIT_FAILED,
    DRAM_CORRECTED,
    DRAM_UNCORRECTABLE,
    TABLE_REPAIRED,
    WATCHDOG_BREACH,
    DegradationEvent,
)
from ..resilience.faults import EccModel, FaultKind, FaultPlan
from ..trace.record import TraceChunk
from ..units import log2_exact


@dataclass
class SimulationResult:
    """Aggregate outcome of one simulation run."""

    n_accesses: int = 0
    total_latency: int = 0
    onpkg_accesses: int = 0
    offpkg_accesses: int = 0
    swaps_triggered: int = 0
    swaps_suppressed_busy: int = 0
    swaps_suppressed_cold: int = 0
    #: swaps vetoed/steered by a tenancy QoS capacity policy
    swaps_suppressed_qos: int = 0
    migrated_bytes: int = 0
    cross_boundary_migrated_bytes: int = 0
    #: per-epoch mean latency series (for convergence plots)
    epoch_latency: list[float] = field(default_factory=list)
    #: how many epochs ran through each execution path (the fused fast
    #: path must cover migration-active epochs; see bench_throughput)
    fused_epochs: int = 0
    stepwise_epochs: int = 0
    #: row-buffer hit rates observed by each region's device
    onpkg_row_hit_rate: float = 0.0
    offpkg_row_hit_rate: float = 0.0
    #: wall-clock span of the simulated trace (for background power)
    duration_cycles: int = 0
    #: resilience bookkeeping (empty/zero unless faults were injected or
    #: a resilience mechanism fired)
    degradation_events: list[DegradationEvent] = field(default_factory=list)
    quarantined: bool = False
    faults_injected: int = 0
    dram_errors_corrected: int = 0
    dram_errors_retried: int = 0
    dram_errors_uncorrectable: int = 0
    #: demand reads that returned stale/garbage data per the shadow
    #: memory (always 0 unless the simulator ran with track_data=True)
    data_violations: int = 0
    #: RAS summary (None unless the run had ``RASConfig(enabled=True)``)
    ras: RasReport | None = None
    #: row-disturbance summary (None unless ``DisturbConfig(enabled=True)``)
    disturb: DisturbReport | None = None
    #: tenant_id -> TenantMetrics (None unless run by MultiTenantSimulator)
    tenants: dict | None = None

    @property
    def average_latency(self) -> float:
        return self.total_latency / self.n_accesses if self.n_accesses else 0.0

    def tail_average_latency(self, fraction: float = 0.5) -> float:
        """Mean latency over the last ``fraction`` of epochs.

        The paper averages over runs long enough for migration to reach
        steady state; on scaled traces the converged tail is the
        comparable number (epochs carry equal access counts except the
        last, so an epoch-mean average is faithful).
        """
        if not self.epoch_latency:
            return self.average_latency
        k = max(1, int(len(self.epoch_latency) * fraction))
        tail = self.epoch_latency[-k:]
        return float(sum(tail) / len(tail))

    @property
    def onpkg_fraction(self) -> float:
        return self.onpkg_accesses / self.n_accesses if self.n_accesses else 0.0

    @property
    def offpkg_traffic_fraction(self) -> float:
        return 1.0 - self.onpkg_fraction


class EpochSimulator:
    """Vectorised trace-driven simulator (the workhorse)."""

    def __init__(self, config: SystemConfig, *, migrate: bool = True,
                 detailed_dram: bool = False, fused: bool = True,
                 track_data: bool = False):
        self.config = config
        self.migrate = migrate
        self.detailed_dram = detailed_dram
        #: allow the fused multi-epoch fast path (bit-identical; the flag
        #: exists so equivalence tests and benchmarks can force either path)
        self.fused = fused
        self.controller = HeterogeneousController(
            config, detailed=detailed_dram, translation_overhead=migrate
        )
        amap = config.address_map()
        self.engine = MigrationEngine(
            amap, config.migration, config.bus,
            resilience=config.resilience,
            reserved_pages=config.ras.reserved_pages(amap),
            # None unless the timing enables refresh: the engine prices
            # copy steps against each region's tRFC windows
            onpkg_refresh=RefreshSchedule.from_timing(config.onpkg_dram),
            offpkg_refresh=RefreshSchedule.from_timing(config.offpkg_dram),
        )
        #: runtime RAS orchestrator (None keeps the default path — and
        #: its import footprint — identical to a RAS-less build)
        self._ras = None
        if config.ras.enabled:
            from ..ras import RasController

            self._ras = RasController(config, self.engine, self.controller)
        #: optional data-content shadow memory (pure bookkeeping: it
        #: never feeds back into routing or timing, but it does force
        #: the stepwise epoch loop)
        self.shadow = None
        if track_data:
            self._attach_shadow()
        #: row-disturbance orchestrator (None keeps the default path
        #: identical, like RAS)
        self._disturb = None
        if config.disturb.enabled:
            from ..ras.disturb import DisturbController

            self._disturb = DisturbController(
                config, self.engine, self.controller
            )
            self._disturb.ras = self._ras
            self._disturb.shadow = self.shadow
        self._sb_shift = log2_exact(config.migration.subblock_bytes)
        self._last_time = -(1 << 62)
        self._epoch_index = 0
        self._fault_plan: FaultPlan | None = None
        self._ecc = EccModel(config.resilience)
        self._events: list[DegradationEvent] = []
        self._faults_injected = 0

    def _attach_shadow(self) -> None:
        # local import: datamodel depends on migration.table, and keeping
        # the default path import-free keeps startup identical
        from ..datamodel import ShadowMemory

        self.shadow = ShadowMemory(self.engine.table)
        self.engine.shadow = self.shadow
        self.controller.shadow = self.shadow
        if getattr(self, "_disturb", None) is not None:
            self._disturb.shadow = self.shadow

    def attach_faults(self, plan: FaultPlan) -> None:
        """Arm a seeded fault plan; epochs consult it at their boundary.

        The plan becomes part of the simulator's checkpointed state, so
        a resumed run keeps injecting the remaining scheduled faults.
        """
        self._fault_plan = plan

    @property
    def table(self):
        return self.engine.table

    @property
    def degradation_events(self) -> list[DegradationEvent]:
        """Every resilience event so far (engine + simulator), time-ordered."""
        return sorted(
            self.engine.degradation_events + self._events,
            key=lambda e: (e.time, e.epoch),
        )

    def run(self, trace: TraceChunk) -> SimulationResult:
        """Simulate a whole trace; may be called repeatedly with
        consecutive chunks of one long trace."""
        result = SimulationResult()
        self.run_into(trace, result)
        return result

    def run_stream(self, stream) -> SimulationResult:
        """Simulate a trace *stream* (any iterable of time-ordered
        :class:`TraceChunk`) — peak memory stays O(chunk), never
        O(trace).

        Epoch segmentation restarts at every chunk boundary, so the
        result is bit-identical to :meth:`run` on the concatenated trace
        exactly when every chunk except the last holds a multiple of
        ``swap_interval`` accesses (chunk boundaries == epoch
        boundaries); see :mod:`repro.trace.stream`.
        """
        result = SimulationResult()
        for chunk in stream:
            self.run_into(chunk, result)
        return result

    def _should_fuse(self) -> bool:
        """Whether the fused multi-epoch fast path applies.

        The fused path defers all DRAM servicing to one segmented flush;
        anything that consumes per-epoch latency at the boundary (fault
        plans, watchdog budgets, table audits) or a device without the
        segmented entry point forces the stepwise loop.
        """
        resilience = self.config.resilience
        return (
            self.fused
            and self._fault_plan is None
            and self.shadow is None
            and self._ras is None
            and self._disturb is None
            and not resilience.audit_interval
            and not resilience.epoch_cycle_budget
            and hasattr(self.controller.onpkg_model.device, "service_segmented")
            and hasattr(self.controller.offpkg_model.device, "service_segmented")
        )

    def run_into(self, trace: TraceChunk, result: SimulationResult) -> None:
        n = len(trace)
        if n and int(trace.time[0]) < self._last_time:
            raise SimulationError("trace chunks must be fed in time order")
        # duration must not depend on where the trace was chunked: span
        # from the previous chunk's end (covering the inter-chunk gap)
        duration_ref = self._last_time if self._epoch_index else (
            int(trace.time[0]) if n else 0
        )
        if n:
            # reject hostile traces with a clear AddressError up front
            # instead of a table-internal failure mid-translation
            self.controller.amap.check_addresses(trace.addr)
            reserved = self.engine.table.reserved_pages
            if reserved:
                pages = self.controller.amap.page_of(trace.addr)
                if np.isin(pages, np.fromiter(reserved, np.int64)).any():
                    raise SimulationError(
                        "trace touches a reserved RAS spare page; spares "
                        "are controller-private and carry no program data"
                    )
            if self._should_fuse():
                self._run_fused(trace, result)
            else:
                self._run_epochwise(trace, result)
            result.duration_cycles += int(trace.time[-1]) - duration_ref
        result.swaps_suppressed_busy = self.engine.swaps_suppressed_busy
        result.swaps_suppressed_cold = self.engine.swaps_suppressed_cold
        result.swaps_suppressed_qos = self.engine.swaps_suppressed_qos
        result.migrated_bytes = self.engine.migrated_bytes
        result.cross_boundary_migrated_bytes = self.engine.cross_boundary_bytes
        result.onpkg_row_hit_rate = self.controller.onpkg_model.device.row_hit_rate
        result.offpkg_row_hit_rate = self.controller.offpkg_model.device.row_hit_rate
        result.degradation_events = self.degradation_events
        result.quarantined = self.engine.quarantined
        result.faults_injected = self._faults_injected
        if self.shadow is not None:
            result.data_violations = len(self.shadow.violations)
        if self._ras is not None:
            result.ras = self._ras.report()
        if self._disturb is not None:
            result.disturb = self._disturb.report()

    def _run_epochwise(self, trace: TraceChunk, result: SimulationResult) -> None:
        """Reference per-epoch loop (resilience hooks live here)."""
        interval = self.config.migration.swap_interval
        resilience = self.config.resilience
        amap = self.controller.amap
        n = len(trace)
        # derive per-access arrays once per chunk; epochs take views
        pages_all = amap.page_of(trace.addr)
        offsets_all = amap.offset_of(trace.addr)
        subblocks_all = offsets_all >> self._sb_shift
        result.stepwise_epochs += -(-n // interval) if n else 0
        for start in range(0, n, interval):
            stop = min(start + interval, n)
            epoch = trace[start:stop]
            t0 = int(epoch.time[0])
            epoch_index = self._epoch_index
            self._epoch_index += 1

            pending_dram_errors = 0
            if self._fault_plan is not None:
                pending_dram_errors = self._apply_faults(epoch_index, t0, result)

            active = self.engine.active
            if active is not None and active.end <= t0:
                active = None  # finished before this epoch: mirrors suffice

            latency, on, machine = self.controller.service_chunk(
                epoch, self.engine.table, active,
                pages=pages_all[start:stop],
                offsets=offsets_all[start:stop],
                subblocks=subblocks_all[start:stop],
            )
            now = int(epoch.time[-1]) + 1
            epoch_cycles = int(latency.sum())
            if pending_dram_errors:
                epoch_cycles += self._run_ecc(
                    pending_dram_errors, epoch_index, now, result
                )

            n_on = int(np.count_nonzero(on))
            if self._ras is not None:
                # CE correction + patrol-scrub cycles count against this
                # epoch (and its watchdog budget); a retirement's copy-out
                # instead stalls subsequent accesses via the engine
                epoch_cycles += self._ras.end_epoch(
                    epoch_index, now,
                    machine=machine, on=on, writes=epoch.rw != 0,
                    n_on=n_on, n_total=len(epoch),
                )

            if self._disturb is not None:
                # activation folding + the mitigation ladder; victim
                # refreshes and throttling charge this epoch's cycles,
                # escalation rides the RAS/migration machinery instead
                epoch_cycles += self._disturb.end_epoch(
                    epoch_index, now,
                    pages=pages_all[start:stop], machine=machine, on=on,
                    offsets=offsets_all[start:stop],
                )

            if resilience.epoch_cycle_budget and (
                epoch_cycles > resilience.epoch_cycle_budget
            ):
                detail = (
                    f"epoch {epoch_index} (t=[{t0}, {now})) spent "
                    f"{epoch_cycles} cycles, budget "
                    f"{resilience.epoch_cycle_budget}"
                )
                if resilience.watchdog_action == "raise":
                    raise WatchdogError(detail)
                self._events.append(
                    DegradationEvent(
                        time=now, epoch=epoch_index, kind=WATCHDOG_BREACH,
                        detail=detail, recovered=True,
                    )
                )

            result.n_accesses += len(epoch)
            result.total_latency += epoch_cycles
            result.onpkg_accesses += n_on
            result.offpkg_accesses += len(epoch) - n_on
            result.epoch_latency.append(float(latency.mean()))

            if resilience.audit_interval and (
                (epoch_index + 1) % resilience.audit_interval == 0
            ):
                self._audit(epoch_index, now)

            if self.migrate:
                if not self.engine.quarantined:
                    pages = pages_all[start:stop]
                    times = epoch.time
                    on_idx = np.flatnonzero(on)
                    off_idx = np.flatnonzero(~on)
                    # on-package observations are per *slot*; slots == machine page
                    self.engine.observe_epoch(
                        slots=machine[on_idx],
                        slot_times=times[on_idx],
                        offpkg_pages=pages[off_idx],
                        off_times=times[off_idx],
                        off_subblocks=subblocks_all[start:stop][off_idx],
                    )
                decision = self.engine.maybe_swap(now)
                if decision.triggered:
                    result.swaps_triggered += 1
            self._last_time = int(epoch.time[-1])

    def _run_fused(self, trace: TraceChunk, result: SimulationResult) -> None:
        """Fused fast path: run the per-epoch *control* pass (resolution,
        stall windows, monitor updates, swap trigger) with deferred DRAM
        servicing, then flush every access through each region's device
        in one segmented call whose segments are the epoch boundaries.

        Bit-identical to :meth:`_run_epochwise` because latency never
        feeds back into control flow — trigger decisions depend only on
        address resolution, access times and monitor state — and
        :meth:`~repro.dram.fastmodel.FastDevice.service_segmented`
        guarantees per-segment-exact device behaviour.
        """
        interval = self.config.migration.swap_interval
        amap = self.controller.amap
        engine = self.engine
        n = len(trace)
        # whole-chunk precomputed arrays + flush scratch buffers
        # (contiguous: the structured-array field views are strided)
        times_all = np.ascontiguousarray(trace.time)
        pages_all = amap.page_of(trace.addr)
        offsets_all = amap.offset_of(trace.addr)
        subblocks_all = offsets_all >> self._sb_shift
        writes_all = trace.rw != 0
        if np.any(np.diff(times_all) < 0):
            # stalls only floor times to a common value, so this global
            # check covers every epoch the stepwise loop would check
            raise SimulationError("chunk times must be non-decreasing")
        # effective arrival times: aliases times_all until a stall window
        # actually has to push accesses forward (N design only)
        eff_times = times_all
        on_all = np.empty(n, dtype=bool)
        machine_all = np.empty(n, dtype=np.int64)
        extra = np.zeros(n, dtype=np.int64)  # stall + interference cycles
        interference = self.config.migration.interference_cycles

        epoch_starts = np.arange(0, n, interval, dtype=np.int64)
        result.fused_epochs += int(epoch_starts.shape[0])
        for start in range(0, n, interval):
            stop = min(start + interval, n)
            t0 = int(times_all[start])
            self._epoch_index += 1

            active = engine.active
            if active is not None and active.end <= t0:
                active = None  # finished before this epoch: mirrors suffice

            tview = times_all[start:stop]
            on = on_all[start:stop]
            machine = machine_all[start:stop]
            self.controller.resolve_into(
                pages_all[start:stop], tview, subblocks_all[start:stop],
                engine.table, active, on, machine,
            )

            if active is not None:
                if active.stall:
                    # N design: execution halts while the swap copies data;
                    # stalled accesses issue together at the stall's end
                    stalled = (tview >= active.start) & (tview < active.end)
                    if stalled.any():
                        if eff_times is times_all:
                            eff_times = times_all.copy()  # repro-lint: disable=hot-path-copy - copy-on-write, at most once per chunk
                        extra[start:stop][stalled] = active.end - tview[stalled]
                        eff_times[start:stop][stalled] = active.end
                else:
                    # background copy traffic shares the DDR channel
                    off_win = ~on
                    off_win &= tview >= active.start
                    off_win &= tview < active.end
                    extra[start:stop][off_win] = interference

            now = int(tview[-1]) + 1
            if self.migrate:
                if not engine.quarantined:
                    on_idx = np.flatnonzero(on)
                    off_idx = np.flatnonzero(~on)
                    engine.observe_epoch(
                        slots=machine[on_idx],
                        slot_times=tview[on_idx],
                        offpkg_pages=pages_all[start:stop][off_idx],
                        off_times=tview[off_idx],
                        off_subblocks=subblocks_all[start:stop][off_idx],
                    )
                decision = engine.maybe_swap(now)
                if decision.triggered:
                    result.swaps_triggered += 1
            self._last_time = int(tview[-1])

        # flush: every region services its accesses in one segmented call
        latency = self.controller.service_resolved(
            on_all, machine_all, offsets_all, eff_times, writes_all,
            epoch_starts, extra,
        )
        n_on = int(np.count_nonzero(on_all))
        result.n_accesses += n
        result.total_latency += int(latency.sum())
        result.onpkg_accesses += n_on
        result.offpkg_accesses += n - n_on
        # per-epoch means: int64 epoch sums stay far below 2**53, so the
        # float64 division matches np.mean on the per-epoch slice bitwise
        epoch_sums = np.add.reduceat(latency, epoch_starts)
        lens = np.diff(np.append(epoch_starts, n))
        result.epoch_latency.extend((epoch_sums / lens).tolist())

    # ------------------------------------------------------------------
    # resilience hooks
    # ------------------------------------------------------------------
    def _apply_faults(
        self, epoch_index: int, now: int, result: SimulationResult
    ) -> int:
        """Perturb the live system per the fault plan; returns the number
        of transient DRAM errors to charge to this epoch."""
        table = self.engine.table
        dram_errors = 0
        for ev in self._fault_plan.events_for_epoch(epoch_index):
            self._faults_injected += 1
            if ev.kind is FaultKind.ABORT_SWAP:
                # getattr(): fault plans pickled before micro-boundary
                # aborts existed carry no subblocks field
                self.engine.inject_abort(
                    ev.param, subblocks=getattr(ev, "subblocks", 0)
                )
            elif ev.kind is FaultKind.STUCK_P_BIT:
                table.set_pending(ev.param % table.n_slots, True)
            elif ev.kind is FaultKind.STUCK_F_BIT:
                # raw SEU behind the API: no fill is actually in progress
                table.f_bit[ev.param % table.n_slots] = True
            elif ev.kind is FaultKind.BITMAP_CORRUPTION:
                table.fill_bitmap[ev.param % table.fill_bitmap.shape[0]] = True
            elif ev.kind is FaultKind.DRAM_TRANSIENT:
                dram_errors += max(1, ev.param)
            elif ev.kind is FaultKind.CE_BURST:
                # without a RAS subsystem there is no CE telemetry to
                # perturb: the fault lands on absent hardware
                if self._ras is not None:
                    self._ras.inject_burst(ev.param)
            elif ev.kind is FaultKind.SCRUB_LATENT:
                if self._ras is not None:
                    self._ras.inject_latent(ev.param)
            elif ev.kind is FaultKind.ROW_DISTURB:
                # without a disturbance controller there is no activation
                # telemetry to perturb: the fault lands on absent hardware
                if self._disturb is not None:
                    self._disturb.inject_hammer(ev.param)
        return dram_errors

    def _run_ecc(
        self, n_errors: int, epoch_index: int, now: int,
        result: SimulationResult,
    ) -> int:
        """Push this epoch's transient DRAM errors through the ECC model;
        returns the extra cycles they cost."""
        rng = self._fault_plan.epoch_rng(epoch_index)
        outcome = self._ecc.run(n_errors, rng)
        result.dram_errors_corrected += outcome.corrected
        result.dram_errors_retried += outcome.retried
        result.dram_errors_uncorrectable += outcome.uncorrectable
        recovered = outcome.uncorrectable == 0
        self._events.append(
            DegradationEvent(
                time=now, epoch=epoch_index,
                kind=DRAM_CORRECTED if recovered else DRAM_UNCORRECTABLE,
                detail=(
                    f"{n_errors} transient DRAM errors: {outcome.corrected} "
                    f"corrected, {outcome.retried} recovered by retry, "
                    f"{outcome.uncorrectable} uncorrectable "
                    f"(+{outcome.extra_cycles} cycles)"
                ),
                recovered=recovered,
            )
        )
        return outcome.extra_cycles

    def _audit(self, epoch_index: int, now: int) -> None:
        """Periodic invariant sweep: detect corruption, repair in place,
        quarantine migration if the table cannot be made consistent."""
        table = self.engine.table
        try:
            table.audit()
            return
        except TranslationTableError as exc:
            failure = str(exc)
        self._events.append(
            DegradationEvent(
                time=now, epoch=epoch_index, kind=AUDIT_FAILED,
                detail=failure, recovered=True,
            )
        )
        try:
            fixes = table.repair()
            self._events.append(
                DegradationEvent(
                    time=now, epoch=epoch_index, kind=TABLE_REPAIRED,
                    detail="; ".join(fixes) if fixes else "no-op repair",
                    recovered=True,
                )
            )
        except TranslationTableError as exc:
            # structurally unrepairable: fall back to the static mapping
            self.engine.quarantine(now, f"unrepairable table: {exc}")
            return
        self.engine.note_audit_failure(now, failure)

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Complete simulator state; restoring it into a fresh simulator
        built from the same config continues the run bit-identically."""
        return {
            "last_time": self._last_time,
            "epoch_index": self._epoch_index,
            "faults_injected": self._faults_injected,
            "fault_plan": self._fault_plan,
            "events": list(self._events),
            "engine": self.engine.state_dict(),
            "controller": self.controller.state_dict(),
            "shadow": None if self.shadow is None else self.shadow.state_dict(),
            "ras": None if self._ras is None else self._ras.state_dict(),
            "disturb": (
                None if self._disturb is None else self._disturb.state_dict()
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        self._last_time = state["last_time"]
        self._epoch_index = state["epoch_index"]
        self._faults_injected = state["faults_injected"]
        self._fault_plan = state["fault_plan"]
        self._events = list(state["events"])
        self.engine.load_state_dict(state["engine"])
        self.controller.load_state_dict(state["controller"])
        # .get(): checkpoints written before the shadow memory existed.
        # restore_simulator builds the target with default arguments, so
        # a tracked run re-wires its shadow here instead of in __init__.
        shadow_state = state.get("shadow")
        if shadow_state is not None:
            if self.shadow is None:
                self._attach_shadow()
            self.shadow.load_state_dict(shadow_state)
        # .get(): checkpoints written before the RAS subsystem existed
        ras_state = state.get("ras")
        if ras_state is not None and self._ras is not None:
            self._ras.load_state_dict(ras_state)
        # .get(): checkpoints written before row-disturbance existed
        disturb_state = state.get("disturb")
        if disturb_state is not None and self._disturb is not None:
            self._disturb.load_state_dict(disturb_state)
            self._disturb.shadow = self.shadow
