"""Epoch-driven trace simulation of the heterogeneous main memory.

The trace is consumed in epochs of ``swap_interval`` accesses (the
paper's swap-trigger unit). Within an epoch everything is vectorised:
translation via the table's dense mirrors, region split, per-region
DRAM service, with per-access-time overrides for the (at most one)
in-flight migration. At each epoch boundary the migration engine
evaluates the hottest-coldest trigger.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import SystemConfig
from ..errors import SimulationError
from ..memctrl.heterogeneous import HeterogeneousController
from ..migration.engine import MigrationEngine
from ..trace.record import TraceChunk
from ..units import log2_exact


@dataclass
class SimulationResult:
    """Aggregate outcome of one simulation run."""

    n_accesses: int = 0
    total_latency: int = 0
    onpkg_accesses: int = 0
    offpkg_accesses: int = 0
    swaps_triggered: int = 0
    swaps_suppressed_busy: int = 0
    swaps_suppressed_cold: int = 0
    migrated_bytes: int = 0
    cross_boundary_migrated_bytes: int = 0
    #: per-epoch mean latency series (for convergence plots)
    epoch_latency: list[float] = field(default_factory=list)
    #: row-buffer hit rates observed by each region's device
    onpkg_row_hit_rate: float = 0.0
    offpkg_row_hit_rate: float = 0.0
    #: wall-clock span of the simulated trace (for background power)
    duration_cycles: int = 0

    @property
    def average_latency(self) -> float:
        return self.total_latency / self.n_accesses if self.n_accesses else 0.0

    def tail_average_latency(self, fraction: float = 0.5) -> float:
        """Mean latency over the last ``fraction`` of epochs.

        The paper averages over runs long enough for migration to reach
        steady state; on scaled traces the converged tail is the
        comparable number (epochs carry equal access counts except the
        last, so an epoch-mean average is faithful).
        """
        if not self.epoch_latency:
            return self.average_latency
        k = max(1, int(len(self.epoch_latency) * fraction))
        tail = self.epoch_latency[-k:]
        return float(sum(tail) / len(tail))

    @property
    def onpkg_fraction(self) -> float:
        return self.onpkg_accesses / self.n_accesses if self.n_accesses else 0.0

    @property
    def offpkg_traffic_fraction(self) -> float:
        return 1.0 - self.onpkg_fraction


class EpochSimulator:
    """Vectorised trace-driven simulator (the workhorse)."""

    def __init__(self, config: SystemConfig, *, migrate: bool = True,
                 detailed_dram: bool = False):
        self.config = config
        self.migrate = migrate
        self.controller = HeterogeneousController(
            config, detailed=detailed_dram, translation_overhead=migrate
        )
        self.engine = MigrationEngine(
            config.address_map(), config.migration, config.bus
        )
        self._sb_shift = log2_exact(config.migration.subblock_bytes)
        self._last_time = -(1 << 62)

    @property
    def table(self):
        return self.engine.table

    def run(self, trace: TraceChunk) -> SimulationResult:
        """Simulate a whole trace; may be called repeatedly with
        consecutive chunks of one long trace."""
        result = SimulationResult()
        self.run_into(trace, result)
        return result

    def run_into(self, trace: TraceChunk, result: SimulationResult) -> None:
        interval = self.config.migration.swap_interval
        amap = self.controller.amap
        n = len(trace)
        if n and int(trace.time[0]) < self._last_time:
            raise SimulationError("trace chunks must be fed in time order")
        for start in range(0, n, interval):
            epoch = trace[start : start + interval]
            t0 = int(epoch.time[0])
            active = self.engine.active
            if active is not None and active.end <= t0:
                active = None  # finished before this epoch: mirrors suffice

            latency, on, machine = self.controller.service_chunk(
                epoch, self.engine.table, active
            )
            result.n_accesses += len(epoch)
            result.total_latency += int(latency.sum())
            result.onpkg_accesses += int(on.sum())
            result.offpkg_accesses += len(epoch) - int(on.sum())
            result.epoch_latency.append(float(latency.mean()))

            if self.migrate:
                pages = amap.page_of(epoch.addr)
                times = epoch.time
                on_idx = np.flatnonzero(on)
                off_idx = np.flatnonzero(~on)
                # on-package observations are per *slot*; slots == machine page
                self.engine.observe_epoch(
                    slots=machine[on_idx],
                    slot_times=times[on_idx],
                    offpkg_pages=pages[off_idx],
                    off_times=times[off_idx],
                    off_subblocks=(amap.offset_of(epoch.addr[off_idx]) >> self._sb_shift),
                )
                now = int(epoch.time[-1]) + 1
                decision = self.engine.maybe_swap(now)
                if decision.triggered:
                    result.swaps_triggered += 1
            self._last_time = int(epoch.time[-1])

        if n:
            result.duration_cycles += int(trace.time[-1] - trace.time[0])
        result.swaps_suppressed_busy = self.engine.swaps_suppressed_busy
        result.swaps_suppressed_cold = self.engine.swaps_suppressed_cold
        result.migrated_bytes = self.engine.migrated_bytes
        result.cross_boundary_migrated_bytes = self.engine.cross_boundary_bytes
        result.onpkg_row_hit_rate = self.controller.onpkg_model.device.row_hit_rate
        result.offpkg_row_hit_rate = self.controller.offpkg_model.device.row_hit_rate
