"""Public facade: the heterogeneous main memory system and its baselines.

Typical use::

    from repro import HeterogeneousMainMemory, paper_config
    from repro.workloads.registry import generate_trace

    cfg = paper_config(algorithm="live", macro_page_bytes=1024 * 1024)
    system = HeterogeneousMainMemory(cfg)
    result = system.run(generate_trace("pgbench", 1_000_000))
    print(result.average_latency, result.onpkg_fraction)

Baselines (Table IV / Fig 11 reference lines) come from
:func:`baseline_latency`:

* ``"all-offpkg"`` — every access pays the DIMM path (the conventional
  system);
* ``"all-onpkg"`` — the ideal: the whole working set fits on-package;
* ``"static"`` — on-package memory mapped to the lowest addresses, no
  migration (Section II's static mapping).
"""

from __future__ import annotations

import os
from enum import Enum

from ..config import SystemConfig
from ..errors import ConfigError
from ..memctrl.conventional import ConventionalController
from ..trace.record import TraceChunk
from .simulator import EpochSimulator, SimulationResult


class BaselineKind(str, Enum):
    ALL_OFFPKG = "all-offpkg"
    ALL_ONPKG = "all-onpkg"
    STATIC = "static"


class HeterogeneousMainMemory:
    """On-package + off-package main memory with dynamic migration."""

    def __init__(self, config: SystemConfig | None = None, *, migrate: bool = True,
                 detailed_dram: bool = False, fused: bool = True,
                 track_data: bool = False):
        self.config = config or SystemConfig()
        self.simulator = EpochSimulator(
            self.config, migrate=migrate, detailed_dram=detailed_dram,
            fused=fused, track_data=track_data,
        )

    def run(self, trace: TraceChunk) -> SimulationResult:
        """Simulate a trace of main-memory accesses."""
        return self.simulator.run(trace)

    def run_stream(self, stream) -> SimulationResult:
        """Simulate a trace stream with O(chunk) peak memory; see
        :meth:`EpochSimulator.run_stream`."""
        return self.simulator.run_stream(stream)

    # ------------------------------------------------------------------
    # resilience facade
    # ------------------------------------------------------------------
    def attach_faults(self, plan) -> None:
        """Arm a seeded :class:`~repro.resilience.faults.FaultPlan`."""
        self.simulator.attach_faults(plan)

    @property
    def degradation_events(self):
        """Structured records of every resilience mechanism that fired."""
        return self.simulator.degradation_events

    def save_checkpoint(self, path: str | os.PathLike,
                        result: SimulationResult, *,
                        extra: dict | None = None) -> None:
        """Snapshot the system mid-campaign; see
        :func:`repro.resilience.checkpoint.save_checkpoint`."""
        from ..resilience.checkpoint import save_checkpoint

        save_checkpoint(path, self.simulator, result, extra=extra)

    @classmethod
    def resume(cls, path: str | os.PathLike) -> tuple[
        "HeterogeneousMainMemory", SimulationResult, dict
    ]:
        """Reconstruct a system + partial result from a checkpoint file.

        Returns ``(system, result, extra)``; feed the remaining trace
        chunks through ``system.simulator.run_into(chunk, result)``.
        """
        from ..resilience.checkpoint import load_checkpoint, restore_simulator

        bundle = load_checkpoint(path)
        system = cls.__new__(cls)
        system.config = bundle.config
        system.simulator = restore_simulator(bundle)
        return system, bundle.result, bundle.extra

    @property
    def shadow(self):
        """The data-content shadow memory (None unless track_data=True)."""
        return self.simulator.shadow

    @property
    def table(self):
        """The physical->machine translation table (inspection/testing)."""
        return self.simulator.engine.table

    @property
    def engine(self):
        """The migration engine (inspection/testing)."""
        return self.simulator.engine

    def dram_core_latency(self) -> float:
        """Observed average off-package DRAM service time (row-hit mix),
        the η denominator's core term. Valid after at least one run."""
        dev = self.simulator.controller.offpkg_model.device
        timing = self.config.offpkg_dram
        hr = dev.row_hit_rate
        return hr * timing.hit_cycles + (1.0 - hr) * timing.miss_cycles


def baseline_latency(
    config: SystemConfig, trace: TraceChunk, kind: BaselineKind | str
) -> SimulationResult:
    """Run one of the three reference configurations on a trace."""
    kind = BaselineKind(kind)
    if kind is BaselineKind.STATIC:
        system = HeterogeneousMainMemory(config, migrate=False)
        return system.run(trace)

    if kind is BaselineKind.ALL_OFFPKG:
        controller = ConventionalController(config.latency, config.offpkg_dram)
        onpkg = False
    elif kind is BaselineKind.ALL_ONPKG:
        controller = ConventionalController(
            config.latency, config.onpkg_dram, onpkg=True
        )
        onpkg = True
    else:  # pragma: no cover
        raise ConfigError(f"unknown baseline {kind}")

    latency = controller.service_chunk(trace)
    result = SimulationResult()
    result.n_accesses = len(trace)
    result.total_latency = int(latency.sum())
    if len(trace):
        result.duration_cycles = int(trace.time[-1] - trace.time[0])
    if onpkg:
        result.onpkg_accesses = len(trace)
        result.onpkg_row_hit_rate = controller.model.device.row_hit_rate
    else:
        result.offpkg_accesses = len(trace)
        result.offpkg_row_hit_rate = controller.model.device.row_hit_rate
    return result
