"""JSON run manifest: the campaign's always-valid on-disk copy.

The manifest is to a campaign what the translation table's reserved
slot is to the N-1 algorithm: a copy that is valid at every instant,
so any crash — of a worker *or* of the supervisor itself — leaves
enough state on disk to continue. Writes go through a temp file and an
atomic rename (the same discipline as
:mod:`repro.resilience.checkpoint`), so readers never observe a torn
manifest.

One :class:`TaskRecord` per task records status, attempts, wall-clock
duration, the last error, and — when the task's return value is
JSON-serialisable — the result itself, which is how a resumed campaign
reprints completed work without recomputing it.

Resume semantics (:meth:`CampaignManifest.needs_run`):

* ``completed`` tasks are skipped;
* ``running`` tasks were in flight when the supervisor died — re-queued;
* ``failed`` / ``pending`` / unknown tasks are (re)run.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Iterable

from ..errors import CampaignError

MANIFEST_MAGIC = "repro-campaign-manifest"
MANIFEST_VERSION = 1

#: task lifecycle states recorded in the manifest
PENDING = "pending"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"

_STATUSES = (PENDING, RUNNING, COMPLETED, FAILED)


@dataclasses.dataclass
class TaskRecord:
    """One task's durable state."""

    task_id: str
    status: str = PENDING
    attempts: int = 0
    duration_s: float = 0.0
    error: str | None = None
    result: Any = None          # JSON-serialisable result payload, if any
    has_result: bool = False    # distinguishes "result is None" from "no result"

    def to_json(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "TaskRecord":
        try:
            record = cls(**data)
        except TypeError as exc:
            raise CampaignError(f"malformed task record {data!r}: {exc}") from exc
        if record.status not in _STATUSES:
            raise CampaignError(
                f"task {record.task_id!r} has unknown status {record.status!r}"
            )
        return record


class CampaignManifest:
    """Durable per-task status book, saved atomically after every change."""

    def __init__(self, path: str | os.PathLike | None = None):
        self.path = None if path is None else os.fspath(path)
        self.tasks: dict[str, TaskRecord] = {}

    # -- persistence ----------------------------------------------------

    @classmethod
    def open(cls, path: str | os.PathLike) -> "CampaignManifest":
        """Load the manifest at ``path``, or start a fresh one."""
        manifest = cls(path)
        if os.path.exists(manifest.path):
            manifest._load()
        return manifest

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise CampaignError(
                f"cannot read campaign manifest {self.path}: {exc}"
            ) from exc
        if not isinstance(data, dict) or data.get("magic") != MANIFEST_MAGIC:
            raise CampaignError(f"{self.path}: not a campaign manifest")
        version = data.get("version")
        if version != MANIFEST_VERSION:
            raise CampaignError(
                f"{self.path}: unsupported manifest version {version!r} "
                f"(this build reads version {MANIFEST_VERSION})"
            )
        self.tasks = {
            task_id: TaskRecord.from_json(record)
            for task_id, record in data.get("tasks", {}).items()
        }

    def save(self) -> None:
        """Atomically persist (no-op for an in-memory manifest)."""
        if self.path is None:
            return
        payload = json.dumps(
            {
                "magic": MANIFEST_MAGIC,
                "version": MANIFEST_VERSION,
                "tasks": {tid: rec.to_json() for tid, rec in self.tasks.items()},
            },
            indent=2,
            sort_keys=True,
        )
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    # -- task bookkeeping -----------------------------------------------

    def record(self, task_id: str) -> TaskRecord:
        if task_id not in self.tasks:
            self.tasks[task_id] = TaskRecord(task_id)
        return self.tasks[task_id]

    def mark_running(self, task_id: str) -> None:
        record = self.record(task_id)
        record.status = RUNNING
        record.attempts += 1
        self.save()

    def mark_completed(self, task_id: str, duration_s: float,
                       result: Any = None) -> None:
        record = self.record(task_id)
        record.status = COMPLETED
        record.duration_s = duration_s
        record.error = None
        record.result, record.has_result = self._jsonable(result)
        self.save()

    def mark_failed(self, task_id: str, error: str, duration_s: float) -> None:
        record = self.record(task_id)
        record.status = FAILED
        record.duration_s = duration_s
        record.error = error
        self.save()

    @staticmethod
    def _jsonable(result: Any) -> tuple[Any, bool]:
        """(payload, storable) — results that don't round-trip are dropped."""
        try:
            json.dumps(result)
        except (TypeError, ValueError):
            return None, False
        return result, True

    # -- resume ---------------------------------------------------------

    def needs_run(self, task_ids: Iterable[str]) -> list[str]:
        """The subset of ``task_ids`` a (re)invocation must execute."""
        out = []
        for task_id in task_ids:
            record = self.tasks.get(task_id)
            if record is None or record.status != COMPLETED:
                out.append(task_id)
        return out

    def completed(self) -> list[str]:
        return [t for t, r in self.tasks.items() if r.status == COMPLETED]

    def failed(self) -> list[str]:
        return [t for t, r in self.tasks.items() if r.status == FAILED]

    def interrupted(self) -> list[str]:
        """Tasks that were in flight when the previous supervisor died."""
        return [t for t, r in self.tasks.items() if r.status == RUNNING]
