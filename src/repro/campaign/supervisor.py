"""Fault-tolerant process-pool supervisor for simulation campaigns.

A campaign is a list of :class:`CampaignTask`\\ s (experiment x workload
x config points). The :class:`CampaignSupervisor` fans them out to
worker processes and keeps the campaign alive through any single-point
failure, the way the paper's N-1 algorithm survives a mid-swap crash:
there is always a valid copy of campaign state (the
:class:`~repro.campaign.manifest.CampaignManifest`), and no worker
failure can tear it.

Failure containment, per task:

* a worker that **crashes** (``os._exit``, SIGKILL, OOM) surfaces as a
  :class:`~repro.errors.TaskCrashError` — the campaign continues;
* a worker that **hangs** is killed when it exceeds its wall-clock
  ``task_timeout`` or stops heartbeating for ``heartbeat_timeout``
  seconds (workers send heartbeats from a daemon thread, so a worker
  stopped by SIGSTOP or wedged in native code is still detected) —
  :class:`~repro.errors.TaskTimeoutError`;
* a worker that **raises** ships the exception back over its pipe.

Each failure is classified by the :class:`~repro.campaign.retry.RetryPolicy`
and retried with exponential backoff + deterministic jitter; a task
that exhausts its attempts is marked ``failed`` in the manifest and the
campaign completes with an explicit partial-results report
(:meth:`CampaignReport.table`) instead of halting.

With ``jobs=1`` and no timeout the supervisor runs tasks inline in the
parent process, in submission order — byte-identical to a plain serial
loop — so the fault-tolerant path is free until you opt into
parallelism.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import multiprocessing.connection
import os
import pickle
import threading
from typing import Any, Callable, Sequence

from ..errors import CampaignError, TaskCrashError, TaskTimeoutError
from ..trace.cache import TRACE_CACHE_ENV
from .manifest import COMPLETED, FAILED, CampaignManifest
from .retry import Clock, RetryPolicy

#: report-only status for tasks already completed in the manifest
SKIPPED = "skipped"

_KILL_GRACE_S = 2.0      # SIGTERM -> SIGKILL escalation window
_POLL_INTERVAL_S = 0.05  # default scheduler wake-up granularity

#: env override for the worker heartbeat period, in milliseconds
HEARTBEAT_ENV = "REPRO_HEARTBEAT_MS"
_DEFAULT_HEARTBEAT_S = 0.5


def _env_heartbeat_interval() -> float:
    """Heartbeat period from ``REPRO_HEARTBEAT_MS``, else the default."""
    raw = os.environ.get(HEARTBEAT_ENV, "").strip()
    if not raw:
        return _DEFAULT_HEARTBEAT_S
    try:
        ms = float(raw)
    except ValueError:
        raise CampaignError(
            f"{HEARTBEAT_ENV} must be a number of milliseconds, got {raw!r}"
        ) from None
    if ms < 0:
        raise CampaignError(
            f"{HEARTBEAT_ENV} must be >= 0 (0 disables heartbeats), got {raw!r}"
        )
    return ms / 1000.0


@dataclasses.dataclass(frozen=True)
class CampaignTask:
    """One unit of campaign work.

    ``fn(*args, **kwargs)`` runs in a worker process (or inline for a
    serial campaign), so it must be a module-level callable with
    picklable arguments and result. If ``seed`` is given, the
    supervisor injects ``seed=RetryPolicy.attempt_seed(seed, attempt)``
    into the call — attempt 1 gets ``seed`` unchanged, retries get
    distinct-but-deterministic derived seeds.
    """

    task_id: str
    fn: Callable
    args: tuple = ()
    kwargs: dict = dataclasses.field(default_factory=dict)
    seed: int | None = None

    def call_kwargs(self, policy: RetryPolicy, attempt: int) -> dict:
        kwargs = dict(self.kwargs)
        if self.seed is not None:
            kwargs["seed"] = policy.attempt_seed(self.seed, attempt)
        return kwargs


@dataclasses.dataclass
class TaskOutcome:
    """How one task ended up."""

    task_id: str
    status: str                 # completed | failed | skipped
    result: Any = None
    error: str | None = None
    attempts: int = 0
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in (COMPLETED, SKIPPED)


@dataclasses.dataclass
class CampaignReport:
    """The campaign's final (possibly partial) results, in task order."""

    outcomes: list[TaskOutcome]

    def __post_init__(self):
        self.by_id = {o.task_id: o for o in self.outcomes}

    @property
    def completed(self) -> list[TaskOutcome]:
        return [o for o in self.outcomes if o.status == COMPLETED]

    @property
    def failed(self) -> list[TaskOutcome]:
        return [o for o in self.outcomes if o.status == FAILED]

    @property
    def skipped(self) -> list[TaskOutcome]:
        return [o for o in self.outcomes if o.status == SKIPPED]

    @property
    def ok(self) -> bool:
        return not self.failed

    def result(self, task_id: str) -> Any:
        return self.by_id[task_id].result

    def table(self):
        """Partial-results summary as a :class:`repro.stats.report.Table`."""
        from ..stats.report import campaign_table

        return campaign_table(self)


class _Running:
    """Supervisor-side state of one in-flight worker."""

    def __init__(self, task, attempt, process, conn, started, first_started):
        self.task = task
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.started = started
        self.first_started = first_started   # across attempts, for duration
        self.last_beat = started
        self.message = None                  # ("ok", result) | ("err", exc)


def _worker_entry(conn, fn, args, kwargs, heartbeat_interval):
    """Worker main: heartbeat thread + one task, result over the pipe."""
    lock = threading.Lock()
    stop = threading.Event()

    def beat():
        while not stop.wait(heartbeat_interval):
            try:
                with lock:
                    conn.send(("beat",))
            except (BrokenPipeError, OSError):
                return

    if heartbeat_interval > 0:
        threading.Thread(target=beat, daemon=True).start()
    try:
        result = fn(*args, **kwargs)
        message = ("ok", result)
    except BaseException as exc:  # noqa: BLE001  # repro-lint: disable=broad-except - crash-isolation boundary, ships to the supervisor
        message = ("err", exc)
    stop.set()
    try:
        with lock:
            conn.send(message)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        with lock:
            conn.send(("err", CampaignError(
                f"task result of type {type(message[1]).__name__} "
                f"cannot be sent back to the supervisor: {exc}"
            )))


class CampaignSupervisor:
    """Run a campaign of tasks with crash isolation, timeouts and retry.

    Parameters
    ----------
    jobs:
        Worker processes to run concurrently. ``1`` (the default) with
        no ``task_timeout``/``heartbeat_timeout`` executes tasks inline
        in the parent, preserving serial byte-identical behaviour.
    task_timeout:
        Per-attempt wall-clock budget in seconds; ``None`` disables.
    retry:
        A :class:`RetryPolicy`; defaults to ``RetryPolicy()``.
    manifest_path:
        Where to persist the run manifest. A re-invocation with the
        same path skips tasks the manifest already marks completed and
        re-queues ones that were in flight.
    heartbeat_interval / heartbeat_timeout:
        Workers heartbeat every ``heartbeat_interval`` seconds; a
        worker silent for ``heartbeat_timeout`` seconds is killed as
        hung (``None`` disables the check).
    mp_context:
        A :mod:`multiprocessing` context; defaults to the platform
        default (``fork`` on Linux).
    trace_cache_dir:
        When set, exported to every worker (and the inline path) as
        ``REPRO_TRACE_CACHE``, so the whole campaign shares one on-disk
        trace cache — each distinct trace is generated exactly once
        across all workers (see :mod:`repro.trace.cache`).
    """

    def __init__(
        self,
        jobs: int = 1,
        task_timeout: float | None = None,
        retry: RetryPolicy | None = None,
        manifest_path=None,
        heartbeat_interval: float | None = None,
        heartbeat_timeout: float | None = None,
        poll_interval: float = _POLL_INTERVAL_S,
        mp_context=None,
        clock: Clock | None = None,
        trace_cache_dir: str | os.PathLike | None = None,
    ):
        if jobs < 1:
            raise CampaignError(f"jobs must be >= 1, got {jobs}")
        if task_timeout is not None and task_timeout <= 0:
            raise CampaignError(f"task_timeout must be positive, got {task_timeout}")
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise CampaignError(
                f"heartbeat_timeout must be positive, got {heartbeat_timeout}"
            )
        if poll_interval <= 0:
            raise CampaignError(
                f"poll_interval must be positive, got {poll_interval}"
            )
        # resolution order: explicit argument > REPRO_HEARTBEAT_MS env
        # (milliseconds, for deploy-side tuning without code changes) >
        # the 0.5 s default; 0 disables worker heartbeats entirely
        if heartbeat_interval is None:
            heartbeat_interval = _env_heartbeat_interval()
        if heartbeat_interval < 0:
            raise CampaignError(
                f"heartbeat_interval must be >= 0, got {heartbeat_interval}"
            )
        self.jobs = jobs
        self.task_timeout = task_timeout
        self.retry = retry or RetryPolicy()
        self.manifest_path = manifest_path
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.poll_interval = poll_interval
        self.mp_context = mp_context or multiprocessing.get_context()
        self.clock = clock or Clock()
        self.trace_cache_dir = (
            os.fspath(trace_cache_dir) if trace_cache_dir is not None else None
        )

    # ------------------------------------------------------------------

    def run(self, tasks: Sequence[CampaignTask]) -> CampaignReport:
        """Execute the campaign; never raises for individual task failures."""
        if self.trace_cache_dir is None:
            return self._run(tasks)
        # workers inherit the parent environment (fork and spawn alike),
        # so exporting here covers both the process pool and the inline
        # path; restored afterwards to keep the parent unpolluted
        os.makedirs(self.trace_cache_dir, exist_ok=True)
        previous = os.environ.get(TRACE_CACHE_ENV)
        os.environ[TRACE_CACHE_ENV] = self.trace_cache_dir
        try:
            return self._run(tasks)
        finally:
            if previous is None:
                os.environ.pop(TRACE_CACHE_ENV, None)
            else:
                os.environ[TRACE_CACHE_ENV] = previous

    def _run(self, tasks: Sequence[CampaignTask]) -> CampaignReport:
        ids = [t.task_id for t in tasks]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise CampaignError(f"duplicate task ids: {dupes}")

        manifest = (
            CampaignManifest.open(self.manifest_path)
            if self.manifest_path is not None
            else CampaignManifest()
        )
        outcomes: dict[str, TaskOutcome] = {}
        todo: list[CampaignTask] = []
        for task in tasks:
            record = manifest.tasks.get(task.task_id)
            if record is not None and record.status == COMPLETED:
                outcomes[task.task_id] = TaskOutcome(
                    task.task_id, SKIPPED,
                    result=record.result if record.has_result else None,
                    attempts=record.attempts, duration_s=record.duration_s,
                )
            else:
                todo.append(task)

        serial = (
            self.jobs == 1
            and self.task_timeout is None
            and self.heartbeat_timeout is None
        )
        if serial:
            done = self._run_inline(todo, manifest)
        else:
            done = self._run_processes(todo, manifest)
        outcomes.update(done)
        return CampaignReport([outcomes[i] for i in ids])

    # -- inline (serial, byte-identical) --------------------------------

    def _run_inline(self, tasks, manifest) -> dict[str, TaskOutcome]:
        outcomes = {}
        for task in tasks:
            started = self.clock.monotonic()
            attempts = 0
            try:
                def attempt_once():
                    nonlocal attempts
                    attempts += 1
                    manifest.mark_running(task.task_id)
                    return task.fn(*task.args,
                                   **task.call_kwargs(self.retry, attempts))

                result, _ = self.retry.call(
                    attempt_once, clock=self.clock, task_key=task.task_id
                )
            except Exception as exc:  # noqa: BLE001  # repro-lint: disable=broad-except - recorded in the manifest, not fatal
                duration = self.clock.monotonic() - started
                error = f"{type(exc).__name__}: {exc}"
                manifest.mark_failed(task.task_id, error, duration)
                outcomes[task.task_id] = TaskOutcome(
                    task.task_id, FAILED, error=error,
                    attempts=attempts, duration_s=duration,
                )
            else:
                duration = self.clock.monotonic() - started
                manifest.mark_completed(task.task_id, duration, result)
                outcomes[task.task_id] = TaskOutcome(
                    task.task_id, COMPLETED, result=result,
                    attempts=attempts, duration_s=duration,
                )
        return outcomes

    # -- process pool ----------------------------------------------------

    def _run_processes(self, tasks, manifest) -> dict[str, TaskOutcome]:
        outcomes: dict[str, TaskOutcome] = {}
        # (task, attempt, ready_at, first_started | None)
        queue: list[tuple[CampaignTask, int, float, float | None]] = [
            (task, 1, 0.0, None) for task in tasks
        ]
        running: dict[str, _Running] = {}
        try:
            while queue or running:
                self._launch_ready(queue, running, manifest)
                self._poll(running)
                for task_id in list(running):
                    slot = running[task_id]
                    resolution = self._resolve(slot)
                    if resolution is None:
                        continue
                    del running[task_id]
                    kind, payload = resolution
                    if kind == "ok":
                        duration = self.clock.monotonic() - slot.first_started
                        manifest.mark_completed(task_id, duration, payload)
                        outcomes[task_id] = TaskOutcome(
                            task_id, COMPLETED, result=payload,
                            attempts=slot.attempt, duration_s=duration,
                        )
                        continue
                    exc = payload
                    if (self.retry.is_retryable(exc)
                            and slot.attempt < self.retry.max_attempts):
                        delay = self.retry.backoff(slot.attempt, task_id)
                        queue.append((
                            slot.task, slot.attempt + 1,
                            self.clock.monotonic() + delay, slot.first_started,
                        ))
                    else:
                        duration = self.clock.monotonic() - slot.first_started
                        error = f"{type(exc).__name__}: {exc}"
                        manifest.mark_failed(task_id, error, duration)
                        outcomes[task_id] = TaskOutcome(
                            task_id, FAILED, error=error,
                            attempts=slot.attempt, duration_s=duration,
                        )
                if not running and queue:
                    # everything is backing off; sleep to the next retry
                    wake = min(entry[2] for entry in queue)
                    self.clock.sleep(max(0.0, wake - self.clock.monotonic()))
        finally:
            for slot in running.values():
                self._kill(slot)
        return outcomes

    def _launch_ready(self, queue, running, manifest) -> None:
        now = self.clock.monotonic()
        index = 0
        while len(running) < self.jobs and index < len(queue):
            task, attempt, ready_at, first_started = queue[index]
            if ready_at > now:
                index += 1
                continue
            queue.pop(index)
            manifest.mark_running(task.task_id)
            parent_conn, child_conn = self.mp_context.Pipe(duplex=False)
            process = self.mp_context.Process(
                target=_worker_entry,
                args=(child_conn, task.fn, task.args,
                      task.call_kwargs(self.retry, attempt),
                      self.heartbeat_interval),
                daemon=True,
            )
            process.start()
            child_conn.close()
            started = self.clock.monotonic()
            running[task.task_id] = _Running(
                task, attempt, process, parent_conn, started,
                first_started if first_started is not None else started,
            )

    def _poll(self, running) -> None:
        """Wait briefly for worker messages; drain beats and results."""
        conns = {slot.conn: slot for slot in running.values()
                 if slot.message is None}
        if not conns:
            if running:
                self.clock.sleep(self.poll_interval)
            return
        ready = multiprocessing.connection.wait(
            list(conns), timeout=self.poll_interval
        )
        for conn in ready:
            slot = conns[conn]
            try:
                while slot.message is None and conn.poll():
                    message = conn.recv()
                    if message[0] == "beat":
                        slot.last_beat = self.clock.monotonic()
                    else:
                        slot.message = message
            except (EOFError, OSError):
                pass  # worker died mid-send; the exitcode path handles it

    def _resolve(self, slot) -> tuple[str, Any] | None:
        """Has this worker finished, crashed, or gone silent?"""
        now = self.clock.monotonic()
        if slot.message is not None:
            self._kill(slot)  # reap; the worker is done
            return slot.message
        if self.task_timeout is not None and now - slot.started > self.task_timeout:
            self._kill(slot)
            return ("err", TaskTimeoutError(
                f"task {slot.task.task_id!r} exceeded its "
                f"{self.task_timeout:.1f}s wall-clock budget "
                f"(attempt {slot.attempt})"
            ))
        if (self.heartbeat_timeout is not None
                and now - slot.last_beat > self.heartbeat_timeout):
            self._kill(slot)
            return ("err", TaskTimeoutError(
                f"task {slot.task.task_id!r} stopped heartbeating for "
                f"{now - slot.last_beat:.1f}s (attempt {slot.attempt})"
            ))
        if not slot.process.is_alive():
            # one final drain: the result may have raced the exit
            try:
                while slot.message is None and slot.conn.poll():
                    message = slot.conn.recv()
                    if message[0] != "beat":
                        slot.message = message
            except (EOFError, OSError):
                pass
            if slot.message is not None:
                self._kill(slot)
                return slot.message
            code = slot.process.exitcode
            self._kill(slot)
            return ("err", TaskCrashError(
                f"worker for task {slot.task.task_id!r} died with exit code "
                f"{code} before reporting a result (attempt {slot.attempt})"
            ))
        return None

    def _kill(self, slot) -> None:
        """Tear a worker down (SIGTERM, then SIGKILL) and close its pipe."""
        process = slot.process
        if process.is_alive():
            process.terminate()
            process.join(_KILL_GRACE_S)
            if process.is_alive():
                process.kill()
                process.join()
        else:
            process.join()
        slot.conn.close()
