"""Campaign orchestration: fault-tolerant parallel sweeps.

Three pieces (ISSUE 2: robustness):

* :mod:`.supervisor` — :class:`CampaignSupervisor` fans simulation
  points out to worker processes with per-task wall-clock timeouts,
  heartbeat monitoring and crash isolation; a dying worker marks the
  task failed, never the campaign.
* :mod:`.retry` — :class:`RetryPolicy`: exponential backoff with
  deterministic seeded jitter, retryable-exception classification, and
  per-attempt derived RNG seeds; time is injectable via
  :class:`Clock` / :class:`FakeClock` so tests never sleep.
* :mod:`.manifest` — :class:`CampaignManifest`: a schema-versioned
  JSON record of per-task status/attempts/durations written with
  atomic renames, so an interrupted campaign resumes by skipping
  completed tasks and re-queuing in-flight ones.

The experiments CLI (``repro-experiments <id> --jobs N``) drives the
Table 4 / Fig 12-14 grids and the ``all`` sweep through this layer;
``--jobs 1`` (the default) stays serial and byte-identical.
"""

from .manifest import (
    COMPLETED,
    FAILED,
    MANIFEST_MAGIC,
    MANIFEST_VERSION,
    PENDING,
    RUNNING,
    CampaignManifest,
    TaskRecord,
)
from .retry import DEFAULT_RETRYABLE, Clock, FakeClock, RetryPolicy
from .sharded import (
    ShardedSimulator,
    merge_results,
    shard_config,
    shard_records,
)
from .supervisor import (
    SKIPPED,
    CampaignReport,
    CampaignSupervisor,
    CampaignTask,
    TaskOutcome,
)

__all__ = [
    "COMPLETED",
    "Clock",
    "CampaignManifest",
    "CampaignReport",
    "CampaignSupervisor",
    "CampaignTask",
    "DEFAULT_RETRYABLE",
    "FAILED",
    "FakeClock",
    "MANIFEST_MAGIC",
    "MANIFEST_VERSION",
    "PENDING",
    "RUNNING",
    "RetryPolicy",
    "SKIPPED",
    "ShardedSimulator",
    "TaskOutcome",
    "TaskRecord",
    "merge_results",
    "shard_config",
    "shard_records",
]
