"""Reusable retry policy: exponential backoff with deterministic jitter.

A :class:`RetryPolicy` owns three decisions the campaign supervisor
(and anything else that retries work) must make identically every run:

* *should this failure be retried?* — classification by exception type,
  defaulting to the transient kinds the library already defines
  (:class:`~repro.errors.FaultInjectionError`,
  :class:`~repro.errors.WatchdogError`) plus the supervisor's own
  :class:`~repro.errors.TaskCrashError` / :class:`~repro.errors.TaskTimeoutError`;
* *how long to wait?* — exponential backoff capped at ``max_delay``,
  multiplied by deterministic seeded jitter so a sweep's retries
  de-synchronise the same way on every rerun (no wall-clock entropy);
* *what seed does the retry get?* — :meth:`attempt_seed` derives a
  distinct-but-deterministic RNG seed per (task, attempt) so a retried
  simulation point is reproducible without replaying the exact failure.

Time is injected through a :class:`Clock` so tests never sleep.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
import time
import zlib
from typing import Callable

from ..errors import (
    FaultInjectionError,
    TaskCrashError,
    TaskTimeoutError,
    WatchdogError,
)

#: exception types the default policy treats as transient
DEFAULT_RETRYABLE: tuple[type[BaseException], ...] = (
    FaultInjectionError,
    WatchdogError,
    TaskCrashError,
    TaskTimeoutError,
)


class Clock:
    """Injectable time source; the default wraps the real clock."""

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class FakeClock(Clock):
    """A clock whose sleeps advance a counter instead of blocking.

    Tests assert on ``.sleeps`` (every delay requested) and ``.now``
    (virtual elapsed time) without ever waiting.
    """

    def __init__(self, start: float = 0.0):
        self.now = float(start)
        self.sleeps: list[float] = []

    def monotonic(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += max(0.0, seconds)


def _stable_int(*parts: int | str) -> int:
    """A process-independent 64-bit hash of the parts (no PYTHONHASHSEED)."""
    digest = hashlib.sha256("\x1f".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "little")


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) failed attempts are retried.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    try plus up to two retries, ``max_attempts=1`` disables retry.
    Delay before retry ``k`` (1-based) is::

        min(base_delay * multiplier**(k-1), max_delay) * jitter

    where ``jitter`` is drawn uniformly from ``1 ± jitter_fraction`` by
    a RNG seeded from ``(seed, task_key, k)`` — fully deterministic,
    but different per task so a failed fan-out doesn't retry in
    lockstep.
    """

    max_attempts: int = 3
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter_fraction: float = 0.25
    seed: int = 0
    retryable: tuple[type[BaseException], ...] = DEFAULT_RETRYABLE

    def __post_init__(self):
        from ..errors import CampaignError

        if self.max_attempts < 1:
            raise CampaignError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise CampaignError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise CampaignError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise CampaignError("jitter_fraction must be in [0, 1)")

    # -- classification -------------------------------------------------

    def is_retryable(self, exc: BaseException) -> bool:
        return isinstance(exc, self.retryable)

    # -- backoff --------------------------------------------------------

    def backoff(self, attempt: int, task_key: str = "") -> float:
        """Delay in seconds before retry ``attempt`` (1 = first retry)."""
        if attempt < 1:
            return 0.0
        raw = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter_fraction <= 0.0 or raw <= 0.0:
            return raw
        rng = random.Random(
            _stable_int(self.seed, zlib.crc32(task_key.encode()), attempt)
        )
        return raw * rng.uniform(1 - self.jitter_fraction, 1 + self.jitter_fraction)

    # -- per-attempt seeds ----------------------------------------------

    def attempt_seed(self, base_seed: int, attempt: int) -> int:
        """A 32-bit RNG seed for ``attempt`` (1-based) of a task.

        Attempt 1 keeps ``base_seed`` unchanged so a never-failing task
        is bit-identical to a run without the retry layer; later
        attempts get distinct-but-deterministic derived seeds.
        """
        if attempt <= 1:
            return base_seed
        return _stable_int("attempt-seed", self.seed, base_seed, attempt) % (1 << 32)

    # -- driver ---------------------------------------------------------

    def call(
        self,
        fn: Callable,
        *args,
        clock: Clock | None = None,
        task_key: str = "",
        on_retry: Callable[[int, BaseException, float], None] | None = None,
        **kwargs,
    ):
        """Run ``fn(*args, **kwargs)`` under this policy.

        Returns ``(result, attempts_used)``. Non-retryable exceptions
        (and the final retryable one once attempts are exhausted)
        propagate to the caller. ``on_retry(attempt, exc, delay)`` fires
        before each backoff sleep.
        """
        clock = clock or Clock()
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn(*args, **kwargs), attempt
            except Exception as exc:  # repro-lint: disable=broad-except - retryability is classified below
                if not self.is_retryable(exc) or attempt == self.max_attempts:
                    raise
                delay = self.backoff(attempt, task_key)
                if on_retry is not None:
                    on_retry(attempt, exc, delay)
                clock.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover
