"""Sharded multi-process simulation: address-space partitioning.

"Near-Memory Address Translation" style partitioning: the macro-page
space is split round-robin across ``n_shards`` workers (global page
``p`` belongs to shard ``p % n_shards``), each worker runs a full
:class:`~repro.core.simulator.EpochSimulator` over a proportionally
scaled sub-memory (``total_bytes / n_shards`` with
``onpkg_bytes / n_shards`` on-package — page-interleaving preserves
region membership exactly), and the per-shard
:class:`~repro.core.simulator.SimulationResult`\\ s are merged.

Exactness contract
------------------

* ``n_shards=1`` is **bit-identical** to a plain ``EpochSimulator``
  run: the page mapping degenerates to the identity and the single
  task runs inline through the supervisor's serial path.
* **Shard-local traffic is exact**: every access is simulated in its
  owning shard with its original timestamp, so each shard's latencies,
  row-buffer behaviour and migration decisions are exactly those of an
  ``EpochSimulator`` over that shard's sub-trace and sub-memory.
* **Cross-shard interleavings are approximate**: the unsharded
  simulator serializes all traffic through one controller and one
  migration engine, while shards migrate and queue independently
  (epoch boundaries fall every ``swap_interval`` accesses *per
  shard*). The contract is statistical, not bitwise: for a seeded
  workload the merged averages track the unsharded run (the
  4-shard-vs-1-shard test pins the tolerance), and the same seed
  always reproduces the same merged result.

Merge semantics (see :func:`merge_results`)
-------------------------------------------

* counters (accesses, latency sums, swap/migration/fault counters,
  fused/stepwise epochs) — summed;
* row-buffer hit rates — access-weighted means;
* ``epoch_latency`` — mean of the shard epoch means at each epoch
  ordinal (shards carry near-equal epoch populations by construction);
* ``duration_cycles`` — max over shards (trace spans overlap);
* ``degradation_events`` — tagged ``[shard i]`` and re-sorted by
  ``(time, epoch)``; ``quarantined`` is the OR over shards.

The worker fan-out reuses :class:`CampaignSupervisor` unchanged, so a
crashing or hanging shard is killed, classified and retried exactly
like any campaign task; a shard that exhausts its retries fails the
whole run (a partial sharded simulation is not a result).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Sequence

import numpy as np

from ..config import SystemConfig
from ..core.simulator import EpochSimulator, SimulationResult
from ..errors import CampaignError, SimulationError
from ..trace.record import TraceChunk
from .retry import RetryPolicy
from .supervisor import CampaignSupervisor, CampaignTask


def shard_config(config: SystemConfig, n_shards: int) -> SystemConfig:
    """The per-shard sub-memory: every capacity divided by ``n_shards``,
    every ratio (and every other knob) preserved."""
    validate_sharding(config, n_shards)
    if n_shards == 1:
        return config
    return dataclasses.replace(
        config,
        total_bytes=config.total_bytes // n_shards,
        onpkg_bytes=config.onpkg_bytes // n_shards,
    )


def validate_sharding(config: SystemConfig, n_shards: int) -> None:
    if n_shards < 1:
        raise CampaignError(f"n_shards must be >= 1, got {n_shards}")
    amap = config.address_map()
    if amap.n_total_pages % n_shards or amap.n_onpkg_pages % n_shards:
        raise CampaignError(
            f"n_shards={n_shards} must divide both the {amap.n_total_pages} "
            f"total and the {amap.n_onpkg_pages} on-package macro pages"
        )
    if config.ras.enabled or config.disturb.enabled:
        raise CampaignError(
            "sharded mode does not support RAS/disturb configurations "
            "(their reports have no defined merge)"
        )


def shard_records(
    records: np.ndarray,
    config: SystemConfig,
    n_shards: int,
    shard_index: int,
) -> np.ndarray:
    """Extract shard ``shard_index``'s accesses, re-addressed locally.

    Global page ``p`` (owned iff ``p % n_shards == shard_index``)
    becomes local page ``p // n_shards``; in-page offsets and
    timestamps are untouched, so shard-local traffic keeps its exact
    arrival times. Returns a fresh structured array (the mask gather
    copies; the input is never mutated).
    """
    amap = config.address_map()
    shift = amap.offset_bits
    pages = records["addr"] >> shift
    limit = amap.n_total_pages - n_shards
    if pages.size and int(pages.max()) >= limit and n_shards > 1:
        # the top page of each shard's sub-space is that shard's ghost
        # page Ω (the global Ω lands on the last shard's) — data there
        # cannot be represented in the sharded geometry
        raise SimulationError(
            f"trace touches macro page >= {limit}: the top {n_shards} "
            "pages back the per-shard ghost pages in sharded mode"
        )
    if n_shards == 1:
        return records
    own = (pages % n_shards) == shard_index
    sub = records[own]
    local_pages = (pages[own] // n_shards) << shift
    sub["addr"] = local_pages | (sub["addr"] & (amap.macro_page_bytes - 1))
    return sub


# ---------------------------------------------------------------------------
# worker entry points (module-level: they run in supervisor workers)
# ---------------------------------------------------------------------------

def _simulate_shard_records(
    config: SystemConfig,
    n_shards: int,
    shard_index: int,
    records: np.ndarray,
    migrate: bool,
    fused: bool,
) -> SimulationResult:
    sim = EpochSimulator(
        shard_config(config, n_shards), migrate=migrate, fused=fused
    )
    return sim.run(TraceChunk(records, validate=False))


def _simulate_shard_stream(
    config: SystemConfig,
    n_shards: int,
    shard_index: int,
    stream_factory: Callable[[], Iterable[TraceChunk]],
    migrate: bool,
    fused: bool,
) -> SimulationResult:
    sim = EpochSimulator(
        shard_config(config, n_shards), migrate=migrate, fused=fused
    )
    result = SimulationResult()
    for chunk in stream_factory():
        sub = shard_records(chunk.records, config, n_shards, shard_index)
        if sub.shape[0]:
            sim.run_into(TraceChunk(sub, validate=False), result)
    return result


# ---------------------------------------------------------------------------
# merge
# ---------------------------------------------------------------------------

def merge_results(results: Sequence[SimulationResult]) -> SimulationResult:
    """Merge per-shard results per the module-level semantics."""
    if not results:
        raise CampaignError("nothing to merge")
    if len(results) == 1:
        return results[0]
    out = SimulationResult()
    for r in results:
        out.n_accesses += r.n_accesses
        out.total_latency += r.total_latency
        out.onpkg_accesses += r.onpkg_accesses
        out.offpkg_accesses += r.offpkg_accesses
        out.swaps_triggered += r.swaps_triggered
        out.swaps_suppressed_busy += r.swaps_suppressed_busy
        out.swaps_suppressed_cold += r.swaps_suppressed_cold
        out.migrated_bytes += r.migrated_bytes
        out.cross_boundary_migrated_bytes += r.cross_boundary_migrated_bytes
        out.fused_epochs += r.fused_epochs
        out.stepwise_epochs += r.stepwise_epochs
        out.faults_injected += r.faults_injected
        out.dram_errors_corrected += r.dram_errors_corrected
        out.dram_errors_retried += r.dram_errors_retried
        out.dram_errors_uncorrectable += r.dram_errors_uncorrectable
        out.data_violations += r.data_violations
        out.duration_cycles = max(out.duration_cycles, r.duration_cycles)
        out.quarantined = out.quarantined or r.quarantined
    # access-weighted row-buffer hit rates
    on_w = sum(r.onpkg_accesses for r in results)
    off_w = sum(r.offpkg_accesses for r in results)
    if on_w:
        out.onpkg_row_hit_rate = (
            sum(r.onpkg_row_hit_rate * r.onpkg_accesses for r in results) / on_w
        )
    if off_w:
        out.offpkg_row_hit_rate = (
            sum(r.offpkg_row_hit_rate * r.offpkg_accesses for r in results)
            / off_w
        )
    # epoch series: mean of the shard means at each epoch ordinal
    n_epochs = max(len(r.epoch_latency) for r in results)
    merged_epochs: list[float] = []
    for i in range(n_epochs):
        vals = [
            r.epoch_latency[i] for r in results if i < len(r.epoch_latency)
        ]
        merged_epochs.append(float(sum(vals) / len(vals)))
    out.epoch_latency = merged_epochs
    # events: tagged with their shard, re-sorted on the global clock
    events = []
    for idx, r in enumerate(results):
        for ev in r.degradation_events:
            events.append(
                dataclasses.replace(ev, detail=f"[shard {idx}] {ev.detail}")
            )
    out.degradation_events = sorted(events, key=lambda e: (e.time, e.epoch))
    return out


# ---------------------------------------------------------------------------
# the sharded simulator
# ---------------------------------------------------------------------------

class ShardedSimulator:
    """Partition the address space across supervisor-managed workers.

    Parameters
    ----------
    config:
        The *global* system; each worker simulates a
        ``1/n_shards`` slice of it (see :func:`shard_config`).
    n_shards:
        Worker count; must divide both page counts. ``1`` runs inline
        and is bit-identical to a plain :class:`EpochSimulator`.
    migrate / fused:
        Forwarded to every shard's :class:`EpochSimulator`.
    jobs:
        Concurrent worker processes (default ``n_shards``).
    supervisor_kwargs:
        Extra :class:`CampaignSupervisor` arguments (``task_timeout``,
        ``heartbeat_timeout``, ``mp_context``, ...) for the fan-out.
    """

    def __init__(
        self,
        config: SystemConfig,
        n_shards: int,
        *,
        migrate: bool = True,
        fused: bool = True,
        jobs: int | None = None,
        **supervisor_kwargs,
    ):
        validate_sharding(config, n_shards)
        self.config = config
        self.n_shards = n_shards
        self.migrate = migrate
        self.fused = fused
        self.jobs = n_shards if jobs is None else jobs
        self.supervisor_kwargs = supervisor_kwargs

    def run(self, trace: TraceChunk) -> SimulationResult:
        """Partition a materialized trace and simulate it in parallel."""
        tasks = [
            CampaignTask(
                task_id=f"shard-{i}",
                fn=_simulate_shard_records,
                args=(
                    self.config, self.n_shards, i,
                    shard_records(trace.records, self.config, self.n_shards, i),
                    self.migrate, self.fused,
                ),
            )
            for i in range(self.n_shards)
        ]
        return self._run_tasks(tasks)

    def run_stream(
        self, stream_factory: Callable[[], Iterable[TraceChunk]]
    ) -> SimulationResult:
        """Simulate a trace *stream* in parallel with O(chunk) memory.

        ``stream_factory`` must be a picklable zero-argument callable
        (module-level function or :func:`functools.partial` of one)
        returning a fresh stream; every worker re-generates the stream
        and keeps only its own shard's accesses — generation CPU is
        spent ``n_shards`` times to keep peak memory per process at
        O(chunk). Shard epoch boundaries follow the per-shard access
        count, so results depend (deterministically) on the stream's
        chunking.
        """
        tasks = [
            CampaignTask(
                task_id=f"shard-{i}",
                fn=_simulate_shard_stream,
                args=(
                    self.config, self.n_shards, i, stream_factory,
                    self.migrate, self.fused,
                ),
            )
            for i in range(self.n_shards)
        ]
        return self._run_tasks(tasks)

    def _run_tasks(self, tasks: list[CampaignTask]) -> SimulationResult:
        kwargs = dict(self.supervisor_kwargs)
        kwargs.setdefault("retry", RetryPolicy(max_attempts=2))
        supervisor = CampaignSupervisor(jobs=min(self.jobs, len(tasks)), **kwargs)
        report = supervisor.run(tasks)
        if report.failed:
            detail = "; ".join(
                f"{o.task_id}: {o.error}" for o in report.failed
            )
            raise CampaignError(f"sharded simulation failed: {detail}")
        by_id = {o.task_id: o.result for o in report.outcomes}
        ordered = [by_id[f"shard-{i}"] for i in range(self.n_shards)]
        return merge_results(ordered)
