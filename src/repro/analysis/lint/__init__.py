"""``repro-lint``: determinism / state-safety lint engine.

Rule plugins live in :mod:`repro.analysis.lint.rules`; the visitor
framework in :mod:`~repro.analysis.lint.core`; the driver and baseline
diffing in :mod:`~repro.analysis.lint.engine` /
:mod:`~repro.analysis.lint.baseline`.
"""

from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .core import RULES, FileContext, Finding, LintRule, Severity, register
from .engine import LintReport, lint_file, resolve_rules, run_lint
from . import rules as _rules  # noqa: F401  (import registers the rules)
from ..domains import rule as _domains_rule  # noqa: F401  (registers domain-confusion)

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "FileContext",
    "Finding",
    "LintReport",
    "LintRule",
    "RULES",
    "Severity",
    "lint_file",
    "register",
    "resolve_rules",
    "run_lint",
]
