"""Committed baseline of grandfathered findings.

The baseline is a JSON file mapping finding fingerprints to a
human-auditable record. ``repro-lint --fail-on-new`` (and the default
run) only fails on findings whose fingerprint is absent, so legacy
findings can be paid down incrementally while CI blocks regressions.
This repo's policy is an **empty** baseline: every rule is either fixed
or carries an inline justification.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from ...errors import AnalysisError
from .core import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"


@dataclass
class Baseline:
    """Fingerprint set with enough context to audit each entry."""

    entries: dict[str, dict] = field(default_factory=dict)

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(
            entries={
                f.fingerprint: {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "message": f.message,
                }
                for f in findings
            }
        )

    @classmethod
    def load(cls, path: str | os.PathLike) -> "Baseline":
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except FileNotFoundError:
            return cls()
        except (OSError, json.JSONDecodeError) as exc:
            raise AnalysisError(f"unreadable baseline {path}: {exc}") from exc
        if data.get("version") != BASELINE_VERSION:
            raise AnalysisError(
                f"baseline {path} has version {data.get('version')!r}, "
                f"expected {BASELINE_VERSION}"
            )
        entries = data.get("findings", {})
        if not isinstance(entries, dict):
            raise AnalysisError(f"baseline {path}: 'findings' must be an object")
        return cls(entries=dict(entries))

    def save(self, path: str | os.PathLike) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "findings": {
                fp: self.entries[fp] for fp in sorted(self.entries)
            },
        }
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
