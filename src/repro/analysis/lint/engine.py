"""The lint driver: walk files, run rules, diff against the baseline.

``run_lint`` is the single entry point the CLI and tests share. It
returns a :class:`LintReport` carrying every finding partitioned into
*new* vs *baselined*, plus the counts needed for the JSON summary; the
exit-code policy (fail when any new finding exists) lives here so CI
and local runs can never disagree.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ...errors import AnalysisError
from .baseline import Baseline
from .core import RULES, FileContext, Finding, LintRule

#: directories never descended into
_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", ".hypothesis", "build"}


def iter_python_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            out.add(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
                for name in files:
                    if name.endswith(".py"):
                        out.add(os.path.join(root, name))
        else:
            raise AnalysisError(f"no such file or directory: {path}")
    return sorted(out)


def _relpath(path: str, root: str | None) -> str:
    rel = os.path.relpath(path, root) if root else path
    return rel.replace(os.sep, "/")


def resolve_rules(
    select: list[str] | None = None, disable: list[str] | None = None
) -> list[type[LintRule]]:
    """The rule classes to run, after ``--select`` / ``--disable``."""
    for name in (select or []) + (disable or []):
        if name not in RULES:
            raise AnalysisError(
                f"unknown rule {name!r}; available: {', '.join(sorted(RULES))}"
            )
    names = set(select) if select else set(RULES)
    names -= set(disable or [])
    return [RULES[n] for n in sorted(names)]


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)   # new findings
    baselined: list[Finding] = field(default_factory=list)
    parse_errors: list[tuple[str, str]] = field(default_factory=list)
    n_files: int = 0
    rules_run: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings or self.parse_errors else 0

    def summary(self) -> dict:
        by_rule: dict[str, int] = {}
        for f in self.findings:
            by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
        return {
            "files": self.n_files,
            "new": len(self.findings),
            "baselined": len(self.baselined),
            "parse_errors": len(self.parse_errors),
            "by_rule": dict(sorted(by_rule.items())),
        }

    def to_json(self) -> dict:
        return {
            "version": 1,
            "tool": "repro-lint",
            "rules": list(self.rules_run),
            "findings": [f.to_json() for f in self.findings],
            "baselined": [f.to_json() for f in self.baselined],
            "parse_errors": [
                {"path": p, "message": m} for p, m in self.parse_errors
            ],
            "summary": self.summary(),
        }

    def format_text(self, *, show_baselined: bool = False) -> str:
        lines = [f.format() for f in sorted(
            self.findings, key=lambda f: (f.path, f.line, f.rule)
        )]
        if show_baselined and self.baselined:
            lines.append("-- baselined (grandfathered) --")
            lines.extend(f.format() for f in self.baselined)
        for path, message in self.parse_errors:
            lines.append(f"{path}:1:1: error [parse] {message}")
        s = self.summary()
        lines.append(
            f"repro-lint: {s['files']} files, {s['new']} new finding(s), "
            f"{s['baselined']} baselined, {s['parse_errors']} parse error(s)"
        )
        return "\n".join(lines)


def lint_file(
    path: str,
    rules: list[type[LintRule]],
    *,
    root: str | None = None,
    source: str | None = None,
) -> list[Finding]:
    """Run ``rules`` over one file; returns (possibly empty) findings."""
    rel = _relpath(path, root)
    if source is None:
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
    ctx = FileContext.parse(rel, source)
    findings: list[Finding] = []
    for rule_cls in rules:
        if rule_cls.applies_to(rel):
            findings.extend(rule_cls(ctx).run())
    return findings


def run_lint(
    paths: list[str],
    *,
    baseline: Baseline | None = None,
    select: list[str] | None = None,
    disable: list[str] | None = None,
    root: str | None = None,
) -> LintReport:
    """Lint ``paths`` (files or directories) and diff against ``baseline``."""
    rules = resolve_rules(select, disable)
    baseline = baseline or Baseline()
    report = LintReport(rules_run=[r.name for r in rules])
    for path in iter_python_files(paths):
        report.n_files += 1
        try:
            found = lint_file(path, rules, root=root)
        except SyntaxError as exc:
            report.parse_errors.append((_relpath(path, root), str(exc)))
            continue
        for f in found:
            (report.baselined if f in baseline else report.findings).append(f)
    return report
