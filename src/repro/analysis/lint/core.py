"""Rule-plugin framework for ``repro-lint``.

A :class:`LintRule` is an :mod:`ast` visitor with a stable name, a
severity, and a path scope. Rules are registered with :func:`register`
and instantiated fresh per file by the engine, so they may keep
per-file state freely. Findings carry a *fingerprint* — a content hash
of ``(rule, path, source line text, occurrence index)`` — which is what
the committed baseline stores; fingerprints survive unrelated line
insertions, so grandfathered findings do not churn.

Inline suppression: append ``# repro-lint: disable=RULE`` (or a
comma-separated list, or ``all``) to the offending line. Suppressions
are extracted with :mod:`tokenize` so comment-looking text inside
string literals never counts.
"""

from __future__ import annotations

import ast
import hashlib
import io
import tokenize
from dataclasses import dataclass, field
from enum import Enum

SUPPRESS_MARKER = "repro-lint:"


class Severity(str, Enum):
    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One lint finding, position-anchored and fingerprinted."""

    rule: str
    severity: Severity
    path: str                 # repo-relative, forward slashes
    line: int                 # 1-based
    col: int                  # 0-based
    message: str
    line_text: str = ""       # stripped source of the offending line
    occurrence: int = 0       # n-th finding of this rule on identical text
    #: optional step-indexed dataflow/counterexample trace (one step per
    #: entry); excluded from the fingerprint so trace wording can evolve
    #: without churning the committed baseline
    trace: tuple[str, ...] = ()

    @property
    def fingerprint(self) -> str:
        payload = f"{self.rule}\x00{self.path}\x00{self.line_text}\x00{self.occurrence}"
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
            "trace": list(self.trace),
        }

    def format(self) -> str:
        head = (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.severity.value} [{self.rule}] {self.message}"
        )
        if not self.trace:
            return head
        return head + "\n  trace:\n    " + "\n    ".join(self.trace)


@dataclass
class FileContext:
    """Everything a rule may inspect about the file under analysis."""

    path: str                     # repo-relative, forward slashes
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    #: line -> set of rule names disabled there ("all" disables every rule)
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, source: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        ctx = cls(path=path, source=source, tree=tree,
                  lines=source.splitlines())
        ctx.suppressions = extract_suppressions(source)
        return ctx

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def suppressed(self, rule: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        if not rules:
            return False
        return "all" in rules or rule in rules


def extract_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule names disabled by an inline comment."""
    out: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            # the marker may follow other annotations ("# noqa ... # repro-lint: ...")
            pos = tok.string.find(SUPPRESS_MARKER)
            if pos < 0:
                continue
            directive = tok.string[pos + len(SUPPRESS_MARKER):].strip()
            if not directive.startswith("disable="):
                continue
            names = directive[len("disable="):]
            # allow trailing prose after the rule list: "disable=x,y - why"
            names = names.split(" ")[0]
            rules = {n.strip() for n in names.split(",") if n.strip()}
            if rules:
                out.setdefault(tok.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass  # unterminated constructs: ast.parse will fail first anyway
    return out


class LintRule(ast.NodeVisitor):
    """Base class for rules: visit the tree, call :meth:`report`.

    Subclasses set ``name`` (kebab-case, the suppression token),
    ``severity`` and ``description``. ``path_scope``, when non-empty,
    restricts the rule to files whose repo-relative path contains one of
    the substrings; ``path_exclude`` removes files the same way.
    """

    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    path_scope: tuple[str, ...] = ()
    path_exclude: tuple[str, ...] = ()

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        self.findings: list[Finding] = []
        self._occurrences: dict[str, int] = {}

    @classmethod
    def applies_to(cls, path: str) -> bool:
        if any(part in path for part in cls.path_exclude):
            return False
        if cls.path_scope:
            return any(part in path for part in cls.path_scope)
        return True

    def run(self) -> list[Finding]:
        self.visit(self.ctx.tree)
        return self.findings

    def report(
        self,
        node: ast.AST,
        message: str,
        *,
        trace: tuple[str, ...] = (),
        severity: Severity | None = None,
    ) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.ctx.suppressed(self.name, line):
            return
        text = self.ctx.line_text(line)
        key = f"{self.name}\x00{text}"
        occurrence = self._occurrences.get(key, 0)
        self._occurrences[key] = occurrence + 1
        self.findings.append(
            Finding(
                rule=self.name,
                severity=severity if severity is not None else self.severity,
                path=self.ctx.path,
                line=line,
                col=col,
                message=message,
                line_text=text,
                occurrence=occurrence,
                trace=trace,
            )
        )


#: global rule registry, populated by the :func:`register` decorator
RULES: dict[str, type[LintRule]] = {}


def register(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule to the registry (import-time)."""
    if not cls.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if cls.name in RULES:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    RULES[cls.name] = cls
    return cls


def dotted_call_name(node: ast.AST) -> str | None:
    """``a.b.c(...)`` -> ``"a.b.c"``; plain names -> ``"a"``; else None."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None
