"""The repo-specific determinism / state-safety rules.

Every rule here guards a property the resilience and campaign layers
rely on: bit-identical replay (no wall-clock, no unseeded RNG, no
unordered iteration feeding results), checkpoint symmetry
(``state_dict``/``load_state_dict`` pairs), exact-compare hygiene in
metrics code, and narrow exception handling in the fault-tolerant
layers where a swallowed error means silent data loss.
"""

from __future__ import annotations

import ast

from .core import FileContext, LintRule, Severity, dotted_call_name, register

# ----------------------------------------------------------------------
# wall-clock
# ----------------------------------------------------------------------
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.ctime",
    "time.gmtime",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "date.today",
}


@register
class WallClockRule(LintRule):
    """Wall-clock reads make simulated results differ run to run.

    Simulation and analysis code must use simulated time or, for
    profiling, ``time.perf_counter``/``time.monotonic`` (never fed into
    results). The campaign supervisor is excluded: it legitimately
    enforces real-world deadlines on worker processes.
    """

    name = "wall-clock"
    severity = Severity.ERROR
    description = "wall-clock call (time.time / datetime.now) in a simulation path"
    path_exclude = ("campaign/",)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_call_name(node.func)
        if dotted in _WALL_CLOCK_CALLS:
            self.report(
                node,
                f"wall-clock call {dotted}() in a simulation path; use simulated "
                "time, or perf_counter/monotonic for profiling-only output",
            )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# unseeded-rng
# ----------------------------------------------------------------------
_STDLIB_GLOBAL_RNG = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "getrandbits", "seed", "vonmisesvariate",
}
_NUMPY_LEGACY_RNG = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "choice", "shuffle", "permutation", "seed", "uniform", "normal",
    "standard_normal", "poisson", "binomial", "exponential", "bytes",
}


@register
class UnseededRngRule(LintRule):
    """Global or unseeded RNG breaks seeded-replay determinism.

    Flags the ``random`` module's global functions, numpy's legacy
    ``np.random.*`` global-state API, and ``Random()`` /
    ``default_rng()`` / ``RandomState()`` constructed without a seed.
    Seeded generator objects (``np.random.default_rng(seed)``,
    ``random.Random(seed)``) are the sanctioned idiom.
    """

    name = "unseeded-rng"
    severity = Severity.ERROR
    description = "global/unseeded random number generation"

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_call_name(node.func)
        if dotted:
            self._check(node, dotted)
        self.generic_visit(node)

    def _check(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        unseeded = not node.args and not any(
            kw.arg in ("seed", "x") for kw in node.keywords
        )
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] in _STDLIB_GLOBAL_RNG:
                self.report(
                    node,
                    f"{dotted}() uses the process-global RNG; use a seeded "
                    "random.Random(seed) instance",
                )
            elif parts[1] == "Random" and unseeded:
                self.report(node, "random.Random() without a seed")
        elif len(parts) >= 2 and parts[-2] == "random" and parts[0] in ("np", "numpy"):
            if parts[-1] in _NUMPY_LEGACY_RNG:
                self.report(
                    node,
                    f"{dotted}() uses numpy's legacy global RNG; use "
                    "np.random.default_rng(seed)",
                )
            elif parts[-1] in ("default_rng", "RandomState") and unseeded:
                self.report(node, f"{dotted}() without a seed")
        elif parts[-1] in ("default_rng", "RandomState") and unseeded:
            self.report(node, f"{dotted}() without a seed")


# ----------------------------------------------------------------------
# float-equality
# ----------------------------------------------------------------------
def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


@register
class FloatEqualityRule(LintRule):
    """Exact ``==``/``!=`` against a float literal in stats/metrics code.

    Accumulated floating-point metrics rarely compare exactly equal;
    such comparisons silently change behaviour across platforms and
    optimisation levels. Compare with a tolerance (``math.isclose``) or
    restructure around an ordered comparison.
    """

    name = "float-equality"
    severity = Severity.WARNING
    description = "exact == / != comparison with a float"

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[i], operands[i + 1]
            if _is_float_literal(left) or _is_float_literal(right):
                self.report(
                    node,
                    "exact float comparison; use math.isclose or an "
                    "ordered comparison (<=, >=)",
                )
                break
        self.generic_visit(node)


# ----------------------------------------------------------------------
# unordered-iteration
# ----------------------------------------------------------------------
_ORDER_INSENSITIVE_CONSUMERS = {
    "sorted", "sum", "len", "min", "max", "any", "all", "set", "frozenset",
}
_SET_METHODS = {"intersection", "union", "difference", "symmetric_difference"}


@register
class UnorderedIterationRule(LintRule):
    """Iterating a ``set``/``frozenset`` yields a run-dependent order.

    Set iteration order depends on insertion history and hash
    randomisation; when such a loop feeds results, RNG draws, or output
    rows, replays diverge. Wrap the iterable in ``sorted(...)`` (or
    consume it order-insensitively). Tracks names assigned set values
    within the enclosing scope, so ``s = {...}; for x in s`` is caught.
    """

    name = "unordered-iteration"
    severity = Severity.WARNING
    description = "iteration over an unordered set/frozenset"

    def __init__(self, ctx: FileContext):
        super().__init__(ctx)
        self._scopes: list[dict[str, bool]] = [{}]
        self._exempt: set[int] = set()

    # -- scope handling -------------------------------------------------
    def _push_scope(self, node: ast.AST) -> None:
        self._scopes.append({})
        self.generic_visit(node)
        self._scopes.pop()

    visit_FunctionDef = _push_scope
    visit_AsyncFunctionDef = _push_scope
    visit_ClassDef = _push_scope

    def _is_setish(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS
                and self._is_setish(node.func.value)
            ):
                return True
        if isinstance(node, ast.Name):
            for scope in reversed(self._scopes):
                if node.id in scope:
                    return scope[node.id]
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        setish = self._is_setish(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._scopes[-1][target.id] = setish
        self.generic_visit(node)

    # -- exemptions: comprehensions consumed order-insensitively --------
    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id in _ORDER_INSENSITIVE_CONSUMERS:
            for arg in node.args:
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
                    self._exempt.add(id(arg))
        self.generic_visit(node)

    # -- the checks -----------------------------------------------------
    def _flag(self, node: ast.AST, where: str) -> None:
        self.report(
            node,
            f"iteration over an unordered set in {where}; wrap in sorted(...) "
            "so replays and result ordering are deterministic",
        )

    def visit_For(self, node: ast.For) -> None:
        if self._is_setish(node.iter):
            self._flag(node, "a for loop")
        self.generic_visit(node)

    def _visit_comp(self, node: ast.AST, kind: str) -> None:
        if id(node) not in self._exempt:
            for gen in node.generators:
                if self._is_setish(gen.iter):
                    self._flag(node, kind)
                    break
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comp(node, "a list comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comp(node, "a generator expression")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comp(node, "a dict comprehension")


# ----------------------------------------------------------------------
# state-dict-symmetry
# ----------------------------------------------------------------------
@register
class StateDictSymmetryRule(LintRule):
    """A checkpointable class must define both halves of the pair.

    ``state_dict()`` without ``load_state_dict()`` (or vice versa)
    means checkpoints are written that can never be restored — the
    resilience layer's resume path would fail at the first boundary.
    Classes with (non-``object``) bases are skipped: the partner may be
    inherited.
    """

    name = "state-dict-symmetry"
    severity = Severity.ERROR
    description = "state_dict without load_state_dict (or vice versa)"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        bases = [b.id for b in node.bases if isinstance(b, ast.Name)]
        if not node.bases or bases == ["object"]:
            methods = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            has_save = "state_dict" in methods
            has_load = "load_state_dict" in methods
            if has_save != has_load:
                missing = "load_state_dict" if has_save else "state_dict"
                present = "state_dict" if has_save else "load_state_dict"
                self.report(
                    node,
                    f"class {node.name} defines {present} but not {missing}; "
                    "checkpoints must round-trip",
                )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# hot-path-copy
# ----------------------------------------------------------------------
@register
class HotPathCopyRule(LintRule):
    """Per-iteration array copies in the simulator's hot loops.

    The epoch loop's performance contract is allocation-free iteration:
    chunk fields are strided views and stay that way. A
    ``np.ascontiguousarray`` or zero-argument ``.copy()`` inside a
    ``for``/``while`` body in the hot packages re-materialises the
    buffer every iteration — the page-fault tax on fresh multi-megabyte
    temporaries dominated the profile before the fused-path work.
    Hoist the copy out of the loop, reuse a scratch buffer, or suppress
    inline where a copy is semantically required (e.g. detaching state
    snapshots).
    """

    name = "hot-path-copy"
    severity = Severity.WARNING
    description = "array copy (ascontiguousarray / .copy()) inside a hot loop"
    path_scope = ("repro/core/", "repro/memctrl/", "repro/dram/",
                  "repro/trace/", "repro/workloads/")

    def __init__(self, ctx: FileContext):
        super().__init__(ctx)
        self._loop_depth = 0

    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    visit_For = _visit_loop
    visit_While = _visit_loop

    def _visit_function(self, node: ast.AST) -> None:
        # a nested def's body runs when called, not per iteration of the
        # enclosing loop — reset the depth inside it
        depth, self._loop_depth = self._loop_depth, 0
        self.generic_visit(node)
        self._loop_depth = depth

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    def visit_Call(self, node: ast.Call) -> None:
        if self._loop_depth:
            dotted = dotted_call_name(node.func)
            if dotted and dotted.split(".")[-1] == "ascontiguousarray":
                self.report(
                    node,
                    "ascontiguousarray inside a loop re-materialises the "
                    "buffer every iteration; hoist it out or reuse scratch",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "copy"
                and not node.args
                and not node.keywords
            ):
                self.report(
                    node,
                    ".copy() inside a loop allocates per iteration; hoist "
                    "it out, reuse scratch, or suppress if the copy detaches "
                    "state on purpose",
                )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# fork-safety
# ----------------------------------------------------------------------
_LOCK_CONSTRUCTORS = {
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "Event", "Barrier",
}
_LOCK_MODULES = {"threading", "multiprocessing", "mp"}
_RNG_CONSTRUCTORS = {"default_rng", "RandomState", "Generator"}


@register
class ForkSafetyRule(LintRule):
    """Module-level state that breaks under CampaignSupervisor's fork.

    Campaign workers are forked processes: module globals are duplicated
    into every child at fork time. Three classes of global are traps —

    * RNG objects (``np.random.default_rng`` / ``RandomState`` /
      ``random.Random``): every worker inherits the *same* generator
      state, so "independent" workers draw identical streams;
    * ``np.memmap`` handles: the children share the parent's file
      descriptor and mapping, so writes race and offsets interleave;
    * locks (``threading``/``multiprocessing``): a lock held at fork
      time is copied in the locked state and deadlocks the child.

    Construct these per-worker (inside the worker function or an
    initializer) instead of at import time.
    """

    name = "fork-safety"
    severity = Severity.WARNING
    description = (
        "module-level RNG/memmap/lock state duplicated into forked "
        "campaign workers"
    )
    path_exclude = ("tests/",)

    def __init__(self, ctx: FileContext):
        super().__init__(ctx)
        self._function_depth = 0

    def _visit_function(self, node: ast.AST) -> None:
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    def visit_Call(self, node: ast.Call) -> None:
        if self._function_depth == 0:
            dotted = dotted_call_name(node.func)
            if dotted:
                self._check(node, dotted)
        self.generic_visit(node)

    def _check(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        head, tail = parts[0], parts[-1]
        if tail in _LOCK_CONSTRUCTORS and head in _LOCK_MODULES:
            self.report(
                node,
                f"module-level {dotted}(): a lock held at fork time is "
                "inherited locked and deadlocks campaign workers; create "
                "it per-worker",
            )
        elif tail == "memmap" and head in ("np", "numpy"):
            self.report(
                node,
                f"module-level {dotted}(): forked campaign workers share "
                "the mapping and file descriptor; open the memmap inside "
                "the worker",
            )
        elif tail == "open_memmap":
            self.report(
                node,
                f"module-level {dotted}(): forked campaign workers share "
                "the mapping and file descriptor; open the memmap inside "
                "the worker",
            )
        elif (
            tail in _RNG_CONSTRUCTORS
            and len(parts) >= 2
            and parts[-2] == "random"
        ) or dotted in ("random.Random",):
            self.report(
                node,
                f"module-level {dotted}(): forked campaign workers "
                "inherit identical RNG state and draw the same stream; "
                "seed a generator per-worker",
            )


# ----------------------------------------------------------------------
# broad-except
# ----------------------------------------------------------------------
@register
class BroadExceptRule(LintRule):
    """Bare/over-broad ``except`` in the fault-tolerance layers.

    ``campaign/`` and ``resilience/`` exist to classify failures;
    a blanket handler there converts a specific, retryable error into
    an undiagnosable one. Catch the concrete exception types, or
    suppress inline at a deliberate crash-isolation boundary.
    """

    name = "broad-except"
    severity = Severity.WARNING
    description = "bare or over-broad except in campaign/ or resilience/"
    path_scope = ("campaign/", "resilience/")

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(node, "bare except: catches everything, including "
                              "KeyboardInterrupt; name the exception types")
        else:
            names = []
            types = node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
            for t in types:
                if isinstance(t, ast.Name):
                    names.append(t.id)
            broad = [n for n in names if n in ("Exception", "BaseException")]
            if broad:
                self.report(
                    node,
                    f"except {', '.join(broad)} in a fault-classification layer; "
                    "catch the concrete retryable types",
                )
        self.generic_visit(node)
