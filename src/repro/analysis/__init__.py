"""Static correctness tooling: ``repro-lint`` + protocol model checker.

Two independent prongs, one CLI (:mod:`repro.analysis.cli`):

* :mod:`repro.analysis.lint` — an AST lint engine with rules for the
  determinism and state-safety conventions this repository relies on
  (no wall-clock in simulation paths, no unseeded RNG, no float
  equality in metrics, no unordered iteration feeding results,
  ``state_dict``/``load_state_dict`` symmetry, no over-broad excepts in
  the fault-handling layers);
* :mod:`repro.analysis.protocol` — an exhaustive symbolic model checker
  for the swap-protocol step sequences of all three migration designs
  (N, N-1, Live Migration), verifying the paper's no-halt claim at
  every step boundary, plus a fault-injection impact analysis mapping
  each :class:`~repro.resilience.faults.FaultKind` to the invariants it
  violates.
"""

from .lint import (  # noqa: F401
    Baseline,
    FileContext,
    Finding,
    LintReport,
    LintRule,
    RULES,
    Severity,
    lint_file,
    run_lint,
)
from .protocol import (  # noqa: F401
    ALL_INVARIANTS,
    FaultImpact,
    VariantReport,
    Violation,
    check_all_variants,
    check_plan,
    check_variant,
    fault_invariant_analysis,
    model_address_map,
)

__all__ = [
    "ALL_INVARIANTS",
    "Baseline",
    "FaultImpact",
    "FileContext",
    "Finding",
    "LintReport",
    "LintRule",
    "RULES",
    "Severity",
    "VariantReport",
    "Violation",
    "check_all_variants",
    "check_plan",
    "check_variant",
    "fault_invariant_analysis",
    "lint_file",
    "model_address_map",
    "run_lint",
]
