"""The semantic-domain lattice the flow analysis computes over.

A *domain* is a unit-of-meaning for an integer value: which clock a
cycle count belongs to (the refresh time-warp split every count into
useful vs wall cycles), or which address space an index lives in
(trace-visible macro page, post-translation machine frame, DRAM row,
raw byte address, sub-block index within a macro page). Two values of
different domains compared, added, subtracted, returned, or passed
where the other is expected is a *domain confusion* — the unit-error
bug class the runtime oracles can only catch when it happens to
corrupt a result.

Abstract values (:class:`DomainValue`) carry the domain, a
*confidence* tier recording how the domain was established (declared
signature > inline annotation > name inference), and a provenance
trail that becomes the step-indexed dataflow trace of a finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum, IntEnum


class Domain(str, Enum):
    """The semantic domains tracked by the analyzer."""

    # clock domains (the refresh time-warp, repro.dram.refresh)
    USEFUL_CYCLES = "useful_cycles"   # refresh windows removed
    WALL_CYCLES = "wall_cycles"       # global time, windows included

    # address domains (the translation path, repro.address / migration)
    VIRTUAL_PAGE = "virtual_page"     # trace-visible macro page index
    MACHINE_FRAME = "machine_frame"   # post-translation machine page / slot
    DRAM_ROW = "dram_row"             # row index within a bank
    BYTE_ADDR = "byte_addr"           # raw byte address / in-page offset
    SUBBLOCK_IDX = "subblock_idx"     # 4 KB sub-block index within a page


#: family grouping, used only for wording in findings: mixing *any* two
#: distinct domains is a confusion, in-family or across
CLOCK_DOMAINS = frozenset({Domain.USEFUL_CYCLES, Domain.WALL_CYCLES})
ADDRESS_DOMAINS = frozenset(
    {
        Domain.VIRTUAL_PAGE,
        Domain.MACHINE_FRAME,
        Domain.DRAM_ROW,
        Domain.BYTE_ADDR,
        Domain.SUBBLOCK_IDX,
    }
)

#: spelled-out conversion hint per domain pair family
_CLOCK_HINT = (
    "convert with RefreshSchedule.useful()/wall() at the boundary"
)
_ADDR_HINT = (
    "convert through AddressMap/TranslationTable "
    "(page_of/compose/resolve/slot_of)"
)


def conversion_hint(a: Domain, b: Domain) -> str:
    """How to legally cross from ``a``'s domain to ``b``'s."""
    if a in CLOCK_DOMAINS and b in CLOCK_DOMAINS:
        return _CLOCK_HINT
    if a in ADDRESS_DOMAINS and b in ADDRESS_DOMAINS:
        return _ADDR_HINT
    return "clock and address domains never mix"


class Confidence(IntEnum):
    """How the analyzer learned a value's domain (weakest first)."""

    INFERRED = 1    # name-pattern inference
    ANNOTATED = 2   # inline source annotation (the repro-domain marker)
    DECLARED = 3    # the signature registry for core APIs

    @property
    def label(self) -> str:
        return self.name.lower()


#: provenance trail entry: (line number, human-readable description)
ProvStep = tuple[int, str]

#: keep traces readable: at most this many steps survive per operand
MAX_STEPS = 8


@dataclass(frozen=True)
class DomainValue:
    """One abstract value: a domain (or unknown), how sure, and why.

    ``domain is None`` means *unknown* — compatible with everything, the
    lattice top. ``elements`` carries per-element values for tuples
    (``on, machine = table.resolve(page)``).
    """

    domain: Domain | None = None
    confidence: Confidence = Confidence.INFERRED
    steps: tuple[ProvStep, ...] = ()
    elements: tuple["DomainValue", ...] | None = field(
        default=None, compare=False
    )

    @property
    def known(self) -> bool:
        return self.domain is not None

    def step(self, line: int, description: str) -> "DomainValue":
        """A copy with one provenance step appended (bounded length)."""
        steps = (*self.steps, (line, description))[-MAX_STEPS:]
        return replace(self, steps=steps)

    def describe(self) -> str:
        if self.domain is None:
            return "unknown"
        return f"{self.domain.value} ({self.confidence.label})"


#: the unknown value (lattice top)
UNKNOWN = DomainValue()


def join(a: DomainValue, b: DomainValue) -> DomainValue:
    """Control-flow merge of two values (if/else, ternary, loops).

    Agreeing domains keep the weaker confidence (a finding should never
    be more confident than its least-confident path); disagreeing or
    partially-unknown domains merge to unknown — the analysis stays
    intra-procedural and conservative, never guessing across a branch.
    """
    if a.domain is None or b.domain is None:
        return UNKNOWN
    if a.domain is b.domain:
        if b.confidence < a.confidence:
            return b
        return a
    return UNKNOWN


def conflict(a: DomainValue, b: DomainValue) -> bool:
    """True when both sides are known and their domains differ."""
    return a.known and b.known and a.domain is not b.domain
