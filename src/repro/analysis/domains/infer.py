"""Name-pattern domain inference (the lowest-confidence seeding tier).

Unannotated code still gets checked: identifier names are split into
snake-case tokens and matched against per-domain vocabularies. The
inference is deliberately conservative — *quantity* names (counts,
sizes, bit widths, rates) carry a stop token and infer nothing, because
``n_slots`` is a number of frames, not a frame index, and comparing a
page index against it is legitimate.

Precedence runs most-specific first: ``machine_page`` is a machine
frame even though ``page`` alone is a virtual page; ``subblock_bytes``
is a size (stop token) even though ``subblock`` alone is an index.
"""

from __future__ import annotations

import re

from .model import Domain

#: tokens marking a *quantity* (count / size / width / rate), never an
#: index or an instant — these poison the whole name
STOP_TOKENS = frozenset(
    {
        "n", "num", "count", "counts", "total", "len", "length", "size",
        "sizes", "bytes", "bits", "shift", "shifts", "mask", "width",
        "depth", "per", "max", "min", "limit", "cap", "capacity",
        "budget", "rate", "rates", "frac", "fraction", "ratio",
        "overhead", "threshold", "level", "granularity", "interval",
        "window", "period", "quota", "hits", "conflicts", "bitmap",
    }
)

#: vocabulary, checked in order (first match wins) — multi-token rules
#: before the single tokens they would otherwise shadow
_RULES: tuple[tuple[frozenset[str], Domain], ...] = (
    (frozenset({"machine", "page"}), Domain.MACHINE_FRAME),
    (frozenset({"machine", "pages"}), Domain.MACHINE_FRAME),
    (frozenset({"wall"}), Domain.WALL_CYCLES),
    (frozenset({"useful"}), Domain.USEFUL_CYCLES),
    (frozenset({"frame"}), Domain.MACHINE_FRAME),
    (frozenset({"frames"}), Domain.MACHINE_FRAME),
    (frozenset({"slot"}), Domain.MACHINE_FRAME),
    (frozenset({"slots"}), Domain.MACHINE_FRAME),
    (frozenset({"machine"}), Domain.MACHINE_FRAME),
    (frozenset({"subblock"}), Domain.SUBBLOCK_IDX),
    (frozenset({"subblocks"}), Domain.SUBBLOCK_IDX),
    (frozenset({"row"}), Domain.DRAM_ROW),
    (frozenset({"rows"}), Domain.DRAM_ROW),
    (frozenset({"addr"}), Domain.BYTE_ADDR),
    (frozenset({"addrs"}), Domain.BYTE_ADDR),
    (frozenset({"address"}), Domain.BYTE_ADDR),
    (frozenset({"addresses"}), Domain.BYTE_ADDR),
    (frozenset({"offset"}), Domain.BYTE_ADDR),
    (frozenset({"offsets"}), Domain.BYTE_ADDR),
    (frozenset({"vpage"}), Domain.VIRTUAL_PAGE),
    (frozenset({"page"}), Domain.VIRTUAL_PAGE),
    (frozenset({"pages"}), Domain.VIRTUAL_PAGE),
)

_CAMEL = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")


def name_tokens(name: str) -> list[str]:
    """Split an identifier into lowercase tokens (snake and camel)."""
    flat = _CAMEL.sub("_", name)
    return [t for t in flat.lower().split("_") if t]


def infer_domain(name: str) -> Domain | None:
    """The domain an identifier's name suggests, or None.

    >>> infer_domain("wall_arrivals").value
    'wall_cycles'
    >>> infer_domain("machine_page").value
    'machine_frame'
    >>> infer_domain("n_slots") is None   # a count, not an index
    True
    """
    tokens = set(name_tokens(name))
    if not tokens or tokens & STOP_TOKENS:
        return None
    for required, domain in _RULES:
        if required <= tokens:
            return domain
    return None
