"""Inline ``# repro-domain:`` annotations (the middle seeding tier).

Two forms, both attached to the line they appear on and extracted with
:mod:`tokenize` so string literals never count:

* **bare** — ``x = resolve_it()  # repro-domain: machine_frame`` asserts
  the domain of the value assigned on that line. On a ``Name`` target it
  binds the variable; on an attribute/subscript store it acts as a
  *cast*, documenting a deliberate reinterpretation (e.g. the identity
  home mapping writing a page id into a frame-indexed mirror).
* **named** — ``def f(t, u):  # repro-domain: t=wall_cycles,
  return=useful_cycles`` seeds parameter domains and the expected
  return domain of the ``def`` on that line.

Trailing prose after the directive is allowed and encouraged:
``# repro-domain: machine_frame - identity mapping``.
"""

from __future__ import annotations

import io
import tokenize
from dataclasses import dataclass, field

from .model import Domain

MARKER = "repro-domain:"

#: accepted spellings -> Domain
_DOMAIN_NAMES = {d.value: d for d in Domain}


@dataclass(frozen=True)
class Annotation:
    """One parsed ``# repro-domain:`` directive."""

    line: int
    #: bare form: the asserted value domain (None when only named)
    value: Domain | None = None
    #: named form: parameter name -> domain ("return" for the result)
    names: dict[str, Domain] = field(default_factory=dict)
    #: spellings that matched no known domain (reported as findings)
    errors: tuple[str, ...] = ()


def parse_directive(line: int, text: str) -> Annotation:
    """Parse the directive body (after the marker) of one comment."""
    # allow trailing prose after " - " or " — "
    for sep in (" - ", " -- ", " — "):
        cut = text.find(sep)
        if cut >= 0:
            text = text[:cut]
    value: Domain | None = None
    names: dict[str, Domain] = {}
    errors: list[str] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" in part:
            key, _, spelled = part.partition("=")
            key, spelled = key.strip(), spelled.strip()
            domain = _DOMAIN_NAMES.get(spelled)
            if key and domain is not None:
                names[key] = domain
            else:
                errors.append(part)
        else:
            domain = _DOMAIN_NAMES.get(part)
            if domain is not None:
                value = domain
            else:
                errors.append(part)
    return Annotation(line=line, value=value, names=names,
                      errors=tuple(errors))


def extract_annotations(source: str) -> dict[int, Annotation]:
    """Map line number -> parsed annotation for one file."""
    out: dict[int, Annotation] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            pos = tok.string.find(MARKER)
            if pos < 0:
                continue
            body = tok.string[pos + len(MARKER):].strip()
            out[tok.start[0]] = parse_directive(tok.start[0], body)
    except tokenize.TokenError:
        pass  # unterminated constructs: ast.parse fails first anyway
    return out
