"""Flow-sensitive, intra-procedural abstract interpretation over the AST.

Each function body (and the module top level) is executed abstractly:
an environment maps local names to :class:`~.model.DomainValue`s, and
statements are walked in program order — assignments bind, branches
fork the environment and re-join (:func:`~.model.join`), loop bodies
run twice so domains established late in an iteration flow back to the
top. Domains enter through three tiers: the signature registry
(declared), ``# repro-domain:`` annotations (annotated), and
name-pattern inference at *use* sites (inferred) so unannotated code
still participates.

Confusions are reported at the operation that mixes two known,
distinct domains:

* arithmetic (``+``/``-``, including augmented assignment),
* comparisons (``<`` .. ``==``, plus ``min``/``max``/``np.maximum``…),
* two-way selection (ternary ``a if c else b``, ``np.where``),
* argument passing against a declared signature parameter,
* ``return`` against a declared/annotated return domain,
* stores into a container/attribute whose name implies a domain.

Every finding carries the provenance trail of both operands as a
step-indexed dataflow trace (the protocol checker's counterexample
style): *where* each side acquired its domain, hop by hop, ending at
the mixing operation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .annotate import Annotation
from .infer import infer_domain
from .model import (
    UNKNOWN,
    Confidence,
    Domain,
    DomainValue,
    conflict,
    conversion_hint,
    join,
)
from .signatures import Signature, signature_for_call, signature_for_def

#: single-argument calls that preserve their operand's domain
_PASSTHROUGH = frozenset(
    {
        "int", "abs", "round", "sorted", "asarray", "ascontiguousarray",
        "array", "int64", "int32", "take", "copy", "squeeze", "ravel",
    }
)
#: zero-argument methods preserving the receiver's domain
_RECEIVER_METHODS = frozenset(
    {"copy", "get", "astype", "item", "tolist", "reshape", "ravel",
     "squeeze", "pop"}
)
#: calls with comparison semantics over their positional arguments
_COMPARE_CALLS = frozenset(
    {
        "min", "max", "minimum", "maximum", "fmin", "fmax",
        "equal", "not_equal", "less", "less_equal", "greater",
        "greater_equal",
    }
)
_COMPARE_OPS = (ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE)
_ARITH_OPS = (ast.Add, ast.Sub)

_OP_TEXT = {ast.Add: "+", ast.Sub: "-"}


def _short(node: ast.AST, limit: int = 48) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse covers all exprs we eval
        text = type(node).__name__
    text = " ".join(text.split())
    return text if len(text) <= limit else text[: limit - 1] + "…"


@dataclass(frozen=True)
class Confusion:
    """One detected cross-domain operation."""

    node: ast.AST
    kind: str                 # comparison / arithmetic / argument / ...
    message: str
    trace: tuple[str, ...]    # step-indexed dataflow trace
    confidence: Confidence    # the weaker side's tier


def _format_trace(left: DomainValue, right: DomainValue,
                  final: tuple[int, str]) -> tuple[str, ...]:
    steps: list[tuple[int, str]] = []
    for side in (left, right):
        for entry in side.steps:
            if entry not in steps:
                steps.append(entry)
    steps.append(final)
    return tuple(
        f"step {i}: line {line}: {desc}"
        for i, (line, desc) in enumerate(steps)
    )


class ModuleFlow:
    """Abstract interpreter over one module; collects :class:`Confusion`s."""

    def __init__(self, tree: ast.Module,
                 annotations: dict[int, Annotation] | None = None):
        self.tree = tree
        self.annotations = annotations or {}
        self.confusions: list[Confusion] = []
        self._seen: set[tuple] = set()
        #: queued (function node, enclosing class name) pairs
        self._pending: list[tuple[ast.AST, str | None]] = []

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run(self) -> list[Confusion]:
        for ann in self.annotations.values():
            for bad in ann.errors:
                self._emit(Confusion(
                    node=_Anchor(ann.line), kind="annotation",
                    message=(
                        f"unknown domain {bad!r} in repro-domain annotation; "
                        "known domains: "
                        + ", ".join(d.value for d in Domain)
                    ),
                    trace=(), confidence=Confidence.ANNOTATED,
                ))
        self._exec_body(self.tree.body, {}, class_name=None)
        while self._pending:
            node, class_name = self._pending.pop(0)
            self._run_function(node, class_name)
        return self.confusions

    def _run_function(self, node, class_name: str | None) -> None:
        env: dict[str, DomainValue] = {}
        sig = signature_for_def(class_name, node.name)
        ann = self.annotations.get(node.lineno)
        qual = f"{class_name}.{node.name}" if class_name else node.name
        a = node.args
        params = [*a.posonlyargs, *a.args, *a.kwonlyargs]
        for p in params:
            if p.arg in ("self", "cls"):
                continue
            dom: Domain | None = None
            conf = Confidence.INFERRED
            why = ""
            if sig is not None:
                for pname, pdom in sig.params:
                    if pname == p.arg and pdom is not None:
                        dom, conf = pdom, Confidence.DECLARED
                        why = f"(declared signature {sig.qualname})"
                        break
            if dom is None and ann is not None and p.arg in ann.names:
                dom, conf = ann.names[p.arg], Confidence.ANNOTATED
                why = "(annotated)"
            if dom is not None:
                env[p.arg] = DomainValue(dom, conf, (
                    (node.lineno,
                     f"parameter {p.arg!r} of {qual}: {dom.value} {why}"),
                ))
        self._expected_return = None
        if sig is not None and sig.returns is not None:
            self._expected_return = (sig.returns, Confidence.DECLARED, qual)
        elif ann is not None and "return" in ann.names:
            self._expected_return = (
                ann.names["return"], Confidence.ANNOTATED, qual)
        self._exec_body(node.body, env, class_name=None)
        self._expected_return = None

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _exec_body(self, body, env, *, class_name: str | None) -> None:
        for stmt in body:
            self._exec_stmt(stmt, env, class_name)

    def _exec_stmt(self, stmt, env, class_name: str | None) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._pending.append((stmt, class_name))
            env[stmt.name] = UNKNOWN
        elif isinstance(stmt, ast.ClassDef):
            self._exec_body(stmt.body, {}, class_name=stmt.name)
            env[stmt.name] = UNKNOWN
        elif isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            value = self._apply_line_annotation(stmt, value)
            for target in stmt.targets:
                self._assign(target, value, env, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self._eval(stmt.value, env)
                value = self._apply_line_annotation(stmt, value)
                self._assign(stmt.target, value, env, stmt)
        elif isinstance(stmt, ast.AugAssign):
            left = self._eval(stmt.target, env)
            right = self._eval(stmt.value, env)
            result = left
            if isinstance(stmt.op, _ARITH_OPS):
                result = self._combine_arith(stmt, left, right,
                                             _OP_TEXT[type(stmt.op)], env)
            elif not left.known:
                result = UNKNOWN
            ann = self.annotations.get(stmt.lineno)
            if ann is not None and ann.value is not None:
                result = self._annotated_value(ann, stmt)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = result
        elif isinstance(stmt, ast.Return):
            value = (self._eval(stmt.value, env)
                     if stmt.value is not None else UNKNOWN)
            value = self._apply_line_annotation(stmt, value)
            self._check_return(stmt, value)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, env)
            then_env = dict(env)
            self._exec_body(stmt.body, then_env, class_name=class_name)
            else_env = dict(env)
            self._exec_body(stmt.orelse, else_env, class_name=class_name)
            self._merge(env, then_env, else_env)
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            self._exec_loop(stmt, env, class_name)
        elif isinstance(stmt, ast.Try):
            branches = []
            body_env = dict(env)
            self._exec_body(stmt.body, body_env, class_name=class_name)
            branches.append(body_env)
            for handler in stmt.handlers:
                h_env = dict(env)
                if handler.name:
                    h_env[handler.name] = UNKNOWN
                self._exec_body(handler.body, h_env, class_name=class_name)
                branches.append(h_env)
            if stmt.orelse:
                self._exec_body(stmt.orelse, body_env, class_name=class_name)
            self._merge(env, *branches)
            self._exec_body(stmt.finalbody, env, class_name=class_name)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr, env)
                if isinstance(item.optional_vars, ast.Name):
                    env[item.optional_vars.id] = UNKNOWN
            self._exec_body(stmt.body, env, class_name=class_name)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, env)
            if stmt.msg is not None:
                self._eval(stmt.msg, env)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(stmt, ast.Match):
            self._eval(stmt.subject, env)
            branches = []
            for case in stmt.cases:
                c_env = dict(env)
                self._exec_body(case.body, c_env, class_name=class_name)
                branches.append(c_env)
            if branches:
                self._merge(env, *branches)
        # Import/Global/Nonlocal/Pass/Break/Continue: no domain effect

    def _exec_loop(self, stmt, env, class_name: str | None) -> None:
        loop_env = dict(env)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_value = self._eval(stmt.iter, env)
            self._assign(stmt.target, self._element_of(iter_value, stmt),
                         loop_env, stmt)
        else:
            self._eval(stmt.test, env)
        # two passes: domains established late in the body flow back to
        # the top on the second pass (findings are de-duplicated)
        self._exec_body(stmt.body, loop_env, class_name=class_name)
        self._exec_body(stmt.body, loop_env, class_name=class_name)
        self._merge(env, loop_env)
        self._exec_body(stmt.orelse, env, class_name=class_name)

    def _element_of(self, iterable: DomainValue, stmt) -> DomainValue:
        # containers are homogeneous in this model: iterating a
        # frame-indexed array yields machine frames
        if iterable.known:
            return iterable.step(
                stmt.lineno, f"loop element -> {iterable.domain.value}")
        if iterable.elements is not None:
            return iterable
        return UNKNOWN

    def _merge(self, env: dict, *branches: dict) -> None:
        keys = set(env)
        for b in branches:
            keys |= set(b)
        for key in sorted(keys):
            values = [b.get(key, env.get(key, UNKNOWN)) for b in branches]
            merged = values[0] if values else env.get(key, UNKNOWN)
            for v in values[1:]:
                merged = join(merged, v)
            env[key] = merged

    # ------------------------------------------------------------------
    # assignment / return checks
    # ------------------------------------------------------------------
    def _apply_line_annotation(self, stmt, value: DomainValue) -> DomainValue:
        ann = self.annotations.get(stmt.lineno)
        if ann is not None and ann.value is not None:
            return self._annotated_value(ann, stmt)
        return value

    def _annotated_value(self, ann: Annotation, stmt) -> DomainValue:
        return DomainValue(ann.value, Confidence.ANNOTATED, (
            (stmt.lineno, f"annotated {ann.value.value}"),
        ))

    def _assign(self, target, value: DomainValue, env, stmt) -> None:
        if isinstance(target, ast.Name):
            if value.known:
                value = value.step(
                    stmt.lineno,
                    f"{target.id} = {_short(stmt.value)}"
                    if hasattr(stmt, "value") and stmt.value is not None
                    else f"{target.id} bound",
                )
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            names = target.elts
            parts = value.elements
            if parts is not None and len(parts) == len(names):
                for name, part in zip(names, parts):
                    self._assign(name, part, env, stmt)
            else:
                for name in names:
                    self._assign(name, UNKNOWN, env, stmt)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, UNKNOWN, env, stmt)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            slot = self._store_target_value(target, env)
            if conflict(slot, value):
                self._report(
                    stmt, "assignment", slot, value,
                    f"storing into {_short(target)}",
                )

    def _store_target_value(self, target, env) -> DomainValue:
        if isinstance(target, ast.Attribute):
            dom = infer_domain(target.attr)
            if dom is not None:
                return DomainValue(dom, Confidence.INFERRED, (
                    (target.lineno,
                     f"store target {_short(target)}: {dom.value} "
                     "(inferred from name)"),
                ))
            return UNKNOWN
        container = self._eval(target.value, env)
        self._eval_index(target.slice, env)
        return container

    def _check_return(self, stmt, value: DomainValue) -> None:
        expected = getattr(self, "_expected_return", None)
        if expected is None:
            return
        returns, conf, qual = expected
        if isinstance(returns, tuple):
            parts = value.elements
            if parts is None or len(parts) != len(returns):
                return
            pairs = [
                (p, d) for p, d in zip(parts, returns) if d is not None
            ]
        else:
            pairs = [(value, returns)]
        for got, want in pairs:
            want_value = DomainValue(want, conf, (
                (stmt.lineno, f"{qual} is declared to return {want.value}"),
            ))
            if conflict(got, want_value):
                self._report(stmt, "return", got, want_value,
                             f"return from {qual}")

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _eval(self, node, env) -> DomainValue:
        if node is None:
            return UNKNOWN
        if isinstance(node, ast.Name):
            return self._lookup(node.id, env, node.lineno)
        if isinstance(node, ast.Attribute):
            self._eval(node.value, env)
            dom = infer_domain(node.attr)
            if dom is not None:
                return DomainValue(dom, Confidence.INFERRED, (
                    (node.lineno,
                     f"{_short(node)}: {dom.value} (inferred from name)"),
                ))
            return UNKNOWN
        if isinstance(node, ast.Subscript):
            container = self._eval(node.value, env)
            self._eval_index(node.slice, env)
            if container.known:
                return container.step(
                    node.lineno,
                    f"{_short(node)} -> {container.domain.value} (element)",
                )
            return UNKNOWN
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env)
            right = self._eval(node.right, env)
            if isinstance(node.op, _ARITH_OPS):
                return self._combine_arith(
                    node, left, right, _OP_TEXT[type(node.op)], env)
            # *, /, //, %, <<, >>, |, &, ^, **: unit conversions — the
            # result is a different quantity; make no claim
            return UNKNOWN
        if isinstance(node, ast.Compare):
            operands = [self._eval(node.left, env)]
            for comparator in node.comparators:
                operands.append(self._eval(comparator, env))
            for i, op in enumerate(node.ops):
                if isinstance(op, _COMPARE_OPS):
                    self._check_compare(node, operands[i], operands[i + 1])
            return UNKNOWN
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            a = self._eval(node.body, env)
            b = self._eval(node.orelse, env)
            if conflict(a, b):
                self._report(node, "selection", a, b,
                             f"ternary `{_short(node)}`")
                return UNKNOWN
            return a if a.known else b
        if isinstance(node, ast.BoolOp):
            for v in node.values:
                self._eval(v, env)
            return UNKNOWN
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, env)
            if isinstance(node.op, (ast.USub, ast.UAdd)):
                return operand
            return UNKNOWN
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value, env)
            self._assign(node.target, value, env, node)
            return value
        if isinstance(node, ast.Tuple):
            parts = tuple(self._eval(e, env) for e in node.elts)
            return DomainValue(None, Confidence.INFERRED, (), parts)
        if isinstance(node, (ast.List, ast.Set)):
            parts = [self._eval(e, env) for e in node.elts]
            known = {p.domain for p in parts if p.known}
            if len(known) == 1 and all(p.known for p in parts) and parts:
                return parts[0]
            return UNKNOWN
        if isinstance(node, ast.Dict):
            for k, v in zip(node.keys, node.values):
                if k is not None:
                    self._eval(k, env)
                self._eval(v, env)
            return UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            child = dict(env)
            self._eval_generators(node.generators, child)
            return self._eval(node.elt, child)
        if isinstance(node, ast.DictComp):
            child = dict(env)
            self._eval_generators(node.generators, child)
            self._eval(node.key, child)
            self._eval(node.value, child)
            return UNKNOWN
        if isinstance(node, ast.Lambda):
            child = dict(env)
            for p in (*node.args.posonlyargs, *node.args.args,
                      *node.args.kwonlyargs):
                child[p.arg] = UNKNOWN
            self._eval(node.body, child)
            return UNKNOWN
        if isinstance(node, ast.JoinedStr):
            for v in node.values:
                if isinstance(v, ast.FormattedValue):
                    self._eval(v.value, env)
            return UNKNOWN
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env)
        if isinstance(node, ast.Slice):
            self._eval_index(node, env)
            return UNKNOWN
        if isinstance(node, ast.Await):
            return self._eval(node.value, env)
        return UNKNOWN

    def _eval_index(self, node, env) -> None:
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._eval(part, env)
        elif node is not None:
            self._eval(node, env)

    def _eval_generators(self, generators, env) -> None:
        for gen in generators:
            iter_value = self._eval(gen.iter, env)
            self._assign(gen.target, self._element_of(iter_value, gen.iter),
                         env, gen.iter)
            for cond in gen.ifs:
                self._eval(cond, env)

    def _lookup(self, name: str, env, line: int) -> DomainValue:
        bound = env.get(name)
        if bound is not None and (bound.known or bound.elements is not None):
            return bound
        inferred = infer_domain(name)
        if inferred is not None:
            return DomainValue(inferred, Confidence.INFERRED, (
                (line, f"{name!r}: {inferred.value} (inferred from name)"),
            ))
        return bound if bound is not None else UNKNOWN

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def _eval_call(self, node: ast.Call, env) -> DomainValue:
        func = node.func
        name = None
        receiver = None
        if isinstance(func, ast.Attribute):
            name = func.attr
            receiver = func.value
        elif isinstance(func, ast.Name):
            name = func.id
        arg_nodes = []
        arg_values = []
        for arg in node.args:
            inner = arg.value if isinstance(arg, ast.Starred) else arg
            arg_nodes.append(inner)
            arg_values.append(self._eval(inner, env))
        kw_values = {}
        for kw in node.keywords:
            kw_values[kw.arg] = self._eval(kw.value, env)

        sig = signature_for_call(name) if name else None
        if sig is not None:
            self._check_call(node, sig, arg_nodes, arg_values, kw_values)
            return self._call_result(node, sig)

        if receiver is not None and name in _RECEIVER_METHODS:
            value = self._eval(receiver, env)
            if value.known:
                return value.step(
                    node.lineno,
                    f"{_short(node)} -> {value.domain.value}",
                )
            return UNKNOWN
        if name in _COMPARE_CALLS:
            for a, b in zip(arg_values, arg_values[1:]):
                self._check_compare(node, a, b)
            result = UNKNOWN
            for v in arg_values:
                if v.known:
                    result = v if not result.known else join(result, v)
            return result
        if name == "where" and len(arg_values) == 3:
            a, b = arg_values[1], arg_values[2]
            if conflict(a, b):
                self._report(node, "selection", a, b,
                             f"np.where `{_short(node)}`")
                return UNKNOWN
            return a if a.known else b
        if name in _PASSTHROUGH and arg_values:
            return arg_values[0]
        if name == "divmod":
            return DomainValue(None, Confidence.INFERRED, (),
                              (UNKNOWN, UNKNOWN))
        if name == "enumerate" and arg_values:
            return DomainValue(None, Confidence.INFERRED, (),
                              (UNKNOWN, arg_values[0]))
        if name == "zip" and arg_values:
            return DomainValue(None, Confidence.INFERRED, (),
                              tuple(arg_values))
        if receiver is not None:
            self._eval(receiver, env)
        return UNKNOWN

    def _check_call(self, node, sig: Signature, arg_nodes, arg_values,
                    kw_values) -> None:
        for i, value in enumerate(arg_values):
            expected = sig.param_domain(i, None)
            self._check_argument(node, sig, i, None, value, expected)
        for key, value in kw_values.items():
            if key is None:
                continue
            expected = sig.param_domain(-1, key)
            self._check_argument(node, sig, -1, key, value, expected)

    def _check_argument(self, node, sig, index, keyword, value,
                        expected: Domain | None) -> None:
        if expected is None or not value.known:
            return
        pname = keyword
        if pname is None and 0 <= index < len(sig.params):
            pname = sig.params[index][0]
        want = DomainValue(expected, Confidence.DECLARED, (
            (node.lineno,
             f"parameter {pname!r} of {sig.qualname} expects "
             f"{expected.value} (declared signature)"),
        ))
        if conflict(value, want):
            self._report(node, "argument", value, want,
                         f"call `{_short(node)}`")

    def _call_result(self, node, sig: Signature) -> DomainValue:
        returns = sig.returns
        if returns is None:
            return UNKNOWN
        if isinstance(returns, tuple):
            parts = tuple(
                DomainValue(d, Confidence.DECLARED, (
                    (node.lineno,
                     f"{sig.qualname}(...)[{i}] -> {d.value} (signature)"),
                )) if d is not None else UNKNOWN
                for i, d in enumerate(returns)
            )
            return DomainValue(None, Confidence.INFERRED, (), parts)
        return DomainValue(returns, Confidence.DECLARED, (
            (node.lineno,
             f"{sig.qualname}(...) -> {returns.value} (signature)"),
        ))

    # ------------------------------------------------------------------
    # checks and reporting
    # ------------------------------------------------------------------
    def _combine_arith(self, node, left, right, op_text, env) -> DomainValue:
        if conflict(left, right):
            self._report(node, "arithmetic", left, right,
                         f"`{_short(node)}` ({op_text})")
            return UNKNOWN
        if left.known:
            return left
        if right.known:
            return right
        return UNKNOWN

    def _check_compare(self, node, left, right) -> None:
        if conflict(left, right):
            self._report(node, "comparison", left, right,
                         f"`{_short(node)}`")

    def _report(self, node, kind: str, left: DomainValue,
                right: DomainValue, where: str) -> None:
        a, b = left.domain, right.domain
        confidence = min(left.confidence, right.confidence)
        line = getattr(node, "lineno", 1)
        final = (
            line,
            f"cross-domain {kind} in {where}: {a.value} "
            f"({left.confidence.label}) mixed with {b.value} "
            f"({right.confidence.label})",
        )
        message = (
            f"cross-domain {kind}: {a.value} vs {b.value} in {where}; "
            + conversion_hint(a, b)
        )
        self._emit(Confusion(
            node=node, kind=kind, message=message,
            trace=_format_trace(left, right, final),
            confidence=confidence,
        ))

    def _emit(self, confusion: Confusion) -> None:
        key = (
            getattr(confusion.node, "lineno", 0),
            getattr(confusion.node, "col_offset", 0),
            confusion.kind,
            confusion.message,
        )
        if key in self._seen:
            return
        self._seen.add(key)
        self.confusions.append(confusion)


class _Anchor:
    """Positional stand-in for findings without an AST node."""

    def __init__(self, lineno: int, col_offset: int = 0):
        self.lineno = lineno
        self.col_offset = col_offset


def analyze_module(tree: ast.Module,
                   annotations: dict[int, Annotation] | None = None
                   ) -> list[Confusion]:
    """Run the flow analysis over one parsed module."""
    return ModuleFlow(tree, annotations).run()
