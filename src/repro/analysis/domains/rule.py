"""The ``domain-confusion`` lint rule: the flow analysis on the chassis.

Rides the standard lint machinery — registered in :data:`RULES`, honors
inline ``# repro-lint: disable=domain-confusion`` suppressions, emits
fingerprinted findings the committed baseline can grandfather — and
adds the step-indexed dataflow trace of each confusion to the finding.

Severity policy: a confusion is an ``error`` only when *both* sides'
domains are at least annotation-confidence (declared signature or
inline annotation); when the weaker side is name-inferred the finding
is a ``warning``, because name vocabulary is a heuristic.
"""

from __future__ import annotations

from ..lint.core import FileContext, LintRule, Severity, register
from .annotate import extract_annotations
from .interp import analyze_module
from .model import Confidence


@register
class DomainConfusionRule(LintRule):
    name = "domain-confusion"
    severity = Severity.WARNING
    description = (
        "flow-sensitive check that useful/wall cycle counts and "
        "page/frame/row/byte/subblock indices never mix in arithmetic, "
        "comparisons, returns, or argument passing"
    )
    path_exclude = ("tests/",)

    def __init__(self, ctx: FileContext):
        super().__init__(ctx)

    def run(self):
        annotations = extract_annotations(self.ctx.source)
        for confusion in analyze_module(self.ctx.tree, annotations):
            severity = (
                Severity.ERROR
                if confusion.confidence >= Confidence.ANNOTATED
                else Severity.WARNING
            )
            self.report(
                confusion.node,
                confusion.message,
                trace=confusion.trace,
                severity=severity,
            )
        return self.findings
