"""Flow-sensitive semantic-domain (clock / address taint) analysis.

See :mod:`repro.analysis.domains.model` for the domain lattice,
:mod:`~.interp` for the abstract interpreter, and :mod:`~.rule` for the
``domain-confusion`` lint rule riding the ``repro-lint`` chassis.
"""

from .annotate import Annotation, extract_annotations, parse_directive
from .infer import infer_domain, name_tokens
from .interp import Confusion, ModuleFlow, analyze_module
from .model import (
    ADDRESS_DOMAINS,
    CLOCK_DOMAINS,
    MAX_STEPS,
    UNKNOWN,
    Confidence,
    Domain,
    DomainValue,
    conflict,
    conversion_hint,
    join,
)
from .signatures import (
    SIGNATURES,
    Signature,
    signature_for_call,
    signature_for_def,
)

__all__ = [
    "ADDRESS_DOMAINS",
    "Annotation",
    "CLOCK_DOMAINS",
    "Confidence",
    "Confusion",
    "Domain",
    "DomainValue",
    "MAX_STEPS",
    "ModuleFlow",
    "SIGNATURES",
    "Signature",
    "UNKNOWN",
    "analyze_module",
    "conflict",
    "conversion_hint",
    "extract_annotations",
    "infer_domain",
    "join",
    "name_tokens",
    "parse_directive",
    "signature_for_call",
    "signature_for_def",
]
