"""Declarative domain signatures for the core APIs (highest tier).

Each :class:`Signature` records the parameter and return domains of one
callable on the clock or address path. The analysis is intra-procedural
and untyped, so call sites are matched by *callable name* (the
attribute in ``table.slot_of(p)``); only names that are unambiguous
across the codebase are matched that way — ambiguous ones (``access``,
``split``, ``service``…) are registered under their qualname only, and
still seed parameter/return domains when the analyzer walks the
method's own body (matched via the enclosing ``class`` name).

A ``None`` domain means "no claim" — the parameter or return is
domain-neutral (booleans, counts, generic bit-packing helpers).
"""

from __future__ import annotations

from dataclasses import dataclass

from .model import Domain

D = Domain


@dataclass(frozen=True)
class Signature:
    """Domain contract of one callable."""

    qualname: str
    #: positional parameter order, ``self`` excluded
    params: tuple[tuple[str, Domain | None], ...] = ()
    #: return domain; a tuple for multi-value returns; None = no claim
    returns: "Domain | tuple[Domain | None, ...] | None" = None
    #: match call sites by bare name (only when the name is unambiguous
    #: across the tree); qualname matching for body analysis always works
    match_calls: bool = True

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    def param_domain(self, index: int, keyword: str | None) -> Domain | None:
        if keyword is not None:
            for pname, dom in self.params:
                if pname == keyword:
                    return dom
            return None
        if 0 <= index < len(self.params):
            return self.params[index][1]
        return None


SIGNATURES: tuple[Signature, ...] = (
    # ---- the refresh time warp (repro.dram.refresh) ------------------
    Signature("RefreshSchedule.useful",
              (("t", D.WALL_CYCLES),), D.USEFUL_CYCLES),
    Signature("RefreshSchedule.useful_np",
              (("t", D.WALL_CYCLES),), D.USEFUL_CYCLES),
    Signature("RefreshSchedule.wall",
              (("u", D.USEFUL_CYCLES), ("begin", None)), D.WALL_CYCLES),
    Signature("RefreshSchedule.wall_np",
              (("u", D.USEFUL_CYCLES),), D.WALL_CYCLES),
    Signature("RefreshSchedule.stretch",
              (("start", D.WALL_CYCLES), ("useful_cycles", D.USEFUL_CYCLES)),
              D.WALL_CYCLES),
    # ---- address decomposition (repro.address) -----------------------
    Signature("AddressMap.page_of",
              (("addr", D.BYTE_ADDR),), D.VIRTUAL_PAGE),
    Signature("AddressMap.offset_of",
              (("addr", D.BYTE_ADDR),), D.BYTE_ADDR),
    Signature("AddressMap.subblock_of",
              (("addr", D.BYTE_ADDR),), D.SUBBLOCK_IDX),
    # compose is generic bit packing: it rebuilds *either* a physical or
    # a machine address, so the page parameter carries no claim
    Signature("AddressMap.compose",
              (("page", None), ("offset", D.BYTE_ADDR)), D.BYTE_ADDR),
    Signature("AddressMap.is_onpkg_machine_page",
              (("machine_page", D.MACHINE_FRAME),), None),
    Signature("AddressMap.check_addresses",
              (("addr", D.BYTE_ADDR),), None),
    # ---- the translation table (repro.migration.table) ---------------
    Signature("TranslationTable.resolve",
              (("page", D.VIRTUAL_PAGE), ("subblock", D.SUBBLOCK_IDX)),
              (None, D.MACHINE_FRAME)),
    Signature("TranslationTable.resolve_many",
              (("pages", D.VIRTUAL_PAGE),), (None, D.MACHINE_FRAME)),
    Signature("TranslationTable.slot_of",
              (("page", D.VIRTUAL_PAGE),), D.MACHINE_FRAME),
    Signature("TranslationTable.page_in_slot",
              (("slot", D.MACHINE_FRAME),), D.VIRTUAL_PAGE),
    Signature("TranslationTable.set_pair",
              (("slot", D.MACHINE_FRAME), ("page", D.VIRTUAL_PAGE)), None),
    Signature("TranslationTable.set_empty",
              (("slot", D.MACHINE_FRAME),), None),
    Signature("TranslationTable.set_pending",
              (("slot", D.MACHINE_FRAME), ("value", None)), None),
    Signature("TranslationTable.begin_fill",
              (("slot", D.MACHINE_FRAME),
               ("source_machine_page", D.MACHINE_FRAME)), None),
    Signature("TranslationTable.fill_subblock",
              (("subblock", D.SUBBLOCK_IDX),), None),
    Signature("TranslationTable.category",
              (("page", D.VIRTUAL_PAGE),), None),
    Signature("TranslationTable.is_retired_home",
              (("page", D.VIRTUAL_PAGE),), None),
    Signature("TranslationTable.retire_slot",
              (("slot", D.MACHINE_FRAME), ("spare", D.MACHINE_FRAME)),
              D.VIRTUAL_PAGE),
    Signature("TranslationTable.empty_slot", (), D.MACHINE_FRAME),
    # ---- machine-address routing (repro.memctrl.routing) -------------
    Signature("MachineAddressRouter.machine_address",
              (("machine_page", D.MACHINE_FRAME), ("offset", D.BYTE_ADDR)),
              D.BYTE_ADDR),
    Signature("MachineAddressRouter.onpkg_local_address",
              (("machine_page", D.MACHINE_FRAME), ("offset", D.BYTE_ADDR)),
              D.BYTE_ADDR),
    Signature("MachineAddressRouter.offpkg_local_address",
              (("machine_page", D.MACHINE_FRAME), ("offset", D.BYTE_ADDR)),
              D.BYTE_ADDR),
    # "split" collides with str.split everywhere: qualname-only
    Signature("MachineAddressRouter.split",
              (("machine_page", D.MACHINE_FRAME),),
              (None, D.MACHINE_FRAME), match_calls=False),
    # ---- DRAM geometry (repro.dram.timing / bank) --------------------
    Signature("DramGeometry.decompose",
              (("addr", D.BYTE_ADDR),), (None, None, D.DRAM_ROW)),
    Signature("DramGeometry.queue_of",
              (("addr", D.BYTE_ADDR),), None),
    Signature("DramGeometry.rows_of",
              (("addr", D.BYTE_ADDR),), D.DRAM_ROW),
    Signature("DramGeometry.queues_and_rows",
              (("addr", D.BYTE_ADDR),), (None, D.DRAM_ROW)),
    Signature("Bank.would_hit", (("row", D.DRAM_ROW),), None),
    Signature("Bank.service_cycles", (("row", D.DRAM_ROW),), None),
    # "access" collides with cache/controller APIs: qualname-only
    Signature("Bank.access",
              (("row", D.DRAM_ROW), ("arrival", D.WALL_CYCLES),
               ("write", None)),
              (D.WALL_CYCLES, D.WALL_CYCLES, None), match_calls=False),
)

#: call-site lookup: bare callable name -> signature (unambiguous only)
BY_NAME: dict[str, Signature] = {}
for _sig in SIGNATURES:
    if _sig.match_calls:
        if _sig.name in BY_NAME:
            raise ValueError(
                f"ambiguous call-site signature name {_sig.name!r}; "
                "set match_calls=False on one of them"
            )
        BY_NAME[_sig.name] = _sig

#: body-analysis lookup: "Class.method" (and bare module functions)
BY_QUALNAME: dict[str, Signature] = {s.qualname: s for s in SIGNATURES}


def signature_for_call(name: str) -> Signature | None:
    """The signature a call spelled ``obj.name(...)`` resolves to."""
    return BY_NAME.get(name)


def signature_for_def(class_name: str | None, func_name: str) -> Signature | None:
    """The signature seeding a function body's parameter domains."""
    if class_name is not None:
        return BY_QUALNAME.get(f"{class_name}.{func_name}")
    return BY_QUALNAME.get(func_name)
