"""Exhaustive model checker for the swap-protocol step sequences.

The paper's core correctness claim (Section III-A) is that during a
hottest-coldest swap "the program execution will not be halted" —
because at **every intermediate step** every macro page still resolves
to a machine location that actually holds its data (P bit), and under
Live Migration every *sub-block* resolves to a landed copy (F bit +
fill bitmap). Translation-update protocols fail precisely in those
intermediate states, so this module checks them all, statically:

1. enumerate every reachable quiescent table state for a small
   power-of-two geometry (canonicalised modulo renaming of off-package
   pages, which the step builders treat symmetrically);
2. for every state and every legal (MRU, LRU) pair, take the
   *declarative* plan emitted by :mod:`repro.migration.algorithms` —
   the same ``SwapPlan`` the engine executes — and symbolically run it
   against a versioned shadow memory;
3. at every step boundary (and every sub-block micro-boundary under
   Live Migration) read **every** macro page, and re-run the plan once
   per (boundary, involved page, sub-block) with a symbolic write
   injected there, checking every subsequent boundary.

Checked invariants (names are stable — tests and docs key off them):

* ``valid-copy`` — each access resolves to exactly one location that
  holds the page's current data version;
* ``stale-subblock`` — the F-bit/bitmap refinement never serves a
  sub-block that has not landed (Live Migration);
* ``table-bijection`` — the right column stays injective and the CAM
  mirrors it at every step;
* ``ghost-unmapped`` — the reserved page Ω is never mapped into a slot
  (right column, CAM, or fill source target) while a swap is pending;
* ``ghost-exclusive`` — at most one macro page resolves to Ω at any
  instant (Ω backs exactly one parked copy);
* ``stall-only-n`` — only the basic N design halts execution during the
  copy; N-1 and Live Migration plans must be non-stalling;
* ``quiescence`` — a completed plan leaves no residue (P/F bits, fill
  bitmap), i.e. the table passes its between-epoch audit.

Writes are modelled with *controller write-forwarding*: the on-chip
memory controller performs both the copies and the demand accesses, so
a store that lands on the source of a still-uncommitted copy is
forwarded into the destination as well (the copy engine re-sends dirty
data until the table update commits). A forwarding link dies as soon
as either endpoint is overwritten by a later copy. Without this, the
paper's own sequences would report lost updates in the copy→table-update
window that the hardware closes by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..address import AddressMap
from ..config import MigrationAlgorithm
from ..errors import AnalysisError, TranslationTableError
from ..migration.algorithms import (
    CopyStep,
    SwapPlan,
    TableUpdate,
    build_basic_swap_steps,
    build_swap_steps,
)
from ..migration.table import EMPTY, TranslationTable
from ..units import KB

# stable invariant names
VALID_COPY = "valid-copy"
STALE_SUBBLOCK = "stale-subblock"
TABLE_BIJECTION = "table-bijection"
GHOST_UNMAPPED = "ghost-unmapped"
GHOST_EXCLUSIVE = "ghost-exclusive"
STALL_ONLY_N = "stall-only-n"
QUIESCENCE = "quiescence"

ALL_INVARIANTS = (
    VALID_COPY,
    STALE_SUBBLOCK,
    TABLE_BIJECTION,
    GHOST_UNMAPPED,
    GHOST_EXCLUSIVE,
    STALL_ONLY_N,
    QUIESCENCE,
)

Location = tuple[str, int]


@dataclass(frozen=True)
class Violation:
    """One invariant violation with a step-indexed counterexample."""

    invariant: str
    boundary: int             # 0 = before the first step
    step_index: int           # index into plan.steps (-1 = initial state)
    step_label: str
    page: int | None
    subblock: int | None
    message: str
    trace: tuple[str, ...] = ()

    def format(self) -> str:
        head = (
            f"[{self.invariant}] boundary {self.boundary} "
            f"(after step {self.step_index}: {self.step_label}): {self.message}"
        )
        if not self.trace:
            return head
        return head + "\n  trace:\n    " + "\n    ".join(self.trace)


@dataclass
class PlanCheckResult:
    """Verdict for one concrete (state, plan) pair."""

    variant: str
    case: str
    mru: int
    lru: int
    n_boundaries: int = 0
    n_runs: int = 0
    n_checks: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class VariantReport:
    """Aggregate verdict for one algorithm variant."""

    variant: str
    n_states: int = 0
    n_plans: int = 0
    n_runs: int = 0
    n_checks: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> dict:
        return {
            "variant": self.variant,
            "states": self.n_states,
            "plans": self.n_plans,
            "runs": self.n_runs,
            "checks": self.n_checks,
            "ok": self.ok,
            "violations": [
                {
                    "invariant": v.invariant,
                    "boundary": v.boundary,
                    "step_index": v.step_index,
                    "step_label": v.step_label,
                    "page": v.page,
                    "subblock": v.subblock,
                    "message": v.message,
                    "trace": list(v.trace),
                }
                for v in self.violations
            ],
        }


def model_address_map(*, slots: int = 4, total_pages: int = 8,
                      subblocks: int = 4) -> AddressMap:
    """The small power-of-two geometry the checker enumerates."""
    page_bytes = subblocks * KB
    return AddressMap(
        total_bytes=total_pages * page_bytes,
        onpkg_bytes=slots * page_bytes,
        macro_page_bytes=page_bytes,
        subblock_bytes=KB,
    )


# ----------------------------------------------------------------------
# symbolic machine
# ----------------------------------------------------------------------
@dataclass
class _Link:
    """A live controller write-forwarding link from a completed copy."""

    src: Location
    dst: Location
    live: bool = True


class _Machine:
    """Versioned shadow memory + plan executor over a real table."""

    def __init__(self, table: TranslationTable):
        self.table = table
        self.amap = table.amap
        self.S = self.amap.subblocks_per_page
        self.ghost = self.amap.ghost_page
        #: controller-private pages carrying no program data (Ω and any
        #: RAS retirement spares)
        self.dead = frozenset(table.reserved_pages) | {self.ghost}
        if table.filling:
            raise AnalysisError("checker requires a quiescent starting table")
        #: location -> per-sub-block (page, version) or None (garbage)
        self.contents: dict[Location, list[tuple[int, int] | None]] = {}
        #: (page, subblock) -> current data version
        self.version: dict[tuple[int, int], int] = {}
        for page in range(self.amap.n_total_pages):
            if page in self.dead:
                continue
            on, machine = table.resolve(page)
            loc: Location = ("slot", machine) if on else ("mach", machine)
            self.contents[loc] = [(page, 0) for _ in range(self.S)]
        self.links: list[_Link] = []
        self.trace: list[str] = []

    # -- memory primitives ----------------------------------------------
    def _cells(self, loc: Location) -> list[tuple[int, int] | None]:
        if loc not in self.contents:
            self.contents[loc] = [None] * self.S
        return self.contents[loc]

    def _close_links_at(self, loc: Location) -> None:
        for link in self.links:
            if link.live and (link.src == loc or link.dst == loc):
                link.live = False

    def copy(self, step: CopyStep, subblocks: list[int] | None = None) -> None:
        if step.src is None or step.dst is None:
            raise AnalysisError(f"copy step {step.label!r} has no endpoints")
        # the first byte landing at dst kills any older copy stream through
        # that location — its forwarding link must not fire again
        self._close_links_at(step.dst)
        src, dst = self._cells(step.src), self._cells(step.dst)
        for sb in subblocks if subblocks is not None else range(self.S):
            dst[sb] = src[sb]

    def link(self, step: CopyStep) -> None:
        """Open the write-forwarding link once a copy has fully landed."""
        self.links.append(_Link(step.src, step.dst))

    def resolve_loc(self, page: int, sb: int, *, live: bool) -> Location:
        if live:
            on, machine = self.table.resolve(page, sb)
        else:
            on, machine = self.table.resolve(page)
        return ("slot", machine) if on else ("mach", machine)

    def read_check(self, page: int, sb: int, *, live: bool) -> tuple[str, str] | None:
        """None if the access is served correctly, else (invariant, msg)."""
        loc = self.resolve_loc(page, sb, live=live)
        cell = self._cells(loc)[sb]
        expected = (page, self.version.get((page, sb), 0))
        if cell == expected:
            return None
        holds = "garbage" if cell is None else f"page {cell[0]} v{cell[1]}"
        invariant = VALID_COPY
        if live and page == self.table._fill_page:
            invariant = STALE_SUBBLOCK
        return (
            invariant,
            f"read page {page} sub-block {sb} resolves to {loc} which holds "
            f"{holds}, expected page {page} v{expected[1]}",
        )

    def write(self, page: int, sb: int, *, live: bool) -> str:
        loc = self.resolve_loc(page, sb, live=live)
        v = self.version.get((page, sb), 0) + 1
        self.version[(page, sb)] = v
        self._cells(loc)[sb] = (page, v)
        # controller write-forwarding into a still-uncommitted copy
        for link in self.links:
            if link.live and link.src == loc:
                self._cells(link.dst)[sb] = (page, v)
        return f"write page {page} sb {sb} -> {loc} v{v}"


# ----------------------------------------------------------------------
# plan execution with boundary callbacks
# ----------------------------------------------------------------------
def _execute_plan(machine: _Machine, plan: SwapPlan, *, live: bool,
                  first_subblock: int, on_boundary) -> None:
    """Run the plan; call ``on_boundary(b, step_index, label)`` after the
    initial state and after every step / sub-block micro-step.

    Stalling (N) plans get boundaries only at the ends — execution is
    halted, so no access can observe the intermediate states.
    """
    table = machine.table
    S = machine.S
    b = 0
    if not plan.stall:
        on_boundary(b, -1, "initial state")
        b += 1
    for i, step in enumerate(plan.steps):
        if isinstance(step, TableUpdate):
            machine.trace.append(f"step {i}: table update: {step.label}")
            step.apply(table)
            if not plan.stall:
                on_boundary(b, i, step.label)
                b += 1
            continue
        if live and step.incoming and table.filling:
            order = [(first_subblock + k) % S for k in range(S)]
            for j in order:
                machine.copy(step, subblocks=[j])
                machine.trace.append(
                    f"step {i}: {step.label} [sub-block {j} lands]"
                )
                if table.filling:
                    table.fill_subblock(j)
                if not plan.stall:
                    on_boundary(b, i, f"{step.label} [sub-block {j}]")
                    b += 1
            machine.link(step)
            continue
        machine.copy(step)
        machine.trace.append(f"step {i}: copy: {step.label}")
        if step.incoming and table.filling:
            table.end_fill()
        machine.link(step)
        if not plan.stall:
            on_boundary(b, i, step.label)
            b += 1
    on_boundary(b, len(plan.steps) - 1, "plan complete")


def _count_boundaries(plan: SwapPlan, *, live: bool, S: int) -> int:
    if plan.stall:
        return 2
    n = 1  # initial
    for step in plan.steps:
        if isinstance(step, CopyStep) and live and step.incoming:
            n += S
        else:
            n += 1
    return n + 1  # final


# ----------------------------------------------------------------------
# single-plan check
# ----------------------------------------------------------------------
def check_plan(
    make_table,
    plan: SwapPlan,
    *,
    variant: str,
    first_subblock: int = 0,
    write_pages: list[int] | None = None,
    max_violations: int = 10,
) -> PlanCheckResult:
    """Exhaustively check one plan from the state ``make_table`` yields.

    ``make_table`` is a zero-argument factory returning a fresh
    :class:`TranslationTable` in the pre-swap state (called once per
    interleaving run). ``write_pages`` limits the write sweep; ``None``
    means *pages whose resolution the dry run saw change* (every other
    page's routing is constant across the plan, so a write there is
    equivalent at every boundary).
    """
    live = variant == MigrationAlgorithm.LIVE
    expect_stall = variant == MigrationAlgorithm.N
    result = PlanCheckResult(
        variant=variant, case=plan.case.value, mru=plan.mru, lru=plan.lru
    )

    if plan.stall != expect_stall:
        result.violations.append(
            Violation(
                invariant=STALL_ONLY_N, boundary=0, step_index=-1,
                step_label="plan", page=None, subblock=None,
                message=(
                    f"{variant} plan has stall={plan.stall}; only the basic N "
                    "design may halt execution during the copy"
                ),
            )
        )

    probe = make_table()
    amap = probe.amap
    S = amap.subblocks_per_page
    ghost = amap.ghost_page
    pages = [p for p in range(amap.n_total_pages) if p != ghost]
    result.n_boundaries = _count_boundaries(plan, live=live, S=S)

    def violated(machine, invariant, b, i, label, page, sb, message):
        if len(result.violations) < max_violations:
            result.violations.append(
                Violation(
                    invariant=invariant, boundary=b, step_index=i,
                    step_label=label, page=page, subblock=sb,
                    message=message, trace=tuple(machine.trace[-24:]),
                )
            )

    # ---- dry run: reads everywhere, full table-state invariants -------
    machine = _Machine(make_table())
    seen_routes: dict[int, set[tuple[bool, int]]] = {p: set() for p in pages}

    def dry_boundary(b, i, label):
        result.n_runs += 0
        try:
            machine.table.check_invariants()
        except TranslationTableError as exc:
            violated(machine, TABLE_BIJECTION, b, i, label, None, None, str(exc))
        # Ω must never be mapped while the swap is pending
        if (
            bool(np.any(machine.table.pair == ghost))
            or ghost in machine.table._slot_of
            or machine.table._fill_page == ghost
        ):
            violated(
                machine, GHOST_UNMAPPED, b, i, label, ghost, None,
                f"reserved page Ω ({ghost}) is mapped into the table",
            )
        at_ghost = []
        for p in pages:
            seen_routes[p].add(machine.table.resolve(p))
            if machine.table.resolve(p) == (False, ghost):
                at_ghost.append(p)
            for sb in range(S):
                result.n_checks += 1
                bad = machine.read_check(p, sb, live=live)
                if bad is not None:
                    violated(machine, bad[0], b, i, label, p, sb, bad[1])
        if len(at_ghost) > 1:
            violated(
                machine, GHOST_EXCLUSIVE, b, i, label, None, None,
                f"pages {at_ghost} all resolve to Ω simultaneously",
            )

    try:
        _execute_plan(machine, plan, live=live, first_subblock=first_subblock,
                      on_boundary=dry_boundary)
    except TranslationTableError as exc:
        result.violations.append(
            Violation(
                invariant=TABLE_BIJECTION, boundary=-1, step_index=-1,
                step_label="plan application", page=None, subblock=None,
                message=f"table rejected a step: {exc}",
                trace=tuple(machine.trace[-24:]),
            )
        )
        return result
    result.n_runs += 1

    try:
        machine.table.audit()
    except TranslationTableError as exc:
        result.violations.append(
            Violation(
                invariant=QUIESCENCE, boundary=result.n_boundaries - 1,
                step_index=len(plan.steps) - 1, step_label="plan complete",
                page=None, subblock=None,
                message=f"post-swap residue: {exc}",
                trace=tuple(machine.trace[-24:]),
            )
        )

    if plan.stall:
        # execution is halted for the whole plan: the dry run's two
        # boundaries are the only observable states; no write interleaving
        return result

    # ---- exhaustive single-write interleavings ------------------------
    if write_pages is None:
        write_pages = sorted(
            p for p in pages if len(seen_routes[p]) > 1
        ) or [plan.mru, plan.lru]
    write_subblocks = range(S) if live else range(1)

    for wb in range(result.n_boundaries):
        for wp in write_pages:
            for wsb in write_subblocks:
                m = _Machine(make_table())
                state = {"armed": True}

                def run_boundary(b, i, label, *, m=m, wb=wb, wp=wp, wsb=wsb,
                                 state=state):
                    if b == wb and state["armed"]:
                        state["armed"] = False
                        m.trace.append(f"boundary {b}: " + m.write(wp, wsb, live=live))
                    if b >= wb:
                        for sb in range(S):
                            result.n_checks += 1
                            bad = m.read_check(wp, sb, live=live)
                            if bad is not None:
                                violated(m, bad[0], b, i, label, wp, sb, bad[1])
                    if b == result.n_boundaries - 1:
                        # closing sweep: the write must not have corrupted
                        # any other page's live copy
                        for p in pages:
                            result.n_checks += 1
                            bad = m.read_check(p, 0, live=live)
                            if bad is not None:
                                violated(m, bad[0], b, i, label, p, 0, bad[1])

                try:
                    _execute_plan(m, plan, live=live,
                                  first_subblock=first_subblock,
                                  on_boundary=run_boundary)
                except TranslationTableError as exc:  # pragma: no cover
                    violated(m, TABLE_BIJECTION, -1, -1, "plan application",
                             None, None, str(exc))
                result.n_runs += 1
                if len(result.violations) >= max_violations:
                    return result
    return result


# ----------------------------------------------------------------------
# state enumeration
# ----------------------------------------------------------------------
def _canonical_key(table: TranslationTable) -> tuple:
    """State key modulo renaming of the (interchangeable) off-package pages."""
    relabel: dict[int, int] = {}
    nxt = table.n_slots
    key = []
    for v in table.pair.tolist():
        if v == EMPTY:
            key.append("E")
        elif v < table.n_slots:
            key.append(v)
        else:
            if v not in relabel:
                relabel[v] = nxt
                nxt += 1
            key.append(relabel[v])
    return tuple(key)


def candidate_pairs(table: TranslationTable) -> list[tuple[int, int]]:
    """Every legal (MRU, LRU) the engine could pick in this state."""
    ghost = table.amap.ghost_page
    mrus = [
        p for p in range(table.amap.n_total_pages)
        if p != ghost and not bool(table.onpkg[p])
    ]
    lrus = [int(p) for p in table.resident_pages()]
    return [(m, l) for m in mrus for l in lrus if m != l]


def reachable_states(amap: AddressMap, *, variant: str,
                     max_states: int | None = None) -> list[dict]:
    """BFS closure of quiescent table states under the swap protocol.

    Returns ``state_dict`` snapshots of one canonical representative per
    equivalence class (off-package page ids are interchangeable to the
    step builders, so isomorphic states check identically).
    """
    basic = variant == MigrationAlgorithm.N

    def fresh() -> TranslationTable:
        return TranslationTable(amap, reserve_empty_slot=not basic)

    boot = fresh()
    states: list[dict] = [boot.state_dict()]
    seen = {_canonical_key(boot)}
    queue = [states[0]]
    while queue:
        state = queue.pop(0)
        table = fresh()
        table.load_state_dict(state)
        for mru, lru in candidate_pairs(table):
            t = fresh()
            t.load_state_dict(state)
            plan = (build_basic_swap_steps(t, mru, lru) if basic
                    else build_swap_steps(t, mru, lru))
            machine = _Machine(t)
            _execute_plan(machine, plan, live=False, first_subblock=0,
                          on_boundary=lambda b, i, label: None)
            key = _canonical_key(t)
            if key not in seen:
                seen.add(key)
                snap = t.state_dict()
                states.append(snap)
                queue.append(snap)
                if max_states is not None and len(states) >= max_states:
                    return states
    return states


# ----------------------------------------------------------------------
# variant-level driver
# ----------------------------------------------------------------------
def check_variant(
    variant: str,
    *,
    amap: AddressMap | None = None,
    max_states: int | None = None,
    first_subblock: int = 0,
    max_violations: int = 10,
) -> VariantReport:
    """Exhaustively verify one algorithm variant over its state closure."""
    if variant not in MigrationAlgorithm.ALL:
        raise AnalysisError(
            f"unknown variant {variant!r}; expected one of {MigrationAlgorithm.ALL}"
        )
    amap = amap or model_address_map()
    basic = variant == MigrationAlgorithm.N
    report = VariantReport(variant=variant)
    states = reachable_states(amap, variant=variant, max_states=max_states)
    report.n_states = len(states)
    for state in states:
        table = TranslationTable(amap, reserve_empty_slot=not basic)
        table.load_state_dict(state)
        for mru, lru in candidate_pairs(table):
            t = TranslationTable(amap, reserve_empty_slot=not basic)
            t.load_state_dict(state)
            plan = (build_basic_swap_steps(t, mru, lru) if basic
                    else build_swap_steps(t, mru, lru))

            def make_table(state=state):
                t = TranslationTable(amap, reserve_empty_slot=not basic)
                t.load_state_dict(state)
                return t

            res = check_plan(
                make_table, plan, variant=variant,
                first_subblock=first_subblock,
                max_violations=max_violations - len(report.violations),
            )
            report.n_plans += 1
            report.n_runs += res.n_runs
            report.n_checks += res.n_checks
            report.violations.extend(res.violations)
            if len(report.violations) >= max_violations:
                return report
    return report


def check_all_variants(
    *,
    amap: AddressMap | None = None,
    max_states: int | None = None,
    max_violations: int = 10,
) -> dict[str, VariantReport]:
    """All three algorithm variants; Live also re-checked with a
    wrapped-around fill start to exercise the critical-block-first order."""
    out: dict[str, VariantReport] = {}
    for variant in MigrationAlgorithm.ALL:
        out[variant] = check_variant(
            variant, amap=amap, max_states=max_states,
            max_violations=max_violations,
        )
    return out


# ----------------------------------------------------------------------
# fault-injection impact analysis (resilience.faults -> invariants)
# ----------------------------------------------------------------------
class _HaltExecution(Exception):
    """Internal: stop a plan after a chosen number of steps."""


@dataclass(frozen=True)
class FaultImpact:
    """Which checker invariants one injected fault class violates.

    ``expect_clean`` is the scenario's contract: True means the modelled
    recovery machinery must leave **zero** violated invariants (the
    ``repro-lint faults --fail-on-violation`` gate); False marks a raw
    SEU scenario that violates invariants *by design* — that is what the
    periodic audit exists to catch.
    """

    fault: str                 # FaultKind value
    scenario: str              # how/when the fault lands
    invariants: tuple[str, ...]
    note: str
    expect_clean: bool = True


def _run_prefix(machine: _Machine, plan: SwapPlan, n_steps: int, *,
                live: bool = False) -> None:
    """Execute exactly the first ``n_steps`` steps of ``plan``."""

    def cb(b, i, label):
        if b >= n_steps:
            raise _HaltExecution

    try:
        _execute_plan(machine, plan, live=live, first_subblock=0,
                      on_boundary=cb)
    except _HaltExecution:
        pass


def _model_recovery(m: _Machine, pre_state: dict) -> list[CopyStep]:
    """Mirror the engine's data-safe abort recovery on the model.

    The content map is read off the machine's *actual* cells (a location
    is a live copy of page p only when every sub-block holds p at its
    current version — a torn Live fill is garbage), the copy-back moves
    come from the same :func:`repro.migration.recovery.recovery_moves`
    the engine executes, and the table is restored to its pre-swap
    snapshot afterwards, in the engine's order.
    """
    from ..migration.recovery import recovery_moves  # local: import cycle

    table = m.table
    pre = TranslationTable(
        m.amap, reserve_empty_slot=table._reserve_empty_slot,
        reserved_pages=table.reserved_pages,
    )
    pre.load_state_dict(pre_state)

    content: dict[Location, int | None] = {}
    for loc, cells in m.contents.items():
        page = None
        if cells[0] is not None:
            p = cells[0][0]
            if all(
                cells[sb] == (p, m.version.get((p, sb), 0))
                for sb in range(m.S)
            ):
                page = p
        content[loc] = page

    def loc_of(t: TranslationTable, page: int) -> Location:
        on, machine = t.resolve(page)
        return ("slot", machine) if on else ("mach", machine)

    pages = [p for p in range(m.amap.n_total_pages) if p not in m.dead]
    target_of = {p: loc_of(pre, p) for p in pages}
    prefer = {p: loc_of(table, p) for p in pages}
    steps = recovery_moves(
        content, target_of, m.amap.macro_page_bytes, prefer=prefer
    )
    for step in steps:
        m.copy(step)
        m.trace.append(f"recovery: {step.label}")
    table.load_state_dict(pre_state)
    return steps


def _sweep(machine: _Machine, *, live: bool = False) -> tuple[str, ...]:
    """Invariant names violated by a full read sweep + audit."""
    bad: set[str] = set()
    table = machine.table
    for page in range(machine.amap.n_total_pages):
        if page in machine.dead:
            continue
        for sb in range(machine.S):
            hit = machine.read_check(page, sb, live=live)
            if hit is not None:
                bad.add(hit[0])
    try:
        table.audit()
    except TranslationTableError:
        bad.add(QUIESCENCE)
    return tuple(sorted(bad))


def fault_invariant_analysis(amap: AddressMap | None = None) -> list[FaultImpact]:
    """Map each :class:`~repro.resilience.faults.FaultKind` to the checker
    invariants it violates, by actually injecting it into the model.

    The scenarios mirror what ``resilience/faults.py`` does to a live
    system: SEU bit flips land behind the table API on a quiescent table
    (``expect_clean=False`` — violating invariants is their point, and
    the periodic audit catches them); swap aborts land between plan
    steps and are followed by the engine's data-safe recovery
    (:func:`~repro.migration.recovery.recovery_moves` + table rollback),
    which must leave zero violated invariants.
    """
    from ..resilience.faults import FaultKind  # local: avoid import cycle

    amap = amap or model_address_map()
    out: list[FaultImpact] = []

    def fresh() -> TranslationTable:
        return TranslationTable(amap, reserve_empty_slot=True)

    def case_a_inputs(table: TranslationTable) -> tuple[int, int]:
        # boot state: every off-package non-ghost page is OS; LRU slot 0
        mru = next(
            p for p in range(table.n_slots, amap.n_total_pages)
            if p != amap.ghost_page and table.slot_of(p) is None
        )
        return mru, 0

    # -- STUCK_P_BIT: SEU on a quiescent table --------------------------
    t = fresh()
    m = _Machine(t)
    t.p_bit[0] = True
    t._sync_page(0)            # the RAM lookup now bypasses row 0
    out.append(
        FaultImpact(
            fault=FaultKind.STUCK_P_BIT.value,
            scenario="P bit flips on a quiescent table (SEU)",
            invariants=_sweep(m),
            note=(
                "the page resolves to Ω, which holds no copy of it — the "
                "periodic audit flags the stray bit and repair() clears it"
            ),
            expect_clean=False,
        )
    )

    # -- STUCK_F_BIT: SEU with no fill in progress ----------------------
    t = fresh()
    m = _Machine(t)
    t.f_bit[1] = True
    out.append(
        FaultImpact(
            fault=FaultKind.STUCK_F_BIT.value,
            scenario="F bit flips with no fill in progress (SEU)",
            invariants=_sweep(m),
            note=(
                "routing is unaffected (the fill registers are clear) but "
                "the table no longer passes its between-epoch audit"
            ),
            expect_clean=False,
        )
    )

    # -- BITMAP_CORRUPTION: a bit sets mid-Live-fill --------------------
    t = fresh()
    mru, lru = case_a_inputs(t)
    plan = build_swap_steps(t, mru, lru)
    m = _Machine(t)
    # boundary 3 = TU + two landed sub-blocks of the incoming fill
    _run_prefix(m, plan, 3, live=True)
    if not t.filling:  # pragma: no cover - geometry guard
        raise AnalysisError("expected a fill in progress at boundary 3")
    t.fill_bitmap[m.S - 1] = True   # claims a sub-block that never landed
    out.append(
        FaultImpact(
            fault=FaultKind.BITMAP_CORRUPTION.value,
            scenario="fill-bitmap bit sets mid Live Migration fill",
            invariants=_sweep(m, live=True),
            note=(
                "the F-bit refinement serves the corrupted sub-block "
                "on-package before its data lands — a stale read"
            ),
            expect_clean=False,
        )
    )

    # -- ABORT_SWAP: three landings, all with data-safe recovery --------
    # (a) abort before the Ω-resolution copy: no pre-swap home has been
    #     overwritten yet, so recovery reduces to the table rollback
    t = fresh()
    mru, lru = case_a_inputs(t)
    plan = build_swap_steps(t, mru, lru)
    snapshot = t.state_dict()
    m = _Machine(t)
    _run_prefix(m, plan, 2)    # map TU + incoming copy, then abort
    _model_recovery(m, snapshot)
    out.append(
        FaultImpact(
            fault=FaultKind.ABORT_SWAP.value,
            scenario="abort before the Ω-resolution copy, data-safe recovery",
            invariants=_sweep(m),
            note=(
                "no pre-swap home was overwritten yet: the recovery "
                "planner emits no copy-back and the table rollback alone "
                "restores the pre-swap routing over intact data"
            ),
        )
    )

    # (b) abort after the Ω-resolution copy: the MRU's old home holds
    #     dead data, so recovery copies the surviving on-package
    #     duplicate back home before restoring the table — a bare
    #     rollback here is the checker's valid-copy counterexample
    #     (pinned by tests/test_data_integrity.py)
    t = fresh()
    mru, lru = case_a_inputs(t)
    plan = build_swap_steps(t, mru, lru)
    snapshot = t.state_dict()
    m = _Machine(t)
    _run_prefix(m, plan, 4)    # ... incoming copy, Ω copy, pending clear
    _model_recovery(m, snapshot)
    out.append(
        FaultImpact(
            fault=FaultKind.ABORT_SWAP.value,
            scenario="abort after the Ω-resolution copy, data-safe recovery",
            invariants=_sweep(m),
            note=(
                "the incoming page's old home was already overwritten; "
                "the recovery planner copies the surviving on-package "
                "duplicate back home, then restores the table"
            ),
        )
    )

    # (c) Live Migration fill torn at a sub-block micro-boundary: the
    #     destination slot is garbage as a whole page, but the fill
    #     source is untouched — recovery must treat the partial fill as
    #     garbage and leave the still-valid source in place
    t = fresh()
    mru, lru = case_a_inputs(t)
    plan = build_swap_steps(t, mru, lru)
    snapshot = t.state_dict()
    m = _Machine(t)
    _run_prefix(m, plan, 4, live=True)  # TU + 3 of 4 sub-blocks landed
    if not t.filling:  # pragma: no cover - geometry guard
        raise AnalysisError("expected a fill in progress mid-abort")
    _model_recovery(m, snapshot)
    out.append(
        FaultImpact(
            fault=FaultKind.ABORT_SWAP.value,
            scenario="Live fill torn mid-sub-block, data-safe recovery",
            invariants=_sweep(m),
            note=(
                "the half-landed fill destination is garbage as a whole "
                "page; the content map never claims it, so recovery keeps "
                "routing at the intact fill source"
            ),
        )
    )

    # -- DRAM_TRANSIENT: no translation-state impact --------------------
    t = fresh()
    m = _Machine(t)
    out.append(
        FaultImpact(
            fault=FaultKind.DRAM_TRANSIENT.value,
            scenario="transient DRAM read errors",
            invariants=_sweep(m),   # sanity: a clean table sweeps clean
            note=(
                "never touches translation state; detect/correct/retry is "
                "the EccModel's job (resilience.faults.EccModel)"
            ),
        )
    )

    # -- CE_BURST: predictive frame retirement with data copy-out -------
    from ..ras.retirement import retirement_moves  # local: avoid cycle

    spare = amap.ghost_page - 1

    def fresh_ras() -> TranslationTable:
        return TranslationTable(
            amap, reserve_empty_slot=True, reserved_pages=frozenset({spare})
        )

    def retire(m: _Machine, slot: int) -> None:
        for step in retirement_moves(
            m.table, slot, spare, amap.macro_page_bytes
        ):
            m.copy(step)
            m.trace.append(f"retirement: {step.label}")
        m.table.retire_slot(slot, spare)

    # (a) the dying frame is identity-mapped: one copy sends its page to
    #     the spare, and the slot leaves the pairing invariant for good
    t = fresh_ras()
    m = _Machine(t)
    retire(m, 1)
    out.append(
        FaultImpact(
            fault=FaultKind.CE_BURST.value,
            scenario="CE threshold crossed on an identity-mapped frame, "
                     "predictive retirement",
            invariants=_sweep(m),
            note=(
                "the frame's home page moves to the reserved spare before "
                "the slot is marked retired; every page keeps exactly one "
                "live copy and the table still audits clean"
            ),
        )
    )

    # (b) the dying frame holds a migrated page (transposition): the
    #     home page's copy at the occupant's machine page moves to the
    #     spare FIRST, then the occupant returns home over it
    t = fresh_ras()
    mru, lru = case_a_inputs(t)
    plan = build_swap_steps(t, mru, lru)
    m = _Machine(t)
    _execute_plan(m, plan, live=False, first_subblock=0,
                  on_boundary=lambda b, i, label: None)
    target = int(t.slot_of(mru))
    retire(m, target)
    out.append(
        FaultImpact(
            fault=FaultKind.CE_BURST.value,
            scenario="CE threshold crossed on a frame holding a migrated "
                     "page, predictive retirement",
            invariants=_sweep(m),
            note=(
                "retirement of a transposed frame is order-sensitive: the "
                "occupant's homeward copy overwrites the home page's only "
                "off-package copy, so the spare copy must land first"
            ),
        )
    )

    # -- SCRUB_LATENT: no translation-state impact ----------------------
    t = fresh_ras()
    m = _Machine(t)
    out.append(
        FaultImpact(
            fault=FaultKind.SCRUB_LATENT.value,
            scenario="latent CE surfaced by a patrol-scrub pass",
            invariants=_sweep(m),   # sanity: a clean table sweeps clean
            note=(
                "never touches translation state; the scrub read feeds the "
                "CE telemetry, whose threshold drives CE_BURST-style "
                "retirement through the same audited path"
            ),
        )
    )

    # -- ROW_DISTURB: hammering corrupts data, never the table ----------
    # The worst case for translation state is the escalation rung that
    # retires a hammered on-package frame — the same audited retirement
    # path as CE_BURST; the flips themselves land in DRAM data arrays
    # (shadow-memory territory), not in the on-chip SRAM table.
    t = fresh_ras()
    m = _Machine(t)
    retire(m, 2)
    out.append(
        FaultImpact(
            fault=FaultKind.ROW_DISTURB.value,
            scenario="activation threshold crossed, mitigation escalates "
                     "to retiring the hammered frame",
            invariants=_sweep(m),
            note=(
                "disturbance flips corrupt victim-row *data* (caught by "
                "the shadow-memory harness when unmitigated); the only "
                "translation-state consequence is the escalation ladder's "
                "retire rung, which reuses the audited retirement moves"
            ),
        )
    )
    return out
