"""``repro-lint`` command line: lint, protocol checker, fault analysis.

Subcommands::

    repro-lint lint [PATHS...]      AST lint over source trees
    repro-lint domains [PATHS...]   flow-sensitive domain-confusion check
    repro-lint protocol             exhaustive swap-protocol model check
    repro-lint faults               fault-kind -> violated-invariant table
    repro-lint rules                print the rule catalog

Exit code 0 means clean; 1 means findings / violations; 2 means the
tool itself could not run (bad arguments, unreadable baseline).
"""

from __future__ import annotations

import argparse
import json
import sys

from ..config import MigrationAlgorithm
from ..errors import AnalysisError
from .lint import DEFAULT_BASELINE_NAME, Baseline, RULES, run_lint
from .protocol import check_variant, fault_invariant_analysis

#: CLI spelling -> MigrationAlgorithm constant
VARIANTS = {
    "n": MigrationAlgorithm.N,
    "n-1": MigrationAlgorithm.N_MINUS_1,
    "live": MigrationAlgorithm.LIVE,
}


def _cmd_lint(args: argparse.Namespace) -> int:
    baseline = Baseline.load(args.baseline)
    report = run_lint(
        args.paths,
        baseline=baseline,
        select=args.select or None,
        disable=args.disable or None,
        root=args.root,
    )
    if args.write_baseline:
        Baseline.from_findings(report.findings + report.baselined).save(
            args.baseline
        )
        print(
            f"wrote {args.baseline} "
            f"({len(report.findings) + len(report.baselined)} entries)"
        )
        return 0
    if args.json:
        json.dump(report.to_json(), sys.stdout, indent=2)
        print()
    else:
        print(report.format_text(show_baselined=args.show_baselined))
    if not args.fail_on_new:
        return 1 if report.parse_errors else 0
    return report.exit_code


def _cmd_domains(args: argparse.Namespace) -> int:
    # the domain analyzer is the lint chassis pinned to one rule
    args.select = ["domain-confusion"]
    args.disable = None
    return _cmd_lint(args)


def _cmd_protocol(args: argparse.Namespace) -> int:
    variants = (
        list(VARIANTS.values())
        if args.variant == "all"
        else [VARIANTS[args.variant]]
    )
    reports = [
        check_variant(
            v,
            first_subblock=args.first_subblock,
            max_violations=args.max_violations,
        )
        for v in variants
    ]
    if args.json:
        json.dump([r.to_json() for r in reports], sys.stdout, indent=2)
        print()
    else:
        for r in reports:
            status = "OK" if r.ok else f"FAIL ({len(r.violations)} violation(s))"
            print(
                f"{r.variant:>5s}: {r.n_states} states, {r.n_plans} plans, "
                f"{r.n_runs} runs, {r.n_checks} checks -- {status}"
            )
            for v in r.violations:
                print(v.format())
    return 0 if all(r.ok for r in reports) else 1


def _cmd_faults(args: argparse.Namespace) -> int:
    impacts = fault_invariant_analysis()
    #: scenarios whose modelled recovery must leave zero violations
    broken = [fi for fi in impacts if fi.expect_clean and fi.invariants]
    if args.json:
        json.dump(
            [
                {
                    "fault": fi.fault,
                    "scenario": fi.scenario,
                    "invariants": list(fi.invariants),
                    "note": fi.note,
                    "expect_clean": fi.expect_clean,
                }
                for fi in impacts
            ],
            sys.stdout,
            indent=2,
        )
        print()
    else:
        for fi in impacts:
            inv = ", ".join(fi.invariants) if fi.invariants else "none"
            mark = "" if fi.expect_clean else " (expected: audit repairs)"
            print(
                f"{fi.fault}: {fi.scenario}\n  violates: {inv}{mark}\n  {fi.note}"
            )
        if broken:
            print(
                f"{len(broken)} scenario(s) expected clean but violated "
                "invariants"
            )
    if args.fail_on_violation:
        return 1 if broken else 0
    return 0


def _cmd_rules(args: argparse.Namespace) -> int:
    for name in sorted(RULES):
        rule = RULES[name]
        scope = ""
        if rule.path_scope:
            scope = f" [only {', '.join(rule.path_scope)}]"
        if rule.path_exclude:
            scope += f" [except {', '.join(rule.path_exclude)}]"
        print(f"{name} ({rule.severity.value}){scope}: {rule.description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="determinism/state-safety lint + protocol model checker",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_lint_io_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("paths", nargs="*", default=["src"],
                       help="files or directories (default: src)")
        p.add_argument("--json", action="store_true",
                       help="machine-readable report on stdout")
        p.add_argument("--baseline", default=DEFAULT_BASELINE_NAME,
                       help="baseline file (default: %(default)s)")
        p.add_argument("--write-baseline", action="store_true",
                       help="grandfather all current findings and exit 0")
        p.add_argument("--fail-on-new", default=True,
                       action=argparse.BooleanOptionalAction,
                       help="exit 1 when non-baselined findings exist")
        p.add_argument("--show-baselined", action="store_true",
                       help="also print grandfathered findings")
        p.add_argument("--root", default=None,
                       help="repo root for relative paths in the report")

    p_lint = sub.add_parser("lint", help="run the AST lint rules")
    add_lint_io_args(p_lint)
    p_lint.add_argument("--select", action="append", metavar="RULE",
                        help="run only these rules (repeatable)")
    p_lint.add_argument("--disable", action="append", metavar="RULE",
                        help="skip these rules (repeatable)")
    p_lint.set_defaults(func=_cmd_lint)

    p_domains = sub.add_parser(
        "domains",
        help="flow-sensitive clock/address domain-confusion analysis",
    )
    add_lint_io_args(p_domains)
    p_domains.set_defaults(func=_cmd_domains)

    p_proto = sub.add_parser(
        "protocol", help="exhaustively model-check the swap step sequences"
    )
    p_proto.add_argument("--variant", choices=[*VARIANTS, "all"],
                         default="all")
    p_proto.add_argument("--json", action="store_true")
    p_proto.add_argument("--first-subblock", type=int, default=0,
                         help="critical sub-block the Live fill starts at")
    p_proto.add_argument("--max-violations", type=int, default=10,
                         help="stop a plan after this many violations")
    p_proto.set_defaults(func=_cmd_protocol)

    p_faults = sub.add_parser(
        "faults", help="map injected fault kinds to violated invariants"
    )
    p_faults.add_argument("--json", action="store_true")
    p_faults.add_argument(
        "--fail-on-violation", action="store_true",
        help=(
            "exit 1 when a scenario expected to recover cleanly "
            "(expect_clean) violates any invariant"
        ),
    )
    p_faults.set_defaults(func=_cmd_faults)

    p_rules = sub.add_parser("rules", help="print the rule catalog")
    p_rules.set_defaults(func=_cmd_rules)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on unknown/misspelled subcommands and bad
        # flags (0 for --help); normalise to an int so in-process
        # callers always get a return code instead of an exception
        code = exc.code
        if code is None:
            return 0
        return code if isinstance(code, int) else 2
    try:
        return args.func(args)
    except AnalysisError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
