"""Fig 3: the heterogeneity-aware on-chip memory controller.

The pipeline order change is the architectural point: **address
translation comes first** (physical -> machine via the migration layer's
table), then the access routes to the on-package or off-package region,
and each region runs its own transaction scheduling — the two regions'
optimisations are independent. The optional migration controller
rewrites the table at run time; this module consumes its routing
timelines, fill state and stall windows to price every access at its
own timestamp.

Every translated access pays the table's 2-cycle RAM/CAM lookup
(Section III-B).
"""

from __future__ import annotations

import numpy as np

from ..address import AddressMap
from ..config import SystemConfig
from ..dram.latency import LatencyModel
from ..errors import SimulationError
from ..migration.engine import ActiveMigration
from ..migration.overhead import translation_cycles
from ..migration.table import TranslationTable
from ..trace.record import TraceChunk
from ..units import log2_exact
from .routing import RegionRouter


class HeterogeneousController:
    """Translate-first, split-schedule memory controller."""

    def __init__(self, config: SystemConfig, *, detailed: bool = False,
                 translation_overhead: bool = True):
        self.config = config
        #: static (no-migration) systems decode regions from MSBs for free
        self.translation_overhead = translation_overhead
        self.amap: AddressMap = config.address_map()
        self.router = RegionRouter(self.amap)
        self.onpkg_model = LatencyModel(
            config.latency, config.onpkg_dram, onpkg=True, detailed=detailed
        )
        self.offpkg_model = LatencyModel(
            config.latency, config.offpkg_dram, onpkg=False, detailed=detailed
        )
        self._sb_shift = log2_exact(self.amap.subblock_bytes)
        #: optional data-content mirror (set by EpochSimulator
        #: track_data=True); fed every routed access, never read back
        self.shadow = None
        self.accesses = 0
        self.total_latency = 0
        self.onpkg_accesses = 0
        self.offpkg_accesses = 0

    def counters(self) -> tuple[int, int, int, int]:
        """``(accesses, total_latency, onpkg, offpkg)`` snapshot.

        The tenancy scheduler diffs consecutive snapshots around each
        tenant's trace chunk to attribute controller work per tenant —
        valid on both loop flavours because the fused flush also settles
        these counters within ``run_into`` before it returns.
        """
        return (
            self.accesses,
            self.total_latency,
            self.onpkg_accesses,
            self.offpkg_accesses,
        )

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "accesses": self.accesses,
            "total_latency": self.total_latency,
            "onpkg_accesses": self.onpkg_accesses,
            "offpkg_accesses": self.offpkg_accesses,
            "onpkg_device": self.onpkg_model.device.state_dict(),
            "offpkg_device": self.offpkg_model.device.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        self.accesses = state["accesses"]
        self.total_latency = state["total_latency"]
        self.onpkg_accesses = state["onpkg_accesses"]
        self.offpkg_accesses = state["offpkg_accesses"]
        self.onpkg_model.device.load_state_dict(state["onpkg_device"])
        self.offpkg_model.device.load_state_dict(state["offpkg_device"])

    # ------------------------------------------------------------------
    def resolve_into(
        self,
        pages: np.ndarray,
        times: np.ndarray,
        subblocks: np.ndarray | None,
        table: TranslationTable,
        active: ActiveMigration | None,
        on_out: np.ndarray,
        machine_out: np.ndarray,
    ) -> None:
        """:meth:`resolve_chunk` over precomputed per-access arrays.

        Writes ``(on_package, machine_page)`` into the caller's output
        views — this is what lets the fused epoch loop resolve straight
        into preallocated whole-flush scratch buffers. ``subblocks`` may
        be ``None`` when ``active`` carries no fill in flight.
        """
        if pages.size and pages.min() < 0:
            table.resolve_many(pages)  # raises the domain-specific error
        try:
            # single-pass gathers straight into the caller's buffers;
            # upper bounds are still checked (mode='raise'), but the
            # temporary copies of resolve_many are skipped on this
            # per-epoch hot path (np.take would *wrap* negative pages,
            # hence the explicit check above)
            np.take(table.onpkg, pages, out=on_out)
            np.take(table.machine_of, pages, out=machine_out)
        except IndexError:
            table.resolve_many(pages)  # raises the domain-specific error
            raise
        if active is None:
            return

        for page, (change_times, ons, machines) in active.timeline_arrays().items():
            mask = pages == page
            if not mask.any():
                continue
            idx = np.searchsorted(change_times, times[mask], side="right") - 1
            on_out[mask] = ons[idx]
            machine_out[mask] = machines[idx]

        fill = active.fill
        if fill is not None:
            mask = (pages == fill.page) & (times >= fill.start) & (times < fill.end)
            if mask.any():
                ready = fill.available_at(subblocks[mask])
                served_on = times[mask] >= ready
                on_out[mask] = served_on
                machine_out[mask] = np.where(served_on, fill.slot, fill.old_machine)

    def resolve_chunk(
        self,
        chunk: TraceChunk,
        table: TranslationTable,
        active: ActiveMigration | None,
        *,
        pages: np.ndarray | None = None,
        subblocks: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-access ``(on_package, machine_page)`` honouring in-flight swaps."""
        if pages is None:
            pages = self.amap.page_of(chunk.addr)
        if (
            subblocks is None
            and active is not None
            and active.fill is not None
        ):
            subblocks = self.amap.offset_of(chunk.addr) >> self._sb_shift
        n = pages.shape[0]
        on = np.empty(n, dtype=bool)
        machine = np.empty(n, dtype=np.int64)
        self.resolve_into(pages, chunk.time, subblocks, table, active, on, machine)
        return on, machine

    def service_chunk(
        self,
        chunk: TraceChunk,
        table: TranslationTable,
        active: ActiveMigration | None = None,
        *,
        pages: np.ndarray | None = None,
        offsets: np.ndarray | None = None,
        subblocks: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Latency of each access in a time-ordered chunk.

        Returns ``(latencies, onpkg_mask, machine_page)``. The chunk must
        not start before previously serviced chunks (device state is
        persistent). ``pages``/``offsets``/``subblocks`` accept arrays
        the caller already derived from ``chunk.addr`` (the epoch loop
        precomputes them once per trace chunk).
        """
        n = len(chunk)
        if n == 0:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=bool),
                np.zeros(0, dtype=np.int64),
            )
        on, machine = self.resolve_chunk(
            chunk, table, active, pages=pages, subblocks=subblocks
        )
        if offsets is None:
            offsets = self.amap.offset_of(chunk.addr)
        times = chunk.time
        writes = chunk.rw != 0
        if self.shadow is not None:
            # the shadow checks at *original* access times: a stalled
            # access still reads whatever the location holds once the
            # stall window (during which data and routing flip together)
            # has drained, and the op queue flushes by land time
            if pages is None:
                pages = self.amap.page_of(chunk.addr)
            if subblocks is None:
                subblocks = offsets >> self._sb_shift
            self.shadow.process(times, pages, subblocks, on, machine, writes)
        latency = np.zeros(n, dtype=np.int64)

        # N design: execution halts while the swap copies data
        stall_extra = None
        if active is not None and active.stall:
            stall_extra = np.zeros(n, dtype=np.int64)
            stalled = (times >= active.start) & (times < active.end)
            stall_extra[stalled] = active.end - times[stalled]
            times = times + stall_extra  # issue after the stall

        if np.any(np.diff(times) < 0):
            # stalls only push times forward to a common floor, so order
            # is preserved; anything else is a caller bug
            raise SimulationError("chunk times must be non-decreasing")

        n_on = int(np.count_nonzero(on))
        if n_on:
            sel = np.flatnonzero(on)
            local = self.router.onpkg_local_address(machine[sel], offsets[sel])
            latency[sel] = self.onpkg_model.access_latency(
                local, times[sel], writes[sel]
            )
        if n_on < n:
            sel = np.flatnonzero(~on)
            local = self.router.offpkg_local_address(machine[sel], offsets[sel])
            lat = self.offpkg_model.access_latency(local, times[sel], writes[sel])
            if active is not None and not active.stall:
                # background copy traffic shares the DDR channel
                window = (times[sel] >= active.start) & (times[sel] < active.end)
                lat = lat + window * self.config.migration.interference_cycles
            latency[sel] = lat

        if self.translation_overhead:
            latency += translation_cycles(
                self.config.migration.os_assisted,
                hw_cycles=self.config.migration.hw_translation_cycles,
            )
        if stall_extra is not None:
            latency += stall_extra

        self.accesses += n
        self.total_latency += int(latency.sum())
        self.onpkg_accesses += n_on
        self.offpkg_accesses += n - n_on
        return latency, on, machine

    def service_resolved(
        self,
        on: np.ndarray,
        machine: np.ndarray,
        offsets: np.ndarray,
        times: np.ndarray,
        writes: np.ndarray,
        seg_starts: np.ndarray,
        extra: np.ndarray,
    ) -> np.ndarray:
        """Deferred region servicing for the fused epoch loop.

        The control pass already resolved routing per epoch; this flushes
        the accumulated accesses through each region's device in one
        segmented call whose segments are the original epoch boundaries
        (``seg_starts``, global indices into the flush). ``times`` are
        effective arrival times (stalls applied); ``extra`` carries the
        per-access additive cycles the control pass computed (stall +
        interference). Bit-identical to the per-epoch
        :meth:`service_chunk` sequence by :meth:`FastDevice.service_segmented`'s
        contract. Counters and translation overhead are applied here.
        """
        n = on.shape[0]
        n_on = int(np.count_nonzero(on))
        if n_on == n or n_on == 0:
            # single-region flush: no select/gather/scatter round-trip
            model = self.onpkg_model if n_on else self.offpkg_model
            dev = model.device
            local = (
                self.router.onpkg_local_address(machine, offsets)
                if n_on
                else self.router.offpkg_local_address(machine, offsets)
            )
            wr = writes if dev.geometry.timing.t_wr else None
            latency = dev.service_segmented(
                local, times, seg_starts, wr, assume_monotone=True
            )
            latency += model.path_overhead
            if self.translation_overhead:
                latency += translation_cycles(
                    self.config.migration.os_assisted,
                    hw_cycles=self.config.migration.hw_translation_cycles,
                )
            latency += extra
            self.accesses += n
            self.total_latency += int(latency.sum())
            self.onpkg_accesses += n_on
            self.offpkg_accesses += n - n_on
            return latency

        latency = np.zeros(n, dtype=np.int64)
        if n_on:
            sel = np.flatnonzero(on)
            local = self.router.onpkg_local_address(machine[sel], offsets[sel])
            segs = np.searchsorted(sel, seg_starts)
            segs = segs[segs < sel.shape[0]]
            dev = self.onpkg_model.device
            # the write gather is dead weight when the region charges no
            # write recovery
            wr = writes[sel] if dev.geometry.timing.t_wr else None
            latency[sel] = (
                dev.service_segmented(
                    local, times[sel], segs, wr, assume_monotone=True
                )
                + self.onpkg_model.path_overhead
            )
        if n_on < n:
            sel = np.flatnonzero(~on)
            local = self.router.offpkg_local_address(machine[sel], offsets[sel])
            segs = np.searchsorted(sel, seg_starts)
            segs = segs[segs < sel.shape[0]]
            dev = self.offpkg_model.device
            wr = writes[sel] if dev.geometry.timing.t_wr else None
            latency[sel] = (
                dev.service_segmented(
                    local, times[sel], segs, wr, assume_monotone=True
                )
                + self.offpkg_model.path_overhead
            )

        if self.translation_overhead:
            latency += translation_cycles(
                self.config.migration.os_assisted,
                hw_cycles=self.config.migration.hw_translation_cycles,
            )
        latency += extra

        self.accesses += n
        self.total_latency += int(latency.sum())
        self.onpkg_accesses += n_on
        self.offpkg_accesses += n - n_on
        return latency

    @property
    def average_latency(self) -> float:
        return self.total_latency / self.accesses if self.accesses else 0.0

    @property
    def onpkg_fraction(self) -> float:
        return self.onpkg_accesses / self.accesses if self.accesses else 0.0
