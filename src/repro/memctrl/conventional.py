"""Fig 2: the conventional on-chip DRAM memory controller.

Transactions are scheduled against a single (off-package) memory system;
address translation to channel/rank/bank/row indices happens *after*
scheduling. Used for the baseline (all memory off-package) and the
all-on-package ideal (by handing it the on-package latency model).
"""

from __future__ import annotations

import numpy as np

from ..config import LatencyComponents, DramTiming, offpkg_dram_timing
from ..dram.latency import LatencyModel
from ..trace.record import TraceChunk


class ConventionalController:
    """A single-region memory controller."""

    def __init__(
        self,
        components: LatencyComponents | None = None,
        timing: DramTiming | None = None,
        *,
        onpkg: bool = False,
        detailed: bool = False,
    ):
        self.model = LatencyModel(
            components or LatencyComponents(),
            timing or offpkg_dram_timing(),
            onpkg=onpkg,
            detailed=detailed,
        )
        self.accesses = 0
        self.total_latency = 0

    def service_chunk(self, chunk: TraceChunk) -> np.ndarray:
        """Per-access latency for one time-ordered chunk."""
        latency = self.model.access_latency(chunk.addr, chunk.time, chunk.rw != 0)
        self.accesses += len(chunk)
        self.total_latency += int(latency.sum())
        return latency

    @property
    def average_latency(self) -> float:
        return self.total_latency / self.accesses if self.accesses else 0.0
