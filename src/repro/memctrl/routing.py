"""Region decode: machine address MSBs select on- vs off-package.

Section II-A: "MSBs of physical memory addresses are used to decode the
target location" — machine pages below N (the on-package slot count) map
to the on-package region; everything above goes to the DIMMs. Static
mapping (no migration) is exactly this decode applied to unmodified
physical addresses.
"""

from __future__ import annotations

import numpy as np

from ..address import AddressMap


class RegionRouter:
    """Compose machine addresses and split them by region."""

    def __init__(self, amap: AddressMap):
        self.amap = amap

    def machine_address(self, machine_page: np.ndarray, offset: np.ndarray) -> np.ndarray:
        """Rebuild full machine byte addresses (vectorised)."""
        addr = np.asarray(machine_page, dtype=np.int64) << self.amap.offset_bits
        if isinstance(addr, np.ndarray) and addr.ndim:
            # the shift made a fresh temporary; compose in place
            np.bitwise_or(addr, np.asarray(offset, dtype=np.int64), out=addr)
            return addr
        return addr | np.asarray(offset, dtype=np.int64)

    def split(self, machine_page: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(onpkg_mask, offpkg_mask)`` from the MSB decode."""
        on = self.amap.is_onpkg_machine_page(machine_page)
        return on, ~on

    def onpkg_local_address(self, machine_page: np.ndarray, offset: np.ndarray) -> np.ndarray:
        """Address within the on-package region (slot-local)."""
        return self.machine_address(machine_page, offset)

    def offpkg_local_address(self, machine_page: np.ndarray, offset: np.ndarray) -> np.ndarray:
        """Address within the off-package region (0-based at the DIMMs)."""
        page = np.asarray(machine_page, dtype=np.int64) - self.amap.n_onpkg_pages
        return self.machine_address(page, offset)
