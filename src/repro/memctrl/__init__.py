"""On-chip memory controller models.

:class:`~repro.memctrl.conventional.ConventionalController` is Fig 2's
controller (one scheduling stage, everything off-package).
:class:`~repro.memctrl.heterogeneous.HeterogeneousController` is Fig 3's
heterogeneity-aware controller: the address-translation stage moved
*ahead* of transaction scheduling so each access routes to the
on-package or off-package region first, the two regions schedule
independently, and a migration controller rewrites the physical->machine
mapping at run time.
"""

from .routing import RegionRouter
from .conventional import ConventionalController
from .heterogeneous import HeterogeneousController

__all__ = ["RegionRouter", "ConventionalController", "HeterogeneousController"]
