"""Beyond-paper extensions.

The paper closes Section IV-B observing that "it is necessary for the
memory controller to adaptively change the migration granularity
according to different types of workloads" but leaves the mechanism
open. :mod:`repro.extensions.adaptive` implements one — an online
hill-climbing controller over the granularity ladder — and
``benchmarks/bench_adaptive.py`` evaluates it against every fixed
granularity.
"""

from .adaptive import AdaptiveGranularitySimulator, AdaptiveResult

__all__ = ["AdaptiveGranularitySimulator", "AdaptiveResult"]
