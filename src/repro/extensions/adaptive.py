"""Adaptive migration granularity (the paper's future-work hook).

Fixed macro-page sizes are a compromise: Figs 12-14 show the optimum is
workload- and frequency-dependent. This controller probes the ladder
online with an explore-then-commit policy:

* the trace is consumed in *segments* of ``adapt_every`` epochs;
* during the exploration phase each candidate granularity runs for one
  settling segment (discarded — the fresh table is still capturing the
  hot set) plus one measured segment;
* the controller then commits to the granularity with the best measured
  segment latency for the rest of the run;
* switching granularity rebuilds the translation table, which requires
  flushing every migrated page home first — the flush traffic is charged
  at the cross-package copy bandwidth and accounted as a one-off stall
  (hardware would overlap it; this is the conservative model).

Explore-then-commit beats per-segment hill climbing here because a
granularity switch resets the placement: comparing the segment right
after a switch against a warmed-up one systematically favours staying
put, which makes naive hill climbing oscillate. The policy needs one
latency register per candidate — still trivially implementable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import SystemConfig
from ..core.simulator import EpochSimulator, SimulationResult
from ..errors import ConfigError
from ..migration.table import EMPTY
from ..trace.record import TraceChunk
from ..units import KB, MB

#: the granularity ladder of Figs 11-14
DEFAULT_LADDER = (4 * KB, 16 * KB, 64 * KB, 256 * KB, 1 * MB, 4 * MB)


@dataclass
class AdaptiveResult(SimulationResult):
    """Simulation outcome plus the adaptation trajectory."""

    granularity_trace: list[int] = field(default_factory=list)
    switches: int = 0
    flush_bytes: int = 0

    @property
    def final_granularity(self) -> int:
        return self.granularity_trace[-1] if self.granularity_trace else 0


class AdaptiveGranularitySimulator:
    """Explore-then-commit over the macro-page-size ladder."""

    def __init__(
        self,
        config: SystemConfig,
        *,
        ladder: tuple[int, ...] = DEFAULT_LADDER,
        adapt_every: int = 16,
    ):
        if not ladder or list(ladder) != sorted(ladder):
            raise ConfigError("ladder must be ascending and non-empty")
        if adapt_every <= 0:
            raise ConfigError("adapt_every must be positive")
        self.base_config = config
        self.ladder = ladder
        self.adapt_every = adapt_every
        start = config.migration.macro_page_bytes
        self._idx = ladder.index(start) if start in ladder else len(ladder) // 2
        self._probe_order = list(range(len(ladder)))
        self._probe_pos = 0
        self._settling = True          # first segment at a granularity
        self._measured: dict[int, float] = {}
        self._committed = False

    def _config_at(self, idx: int) -> SystemConfig:
        return self.base_config.with_migration(macro_page_bytes=self.ladder[idx])

    def _flush_cost(self, sim: EpochSimulator) -> tuple[int, int]:
        """(bytes, cycles) to send every migrated-in page home before the
        table is re-keyed at a new granularity."""
        table = sim.engine.table
        page_bytes = table.amap.macro_page_bytes
        migrated = sum(
            1
            for slot in range(table.n_slots)
            for page in [table.page_in_slot(slot)]
            # identity-home test: slot s natively holds page s, so
            # page != slot means the pair is migrated and must be flushed
            if page != EMPTY and page != slot  # repro-lint: disable=domain-confusion
        )
        nbytes = 2 * migrated * page_bytes  # each pairing restores 2 copies
        cycles = self.base_config.bus.copy_cycles(nbytes)
        return nbytes, cycles

    def run(self, trace: TraceChunk) -> AdaptiveResult:
        result = AdaptiveResult()
        interval = self.base_config.migration.swap_interval
        segment_accesses = self.adapt_every * interval
        # probe starting from the configured granularity, then the rest
        self._probe_order = [self._idx] + [
            i for i in range(len(self.ladder)) if i != self._idx
        ]
        sim = EpochSimulator(self._config_at(self._idx))
        pending_flush_cycles = 0

        for start in range(0, len(trace), segment_accesses):
            segment = trace[start : start + segment_accesses]
            before = result.total_latency
            sim.run_into(segment, result)
            result.granularity_trace.append(self.ladder[self._idx])
            # charge the previous switch's flush as a one-off stall
            if pending_flush_cycles:
                result.total_latency += pending_flush_cycles
                pending_flush_cycles = 0
            seg_latency = (result.total_latency - before) / max(1, len(segment))

            new_idx = self._decide(seg_latency)
            if new_idx != self._idx:
                nbytes, cycles = self._flush_cost(sim)
                result.flush_bytes += nbytes
                result.migrated_bytes += nbytes
                result.cross_boundary_migrated_bytes += nbytes
                pending_flush_cycles = cycles
                result.switches += 1
                self._idx = new_idx
                old_sim = sim
                sim = EpochSimulator(self._config_at(self._idx))
                sim._last_time = old_sim._last_time
        return result

    def _decide(self, seg_latency: float) -> int:
        """Explore-then-commit: settle, measure, move on; then lock in."""
        if self._committed:
            return self._idx
        if self._settling:
            # discard the first (cold-table) segment at this granularity
            self._settling = False
            return self._idx
        self._measured[self._idx] = seg_latency
        self._probe_pos += 1
        if self._probe_pos < len(self._probe_order):
            self._settling = True
            return self._probe_order[self._probe_pos]
        # all candidates measured: commit to the best
        self._committed = True
        return min(self._measured, key=self._measured.get)
