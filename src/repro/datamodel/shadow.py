"""Live data-content shadow memory for the runtime simulator.

:mod:`repro.analysis.protocol` checks the swap protocol *statically*
against a symbolic versioned memory. This module is the same model made
*live*: a :class:`ShadowMemory` mirrors every macro page's data as
per-4KB-sub-block ``(page, write_generation)`` cells, the memory
controller feeds it every routed demand access, and the migration
engine feeds it every copy its plans perform — at the cycle the copy
lands, so a read that races a half-landed fill is checked against what
the machine location *actually holds at that time*.

The model is deliberately identical to the checker's ``_Machine``:

* locations are ``("slot", i)`` / ``("mach", p)`` / ``("buf", 0)``;
* a copy first kills any write-forwarding link through its destination,
  then lands its sub-blocks;
* a fully-landed copy opens a forwarding link — the on-chip controller
  re-sends stores that hit the source of a still-uncommitted copy — and
  all of a plan's links die when the plan completes;
* a write bumps the page/sub-block generation and lands at the access's
  resolved location (plus any live forwarding link from it);
* a read is checked against the expected ``(page, generation)``; a
  mismatch is recorded as a :class:`DataViolation` (never raised — the
  harness asserts on the collected list).

Timing: engine-side copies arrive through a time-ordered operation
queue and are applied before any demand access with an equal-or-later
timestamp (``times >= ready`` is how the controller serves a landed
sub-block, so the queue flushes ops with ``time <= access_time``).
Accesses to the reserved page Ω carry no architectural data and are
ignored.

The shadow is pure bookkeeping: it never influences routing, timing or
any simulated number. ``EpochSimulator(track_data=True)`` wires it in
(and forces the stepwise epoch loop); the default leaves every code
path byte-identical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..migration.table import TranslationTable

#: ("slot", i) on-package | ("mach", p) off-package | ("buf", 0) bounce buffer
Location = tuple[str, int]


@dataclass(frozen=True)
class DataViolation:
    """One demand read that returned something other than the last write."""

    time: int
    page: int
    subblock: int
    location: Location
    #: what the resolved location held: (page, generation), or None (garbage)
    found: tuple[int, int] | None
    #: the (page, generation) the read should have returned
    expected: tuple[int, int]

    def format(self) -> str:
        holds = (
            "garbage"
            if self.found is None
            else f"page {self.found[0]} g{self.found[1]}"
        )
        return (
            f"t={self.time}: read page {self.page} sub-block {self.subblock} "
            f"resolved to {self.location} holding {holds}, expected "
            f"page {self.page} g{self.expected[1]}"
        )


class ShadowMemory:
    """Versioned data-content mirror of the whole machine memory."""

    def __init__(self, table: TranslationTable):
        self.amap = table.amap
        self.n_subblocks = self.amap.subblocks_per_page
        self.ghost = self.amap.ghost_page
        #: pages outside the data address space: Ω plus any RAS spare
        #: pages (a spare's machine frame is reached through the retired
        #: page it re-homes, never through its own physical-page id)
        self._dead = frozenset(table.reserved_pages) | {self.ghost}
        #: location -> per-sub-block (page, generation) or None (garbage)
        self.contents: dict[Location, list[tuple[int, int] | None]] = {}
        #: (page, subblock) -> last written generation (absent = 0)
        self.generation: dict[tuple[int, int], int] = {}
        self.violations: list[DataViolation] = []
        self.reads = 0
        self.writes = 0
        #: live write-forwarding links as [src, dst] pairs
        self._links: list[list[Location]] = []
        #: time-ordered engine ops: (time, kind, payload); kinds are
        #: "copy" (src, dst, subblocks|None), "link" (src, dst), "close" ()
        self._ops: deque[tuple[int, str, tuple]] = deque()
        for page in range(self.amap.n_total_pages):
            if page in self._dead:
                continue
            on, machine = table.resolve(page)
            loc: Location = ("slot", machine) if on else ("mach", machine)
            self.contents[loc] = [(page, 0)] * self.n_subblocks

    # ------------------------------------------------------------------
    # memory primitives (identical semantics to analysis.protocol._Machine)
    # ------------------------------------------------------------------
    def _cells(self, loc: Location) -> list[tuple[int, int] | None]:
        cells = self.contents.get(loc)
        if cells is None:
            cells = [None] * self.n_subblocks
            self.contents[loc] = cells
        return cells

    def apply_copy(
        self,
        src: Location,
        dst: Location,
        subblocks: tuple[int, ...] | None = None,
    ) -> None:
        """One engine copy lands (whole page, or the given sub-blocks)."""
        # the first byte landing at dst kills any older copy stream
        # through that location
        self._links = [
            link for link in self._links if dst not in (link[0], link[1])
        ]
        src_cells, dst_cells = self._cells(src), self._cells(dst)
        for sb in subblocks if subblocks is not None else range(self.n_subblocks):
            dst_cells[sb] = src_cells[sb]

    def open_link(self, src: Location, dst: Location) -> None:
        """A copy fully landed: forward later stores at src into dst."""
        self._links.append([src, dst])

    def corrupt(
        self, loc: Location, subblocks: tuple[int, ...], time: int | None = None
    ) -> int:
        """Physical bit flips land at ``loc`` (row-disturbance model).

        The named sub-blocks become garbage (``None``), exactly like the
        checker's torn-copy residue: the next demand read resolving
        there — or the final :meth:`verify_table` sweep — records a
        :class:`DataViolation`. Engine ops landed by ``time`` are
        flushed first so the flips hit what the location holds *then*.
        Returns the number of cells newly corrupted (already-garbage
        cells don't recount).
        """
        self.flush(time)
        cells = self._cells(loc)
        hit = 0
        for sb in subblocks:
            if cells[sb] is not None:
                cells[sb] = None
                hit += 1
        return hit

    def close_links(self) -> None:
        """A plan completed: its table updates are live, copies stop."""
        self._links.clear()

    def scrub_page(self, page: int, loc: Location) -> None:
        """Hypervisor scrub on tenant release: overwrite ``page`` in place.

        Models the zero-fill a hypervisor performs before re-assigning a
        freed page window: every sub-block gets a *new* write generation
        landed at the page's resolved location, so a later tenant reading
        the recycled window sees hypervisor-initialised content, not the
        departed tenant's residue. Skipping the scrub leaves the old
        cells in place — and because they still carry a matching
        ``(page, generation)``, the shadow alone cannot see the leak;
        that cross-tenant flow is what the tenancy isolation oracle
        exists to catch.
        """
        cells = self._cells(loc)
        for sb in range(self.n_subblocks):
            gen = self.generation.get((page, sb), 0) + 1
            self.generation[(page, sb)] = gen
            cells[sb] = (page, gen)

    # ------------------------------------------------------------------
    # engine-side op queue
    # ------------------------------------------------------------------
    def schedule(self, time: int, kind: str, payload: tuple) -> None:
        """Queue an op to apply before any access at ``>= time``.

        Ops must be scheduled in non-decreasing time order (the engine
        walks each plan forward, and a new plan only schedules once the
        previous one's window has closed).
        """
        self._ops.append((int(time), kind, payload))

    def _apply(self, kind: str, payload: tuple) -> None:
        if kind == "copy":
            self.apply_copy(*payload)
        elif kind == "link":
            self.open_link(*payload)
        else:
            self.close_links()

    def flush(self, until: int | None = None) -> None:
        """Apply every queued op with ``time <= until`` (None: all)."""
        ops = self._ops
        while ops and (until is None or ops[0][0] <= until):
            _, kind, payload = ops.popleft()
            self._apply(kind, payload)

    def drop_pending(self) -> None:
        """Cancel not-yet-landed ops (quarantine quiesces the copy engine)."""
        self._ops.clear()
        self.close_links()

    # ------------------------------------------------------------------
    # controller-side demand stream
    # ------------------------------------------------------------------
    def process(self, times, pages, subblocks, on, machine, writes) -> None:
        """Check/record one time-ordered chunk of routed accesses.

        All six arguments are parallel per-access arrays; ``on`` and
        ``machine`` are the controller's resolution (timeline and fill
        refinements already applied) at the *original* access times.
        """
        ops = self._ops
        it = zip(
            times.tolist(), pages.tolist(), subblocks.tolist(),
            on.tolist(), machine.tolist(), writes.tolist(),
        )
        for t, page, sb, on_pkg, m, write in it:
            while ops and ops[0][0] <= t:
                _, kind, payload = ops.popleft()
                self._apply(kind, payload)
            if page in self._dead:
                continue
            loc: Location = ("slot", m) if on_pkg else ("mach", m)
            if write:
                self.writes += 1
                gen = self.generation.get((page, sb), 0) + 1
                self.generation[(page, sb)] = gen
                self._cells(loc)[sb] = (page, gen)
                for src, dst in self._links:
                    if src == loc:
                        self._cells(dst)[sb] = (page, gen)
            else:
                self.reads += 1
                cell = self._cells(loc)[sb]
                expected = (page, self.generation.get((page, sb), 0))
                if cell != expected:
                    self.violations.append(
                        DataViolation(
                            time=t, page=page, subblock=sb, location=loc,
                            found=cell, expected=expected,
                        )
                    )

    # ------------------------------------------------------------------
    # end-of-run verification
    # ------------------------------------------------------------------
    def verify_table(self, table: TranslationTable) -> list[DataViolation]:
        """Final sweep: every page/sub-block the table can resolve must
        hold its last-written generation. Flushes all pending ops first;
        returns the violations found (without recording them)."""
        self.flush()
        bad: list[DataViolation] = []
        for page in range(self.amap.n_total_pages):
            if page in self._dead:
                continue
            for sb in range(self.n_subblocks):
                on, machine = table.resolve(page, sb)
                loc: Location = ("slot", machine) if on else ("mach", machine)
                cell = self._cells(loc)[sb]
                expected = (page, self.generation.get((page, sb), 0))
                if cell != expected:
                    bad.append(
                        DataViolation(
                            time=-1, page=page, subblock=sb, location=loc,
                            found=cell, expected=expected,
                        )
                    )
        return bad

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "contents": {loc: list(cells) for loc, cells in self.contents.items()},
            "generation": dict(self.generation),
            "violations": list(self.violations),
            "reads": self.reads,
            "writes": self.writes,
            "links": [list(link) for link in self._links],
            "ops": list(self._ops),
        }

    def load_state_dict(self, state: dict) -> None:
        self.contents = {
            loc: list(cells) for loc, cells in state["contents"].items()
        }
        self.generation = dict(state["generation"])
        self.violations = list(state["violations"])
        self.reads = state["reads"]
        self.writes = state["writes"]
        self._links = [list(link) for link in state["links"]]
        self._ops = deque(state["ops"])
