"""Data-content modelling: the runtime's versioned shadow memory.

The simulator is timing-first; this package adds an optional
data-content dimension so migration correctness ("every access returns
the last value written") is a tested runtime property, not only a
statically checked one. See :mod:`repro.datamodel.shadow`.
"""

from .shadow import DataViolation, Location, ShadowMemory

__all__ = ["DataViolation", "Location", "ShadowMemory"]
