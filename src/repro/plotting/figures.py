"""Render the paper's figures as SVG files.

    python -m repro.plotting.figures [outdir]

Writes fig4/fig5/fig10/fig12-14/fig15/fig16 SVGs (fast-subset data; set
REPRO_FAST=0 and edit the call sites for full grids).
"""

from __future__ import annotations

import sys
from pathlib import Path

from ..config import MigrationAlgorithm
from ..core.hetero_memory import baseline_latency
from ..cpu.amat import MemoryOrganization
from ..experiments import common
from ..experiments.fig4 import miss_rate_curves
from ..experiments.fig5 import ipc_improvements
from ..experiments.fig10 import PAGE_SIZES
from ..experiments.fig11 import simulate
from ..experiments.fig12_14 import latency_grid
from ..migration.overhead import hardware_bits
from ..power.energy import MemoryEnergyModel
from ..units import GB, KB, MB
from .svg import BarChart, LineChart


def fig4(outdir: Path, n: int) -> None:
    chart = LineChart(
        "Fig 4 — LLC miss rate vs capacity", xlabel="LLC capacity",
        ylabel="miss rate",
    )
    chart.categories = [f"{c // MB}MB" for c in common.FIG4_CAPACITIES]
    for name, rates in miss_rate_curves(n).items():
        chart.add_series(name, rates)
    chart.save(outdir / "fig4_llc_miss_rate.svg")


def fig5(outdir: Path, n: int) -> None:
    chart = BarChart(
        "Fig 5 — IPC improvement over baseline", ylabel="IPC improvement",
    )
    improvements = ipc_improvements(n)
    chart.categories = list(improvements)
    for org, label in (
        (MemoryOrganization.L4_CACHE, "L4 cache"),
        (MemoryOrganization.STATIC_ONPKG, "static on-pkg"),
        (MemoryOrganization.ALL_ONPKG, "all on-pkg"),
    ):
        chart.add_series(label, [improvements[w][org] for w in chart.categories])
    chart.save(outdir / "fig5_ipc.svg")


def fig10(outdir: Path) -> None:
    chart = LineChart(
        "Fig 10 — hardware bits vs macro page size", xlabel="macro page",
        ylabel="bits", log_y=True,
    )
    chart.categories = [f"{p // KB}KB" for p in PAGE_SIZES]
    chart.add_series("total bits", [
        float(hardware_bits(1 * GB, p).total_bits) for p in PAGE_SIZES
    ])
    chart.save(outdir / "fig10_hw_bits.svg")


def fig12_14(outdir: Path, n: int, workloads) -> None:
    grans = (4 * KB, 64 * KB, 1024 * KB)
    for interval, figname in ((1_000, "fig12"), (10_000, "fig13"), (100_000, "fig14")):
        chart = LineChart(
            f"{figname.capitalize()} — Live latency vs granularity "
            f"(interval {interval})",
            xlabel="macro page", ylabel="avg latency (cycles)",
        )
        chart.categories = [f"{g // KB}KB" for g in grans]
        for workload, series in latency_grid(interval, n, grans, workloads).items():
            chart.add_series(workload, series)
        chart.save(outdir / f"{figname}_granularity.svg")


def fig15(outdir: Path, n: int, workloads) -> None:
    chart = LineChart(
        "Fig 15 — latency vs on-package capacity (Live 64KB/1K)",
        xlabel="on-package capacity (paper MB)", ylabel="avg latency (cycles)",
    )
    capacities = (128, 256, 512)
    chart.categories = [f"{mb}MB" for mb in capacities]
    for workload in workloads:
        chart.add_series(workload, [
            simulate(workload, MigrationAlgorithm.LIVE, 64 * KB, 1_000, n, mb)
            .average_latency
            for mb in capacities
        ])
        static = baseline_latency(
            common.migration_config(512), common.migration_trace(workload, n), "static"
        )
        chart.add_series(f"{workload} w/o", [static.average_latency] * len(capacities))
    chart.save(outdir / "fig15_capacity.svg")


def fig16(outdir: Path, n: int, workloads) -> None:
    chart = BarChart(
        "Fig 16 — memory power vs off-package-only",
        ylabel="normalised power",
    )
    model = MemoryEnergyModel()
    pages = (4 * KB, 16 * KB, 64 * KB)
    intervals = (1_000, 10_000, 100_000)
    chart.categories = [f"{p // KB}KB/{i // 1000}K" for p in pages for i in intervals]
    for workload in workloads:
        chart.add_series(workload, [
            model.report(
                simulate(workload, MigrationAlgorithm.LIVE, p, i, n)
            ).normalized
            for p in pages
            for i in intervals
        ])
    chart.save(outdir / "fig16_power.svg")


def refresh_overhead(outdir: Path, n_epochs: int) -> None:
    # deferred import: repro.experiments.refresh pulls the simulator
    from ..experiments.refresh import MODES, points

    chart = BarChart(
        "Refresh — avg latency with tREFI/tRFC scheduling",
        ylabel="avg latency (cycles)",
    )
    rows = points(n_epochs)
    chart.categories = list(MigrationAlgorithm.ALL)
    by_key = {(r["algorithm"], r["mode"]): r["avg_latency"] for r in rows}
    for mode in MODES:
        chart.add_series(
            f"refresh: {mode}",
            [by_key[(alg, mode)] for alg in chart.categories],
        )
    chart.save(outdir / "refresh_overhead.svg")


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    outdir = Path(args[0]) if args else Path("figures")
    outdir.mkdir(parents=True, exist_ok=True)
    n_cpu = 200_000
    n_mig = 300_000
    workloads = ("FT.C", "MG.C", "pgbench")
    fig10(outdir)
    fig4(outdir, n_cpu)
    fig5(outdir, n_cpu)
    fig12_14(outdir, n_mig, workloads)
    fig15(outdir, n_mig, workloads)
    fig16(outdir, n_mig, workloads)
    refresh_overhead(outdir, n_epochs=80)
    print(f"wrote {len(list(outdir.glob('*.svg')))} figures to {outdir}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
