"""Zero-dependency SVG charts.

The reproduction environment has no plotting stack, so this module
renders the paper's figures as standalone SVG files: grouped bar charts
(Figs 5, 11, 16), line charts with optional log axes (Figs 4, 10,
12-15). ``python -m repro.plotting.figures`` writes every figure to
``figures/``.
"""

from .svg import BarChart, LineChart

__all__ = ["LineChart", "BarChart"]
