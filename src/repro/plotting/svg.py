"""Minimal SVG chart primitives (no third-party dependencies).

Deliberately small: two chart types, linear or log10 y-axis, a legend,
and nothing else. Output is a self-contained ``.svg`` string/file.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ReproError

#: a readable categorical palette
PALETTE = ("#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4",
           "#8c613c", "#dc7ec0", "#797979", "#d5bb67", "#82c6e2")

_W, _H = 720, 420
_ML, _MR, _MT, _MB = 70, 160, 40, 60


def _esc(text: str) -> str:
    return (
        str(text).replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / n
    mag = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 5, 10):
        if raw <= mult * mag:
            step = mult * mag
            break
    start = math.ceil(lo / step) * step
    out = []
    v = start
    while v <= hi + 1e-9 * step:
        out.append(round(v, 10))
        v += step
    return out


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1e6:
        return f"{v / 1e6:g}M"
    if abs(v) >= 1e3:
        return f"{v / 1e3:g}k"
    if abs(v) < 0.01:
        return f"{v:.0e}"
    return f"{v:g}"


@dataclass
class _Chart:
    title: str
    xlabel: str = ""
    ylabel: str = ""
    log_y: bool = False
    series: list[tuple[str, list[float]]] = field(default_factory=list)
    categories: list[str] = field(default_factory=list)

    def add_series(self, name: str, values: list[float]) -> None:
        if self.categories and len(values) != len(self.categories):
            raise ReproError(
                f"series {name!r} has {len(values)} values for "
                f"{len(self.categories)} categories"
            )
        if self.log_y and any(v <= 0 for v in values):
            raise ReproError("log-scale charts need positive values")
        self.series.append((name, list(values)))

    # -- scaling -----------------------------------------------------------
    def _y_range(self) -> tuple[float, float]:
        values = [v for _, vs in self.series for v in vs]
        if not values:
            raise ReproError("chart has no data")
        lo, hi = min(values), max(values)
        if self.log_y:
            return math.log10(lo) - 0.05, math.log10(hi) + 0.05
        span = (hi - lo) or abs(hi) or 1.0
        lo = min(0.0, lo) if lo >= 0 else lo - 0.05 * span
        return lo, hi + 0.08 * span

    def _y_pos(self, value: float, lo: float, hi: float) -> float:
        v = math.log10(value) if self.log_y else value
        frac = (v - lo) / (hi - lo)
        return _H - _MB - frac * (_H - _MT - _MB)

    # -- skeleton ----------------------------------------------------------
    def _frame(self) -> list[str]:
        lo, hi = self._y_range()
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{_W}" height="{_H}" '
            f'font-family="sans-serif" font-size="12">',
            f'<rect width="{_W}" height="{_H}" fill="white"/>',
            f'<text x="{_ML}" y="22" font-size="15" font-weight="bold">'
            f"{_esc(self.title)}</text>",
        ]
        # y grid + labels
        if self.log_y:
            tick_vals = [10 ** e for e in range(math.floor(lo), math.ceil(hi) + 1)]
        else:
            tick_vals = _ticks(lo, hi)
        for tv in tick_vals:
            v = tv if not self.log_y else tv
            y = self._y_pos(v, lo, hi) if not self.log_y else self._y_pos(tv, lo, hi)
            if not (_MT - 1 <= y <= _H - _MB + 1):
                continue
            parts.append(
                f'<line x1="{_ML}" y1="{y:.1f}" x2="{_W - _MR}" y2="{y:.1f}" '
                f'stroke="#e0e0e0"/>'
            )
            parts.append(
                f'<text x="{_ML - 8}" y="{y + 4:.1f}" text-anchor="end">{_fmt(v)}</text>'
            )
        # axes
        parts.append(
            f'<line x1="{_ML}" y1="{_MT}" x2="{_ML}" y2="{_H - _MB}" stroke="#333"/>'
        )
        parts.append(
            f'<line x1="{_ML}" y1="{_H - _MB}" x2="{_W - _MR}" y2="{_H - _MB}" '
            f'stroke="#333"/>'
        )
        if self.ylabel:
            parts.append(
                f'<text x="16" y="{(_H - _MB + _MT) / 2:.0f}" text-anchor="middle" '
                f'transform="rotate(-90 16 {(_H - _MB + _MT) / 2:.0f})">'
                f"{_esc(self.ylabel)}</text>"
            )
        if self.xlabel:
            parts.append(
                f'<text x="{(_ML + _W - _MR) / 2:.0f}" y="{_H - 12}" '
                f'text-anchor="middle">{_esc(self.xlabel)}</text>'
            )
        return parts

    def _legend(self) -> list[str]:
        parts = []
        for i, (name, _) in enumerate(self.series):
            color = PALETTE[i % len(PALETTE)]
            y = _MT + 18 * i
            parts.append(
                f'<rect x="{_W - _MR + 12}" y="{y}" width="12" height="12" '
                f'fill="{color}"/>'
            )
            parts.append(
                f'<text x="{_W - _MR + 30}" y="{y + 10}">{_esc(name)}</text>'
            )
        return parts

    def _x_pos(self, index: int) -> float:
        n = max(1, len(self.categories))
        width = _W - _ML - _MR
        return _ML + width * (index + 0.5) / n

    def _category_labels(self) -> list[str]:
        parts = []
        for i, cat in enumerate(self.categories):
            parts.append(
                f'<text x="{self._x_pos(i):.1f}" y="{_H - _MB + 18}" '
                f'text-anchor="middle">{_esc(cat)}</text>'
            )
        return parts


@dataclass
class LineChart(_Chart):
    """One line per series over the shared categories."""

    def render(self) -> str:
        lo, hi = self._y_range()
        parts = self._frame()
        for i, (name, values) in enumerate(self.series):
            color = PALETTE[i % len(PALETTE)]
            points = " ".join(
                f"{self._x_pos(j):.1f},{self._y_pos(v, lo, hi):.1f}"
                for j, v in enumerate(values)
            )
            parts.append(
                f'<polyline fill="none" stroke="{color}" stroke-width="2" '
                f'points="{points}"/>'
            )
            for j, v in enumerate(values):
                parts.append(
                    f'<circle cx="{self._x_pos(j):.1f}" '
                    f'cy="{self._y_pos(v, lo, hi):.1f}" r="3" fill="{color}"/>'
                )
        parts += self._category_labels() + self._legend() + ["</svg>"]
        return "\n".join(parts)

    def save(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.render())


@dataclass
class BarChart(_Chart):
    """Grouped bars: one group per category, one bar per series."""

    def render(self) -> str:
        lo, hi = self._y_range()
        parts = self._frame()
        n_cat = max(1, len(self.categories))
        n_series = max(1, len(self.series))
        group_width = (_W - _ML - _MR) / n_cat
        bar_width = max(2.0, group_width * 0.8 / n_series)
        zero_y = self._y_pos(max(lo, 0.0) if not self.log_y else 10 ** lo, lo, hi)
        for i, (name, values) in enumerate(self.series):
            color = PALETTE[i % len(PALETTE)]
            for j, v in enumerate(values):
                x = _ML + group_width * j + group_width * 0.1 + bar_width * i
                y = self._y_pos(v, lo, hi)
                top, height = (y, zero_y - y) if y <= zero_y else (zero_y, y - zero_y)
                parts.append(
                    f'<rect x="{x:.1f}" y="{top:.1f}" width="{bar_width:.1f}" '
                    f'height="{max(0.5, height):.1f}" fill="{color}"/>'
                )
        parts += self._category_labels() + self._legend() + ["</svg>"]
        return "\n".join(parts)

    def save(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.render())
