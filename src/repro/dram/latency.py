"""Latency-path composition (Table II).

Total access latency = fixed path overhead (controller, pins, wires)
+ DRAM service time (queuing + core access, from a device model)
+ the migration layer's translation cost (added by the memory
controller, not here).

Off-package path: controller processing + 2x controller-to-core link +
2x package pin + PCB round trip. On-package path: controller processing
+ 2x controller-to-core link + 2x interposer pin + intra-package round
trip — no package pins or PCB, and queuing is nearly eliminated by the
128-bank structure (validated in ``tests/test_queuing_claims.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DramTiming, LatencyComponents, offpkg_dram_timing, onpkg_dram_timing
from .fastmodel import FastDevice
from .scheduler import EventDrivenDevice
from .timing import DramGeometry


@dataclass
class LatencyModel:
    """One memory region: fixed path overhead + a DRAM device model."""

    components: LatencyComponents
    timing: DramTiming
    onpkg: bool
    detailed: bool = False
    row_bytes: int = 8192

    def __post_init__(self) -> None:
        geometry = DramGeometry(self.timing, row_bytes=self.row_bytes)
        self.device = (
            EventDrivenDevice(geometry) if self.detailed else FastDevice(geometry)
        )

    @property
    def path_overhead(self) -> int:
        return (
            self.components.onpkg_overhead
            if self.onpkg
            else self.components.offpkg_overhead
        )

    def access_latency(
        self, addr: np.ndarray, arrivals: np.ndarray,
        writes: np.ndarray | None = None,
    ) -> np.ndarray:
        """Total per-access latency (cycles): overhead + queuing + DRAM."""
        return self.device.service(addr, arrivals, writes) + self.path_overhead

    def unloaded_latency(self) -> int:
        """Latency of an isolated row-buffer-conflict access (no queuing)."""
        return self.path_overhead + self.timing.miss_cycles


def make_offpkg_model(
    components: LatencyComponents | None = None,
    timing: DramTiming | None = None,
    *,
    detailed: bool = False,
) -> LatencyModel:
    return LatencyModel(
        components or LatencyComponents(),
        timing or offpkg_dram_timing(),
        onpkg=False,
        detailed=detailed,
    )


def make_onpkg_model(
    components: LatencyComponents | None = None,
    timing: DramTiming | None = None,
    *,
    detailed: bool = False,
) -> LatencyModel:
    return LatencyModel(
        components or LatencyComponents(),
        timing or onpkg_dram_timing(),
        onpkg=True,
        detailed=detailed,
    )
