"""Event-driven FR-FCFS scheduler (Rixner et al. [11]) — reference model.

Banks are independent servers, so FR-FCFS is simulated per bank: among
all requests that have *arrived* when the bank becomes free, first-ready
(row hits to the open row) win, ties broken oldest-first; if no request
hits, the oldest pending request is chosen. Channel-bus serialisation is
folded into the per-access ``io_cycles`` by default (documented
approximation — DESIGN.md §2; the fast model can also model the bus
explicitly via ``DramTiming.channel_bus``).

This model is O(pending) per request in Python and intended for small
traces: unit tests, cross-validation of :class:`FastDevice`, and
detailed single-epoch studies.
"""

from __future__ import annotations

import numpy as np

from ..config import DramTiming
from ..errors import SimulationError
from .bank import Bank
from .timing import DramGeometry


class FRFCFSScheduler:
    """FR-FCFS service of one bank's request stream."""

    def __init__(self, timing: DramTiming):
        self.timing = timing

    def service(
        self, rows: np.ndarray, arrivals: np.ndarray,
        writes: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Service requests for ONE bank.

        Parameters are in arrival order; returns ``(start, finish,
        row_hit)`` arrays aligned with the input order.
        """
        n = rows.shape[0]
        if arrivals.shape[0] != n:
            raise SimulationError("rows and arrivals must align")
        if n and np.any(np.diff(arrivals) < 0):
            raise SimulationError("arrivals must be non-decreasing")
        start = np.zeros(n, dtype=np.int64)
        finish = np.zeros(n, dtype=np.int64)
        hit = np.zeros(n, dtype=bool)
        bank = Bank(self.timing)

        pending: list[int] = []          # indices awaiting service
        next_idx = 0                     # next not-yet-arrived request
        done = 0
        while done < n:
            # admit everything that has arrived by the bank's free time
            horizon = bank.ready_time
            while next_idx < n and arrivals[next_idx] <= horizon:
                pending.append(next_idx)
                next_idx += 1
            if not pending:
                # bank idle: jump to the next arrival
                pending.append(next_idx)
                next_idx += 1
            # first-ready: oldest row hit, else oldest overall
            chosen = None
            for idx in pending:
                if bank.would_hit(int(rows[idx])):
                    chosen = idx
                    break
            if chosen is None:
                chosen = pending[0]
            pending.remove(chosen)
            is_write = bool(writes[chosen]) if writes is not None else False
            s, f, h = bank.access(
                int(rows[chosen]), int(arrivals[chosen]), write=is_write
            )
            start[chosen], finish[chosen], hit[chosen] = s, f, h
            done += 1
        return start, finish, hit


class EventDrivenDevice:
    """A DRAM region (all channels x banks) under FR-FCFS scheduling."""

    def __init__(self, geometry: DramGeometry):
        self.geometry = geometry
        self._scheduler = FRFCFSScheduler(geometry.timing)
        self.row_hits = 0
        self.row_conflicts = 0

    def state_dict(self) -> dict:
        # banks are rebuilt per service() call, so the hit counters are
        # the only state that survives between chunks
        return {"row_hits": self.row_hits, "row_conflicts": self.row_conflicts}

    def load_state_dict(self, state: dict) -> None:
        self.row_hits = state["row_hits"]
        self.row_conflicts = state["row_conflicts"]

    def service(
        self, addr: np.ndarray, arrivals: np.ndarray,
        writes: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-access latency (finish - arrival) in core cycles.

        ``addr``/``arrivals`` must be in non-decreasing arrival order.
        """
        addr = np.asarray(addr, dtype=np.int64)
        arrivals = np.asarray(arrivals, dtype=np.int64)
        if addr.shape != arrivals.shape:
            raise SimulationError("addr and arrivals must align")
        n = addr.shape[0]
        latency = np.zeros(n, dtype=np.int64)
        if n == 0:
            return latency
        queues = self.geometry.queue_of(addr)
        rows = self.geometry.rows_of(addr)
        for q in np.unique(queues):
            sel = np.flatnonzero(queues == q)
            w = None if writes is None else np.asarray(writes, dtype=bool)[sel]
            _, finish, hit = self._scheduler.service(rows[sel], arrivals[sel], w)
            latency[sel] = finish - arrivals[sel]
            nh = int(hit.sum())
            self.row_hits += nh
            self.row_conflicts += hit.shape[0] - nh
        return latency

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_conflicts
        return self.row_hits / total if total else 0.0
