"""DRAM timing substrate.

Two interchangeable device models service (address, arrival-time)
streams and return per-access latencies:

* :class:`~repro.dram.scheduler.EventDrivenDevice` — FR-FCFS [11] with
  open-page banks; the reference model (Python-level loop, small inputs).
* :class:`~repro.dram.fastmodel.FastDevice` — per-bank FIFO with
  open-page row-hit detection, solved with a vectorised Lindley
  recursion; the workhorse for multi-million-access sweeps.

Off-package: 4 channels x 8 banks of DDR3-1333; on-package: a 128-bank
many-bank die with faster I/O (Section II). The fixed latency-path
components of Table II live in :mod:`repro.dram.latency`.
"""

from .timing import DramGeometry
from .bank import Bank
from .scheduler import EventDrivenDevice, FRFCFSScheduler
from .fastmodel import FastDevice
from .latency import LatencyModel

__all__ = [
    "DramGeometry",
    "Bank",
    "FRFCFSScheduler",
    "EventDrivenDevice",
    "FastDevice",
    "LatencyModel",
]
