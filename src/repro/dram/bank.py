"""Open-page bank state machine.

A bank keeps one row open in its row buffer. An access to the open row
is a *row hit* (CAS only); any other row is a *conflict* (precharge +
activate + CAS). The bank services one request at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import DramTiming
from .refresh import RefreshSchedule


@dataclass
class Bank:
    """Mutable bank state used by the event-driven scheduler."""

    timing: DramTiming
    open_row: int = -1          # -1: no row open (cold)
    ready_time: int = 0         # cycle when the bank can accept work
    hits: int = field(default=0, repr=False)
    conflicts: int = field(default=0, repr=False)
    _refresh: RefreshSchedule | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self._refresh = RefreshSchedule.from_timing(self.timing)

    def would_hit(self, row: int) -> bool:
        return row == self.open_row

    def service_cycles(self, row: int) -> int:
        return self.timing.hit_cycles if self.would_hit(row) else self.timing.miss_cycles

    def access(self, row: int, arrival: int, *, write: bool = False) -> tuple[int, int, bool]:
        """Service one request; returns ``(start, finish, row_hit)``.

        ``start`` is when the bank begins (max of arrival and readiness);
        the bank then stays busy until ``finish``. A write adds ``t_wr``
        recovery when the timing models it. With refresh enabled, the
        request is scheduled on the useful clock of the region's
        :class:`~repro.dram.refresh.RefreshSchedule`, so a request that
        is queued or mid-service when a tREFI window opens is suspended
        for tRFC and resumes — not just deferred on arrival.
        """
        hit = self.would_hit(row)
        service = self.timing.hit_cycles if hit else self.timing.miss_cycles
        if write:
            service += self.timing.t_wr
        if self._refresh is not None:
            sched = self._refresh
            arrival_u = sched.useful(arrival)  # repro-domain: useful_cycles
            start_u = max(arrival_u, sched.useful(self.ready_time))
            # finite-queue backpressure proxy, on the useful clock
            start_u = min(start_u, arrival_u + self.timing.max_queue_wait)
            start = sched.wall(start_u, begin=True)
            finish = sched.wall(start_u + service)
        else:
            start = max(arrival, self.ready_time)
            # finite-queue backpressure proxy (see DramTiming.max_queue_wait)
            start = min(start, arrival + self.timing.max_queue_wait)
            finish = start + service
        self.open_row = row
        self.ready_time = finish
        if hit:
            self.hits += 1
        else:
            self.conflicts += 1
        return start, finish, hit

    @property
    def row_hit_rate(self) -> float:
        total = self.hits + self.conflicts
        return self.hits / total if total else 0.0
