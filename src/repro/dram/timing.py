"""Address-to-DRAM-index mapping (channel, bank, row).

Open-page systems interleave consecutive rows across channels then
banks, so streaming accesses hit open rows while spreading load:

* ``channel = (addr / row_bytes) mod n_channels``
* ``bank    = (addr / (row_bytes * n_channels)) mod n_banks``
* ``row     =  addr / (row_bytes * n_channels * n_banks)``

Columns (within-row offsets) are absorbed by ``row_bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DramTiming
from ..errors import ConfigError
from ..units import is_power_of_two


@dataclass(frozen=True)
class DramGeometry:
    """Physical index mapping for one DRAM region."""

    timing: DramTiming
    row_bytes: int = 8192

    def __post_init__(self) -> None:
        if not is_power_of_two(self.row_bytes):
            raise ConfigError("row_bytes must be a power of two")

    @property
    def n_queues(self) -> int:
        """Independent service queues = channels x banks."""
        return self.timing.n_channels * self.timing.n_banks

    def decompose(self, addr) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised (channel, bank, row) of byte address(es)."""
        a = np.asarray(addr, dtype=np.int64) // self.row_bytes
        channel = a % self.timing.n_channels
        a //= self.timing.n_channels
        bank = a % self.timing.n_banks
        row = a // self.timing.n_banks
        return channel, bank, row

    def queue_of(self, addr) -> np.ndarray:
        """Flat queue index (channel-major) of byte address(es)."""
        channel, bank, row = self.decompose(addr)
        return channel * self.timing.n_banks + bank

    def rows_of(self, addr) -> np.ndarray:
        return self.decompose(addr)[2]
