"""Address-to-DRAM-index mapping (channel, bank, row).

Open-page systems interleave consecutive rows across channels then
banks, so streaming accesses hit open rows while spreading load:

* ``channel = (addr / row_bytes) mod n_channels``
* ``bank    = (addr / (row_bytes * n_channels)) mod n_banks``
* ``row     =  addr / (row_bytes * n_channels * n_banks)``

Columns (within-row offsets) are absorbed by ``row_bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DramTiming
from ..errors import ConfigError
from ..units import is_power_of_two


@dataclass(frozen=True)
class DramGeometry:
    """Physical index mapping for one DRAM region."""

    timing: DramTiming
    row_bytes: int = 8192

    def __post_init__(self) -> None:
        if not is_power_of_two(self.row_bytes):
            raise ConfigError("row_bytes must be a power of two")
        # shift/mask fast path: numpy int64 division is several times
        # slower than shifts, and these decompositions run once per
        # access in the device hot loop
        object.__setattr__(
            self,
            "_pow2_shifts",
            (
                self.row_bytes.bit_length() - 1,
                self.timing.n_channels.bit_length() - 1,
                self.timing.n_banks.bit_length() - 1,
            )
            if (
                is_power_of_two(self.timing.n_channels)
                and is_power_of_two(self.timing.n_banks)
            )
            else None,
        )

    @property
    def n_queues(self) -> int:
        """Independent service queues = channels x banks."""
        return self.timing.n_channels * self.timing.n_banks

    def decompose(self, addr) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised (channel, bank, row) of byte address(es)."""
        if self._pow2_shifts is not None:
            row_sh, ch_sh, bk_sh = self._pow2_shifts
            a = np.asarray(addr, dtype=np.int64) >> row_sh
            channel = a & (self.timing.n_channels - 1)
            a >>= ch_sh
            bank = a & (self.timing.n_banks - 1)
            row = a >> bk_sh
            return channel, bank, row
        a = np.asarray(addr, dtype=np.int64) // self.row_bytes
        channel = a % self.timing.n_channels
        a //= self.timing.n_channels
        bank = a % self.timing.n_banks
        row = a // self.timing.n_banks
        return channel, bank, row

    def queue_of(self, addr) -> np.ndarray:
        """Flat queue index (channel-major) of byte address(es)."""
        channel, bank, row = self.decompose(addr)
        return channel * self.timing.n_banks + bank

    def rows_of(self, addr) -> np.ndarray:
        return self.decompose(addr)[2]

    def queues_and_rows(self, addr) -> tuple[np.ndarray, np.ndarray]:
        """(flat queue index, row) in one decomposition pass.

        The pow2 path composes the queue index in place on the
        decomposition temporaries — this feeds the device hot loop, where
        every extra full-array temporary costs a page-fault pass.
        """
        if self._pow2_shifts is not None:
            row_sh, ch_sh, bk_sh = self._pow2_shifts
            a = np.asarray(addr, dtype=np.int64) >> row_sh
            channel = a & (self.timing.n_channels - 1)
            a >>= ch_sh
            bank = a & (self.timing.n_banks - 1)
            np.right_shift(a, bk_sh, out=a)  # a is now the row
            np.multiply(channel, self.timing.n_banks, out=channel)
            channel += bank  # channel is now the flat queue index
            return channel, a
        channel, bank, row = self.decompose(addr)
        return channel * self.timing.n_banks + bank, row
