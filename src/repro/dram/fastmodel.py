"""Vectorised DRAM model: per-bank FIFO queue + open-page row hits.

For each bank the departure time of request *i* obeys the Lindley-style
recursion ``D_i = max(a_i, D_{i-1}) + s_i`` with service time ``s_i``
(row hit or conflict, decided in arrival order against the previous
request's row). Writing ``S_i = cumsum(s)`` gives

    ``D_i = S_i + cummax_{j<=i}(a_j - S_{j-1})``

which is one sort, one cumsum and one running maximum — no Python-level
per-access loop. The FIFO order (instead of FR-FCFS's hit-first
reordering) slightly *underestimates* row-hit rates under load;
``tests/test_dram_crossvalidate.py`` bounds the disagreement against the
event-driven reference.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from .refresh import RefreshSchedule
from .timing import DramGeometry


class FastDevice:
    """Vectorised open-page FIFO DRAM region model."""

    def __init__(self, geometry: DramGeometry):
        self.geometry = geometry
        self.row_hits = 0
        self.row_conflicts = 0
        #: with refresh enabled, the whole recursion (including the
        #: persistent ``_ready`` carry) runs on the warp's useful clock;
        #: wall latencies are recovered at the end of each pass
        self._refresh = RefreshSchedule.from_timing(geometry.timing)
        # persistent per-queue state so successive chunks continue seamlessly
        nq = geometry.n_queues
        self._open_row = np.full(nq, -1, dtype=np.int64)
        self._ready = np.zeros(nq, dtype=np.int64)

    def reset(self) -> None:
        self._open_row[:] = -1
        self._ready[:] = 0
        self.row_hits = 0
        self.row_conflicts = 0

    def state_dict(self) -> dict:
        """Persistent per-queue state (for checkpoint/resume)."""
        return {
            "open_row": self._open_row.copy(),
            "ready": self._ready.copy(),
            "row_hits": self.row_hits,
            "row_conflicts": self.row_conflicts,
        }

    def load_state_dict(self, state: dict) -> None:
        if state["open_row"].shape[0] != self._open_row.shape[0]:
            raise SimulationError("device snapshot has a different queue count")
        self._open_row = state["open_row"].copy()
        self._ready = state["ready"].copy()
        self.row_hits = state["row_hits"]
        self.row_conflicts = state["row_conflicts"]

    def service(
        self,
        addr: np.ndarray,
        arrivals: np.ndarray,
        writes: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-access latency (cycles), aligned with the input order.

        ``writes`` (optional boolean mask) charges write recovery when
        the timing's ``t_wr`` is non-zero.
        """
        addr = np.asarray(addr, dtype=np.int64)
        arrivals = np.asarray(arrivals, dtype=np.int64)
        if addr.shape != arrivals.shape:
            raise SimulationError("addr and arrivals must align")
        n = addr.shape[0]
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        if np.any(np.diff(arrivals) < 0):
            raise SimulationError("arrivals must be non-decreasing")
        latency, _ = self._service_core(addr, arrivals, writes, None)
        return latency

    def service_segmented(
        self,
        addr: np.ndarray,
        arrivals: np.ndarray,
        seg_starts: np.ndarray,
        writes: np.ndarray | None = None,
        *,
        assume_monotone: bool = False,
    ) -> np.ndarray:
        """Many consecutive :meth:`service` calls fused into one.

        Semantically **bit-identical** to calling ``service`` once per
        segment ``[seg_starts[i], seg_starts[i+1])`` in order (the fused
        epoch loop's contract). One fused pass is exact as long as the
        finite-queue carry cap never binds at an interior segment
        boundary — the sequential carry is ``min(depart, arrival + cap)``
        per queue, and the fused Lindley recursion propagates the
        uncapped departure. The fused pass detects any interior binding
        and, in that (overloaded) case, restores the pre-call state and
        replays the segments sequentially; configurations with the
        per-call channel-bus stage always take the sequential path.
        """
        addr = np.asarray(addr, dtype=np.int64)
        arrivals = np.asarray(arrivals, dtype=np.int64)
        if addr.shape != arrivals.shape:
            raise SimulationError("addr and arrivals must align")
        n = addr.shape[0]
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        seg_starts = np.asarray(seg_starts, dtype=np.int64)
        if seg_starts.size == 0 or seg_starts[0] != 0:
            raise SimulationError("seg_starts must begin with 0")
        if seg_starts.size == 1:
            return self.service(addr, arrivals, writes)
        if self.geometry.timing.channel_bus or (
            not assume_monotone and bool(np.any(np.diff(arrivals) < 0))
        ):
            # the bus stage restarts at every service() call; only the
            # sequential replay reproduces that per-call state exactly
            # (likewise arrivals that regress across segment boundaries;
            # ``assume_monotone`` lets a caller that already verified
            # global monotonicity skip the re-check)
            return self._service_per_segment(addr, arrivals, seg_starts, writes)
        snapshot = (
            self._open_row.copy(), self._ready.copy(),
            self.row_hits, self.row_conflicts,
        )
        seg_of = np.repeat(
            np.arange(seg_starts.size, dtype=np.int64),
            np.diff(np.concatenate([seg_starts, [n]])),
        )
        latency, exact = self._service_core(addr, arrivals, writes, seg_of)
        if exact:
            return latency
        self._open_row, self._ready, self.row_hits, self.row_conflicts = snapshot
        return self._service_per_segment(addr, arrivals, seg_starts, writes)

    def _service_per_segment(self, addr, arrivals, seg_starts, writes):
        """Reference sequential replay: one service() call per segment."""
        latency = np.empty(addr.shape[0], dtype=np.int64)
        bounds = seg_starts.tolist() + [addr.shape[0]]
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            if hi > lo:
                latency[lo:hi] = self.service(
                    addr[lo:hi], arrivals[lo:hi],
                    None if writes is None else writes[lo:hi],
                )
        return latency

    def _service_core(
        self, addr, arrivals, writes, seg_of
    ) -> tuple[np.ndarray, bool]:
        """The vectorised service pass over validated non-empty inputs.

        With ``seg_of`` (per-access segment id), also reports whether the
        fused result is exact w.r.t. per-segment sequential calls (see
        :meth:`service_segmented`); callers guarantee ``channel_bus`` is
        off in that mode.
        """
        n = addr.shape[0]
        timing = self.geometry.timing
        wall_arrivals = None
        if self._refresh is not None:
            # run the whole recursion on the useful clock: refresh
            # windows vanish from the timeline, so a request queued or
            # mid-service across a tREFI boundary is suspended for tRFC
            # exactly like the event-driven Bank model. The warp is a
            # pure function of global time, so it commutes with segment
            # boundaries and the fused-exactness contract is unchanged.
            wall_arrivals = arrivals  # repro-domain: wall_cycles - pre-warp instants
            arrivals = self._refresh.useful_np(arrivals)
        queues, rows = self.geometry.queues_and_rows(addr)

        # Every full-width temporary here is a fresh multi-MB allocation
        # (page-fault pass included), so freed buffers are recycled via
        # np.take(..., out=...) / ufunc out= below.

        # group by queue, stable so within-queue order == arrival order;
        # queue ids are tiny, and stable argsort is a radix sort whose
        # cost scales with key width — cast to the narrowest dtype
        nq = self.geometry.n_queues
        if nq <= 1 << 8:
            sort_key = queues.astype(np.uint8)
        elif nq <= 1 << 16:
            sort_key = queues.astype(np.uint16)
        else:
            sort_key = queues
        order = np.argsort(sort_key, kind="stable")
        q_sorted = np.take(sort_key, order)  # narrow gathers + comparisons
        rows_sorted = np.take(rows, order)
        arr_sorted = np.take(arrivals, order, out=queues)  # queues buffer free

        # row hit iff same row as previous request in the same queue;
        # the first request of a queue compares against persistent state
        first_of_queue = np.empty(n, dtype=bool)
        first_of_queue[0] = True
        np.not_equal(q_sorted[1:], q_sorted[:-1], out=first_of_queue[1:])
        # at most n_queues segment starts -> integer indexing beats
        # re-scanning the boolean mask at every use
        f_idx = np.flatnonzero(first_of_queue)
        q_first = q_sorted[f_idx]
        hit = np.empty(n, dtype=bool)
        hit[0] = False
        np.equal(rows_sorted[1:], rows_sorted[:-1], out=hit[1:])
        hit[f_idx] = rows_sorted[f_idx] == self._open_row[q_first]

        service = np.empty(n, dtype=np.int64)
        service[:] = timing.miss_cycles
        if timing.hit_cycles != timing.miss_cycles:
            service[hit] = timing.hit_cycles
        if timing.t_wr and writes is not None:
            service += np.asarray(writes, dtype=bool)[order] * np.int64(timing.t_wr)

        # Lindley per queue, vectorised across the whole sorted array by
        # restarting the cumsum/cummax at queue boundaries.
        # segment-local inclusive cumsum: subtract, from the global cumsum,
        # its value just before each segment start (forward-filled — valid
        # because cumsum is non-decreasing so a running max forward-fills)
        cs = np.cumsum(service, out=rows)  # rows buffer free after the gather
        base_ff = np.empty(n, dtype=np.int64)
        base_ff[:] = np.int64(np.iinfo(np.int64).min)
        base_ff[f_idx] = cs[f_idx] - service[f_idx]
        np.maximum.accumulate(base_ff, out=base_ff)
        S = np.subtract(cs, base_ff, out=cs)  # inclusive segment-local cumsum

        # t_i = a_i - S_{i-1}; for segment starts S_{i-1} (local) = 0 but the
        # queue may still be busy from an earlier chunk -> fold persistent
        # readiness in by treating it as a virtual arrival floor
        # (at those entries S - service == 0, so the floor applies directly)
        t = np.subtract(arr_sorted, S, out=base_ff)  # base_ff buffer free
        t += service
        t[f_idx] = np.maximum(arr_sorted[f_idx], self._ready[q_first])
        # segmented cummax: reset the running max at each segment start
        # trick: offset each segment by a huge per-segment constant so a
        # plain cummax cannot leak across boundaries, then remove it.
        # q_sorted itself is a valid segment label (sorted, distinct per
        # queue, <= n_queues), so q_sorted * BIG stays far from int64
        # overflow even for huge t ranges
        BIG = np.int64(max(1, int(t.max()) - int(t.min()) + 1))
        shift = np.multiply(q_sorted, BIG, dtype=np.int64)
        t += shift
        run = np.maximum.accumulate(t, out=t)
        run -= shift
        depart = np.add(S, run, out=shift)  # shift buffer free
        latency_sorted = np.subtract(depart, arr_sorted, out=S)  # S buffer free
        cap = timing.max_queue_wait

        if seg_of is not None:
            # fused-exactness check: at a segment boundary the sequential
            # path carries min(depart, arrival + cap) into the next
            # segment while the fused recursion propagates the uncapped
            # departure — they agree unless the cap binds at the last
            # access of a queue *inside* an interior boundary.
            # (latency_sorted is still the uncapped wait here.)
            seg_sorted = np.take(seg_of, order, out=run)  # run buffer free
            boundary = np.empty(n, dtype=bool)
            np.not_equal(seg_sorted[1:], seg_sorted[:-1], out=boundary[:-1])
            # bool a & ~b == a > b, without materialising ~b
            np.greater(boundary[:-1], first_of_queue[1:], out=boundary[:-1])
            b_idx = np.flatnonzero(boundary[:-1])
            if b_idx.size and bool((latency_sorted[b_idx] > cap).any()):
                # bail before mutating persistent state; caller replays
                return latency_sorted, False

        # finite-queue backpressure proxy: cap the reported queuing wait
        np.minimum(latency_sorted, service + cap, out=latency_sorted)

        # persist state for the next chunk: last row/departure per queue
        l_idx = np.empty_like(f_idx)
        l_idx[:-1] = f_idx[1:] - 1
        l_idx[-1] = n - 1
        self._open_row[q_first] = rows_sorted[l_idx]
        # carry the backlog, bounded by the finite-queue proxy so an
        # overload episode cannot grow the queue without limit
        carried = np.minimum(depart[l_idx], arr_sorted[l_idx] + cap)
        self._ready[q_first] = carried

        nh = int(np.count_nonzero(hit))
        self.row_hits += nh
        self.row_conflicts += n - nh

        if timing.channel_bus:
            # second serialisation stage: each access's data burst occupies
            # its channel's shared bus for io_cycles, granted in bank-
            # completion order. Un-contended, the burst overlaps the tail
            # of the bank service (zero extra); contention queues it.
            depart_cap = arr_sorted + service + np.minimum(
                depart - arr_sorted - service, cap
            )
            channel = q_sorted // timing.n_banks
            bus_order = np.lexsort((depart_cap, channel))
            ch_s = channel[bus_order]
            f_s = depart_cap[bus_order]
            first = np.empty(n, dtype=bool)
            first[0] = True
            first[1:] = ch_s[1:] != ch_s[:-1]
            io = np.int64(timing.io_cycles)
            bus_arr = f_s - io
            cs_io = np.arange(1, n + 1, dtype=np.int64) * io
            base = np.maximum.accumulate(
                np.where(first, cs_io - io, np.int64(np.iinfo(np.int64).min))
            )
            S_io = cs_io - base
            t_bus = bus_arr - (S_io - io)
            seg_id = np.cumsum(first) - 1
            big = np.int64(max(1, int(t_bus.max()) - int(t_bus.min()) + 1))
            run_bus = np.maximum.accumulate(t_bus + seg_id * big) - seg_id * big
            bus_end = S_io + run_bus
            extra = np.zeros(n, dtype=np.int64)
            extra[bus_order] = bus_end - f_s
            latency_sorted = latency_sorted + np.maximum(0, extra)

        latency = np.empty(n, dtype=np.int64)
        latency[order] = latency_sorted
        if wall_arrivals is not None:
            # useful-domain departure -> wall clock: every refresh
            # window overlapped by the wait or the service shows up in
            # the reported latency
            latency += arrivals  # = useful-domain departures, input order
            latency = self._refresh.wall_np(latency)
            latency -= wall_arrivals
        return latency, True

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_conflicts
        return self.row_hits / total if total else 0.0
