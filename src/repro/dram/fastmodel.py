"""Vectorised DRAM model: per-bank FIFO queue + open-page row hits.

For each bank the departure time of request *i* obeys the Lindley-style
recursion ``D_i = max(a_i, D_{i-1}) + s_i`` with service time ``s_i``
(row hit or conflict, decided in arrival order against the previous
request's row). Writing ``S_i = cumsum(s)`` gives

    ``D_i = S_i + cummax_{j<=i}(a_j - S_{j-1})``

which is one sort, one cumsum and one running maximum — no Python-level
per-access loop. The FIFO order (instead of FR-FCFS's hit-first
reordering) slightly *underestimates* row-hit rates under load;
``tests/test_dram_crossvalidate.py`` bounds the disagreement against the
event-driven reference.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from .timing import DramGeometry


class FastDevice:
    """Vectorised open-page FIFO DRAM region model."""

    def __init__(self, geometry: DramGeometry):
        self.geometry = geometry
        self.row_hits = 0
        self.row_conflicts = 0
        # persistent per-queue state so successive chunks continue seamlessly
        nq = geometry.n_queues
        self._open_row = np.full(nq, -1, dtype=np.int64)
        self._ready = np.zeros(nq, dtype=np.int64)

    def reset(self) -> None:
        self._open_row[:] = -1
        self._ready[:] = 0
        self.row_hits = 0
        self.row_conflicts = 0

    def state_dict(self) -> dict:
        """Persistent per-queue state (for checkpoint/resume)."""
        return {
            "open_row": self._open_row.copy(),
            "ready": self._ready.copy(),
            "row_hits": self.row_hits,
            "row_conflicts": self.row_conflicts,
        }

    def load_state_dict(self, state: dict) -> None:
        if state["open_row"].shape[0] != self._open_row.shape[0]:
            raise SimulationError("device snapshot has a different queue count")
        self._open_row = state["open_row"].copy()
        self._ready = state["ready"].copy()
        self.row_hits = state["row_hits"]
        self.row_conflicts = state["row_conflicts"]

    def service(
        self,
        addr: np.ndarray,
        arrivals: np.ndarray,
        writes: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-access latency (cycles), aligned with the input order.

        ``writes`` (optional boolean mask) charges write recovery when
        the timing's ``t_wr`` is non-zero.
        """
        addr = np.asarray(addr, dtype=np.int64)
        arrivals = np.asarray(arrivals, dtype=np.int64)
        if addr.shape != arrivals.shape:
            raise SimulationError("addr and arrivals must align")
        n = addr.shape[0]
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        if np.any(np.diff(arrivals) < 0):
            raise SimulationError("arrivals must be non-decreasing")

        timing = self.geometry.timing
        refresh_delay = None
        if timing.refresh_interval:
            # accesses landing in a refresh window (tRFC at the head of
            # every tREFI period; all banks blocked) start after it ends;
            # the wait is part of their latency
            phase = arrivals % timing.refresh_interval
            refresh_delay = np.maximum(0, timing.refresh_cycles - phase)
            arrivals = arrivals + refresh_delay
        queues = self.geometry.queue_of(addr)
        rows = self.geometry.rows_of(addr)

        # group by queue, stable so within-queue order == arrival order
        order = np.argsort(queues, kind="stable")
        q_sorted = queues[order]
        rows_sorted = rows[order]
        arr_sorted = arrivals[order]

        # row hit iff same row as previous request in the same queue;
        # the first request of a queue compares against persistent state
        prev_rows = np.empty_like(rows_sorted)
        prev_rows[1:] = rows_sorted[:-1]
        first_of_queue = np.empty(n, dtype=bool)
        first_of_queue[0] = True
        first_of_queue[1:] = q_sorted[1:] != q_sorted[:-1]
        prev_rows[first_of_queue] = self._open_row[q_sorted[first_of_queue]]
        hit = rows_sorted == prev_rows

        service = np.where(hit, timing.hit_cycles, timing.miss_cycles).astype(np.int64)
        if timing.t_wr and writes is not None:
            service = service + np.asarray(writes, dtype=bool)[order] * timing.t_wr

        # Lindley per queue, vectorised across the whole sorted array by
        # restarting the cumsum/cummax at queue boundaries.
        # segment-local inclusive cumsum: subtract, from the global cumsum,
        # its value just before each segment start (forward-filled — valid
        # because cumsum is non-decreasing so a running max forward-fills)
        cs = np.cumsum(service)
        base_ff = np.maximum.accumulate(
            np.where(first_of_queue, cs - service, np.int64(np.iinfo(np.int64).min))
        )
        S = cs - base_ff  # inclusive segment-local cumsum

        # t_i = a_i - S_{i-1}; for segment starts S_{i-1} (local) = 0 but the
        # queue may still be busy from an earlier chunk -> fold persistent
        # readiness in by treating it as a virtual arrival floor.
        a_eff = arr_sorted.copy()
        a_eff[first_of_queue] = np.maximum(
            a_eff[first_of_queue], self._ready[q_sorted[first_of_queue]]
        )
        t = a_eff - (S - service)
        # segmented cummax: reset the running max at each segment start
        # trick: offset each segment by a huge per-segment constant so a
        # plain cummax cannot leak across boundaries, then remove it.
        seg_id = np.cumsum(first_of_queue) - 1
        # one segment per distinct queue (<= n_queues), so seg_id * BIG
        # stays far from int64 overflow even for huge t ranges
        BIG = np.int64(max(1, int(t.max()) - int(t.min()) + 1))
        t_shifted = t + seg_id * BIG
        run = np.maximum.accumulate(t_shifted) - seg_id * BIG
        depart = S + run
        latency_sorted = depart - arr_sorted
        # finite-queue backpressure proxy: cap the reported queuing wait
        cap = timing.max_queue_wait
        np.minimum(latency_sorted, service + cap, out=latency_sorted)

        # persist state for the next chunk: last row/departure per queue
        last_of_queue = np.empty(n, dtype=bool)
        last_of_queue[:-1] = q_sorted[:-1] != q_sorted[1:]
        last_of_queue[-1] = True
        self._open_row[q_sorted[last_of_queue]] = rows_sorted[last_of_queue]
        # carry the backlog, bounded by the finite-queue proxy so an
        # overload episode cannot grow the queue without limit
        carried = np.minimum(depart[last_of_queue], arr_sorted[last_of_queue] + cap)
        self._ready[q_sorted[last_of_queue]] = carried

        nh = int(hit.sum())
        self.row_hits += nh
        self.row_conflicts += n - nh

        if timing.channel_bus:
            # second serialisation stage: each access's data burst occupies
            # its channel's shared bus for io_cycles, granted in bank-
            # completion order. Un-contended, the burst overlaps the tail
            # of the bank service (zero extra); contention queues it.
            depart_cap = arr_sorted + service + np.minimum(
                depart - arr_sorted - service, cap
            )
            channel = q_sorted // timing.n_banks
            bus_order = np.lexsort((depart_cap, channel))
            ch_s = channel[bus_order]
            f_s = depart_cap[bus_order]
            first = np.empty(n, dtype=bool)
            first[0] = True
            first[1:] = ch_s[1:] != ch_s[:-1]
            io = np.int64(timing.io_cycles)
            bus_arr = f_s - io
            cs_io = np.arange(1, n + 1, dtype=np.int64) * io
            base = np.maximum.accumulate(
                np.where(first, cs_io - io, np.int64(np.iinfo(np.int64).min))
            )
            S_io = cs_io - base
            t_bus = bus_arr - (S_io - io)
            seg_id = np.cumsum(first) - 1
            big = np.int64(max(1, int(t_bus.max()) - int(t_bus.min()) + 1))
            run_bus = np.maximum.accumulate(t_bus + seg_id * big) - seg_id * big
            bus_end = S_io + run_bus
            extra = np.zeros(n, dtype=np.int64)
            extra[bus_order] = bus_end - f_s
            latency_sorted = latency_sorted + np.maximum(0, extra)

        latency = np.empty(n, dtype=np.int64)
        latency[order] = latency_sorted
        if refresh_delay is not None:
            latency += refresh_delay
        return latency

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_conflicts
        return self.row_hits / total if total else 0.0
