"""tREFI/tRFC refresh scheduling as a deterministic global time warp.

Every ``interval`` (tREFI) cycles, all banks of a region block for
``window`` (tRFC) cycles while the array refreshes: wall time
``[k*R, k*R + F)`` is dead for every period ``k``. Instead of nudging
*arrivals* out of the window (the old phase-offset model, which let a
request already in service sail straight through a refresh), the warp
maps wall time to *useful* time

    ``u(t) = k*(R - F) + max(0, (t - k*R) - F)``   with ``k = t // R``

runs the queueing recursion entirely on the useful clock — where banks
are never interrupted — and maps departures back with the inverse

    ``wall(u) = k*R + F + rem``  (``rem = u mod (R-F)``; ``k*R`` when
    ``rem == 0``, i.e. completion exactly at a period boundary)

This gives exact preempt/resume semantics: work crossing a window
boundary is suspended for tRFC and resumes, no matter whether the bank
was idle, queued, or mid-burst when the window opened. Because the warp
is a pure function of global time (not of per-call state), the fused
segmented fast path stays bit-identical to the stepwise oracle: warping
commutes with segment boundaries.

The same schedule prices refresh-vs-migration-copy contention: a swap
copy touching a refreshing region stalls for every window its transfer
overlaps (:meth:`RefreshSchedule.stretch`).
"""

from __future__ import annotations

import numpy as np

from ..config import DramTiming
from ..errors import ConfigError


class RefreshSchedule:
    """Pure-function time warp for one region's all-bank refresh.

    Stateless: both directions are closed-form in global time, so the
    object needs no checkpoint entry and is shared freely between the
    bank model, the vectorised fast model, and the migration engine.
    """

    __slots__ = ("interval", "window", "useful_per_period")

    def __init__(self, interval: int, window: int):
        if interval <= 0 or window <= 0:
            raise ConfigError("refresh interval and window must be positive")
        if window >= interval:
            raise ConfigError("refresh window must be shorter than its interval")
        self.interval = int(interval)       # tREFI (R)
        self.window = int(window)           # tRFC (F)
        self.useful_per_period = self.interval - self.window

    @classmethod
    def from_timing(cls, timing: DramTiming) -> "RefreshSchedule | None":
        """The region's schedule, or ``None`` when refresh is disabled."""
        if not timing.refresh_interval:
            return None
        return cls(timing.refresh_interval, timing.refresh_cycles)

    @property
    def overhead(self) -> float:
        """Duty-cycle fraction lost to refresh (tRFC / tREFI)."""
        return self.window / self.interval

    # ---- scalar ---------------------------------------------------------

    def useful(self, t: int) -> int:
        """Useful cycles elapsed by wall cycle ``t``."""
        k, pos = divmod(int(t), self.interval)
        return k * self.useful_per_period + max(0, pos - self.window)

    def wall(self, u: int, *, begin: bool = False) -> int:
        """Earliest wall cycle at which ``u`` useful cycles have elapsed.

        ``begin=False`` (completion semantics): work *finishing* exactly
        at a period boundary finishes at ``k*R``, just as the window
        opens. ``begin=True`` (start semantics): work *starting* there
        cannot begin until the window closes at ``k*R + F``.
        """
        k, rem = divmod(int(u), self.useful_per_period)
        if rem == 0 and not begin:
            return k * self.interval
        return k * self.interval + self.window + rem

    def stretch(self, start: int, useful_cycles: int) -> int:
        """Wall duration of ``useful_cycles`` of work starting at wall
        cycle ``start`` — the refresh-stall-inclusive busy window."""
        if useful_cycles <= 0:
            return 0
        return self.wall(self.useful(start) + useful_cycles) - int(start)

    # ---- vectorised -----------------------------------------------------

    def useful_np(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.int64)
        k, pos = np.divmod(t, np.int64(self.interval))
        pos -= np.int64(self.window)
        np.maximum(pos, 0, out=pos)
        k *= np.int64(self.useful_per_period)
        k += pos
        return k

    def wall_np(self, u: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`wall` with completion semantics."""
        u = np.asarray(u, dtype=np.int64)
        k, rem = np.divmod(u, np.int64(self.useful_per_period))
        k *= np.int64(self.interval)
        out = np.where(rem == 0, k, k + np.int64(self.window) + rem)
        return out
