"""Exception hierarchy for the ``repro`` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch a single base class at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class AddressError(ReproError):
    """An address is outside the configured physical space or misaligned."""


class TraceError(ReproError):
    """A trace file or trace chunk is malformed."""


class MigrationError(ReproError):
    """The migration state machine was driven into an illegal transition."""


class TranslationTableError(MigrationError):
    """The physical<->machine translation table invariants were violated."""


class SwapAbortError(MigrationError):
    """A swap plan aborted mid-execution (injected fault or torn update).

    ``recovered`` is True when the engine's data-safe late-abort path
    ran: every page the aborted plan displaced was copied back home from
    a surviving duplicate before the table rollback, so the restored
    routing points at live data everywhere. False means the bare
    rollback ran (``ResilienceConfig.data_safe_abort=False``, or the
    abort came from a table-level corruption) — routing is restored but
    data moved by the executed copy prefix may be dead.
    """

    def __init__(self, message: str, *, recovered: bool = False):
        super().__init__(message)
        self.recovered = recovered


class SimulationError(ReproError):
    """A simulator was misused (e.g. fed records out of time order)."""


class WorkloadError(ReproError):
    """Unknown workload name or invalid workload parameters."""


class FaultInjectionError(ReproError):
    """A deliberately injected fault fired (aborted swap, flipped bit, ...).

    Raised only by the resilience subsystem's fault hooks; production code
    paths never raise it spontaneously. The migration engine converts it
    into a :class:`MigrationError` after rolling the table back, so a
    campaign sees structured degradation instead of a torn state.
    """


class CheckpointError(ReproError):
    """A checkpoint file is missing, corrupt, or from an unknown version.

    Covers bad magic, unsupported format versions, payload digest
    mismatches (bit rot / truncation) and attempts to restore state into
    a simulator built from an incompatible configuration.
    """


class WatchdogError(SimulationError):
    """An epoch exceeded its configured cycle budget (runaway epoch).

    The per-epoch watchdog converts silently diverging simulations —
    e.g. a queue backlog growing without bound under a hostile trace —
    into a diagnosable error naming the epoch and the budget it blew.
    """


class CampaignError(ReproError):
    """A campaign (multi-task sweep) was misused or its manifest is bad.

    Raised for duplicate task ids, unknown manifest schema versions,
    and corrupt manifest files — never for an individual task failing;
    task failures are recorded in the campaign report instead.
    """


class TaskCrashError(CampaignError):
    """A campaign worker process died without reporting a result.

    Covers ``os._exit``, SIGKILL, OOM kills and interpreter aborts.
    Retryable by the default :class:`~repro.campaign.RetryPolicy`: a
    crash poisons only the attempt, not the campaign.
    """


class TaskTimeoutError(CampaignError):
    """A campaign task exceeded its wall-clock budget or went silent.

    Raised (and recorded) when a task blows its ``task_timeout`` or its
    worker stops heartbeating for longer than the heartbeat timeout.
    The supervisor kills the worker; the task is retried per policy.
    """


class TenancyError(ReproError):
    """The multi-tenant layer was misused.

    Raised for admission failures (no contiguous page window left for
    the requested footprint), duplicate or unknown tenant ids, traces
    addressing outside the tenant's declared footprint, and QoS policy
    misconfiguration. Table-level reclamation failures keep raising
    :class:`TranslationTableError` — this class covers the layer above.
    """


class AnalysisError(ReproError):
    """Static-analysis tooling failure (repro-lint, protocol checker).

    Raised for unusable inputs — an unparseable baseline file, an
    unknown rule name, a malformed swap plan handed to the model
    checker — never for findings or invariant violations, which are
    reported as data so callers can render counterexample traces.
    """
