"""Exception hierarchy for the ``repro`` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch a single base class at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class AddressError(ReproError):
    """An address is outside the configured physical space or misaligned."""


class TraceError(ReproError):
    """A trace file or trace chunk is malformed."""


class MigrationError(ReproError):
    """The migration state machine was driven into an illegal transition."""


class TranslationTableError(MigrationError):
    """The physical<->machine translation table invariants were violated."""


class SimulationError(ReproError):
    """A simulator was misused (e.g. fed records out of time order)."""


class WorkloadError(ReproError):
    """Unknown workload name or invalid workload parameters."""
