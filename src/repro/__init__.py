"""repro — heterogeneous main memory with on-chip memory controller support.

A full reproduction of Dong, Xie, Muralimanohar & Jouppi, *"Simple but
Effective Heterogeneous Main Memory with On-Chip Memory Controller
Support"* (SC 2010): the second-level address translation table, the
N / N-1 / Live Migration hottest-coldest swap algorithms, the
heterogeneity-aware memory controller, and every substrate the
evaluation needs (DDR3 timing with FR-FCFS, the L1-L3 hierarchy and the
tags-in-DRAM L4 cache model, synthetic workload traces, power model).

Quickstart::

    import repro
    from repro.workloads.registry import generate_trace

    cfg = repro.paper_config(algorithm="live", macro_page_bytes=repro.MB)
    system = repro.HeterogeneousMainMemory(cfg)
    result = system.run(generate_trace("pgbench", 500_000))
    print(f"avg latency {result.average_latency:.0f} cycles, "
          f"{result.onpkg_fraction:.0%} served on-package")
"""

from .config import (
    BusConfig,
    CacheHierarchyConfig,
    CacheLevelConfig,
    DramTiming,
    LatencyComponents,
    MigrationAlgorithm,
    MigrationConfig,
    PowerConfig,
    ResilienceConfig,
    SystemConfig,
    paper_config,
    scaled_config,
)
from .address import AddressMap
from .core import (
    BaselineKind,
    DetailedSimulator,
    EpochSimulator,
    HeterogeneousMainMemory,
    SimulationResult,
    baseline_latency,
    effectiveness,
)
from .campaign import (
    CampaignManifest,
    CampaignReport,
    CampaignSupervisor,
    CampaignTask,
    RetryPolicy,
)
from .datamodel import DataViolation, ShadowMemory
from .errors import (
    CampaignError,
    CheckpointError,
    FaultInjectionError,
    ReproError,
    SwapAbortError,
    TaskCrashError,
    TaskTimeoutError,
    TenancyError,
    WatchdogError,
)
from .tenancy import (
    CrossTenantViolation,
    HotSetAwarePolicy,
    IsolationOracle,
    MultiTenantSimulator,
    ProportionalSharePolicy,
    StaticQuotaPolicy,
    TenantDomain,
    TenantMetrics,
    TenantRegistry,
    TenantScheduler,
    TenantSpec,
)
from .resilience import (
    DegradationEvent,
    FaultKind,
    FaultPlan,
    load_checkpoint,
    run_resumable,
    save_checkpoint,
)
from .units import GB, KB, MB

__version__ = "1.0.0"

__all__ = [
    "AddressMap",
    "BaselineKind",
    "BusConfig",
    "CacheHierarchyConfig",
    "CacheLevelConfig",
    "CampaignError",
    "CampaignManifest",
    "CampaignReport",
    "CampaignSupervisor",
    "CampaignTask",
    "CheckpointError",
    "CrossTenantViolation",
    "DataViolation",
    "DegradationEvent",
    "DetailedSimulator",
    "DramTiming",
    "EpochSimulator",
    "FaultInjectionError",
    "FaultKind",
    "FaultPlan",
    "GB",
    "HeterogeneousMainMemory",
    "HotSetAwarePolicy",
    "IsolationOracle",
    "KB",
    "LatencyComponents",
    "MB",
    "MigrationAlgorithm",
    "MigrationConfig",
    "MultiTenantSimulator",
    "PowerConfig",
    "ProportionalSharePolicy",
    "ReproError",
    "ResilienceConfig",
    "RetryPolicy",
    "ShadowMemory",
    "SimulationResult",
    "StaticQuotaPolicy",
    "SwapAbortError",
    "SystemConfig",
    "TaskCrashError",
    "TaskTimeoutError",
    "TenancyError",
    "TenantDomain",
    "TenantMetrics",
    "TenantRegistry",
    "TenantScheduler",
    "TenantSpec",
    "WatchdogError",
    "baseline_latency",
    "effectiveness",
    "load_checkpoint",
    "paper_config",
    "run_resumable",
    "save_checkpoint",
    "scaled_config",
]
