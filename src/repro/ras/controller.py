"""The runtime RAS orchestrator wired into the epoch simulator.

Once per epoch boundary (stepwise loop only — an enabled RAS subsystem
disables the fused fast path) the controller:

1. folds the epoch's off-package demand writes into the wear model;
2. draws background CE arrivals (seeded Bernoulli per usable frame) and
   charges their inline-correction cycles;
3. applies any ``CE_BURST`` faults the fault plan scheduled;
4. when a patrol pass is due, issues timing-visible scrub reads through
   the on-package FR-FCFS model (sharing bank state with the demand
   stream, so scrub-vs-demand contention is real) and surfaces any
   latent CEs parked by ``SCRUB_LATENT`` faults;
5. retires any frame whose leaky bucket crossed its threshold — the
   engine copies the data out under stall and the translation table
   shrinks by one usable slot (graceful degradation) — or records a
   ``retirement-suppressed`` event when policy forbids it;
6. appends the epoch's usable-frame count, capacity and η to the
   capacity series reported in :func:`repro.stats.report.ras_table`.

Retirement policy (enforced here, not in the engine): never the empty
slot, never below ``min_usable_frames`` usable frames, never without a
free spare, never while quarantined; a swap in flight just defers the
retirement to the next epoch (the bucket is kept).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import SystemConfig
from ..migration.table import EMPTY
from ..resilience.degradation import RETIREMENT_SUPPRESSED, DegradationEvent
from .scrub import PatrolScrubber
from .telemetry import CETelemetry
from .wear import WearModel


@dataclass(frozen=True)
class RetirementEvent:
    """One predictive frame retirement."""

    epoch: int
    time: int
    slot: int
    spare: int
    #: the leaky-bucket level that crossed the threshold
    level: float


@dataclass
class RasReport:
    """Picklable RAS summary attached to a ``SimulationResult``."""

    frames_total: int = 0
    frames_retired: int = 0
    frames_usable: int = 0
    spares_total: int = 0
    spares_remaining: int = 0
    retirements: list[RetirementEvent] = field(default_factory=list)
    retirements_suppressed: int = 0
    ce_demand: int = 0
    ce_scrub: int = 0
    ce_burst: int = 0
    ce_cycles: int = 0
    scrub_passes: int = 0
    scrub_reads: int = 0
    scrub_cycles: int = 0
    wear_total_writes: int = 0
    wear_max_page_writes: int = 0
    #: per-epoch ``(epoch, usable_frames, capacity_bytes, eta)``; η is
    #: the epoch's on-package service fraction, recomputed as capacity
    #: shrinks
    capacity_series: list[tuple[int, int, int, float]] = field(
        default_factory=list
    )


class RasController:
    """Per-run RAS state machine (one per ``EpochSimulator``)."""

    def __init__(self, config: SystemConfig, engine, controller):
        self.ras = config.ras
        self.engine = engine
        self.controller = controller
        self.amap = engine.amap
        self.n_frames = self.amap.n_onpkg_pages
        self.telemetry = CETelemetry(
            self.n_frames,
            threshold=self.ras.ce_threshold,
            leak=self.ras.ce_leak,
        )
        self.scrubber = PatrolScrubber(
            self.n_frames,
            interval_epochs=self.ras.scrub_interval_epochs,
            frames_per_pass=self.ras.scrub_frames_per_pass,
            stride_bytes=self.ras.scrub_stride_bytes,
            page_bytes=self.amap.macro_page_bytes,
        )
        self.wear = WearModel(
            self.amap.n_total_pages,
            penalty_weight=self.ras.wear_penalty,
            window=self.ras.wear_window,
        )
        engine.wear = self.wear
        #: unused spares, allocated in ascending machine-page order
        self.spare_pool: list[int] = sorted(
            self.ras.reserved_pages(self.amap)
        )
        self.events: list[RetirementEvent] = []
        self.suppressed = 0
        self.ce_cycles = 0
        self.capacity_series: list[tuple[int, int, int, float]] = []
        #: frames hit by CE_BURST faults since the last epoch boundary
        self._pending_bursts: list[int] = []
        #: frames that crossed the threshold while a swap was in flight;
        #: retried every epoch even though the bucket keeps leaking
        self._pending_retire: list[int] = []

    # ------------------------------------------------------------------
    # fault-plan entry points (no-ops resolve in the simulator when RAS
    # is disabled — these are only reached with a live controller)
    # ------------------------------------------------------------------
    def _usable_frame(self, param: int) -> int | None:
        usable = np.flatnonzero(~self.engine.table.retired)
        if usable.size == 0:
            return None
        return int(usable[int(param) % usable.size])

    def inject_burst(self, param: int) -> None:
        """A ``CE_BURST`` fault: the target frame's bucket jumps straight
        past the retirement threshold at the next epoch boundary."""
        frame = self._usable_frame(param)
        if frame is not None:
            self._pending_bursts.append(frame)

    def inject_latent(self, param: int) -> None:
        """A ``SCRUB_LATENT`` fault: a CE parked in an idle frame; only
        the patrol scrubber's next pass over it feeds the telemetry."""
        frame = self._usable_frame(param)
        if frame is not None:
            self.scrubber.plant_latent(frame)

    # ------------------------------------------------------------------
    # the per-epoch hook
    # ------------------------------------------------------------------
    def end_epoch(
        self,
        epoch_index: int,
        now: int,
        *,
        machine: np.ndarray,
        on: np.ndarray,
        writes: np.ndarray,
        n_on: int,
        n_total: int,
    ) -> int:
        """Run the RAS pipeline at one epoch boundary; returns the extra
        cycles charged to the epoch (CE corrections + scrub traffic; a
        retirement's copy-out is charged through the engine's stall
        window like any migration)."""
        extra = 0
        table = self.engine.table
        self.wear.observe_demand(machine[writes & ~on])

        usable = np.flatnonzero(~table.retired)
        if self.ras.ce_base_rate > 0 and usable.size:
            rng = np.random.default_rng((self.ras.seed, epoch_index))
            hits = usable[rng.random(usable.size) < self.ras.ce_base_rate]
            for frame in hits.tolist():
                self.telemetry.record(frame, 1, source="demand")
            extra += int(hits.size) * self.ras.ce_cost_cycles

        for frame in self._pending_bursts:
            if not table.retired[frame]:
                self.telemetry.record(
                    frame, self.ras.ce_threshold, source="burst"
                )
                extra += self.ras.ce_cost_cycles
        self._pending_bursts.clear()

        if self.scrubber.due(epoch_index) and usable.size:
            extra += self._scrub_pass(now, usable)

        self._retire_pass(epoch_index, now)
        self.telemetry.decay()

        self.ce_cycles += extra
        n_usable = table.n_usable_slots
        eta = n_on / n_total if n_total else 0.0
        self.capacity_series.append(
            (epoch_index, n_usable, n_usable * self.amap.macro_page_bytes, eta)
        )
        return extra

    def _scrub_pass(self, now: int, usable: np.ndarray) -> int:
        """Issue one patrol pass's reads through the FR-FCFS model."""
        frames = self.scrubber.next_frames(usable)
        if not frames:
            return 0
        n_reads = self.scrubber.reads_per_frame
        machine = np.repeat(np.asarray(frames, dtype=np.int64), n_reads)
        offsets = np.tile(
            np.arange(n_reads, dtype=np.int64) * self.scrubber.stride_bytes,
            len(frames),
        )
        local = self.controller.router.onpkg_local_address(machine, offsets)
        times = np.full(machine.shape, now, dtype=np.int64)
        latency = self.controller.onpkg_model.access_latency(
            local, times, np.zeros(machine.shape, dtype=bool)
        )
        cycles = int(latency.sum())
        latent = 0
        for frame in frames:
            count = self.scrubber.latent.pop(frame, 0)
            if count:
                self.telemetry.record(frame, count, source="scrub")
                latent += count
        self.scrubber.passes += 1
        self.scrubber.reads += int(machine.size)
        self.scrubber.cycles += cycles
        return cycles + latent * self.ras.ce_cost_cycles

    def _retire_pass(self, epoch_index: int, now: int) -> None:
        table = self.engine.table
        candidates = list(
            dict.fromkeys(self._pending_retire + self.telemetry.over_threshold())
        )
        self._pending_retire = []
        for frame in candidates:
            if table.retired[frame]:
                self.telemetry.reset_frame(frame)
                continue
            if self.engine.active is not None and self.engine.active.in_flight(now):
                # a swap is mid-flight: defer to the next boundary (the
                # pending list survives the bucket's leak)
                self._pending_retire.append(frame)
                continue
            level = float(self.telemetry.level[frame])
            reason = None
            if self.engine.quarantined:
                reason = "engine quarantined (static mapping)"
            elif not self.spare_pool:
                reason = "no spare machine pages left"
            elif table.n_usable_slots - 1 < self.ras.min_usable_frames:
                reason = (
                    f"would drop below min_usable_frames="
                    f"{self.ras.min_usable_frames}"
                )
            elif table.page_in_slot(frame) == EMPTY:
                reason = "frame is the empty slot (the N-1 design needs it)"
            if reason is not None:
                self.suppressed += 1
                self.telemetry.reset_frame(frame)
                self.engine.degradation_events.append(
                    DegradationEvent(
                        time=now, epoch=self.engine.epochs_observed,
                        kind=RETIREMENT_SUPPRESSED,
                        detail=(
                            f"frame {frame} over CE threshold "
                            f"(bucket {level:.1f}): {reason}"
                        ),
                        recovered=True,
                    )
                )
                continue
            spare = self.spare_pool[0]
            self.engine.retire_frame(now, frame, spare)
            self.spare_pool.pop(0)
            self.telemetry.reset_frame(frame)
            self.events.append(
                RetirementEvent(
                    epoch=epoch_index, time=now, slot=frame, spare=spare,
                    level=level,
                )
            )

    # ------------------------------------------------------------------
    def report(self) -> RasReport:
        table = self.engine.table
        return RasReport(
            frames_total=self.n_frames,
            frames_retired=table.n_retired,
            frames_usable=table.n_usable_slots,
            spares_total=self.ras.spare_pages,
            spares_remaining=len(self.spare_pool),
            retirements=list(self.events),
            retirements_suppressed=self.suppressed,
            ce_demand=self.telemetry.ce_demand,
            ce_scrub=self.telemetry.ce_scrub,
            ce_burst=self.telemetry.ce_burst,
            ce_cycles=self.ce_cycles,
            scrub_passes=self.scrubber.passes,
            scrub_reads=self.scrubber.reads,
            scrub_cycles=self.scrubber.cycles,
            wear_total_writes=self.wear.total_writes,
            wear_max_page_writes=self.wear.max_page_writes,
            capacity_series=list(self.capacity_series),
        )

    # -- checkpoint support ------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "telemetry": self.telemetry.state_dict(),
            "scrubber": self.scrubber.state_dict(),
            "wear": self.wear.state_dict(),
            "spare_pool": list(self.spare_pool),
            "events": list(self.events),
            "suppressed": self.suppressed,
            "ce_cycles": self.ce_cycles,
            "capacity_series": list(self.capacity_series),
            "pending_bursts": list(self._pending_bursts),
            "pending_retire": list(self._pending_retire),
        }

    def load_state_dict(self, state: dict) -> None:
        self.telemetry.load_state_dict(state["telemetry"])
        self.scrubber.load_state_dict(state["scrubber"])
        self.wear.load_state_dict(state["wear"])
        self.spare_pool = list(state["spare_pool"])
        self.events = list(state["events"])
        self.suppressed = state["suppressed"]
        self.ce_cycles = state["ce_cycles"]
        self.capacity_series = list(state["capacity_series"])
        self._pending_bursts = list(state["pending_bursts"])
        self._pending_retire = list(state["pending_retire"])
        # the engine's wear hook survives restore (same object)
        self.engine.wear = self.wear
