"""Per-frame correctable-error (CE) telemetry with leaky buckets.

DRAM rows about to fail hard almost always announce themselves first as
a *cluster* of correctable errors. The controller therefore keeps one
leaky bucket per on-package frame: every CE adds to the frame's level,
every epoch leaks ``leak`` back out, and a frame whose level reaches
``threshold`` is flagged for predictive retirement. Isolated background
CEs drain away; only genuinely decaying rows cross the threshold.
"""

from __future__ import annotations

import numpy as np

#: where a CE was observed (the counters are reported separately)
SOURCES = ("demand", "scrub", "burst")


class CETelemetry:
    """Leaky-bucket CE counters over the on-package frames."""

    def __init__(self, n_frames: int, *, threshold: int, leak: float):
        self.n_frames = int(n_frames)
        self.threshold = int(threshold)
        self.leak = float(leak)
        #: current bucket level per frame (floats: the leak is fractional)
        self.level = np.zeros(self.n_frames, dtype=np.float64)
        #: lifetime CE count per frame (never leaks; for reporting)
        self.lifetime = np.zeros(self.n_frames, dtype=np.int64)
        self.ce_demand = 0
        self.ce_scrub = 0
        self.ce_burst = 0

    def record(self, frame: int, count: int = 1, *, source: str = "demand") -> None:
        """``count`` CEs observed on ``frame`` via ``source``."""
        self.level[frame] += count
        self.lifetime[frame] += count
        if source == "scrub":
            self.ce_scrub += count
        elif source == "burst":
            self.ce_burst += count
        else:
            self.ce_demand += count

    def decay(self) -> None:
        """One epoch's leak (call once per epoch, after threshold checks)."""
        np.maximum(self.level - self.leak, 0.0, out=self.level)

    def over_threshold(self) -> list[int]:
        """Frames whose bucket has reached the retirement threshold."""
        return [int(f) for f in np.flatnonzero(self.level >= self.threshold)]

    def reset_frame(self, frame: int) -> None:
        """Drain one frame's bucket (it was retired, or its retirement
        was suppressed and should not re-fire every epoch)."""
        self.level[frame] = 0.0

    @property
    def total(self) -> int:
        return self.ce_demand + self.ce_scrub + self.ce_burst

    # -- checkpoint support ------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "level": self.level.copy(),
            "lifetime": self.lifetime.copy(),
            "ce_demand": self.ce_demand,
            "ce_scrub": self.ce_scrub,
            "ce_burst": self.ce_burst,
        }

    def load_state_dict(self, state: dict) -> None:
        self.level = state["level"].copy()
        self.lifetime = state["lifetime"].copy()
        self.ce_demand = state["ce_demand"]
        self.ce_scrub = state["ce_scrub"]
        self.ce_burst = state["ce_burst"]
