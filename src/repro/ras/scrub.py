"""Patrol-scrub scheduling: which frames to read, and when.

A patrol scrubber walks the on-package frames in the background,
reading every sub-block so ECC gets a chance to see (and the telemetry
to count) latent errors in rows the demand stream never touches. This
module is pure scheduling — the RAS controller issues the actual reads
through the FR-FCFS timing model so scrub-vs-demand contention is
charged like any other background traffic.
"""

from __future__ import annotations

import numpy as np


class PatrolScrubber:
    """Round-robin scrub cursor over the usable on-package frames."""

    def __init__(
        self,
        n_frames: int,
        *,
        interval_epochs: int,
        frames_per_pass: int,
        stride_bytes: int,
        page_bytes: int,
    ):
        self.n_frames = int(n_frames)
        self.interval_epochs = int(interval_epochs)
        self.frames_per_pass = int(frames_per_pass)
        self.stride_bytes = int(stride_bytes)
        #: reads needed to cover one frame at the configured stride
        self.reads_per_frame = max(1, page_bytes // stride_bytes)
        #: next frame id the cursor would scrub (skips retired frames)
        self.cursor = 0
        self.passes = 0
        self.reads = 0
        self.cycles = 0
        #: frame -> latent CE count parked there by SCRUB_LATENT faults;
        #: only a scrub pass over the frame surfaces them
        self.latent: dict[int, int] = {}

    def due(self, epoch_index: int) -> bool:
        return (
            self.interval_epochs > 0
            and (epoch_index + 1) % self.interval_epochs == 0
        )

    def plant_latent(self, frame: int, count: int = 1) -> None:
        self.latent[frame] = self.latent.get(frame, 0) + count

    def next_frames(self, usable: np.ndarray) -> list[int]:
        """The frames this pass covers, advancing the cursor.

        ``usable`` is the sorted array of non-retired frame ids; the
        cursor keeps its absolute position so retiring a frame mid-run
        just drops it from the rotation.
        """
        if usable.size == 0:
            return []
        k = min(self.frames_per_pass, int(usable.size))
        start = int(np.searchsorted(usable, self.cursor)) % usable.size
        frames = [int(usable[(start + i) % usable.size]) for i in range(k)]
        self.cursor = (frames[-1] + 1) % self.n_frames
        return frames

    def collect_latents(self, frames: list[int]) -> int:
        """Latent CEs surfaced by scrubbing ``frames`` (removed here)."""
        return sum(self.latent.pop(f, 0) for f in frames)

    # -- checkpoint support ------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "cursor": self.cursor,
            "passes": self.passes,
            "reads": self.reads,
            "cycles": self.cycles,
            "latent": dict(self.latent),
        }

    def load_state_dict(self, state: dict) -> None:
        self.cursor = state["cursor"]
        self.passes = state["passes"]
        self.reads = state["reads"]
        self.cycles = state["cycles"]
        self.latent = dict(state["latent"])
