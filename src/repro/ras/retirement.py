"""Copy plan for predictively retiring one on-package frame.

Retiring slot ``r`` must preserve every page's single live copy while
removing the frame from the pairing invariant for good:

* identity (``pair[r] == r``): page ``r``'s data sits in the dying
  frame; one copy moves it to the reserved spare machine page.
* transposition (``pair[r] == q``): the frame holds migrated page
  ``q``'s data, and page ``r``'s data sits at machine page ``q``. Page
  ``r`` moves to the spare *first* (its source ``mach q`` is about to
  be overwritten), then page ``q`` moves home from the dying frame.

Both the runtime engine (:meth:`repro.migration.engine.MigrationEngine.
retire_frame`) and the protocol model checker's ``CE_BURST`` scenarios
build their moves here, so the checker verifies exactly the copies the
engine performs — the same single-source discipline as
:mod:`repro.migration.recovery`.
"""

from __future__ import annotations

from ..errors import MigrationError
from ..migration.algorithms import CopyStep
from ..migration.table import EMPTY, TranslationTable


def retirement_moves(
    table: TranslationTable, slot: int, spare: int, page_bytes: int
) -> list[CopyStep]:
    """The ordered copies that empty ``slot`` into ``spare`` and (for a
    transposition) send its occupant home. Validates the same
    preconditions :meth:`TranslationTable.retire_slot` enforces, so a
    caller failing here has mutated nothing."""
    if table.retired[slot]:
        raise MigrationError(f"slot {slot} is already retired")
    if spare not in table.reserved_pages:
        raise MigrationError(f"page {spare} is not a reserved spare page")
    if spare in table.remap.values():
        raise MigrationError(f"spare page {spare} already in use")
    if bool(table.p_bit[slot]) or bool(table.f_bit[slot]):
        raise MigrationError(f"slot {slot} is mid-swap")
    occupant = table.page_in_slot(slot)
    if occupant == EMPTY:
        raise MigrationError("cannot retire the empty slot")
    # identity-home test: occupant == slot means the slot still holds its
    # natively-homed page, so retirement needs only the one spare copy
    if occupant == slot:  # repro-lint: disable=domain-confusion
        return [
            CopyStep(
                f"retire frame {slot}: page {slot} -> spare mach {spare}",
                page_bytes,
                cross_boundary=True,
                src=("slot", slot),
                dst=("mach", spare),
            )
        ]
    return [
        # page `slot`'s data first: its source is the occupant's home
        # machine page, which the second copy overwrites
        CopyStep(
            f"retire frame {slot}: page {slot} mach {occupant} -> "
            f"spare mach {spare}",
            page_bytes,
            cross_boundary=True,
            src=("mach", occupant),
            dst=("mach", spare),
        ),
        CopyStep(
            f"retire frame {slot}: occupant page {occupant} -> "
            f"home mach {occupant}",
            page_bytes,
            cross_boundary=True,
            src=("slot", slot),
            dst=("mach", occupant),
        ),
    ]
