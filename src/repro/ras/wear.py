"""Off-package write-endurance counters and the wear-leveling penalty.

MigrantStore's observation (PAPERS.md): migration traffic, not demand
traffic, dominates writes to the slow tier, so endurance-aware
placement must charge the *swaps* — every demotion rewrites a whole
macro page onto some machine frame. The model keeps a lifetime write
counter per machine page (demand writes count one cache line each,
copies count their full size) and exposes a penalty the migration
engine subtracts from swap-candidate scores: a candidate whose machine
frame is already worn loses the swap to a slightly-colder page on a
fresher frame, spreading migration writes across the array.
"""

from __future__ import annotations

import numpy as np

#: one demand write wears one cache line
LINE_BYTES = 64


class WearModel:
    """Lifetime write counters over every machine page."""

    def __init__(
        self, n_machine_pages: int, *, penalty_weight: float, window: int
    ):
        self.penalty_weight = float(penalty_weight)
        self.window = int(window)
        #: line-sized write equivalents absorbed by each machine page
        self.writes = np.zeros(int(n_machine_pages), dtype=np.int64)

    def observe_demand(self, machine_pages: np.ndarray) -> None:
        """One epoch's off-package demand-write machine pages."""
        pages = np.asarray(machine_pages, dtype=np.int64)
        if pages.size:
            np.add.at(self.writes, pages, 1)

    def observe_copy(self, machine_page: int, nbytes: int) -> None:
        """A migration/retirement copy landed on ``machine_page``."""
        self.writes[machine_page] += max(1, nbytes // LINE_BYTES)

    def penalty(self, machine_pages: np.ndarray) -> np.ndarray:
        """Score penalty per machine page: ``weight`` per ``window``
        lifetime writes (the units of the swap trigger's epoch counts)."""
        pages = np.asarray(machine_pages, dtype=np.int64)
        return self.penalty_weight * self.writes[pages] / self.window

    @property
    def total_writes(self) -> int:
        return int(self.writes.sum())

    @property
    def max_page_writes(self) -> int:
        return int(self.writes.max()) if self.writes.size else 0

    # -- checkpoint support ------------------------------------------------
    def state_dict(self) -> dict:
        return {"writes": self.writes.copy()}

    def load_state_dict(self, state: dict) -> None:
        self.writes = state["writes"].copy()
