"""Row-disturbance (rowhammer) telemetry and the mitigation ladder.

DRAM rows activated at a high rate between refreshes disturb the charge
in their physically adjacent wordlines; with the paper's on-chip memory
controller the activation stream is visible *per row*, so the
controller can track it and act before victim rows decay. This module
is the runtime orchestrator for that loop:

1. **Telemetry** — every epoch, demand accesses are decomposed through
   each region's :class:`~repro.dram.timing.DramGeometry` into
   ``(queue, row)`` streams; a row-buffer change in a queue is one
   activation. A leaky bucket per ``(tier, queue, row)`` accumulates
   activations (:class:`ActivationTelemetry`, the per-row analogue of
   :class:`~repro.ras.telemetry.CETelemetry`).
2. **Alert** — rows whose bucket reaches ``alert_level *
   act_threshold`` enter the mitigation ladder.
3. **Mitigation ladder** (``mitigate=True``):

   * *victim refresh* — up to ``victim_refresh_max`` times per row the
     neighbour rows are refreshed with timing-visible reads through the
     region's FR-FCFS model (the patrol-scrub idiom: contention with
     demand traffic is real);
   * *escalation* — past the budget the controller throttles the
     channel (``throttle_cycles``) and takes the aggressor out of the
     hot bank: an on-package aggressor's frame is pumped into the RAS
     CE telemetry (predictive retirement takes it off-line), an
     off-package aggressor's physical page gets a migration-pressure
     boost so :meth:`~repro.migration.policies.EpochMonitor.hottest_page`
     pulls it on-package — migration as mitigation.

4. **Unmitigated flips** (``mitigate=False``) — a bucket that reaches
   ``act_threshold`` corrupts seeded victim-row sub-blocks in the
   data-content shadow memory; a later demand read or the final
   ``verify_table`` sweep surfaces them as data violations (never
   silent).

Everything is gated behind ``DisturbConfig(enabled=False)``: the
default configuration is bit-identical to a build without this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import SystemConfig
from ..resilience.degradation import (
    HAMMER_THROTTLED,
    ROW_DISTURB_FLIPS,
    VICTIM_REFRESHED,
    DegradationEvent,
)
from ..units import log2_exact

#: bucket keys are ``(tier, queue, row)``; tiers sort "off" < "on"
_TIERS = ("off", "on")
_ROW_BITS = 32


def activation_events(
    queues: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Which accesses of one epoch opened a row (vectorised).

    Returns ``(act, order)``: ``order`` stable-sorts the accesses by
    queue (preserving time order within a queue, since epochs are fed
    time-sorted) and ``act[i]`` flags whether sorted access ``i`` hit a
    different row than its predecessor in the same queue. The first
    access per queue counts as an activation even if the row was left
    open by the previous epoch — a deliberate, bounded over-count (one
    per queue per epoch) that errs toward detecting hammering.
    """
    order = np.argsort(queues, kind="stable")
    q = queues[order]
    r = rows[order]
    act = np.empty(q.shape[0], dtype=bool)
    if act.size:
        act[0] = True
        np.logical_or(q[1:] != q[:-1], r[1:] != r[:-1], out=act[1:])
    return act, order


class ActivationTelemetry:
    """Leaky-bucket activation counters, dict-sparse over active rows.

    Unlike the dense per-frame CE buckets, row space is huge and almost
    entirely idle, so levels live in a dict keyed by
    ``(tier, queue, row)`` and fully-leaked rows are dropped.
    """

    def __init__(self, *, threshold: int, leak: float):
        self.threshold = int(threshold)
        self.leak = float(leak)
        self.level: dict[tuple[str, int, int], float] = {}
        self.total_activations = 0

    def fold(
        self, tier: str, queues: np.ndarray, rows: np.ndarray,
        counts: np.ndarray,
    ) -> None:
        """Add one epoch's per-row activation counts for ``tier``."""
        level = self.level
        for q, r, c in zip(queues.tolist(), rows.tolist(), counts.tolist()):
            key = (tier, q, r)
            level[key] = level.get(key, 0.0) + c
        self.total_activations += int(counts.sum())

    def bump(self, key: tuple[str, int, int], count: float) -> None:
        """One injected hammer burst lands on ``key``."""
        self.level[key] = self.level.get(key, 0.0) + count

    def over(self, at_level: float) -> list[tuple[str, int, int]]:
        """Keys at or above ``at_level``, sorted for determinism."""
        return sorted(k for k, v in self.level.items() if v >= at_level)

    def reset(self, key: tuple[str, int, int]) -> None:
        self.level.pop(key, None)

    def decay(self) -> None:
        """One epoch's leak (call once per epoch, after threshold checks)."""
        if self.leak <= 0:
            return
        level = self.level
        for key in list(level):
            v = level[key] - self.leak
            if v <= 0.0:
                del level[key]
            else:
                level[key] = v

    # -- checkpoint support ------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "level": dict(self.level),
            "total_activations": self.total_activations,
        }

    def load_state_dict(self, state: dict) -> None:
        self.level = dict(state["level"])
        self.total_activations = state["total_activations"]


@dataclass
class DisturbReport:
    """Picklable disturbance summary attached to a ``SimulationResult``."""

    activations_total: int = 0
    rows_tracked: int = 0
    hammer_bursts: int = 0
    alerts: int = 0
    victim_refreshes: int = 0
    victim_refresh_cycles: int = 0
    throttles: int = 0
    throttle_cycles: int = 0
    #: on-package aggressor frames pumped into RAS CE telemetry
    retirements_pumped: int = 0
    #: off-package aggressor pages given a migration-pressure boost
    pressure_boosts: int = 0
    #: unmitigated threshold crossings that landed bit flips
    flip_bursts: int = 0
    #: victim sub-blocks holding live data that were corrupted
    flip_cells: int = 0
    #: per-epoch ``(epoch, tracked_rows, max_bucket)`` telemetry trace
    bucket_series: list[tuple[int, int, float]] = field(default_factory=list)


class DisturbController:
    """Per-run row-disturbance state machine (one per ``EpochSimulator``)."""

    def __init__(self, config: SystemConfig, engine, controller):
        self.cfg = config.disturb
        self.engine = engine
        self.controller = controller
        self.amap = engine.amap
        self.telemetry = ActivationTelemetry(
            threshold=self.cfg.act_threshold, leak=self.cfg.act_leak
        )
        self._geo = {
            "on": controller.onpkg_model.device.geometry,
            "off": controller.offpkg_model.device.geometry,
        }
        self._region_bytes = {
            "on": self.amap.n_onpkg_pages * self.amap.macro_page_bytes,
            "off": (self.amap.n_total_pages - self.amap.n_onpkg_pages)
            * self.amap.macro_page_bytes,
        }
        self._sb_shift = log2_exact(self.amap.subblock_bytes)
        #: per-physical-page hammer pressure; halves every epoch and
        #: feeds :meth:`page_bonus` when ``migration_bias`` is set
        self.pressure = np.zeros(self.amap.n_total_pages, dtype=np.float64)
        #: victim refreshes already spent per aggressor row
        self._victim_budget: dict[tuple[str, int, int], int] = {}
        #: last physical page seen activating each off-package row
        self._aggressor_page: dict[tuple[str, int, int], int] = {}
        #: ROW_DISTURB fault params awaiting an epoch with activity
        self._pending: list[int] = []
        #: RAS controller (wired by the simulator when both are enabled)
        self.ras = None
        #: data-content shadow (wired by the simulator under track_data)
        self.shadow = None
        self.bursts_applied = 0
        self.alerts = 0
        self.victim_refreshes = 0
        self.victim_refresh_cycles = 0
        self.throttles = 0
        self.throttle_cycles = 0
        self.retirements_pumped = 0
        self.pressure_boosts = 0
        self.flip_bursts = 0
        self.flip_cells = 0
        self.bucket_series: list[tuple[int, int, float]] = []
        engine.disturb = self

    # ------------------------------------------------------------------
    # swap-policy bias hooks (consumed by MigrationEngine._evaluate_swap)
    # ------------------------------------------------------------------
    @property
    def bias_weight(self) -> float:
        return self.cfg.migration_bias

    def page_bonus(self, pages: np.ndarray) -> np.ndarray:
        """Score bonus pulling hammer-pressured pages on-package."""
        idx = np.asarray(pages, dtype=np.int64)
        return self.cfg.migration_bias * self.pressure[idx]

    # ------------------------------------------------------------------
    # fault-plan entry point
    # ------------------------------------------------------------------
    def inject_hammer(self, param: int) -> None:
        """A ``ROW_DISTURB`` fault: at the next epoch boundary the
        selected active row's bucket jumps straight past the threshold."""
        self._pending.append(int(param))

    # ------------------------------------------------------------------
    # the per-epoch hook
    # ------------------------------------------------------------------
    def end_epoch(
        self,
        epoch_index: int,
        now: int,
        *,
        pages: np.ndarray,
        machine: np.ndarray,
        on: np.ndarray,
        offsets: np.ndarray,
    ) -> int:
        """Fold one epoch's activations and run the mitigation ladder;
        returns the extra cycles charged to the epoch (victim-refresh
        traffic + throttling)."""
        cfg = self.cfg
        on_mask = np.asarray(on, dtype=bool)
        epoch_keys: list[tuple[str, int, int]] = []
        for tier in _TIERS:
            idx = np.flatnonzero(on_mask if tier == "on" else ~on_mask)
            if idx.size == 0:
                continue
            router = self.controller.router
            if tier == "on":
                local = router.onpkg_local_address(machine[idx], offsets[idx])
            else:
                local = router.offpkg_local_address(machine[idx], offsets[idx])
            queues, rows = self._geo[tier].queues_and_rows(local)
            act, order = activation_events(queues, rows)
            act_sub = order[act]  # indices into the idx-subset arrays
            q_act = queues[act_sub]
            r_act = rows[act_sub]
            combo = (q_act.astype(np.int64) << _ROW_BITS) | r_act
            uq, counts = np.unique(combo, return_counts=True)
            qs = uq >> _ROW_BITS
            rs = uq & ((1 << _ROW_BITS) - 1)
            self.telemetry.fold(tier, qs, rs, counts)
            epoch_keys.extend(
                (tier, int(q), int(r))
                for q, r in zip(qs.tolist(), rs.tolist())
            )
            if tier == "off":
                agg = np.asarray(pages)[idx[act_sub]]
                np.add.at(self.pressure, agg, 1.0)
                for q, r, p in zip(
                    q_act.tolist(), r_act.tolist(), agg.tolist()
                ):
                    self._aggressor_page[("off", q, r)] = int(p)

        if self._pending and epoch_keys:
            keys = sorted(set(epoch_keys))
            for param in self._pending:
                self.telemetry.bump(
                    keys[param % len(keys)], float(cfg.act_threshold)
                )
                self.bursts_applied += 1
            self._pending.clear()

        extra = 0
        alert_at = cfg.alert_level * cfg.act_threshold
        for key in self.telemetry.over(alert_at):
            level = self.telemetry.level[key]
            self.alerts += 1
            if not cfg.mitigate:
                if level >= cfg.act_threshold:
                    self._land_flips(key, level, epoch_index, now)
                    self.telemetry.reset(key)
                continue
            spent = self._victim_budget.get(key, 0)
            if spent < cfg.victim_refresh_max:
                self._victim_budget[key] = spent + 1
                extra += self._victim_refresh(key, level, epoch_index, now)
            else:
                extra += self._escalate(key, level, epoch_index, now)
            self.telemetry.reset(key)

        self.telemetry.decay()
        self.pressure *= 0.5
        max_bucket = max(self.telemetry.level.values(), default=0.0)
        self.bucket_series.append(
            (epoch_index, len(self.telemetry.level), float(max_bucket))
        )
        return extra

    # ------------------------------------------------------------------
    # row geometry
    # ------------------------------------------------------------------
    def _row_chunks(
        self, tier: str, queue: int, row: int
    ) -> list[tuple[tuple[str, int], int, int]]:
        """The sub-block-granular pieces of one physical row.

        Returns ``(location, local_address, subblock)`` triples —
        ``location`` in shadow-memory form. Rows past the region's
        populated capacity yield nothing.
        """
        if row < 0:
            return []
        geo = self._geo[tier]
        timing = geo.timing
        bank = queue % timing.n_banks
        channel = queue // timing.n_banks
        base = (
            (row * timing.n_banks + bank) * timing.n_channels + channel
        ) * geo.row_bytes
        end = min(base + geo.row_bytes, self._region_bytes[tier])
        if base >= end:
            return []
        macro = self.amap.macro_page_bytes
        step = min(self.amap.subblock_bytes, geo.row_bytes)
        out = []
        for addr in range(base, end, step):
            local_page = addr >> self.amap.offset_bits
            sb = (addr & (macro - 1)) >> self._sb_shift
            if tier == "on":
                loc = ("slot", local_page)
            else:
                loc = ("mach", local_page + self.amap.n_onpkg_pages)
            out.append((loc, addr, sb))
        return out

    def _victim_chunks(
        self, key: tuple[str, int, int]
    ) -> list[tuple[int, list[tuple[tuple[str, int], int, int]]]]:
        """Per victim row (the aggressor's wordline neighbours), its chunks."""
        tier, queue, row = key
        out = []
        for victim in (row - 1, row + 1):
            chunks = self._row_chunks(tier, queue, victim)
            if chunks:
                out.append((victim, chunks))
        return out

    # ------------------------------------------------------------------
    # the ladder rungs
    # ------------------------------------------------------------------
    def _victim_refresh(
        self, key: tuple[str, int, int], level: float, epoch_index: int,
        now: int,
    ) -> int:
        """Refresh the aggressor's neighbours with timing-visible reads."""
        tier, queue, row = key
        victims = self._victim_chunks(key)
        chunks = [c for _, cs in victims for c in cs]
        if not chunks:
            return 0
        local = np.array([addr for _, addr, _ in chunks], dtype=np.int64)
        times = np.full(local.shape, now, dtype=np.int64)
        model = (
            self.controller.onpkg_model
            if tier == "on"
            else self.controller.offpkg_model
        )
        latency = model.access_latency(
            local, times, np.zeros(local.shape, dtype=bool)
        )
        cycles = int(latency.sum())
        self.victim_refreshes += 1
        self.victim_refresh_cycles += cycles
        self.engine.degradation_events.append(
            DegradationEvent(
                time=now, epoch=epoch_index, kind=VICTIM_REFRESHED,
                detail=(
                    f"{tier}-package queue {queue} row {row} over alert "
                    f"level (bucket {level:.1f}): refreshed {len(chunks)} "
                    f"neighbour sub-blocks in {len(victims)} rows "
                    f"(+{cycles} cycles)"
                ),
                recovered=True,
            )
        )
        return cycles

    def _escalate(
        self, key: tuple[str, int, int], level: float, epoch_index: int,
        now: int,
    ) -> int:
        """Victim-refresh budget exhausted: throttle and take the
        aggressor out of the hot bank."""
        cfg = self.cfg
        tier, queue, row = key
        self.throttles += 1
        self.throttle_cycles += cfg.throttle_cycles
        route = "throttled"
        if tier == "on":
            frames = sorted(
                {loc[1] for loc, _, _ in self._row_chunks(tier, queue, row)}
            )
            if self.ras is not None and frames:
                table = self.engine.table
                for frame in frames:
                    if not table.retired[frame]:
                        self.ras.telemetry.record(
                            frame, self.ras.ras.ce_threshold, source="burst"
                        )
                        self.retirements_pumped += 1
                route = (
                    f"throttled; frames {frames} pumped into CE telemetry "
                    f"for predictive retirement"
                )
        else:
            page = self._aggressor_page.get(key)
            if page is not None and cfg.migration_bias > 0:
                self.pressure[page] += float(cfg.act_threshold)
                self.pressure_boosts += 1
                route = (
                    f"throttled; aggressor page {page} biased into the "
                    f"next hottest-coldest swap"
                )
        self.engine.degradation_events.append(
            DegradationEvent(
                time=now, epoch=epoch_index, kind=HAMMER_THROTTLED,
                detail=(
                    f"{tier}-package queue {queue} row {row} still hammering "
                    f"after {cfg.victim_refresh_max} victim refreshes "
                    f"(bucket {level:.1f}): {route} "
                    f"(+{cfg.throttle_cycles} cycles)"
                ),
                recovered=True,
            )
        )
        return cfg.throttle_cycles

    def _land_flips(
        self, key: tuple[str, int, int], level: float, epoch_index: int,
        now: int,
    ) -> None:
        """Unmitigated threshold crossing: seeded victim-row bit flips."""
        cfg = self.cfg
        tier, queue, row = key
        tier_code = 1 if tier == "on" else 0
        rng = np.random.default_rng(
            (cfg.seed, epoch_index, tier_code, queue, row)
        )
        cells = 0
        rows_hit = 0
        for _victim, chunks in self._victim_chunks(key):
            rows_hit += 1
            k = min(cfg.flips_per_victim, len(chunks))
            pick = rng.choice(len(chunks), size=k, replace=False)
            for i in sorted(pick.tolist()):
                loc, _addr, sb = chunks[i]
                if self.shadow is not None:
                    cells += self.shadow.corrupt(loc, (sb,), now)
                else:
                    cells += 1
        self.flip_bursts += 1
        self.flip_cells += cells
        self.engine.degradation_events.append(
            DegradationEvent(
                time=now, epoch=epoch_index, kind=ROW_DISTURB_FLIPS,
                detail=(
                    f"{tier}-package queue {queue} row {row} crossed the "
                    f"disturbance threshold unmitigated (bucket {level:.1f}): "
                    f"{cells} victim sub-blocks corrupted across "
                    f"{rows_hit} neighbour rows"
                ),
                recovered=cells == 0,
            )
        )

    # ------------------------------------------------------------------
    def report(self) -> DisturbReport:
        return DisturbReport(
            activations_total=self.telemetry.total_activations,
            rows_tracked=len(self.telemetry.level),
            hammer_bursts=self.bursts_applied,
            alerts=self.alerts,
            victim_refreshes=self.victim_refreshes,
            victim_refresh_cycles=self.victim_refresh_cycles,
            throttles=self.throttles,
            throttle_cycles=self.throttle_cycles,
            retirements_pumped=self.retirements_pumped,
            pressure_boosts=self.pressure_boosts,
            flip_bursts=self.flip_bursts,
            flip_cells=self.flip_cells,
            bucket_series=list(self.bucket_series),
        )

    # -- checkpoint support ------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "telemetry": self.telemetry.state_dict(),
            "pressure": self.pressure.copy(),
            "victim_budget": dict(self._victim_budget),
            "aggressor_page": dict(self._aggressor_page),
            "pending": list(self._pending),
            "bursts_applied": self.bursts_applied,
            "alerts": self.alerts,
            "victim_refreshes": self.victim_refreshes,
            "victim_refresh_cycles": self.victim_refresh_cycles,
            "throttles": self.throttles,
            "throttle_cycles": self.throttle_cycles,
            "retirements_pumped": self.retirements_pumped,
            "pressure_boosts": self.pressure_boosts,
            "flip_bursts": self.flip_bursts,
            "flip_cells": self.flip_cells,
            "bucket_series": list(self.bucket_series),
        }

    def load_state_dict(self, state: dict) -> None:
        self.telemetry.load_state_dict(state["telemetry"])
        self.pressure = state["pressure"].copy()
        self._victim_budget = dict(state["victim_budget"])
        self._aggressor_page = dict(state["aggressor_page"])
        self._pending = list(state["pending"])
        self.bursts_applied = state["bursts_applied"]
        self.alerts = state["alerts"]
        self.victim_refreshes = state["victim_refreshes"]
        self.victim_refresh_cycles = state["victim_refresh_cycles"]
        self.throttles = state["throttles"]
        self.throttle_cycles = state["throttle_cycles"]
        self.retirements_pumped = state["retirements_pumped"]
        self.pressure_boosts = state["pressure_boosts"]
        self.flip_bursts = state["flip_bursts"]
        self.flip_cells = state["flip_cells"]
        self.bucket_series = list(state["bucket_series"])
        # the engine's bias hook survives restore (same object)
        self.engine.disturb = self
