"""Runtime RAS (reliability, availability, serviceability) subsystem.

On-chip memory-controller support (the paper's central premise) gives
the controller visibility the OS never had — so reliability machinery
can live next to the migration engine: per-frame correctable-error
telemetry with leaky-bucket thresholds, a patrol scrubber whose reads
share the FR-FCFS timing models with demand traffic, predictive frame
retirement with graceful on-package capacity degradation, and
write-endurance counters that steer the swap policy away from worn
off-package frames. Everything is gated behind
``RASConfig(enabled=False)``: the default configuration is bit-identical
to a build without this package.
"""

from .controller import RasController, RasReport, RetirementEvent
from .disturb import ActivationTelemetry, DisturbController, DisturbReport
from .retirement import retirement_moves
from .scrub import PatrolScrubber
from .telemetry import CETelemetry
from .wear import LINE_BYTES, WearModel

__all__ = [
    "ActivationTelemetry",
    "CETelemetry",
    "DisturbController",
    "DisturbReport",
    "LINE_BYTES",
    "PatrolScrubber",
    "RasController",
    "RasReport",
    "RetirementEvent",
    "WearModel",
    "retirement_moves",
]
