"""How much on-package DRAM does an HPC workload need?

Package-integrated DRAM is the expensive resource (power delivery and
heat limit it, Section II). This example sweeps the on-package capacity
for a multigrid solver (MG.C model) and reports the latency curve with
and without migration — the Fig 15 experiment turned into a sizing tool.

Run:  python examples/capacity_planning.py
"""

import repro
from repro.experiments.common import migration_config, migration_trace
from repro.stats.report import Table
from repro.units import KB, MB

N_ACCESSES = 300_000
CAPACITIES_PAPER_MB = (64, 128, 256, 512)


def main() -> None:
    trace = migration_trace("MG.C", N_ACCESSES)
    table = Table(
        "MG.C: on-package capacity sweep (capacities in paper units)",
        ["on-package", "w/ migration", "w/o migration", "migration benefit"],
    )
    knee = None
    prev = None
    for mb in CAPACITIES_PAPER_MB:
        cfg = migration_config(
            mb, algorithm="live", macro_page_bytes=64 * KB, swap_interval=1_000
        )
        migrated = repro.HeterogeneousMainMemory(cfg).run(trace)
        static = repro.baseline_latency(cfg, trace, "static")
        benefit = 1 - migrated.average_latency / static.average_latency
        table.add_row(
            f"{mb}MB",
            f"{migrated.average_latency:.1f}",
            f"{static.average_latency:.1f}",
            f"{benefit:.0%}",
        )
        if prev is not None and prev - migrated.average_latency < 0.03 * prev:
            knee = knee or mb
        prev = migrated.average_latency
    table.print()
    if knee:
        print(f"diminishing returns past ~{knee} MB of on-package DRAM for "
              f"this workload — migration keeps smaller packages effective")
    else:
        print("latency still improving at 512 MB: this working set wants "
              "all the on-package capacity it can get")


if __name__ == "__main__":
    main()
