"""Quickstart: simulate a heterogeneous main memory under an OLTP load.

Builds the paper's system (scaled 1/32 so it runs in seconds), streams a
pgbench-like trace through it, and compares dynamic migration against
the three reference configurations.

Run:  python examples/quickstart.py
"""

import repro
from repro.experiments.common import migration_config, migration_trace

N_ACCESSES = 400_000


def main() -> None:
    # the Table III system: 4 GB total, 512 MB on-package (scaled 1/32),
    # Live Migration at 64 KB macro pages, swap check every 1K accesses
    cfg = migration_config(
        algorithm="live", macro_page_bytes=64 * repro.KB, swap_interval=1_000
    )
    print(f"memory: {cfg.total_bytes // repro.MB} MB total, "
          f"{cfg.onpkg_bytes // repro.MB} MB on-package "
          f"({cfg.address_map().n_onpkg_pages} macro-page slots)")

    trace = migration_trace("pgbench", N_ACCESSES)
    print(f"trace: {len(trace)} main-memory accesses (pgbench model)\n")

    system = repro.HeterogeneousMainMemory(cfg)
    result = system.run(trace)

    print(f"with migration:    {result.average_latency:7.1f} cycles/access  "
          f"({result.onpkg_fraction:.0%} served on-package, "
          f"{result.swaps_triggered} swaps, "
          f"{result.migrated_bytes >> 20} MB migrated)")

    for kind, label in [
        ("static", "static mapping:  "),
        ("all-offpkg", "all off-package: "),
        ("all-onpkg", "all on-package:  "),
    ]:
        ref = repro.baseline_latency(cfg, trace, kind)
        print(f"{label}  {ref.average_latency:7.1f} cycles/access")

    static = repro.baseline_latency(cfg, trace, "static")
    ideal = repro.baseline_latency(cfg, trace, "all-onpkg")
    eta = repro.effectiveness(
        static.average_latency, result.average_latency, ideal.average_latency
    )
    print(f"\neffectiveness η = {min(1.0, eta):.0%} of the all-on-package ideal "
          f"(the paper reports 83% on average)")


if __name__ == "__main__":
    main()
