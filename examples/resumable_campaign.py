"""Kill-safe simulation campaigns: checkpoint, kill, resume.

Long trace-driven campaigns die for boring reasons — preemption, OOM,
power. This example writes a trace to disk, starts a chunked run that
checkpoints after every chunk, kills it partway through, then resumes
from the checkpoint — and shows that the resumed result is
field-for-field identical to an uninterrupted run.

Run:  python examples/resumable_campaign.py
"""

import dataclasses
import os
import tempfile

import repro
from repro.errors import CheckpointError
from repro.trace.io import write_trace
from repro.workloads.registry import generate_trace

N_ACCESSES = 200_000
SWAP_INTERVAL = 1_000
# resumability rule: chunk at a multiple of the swap interval so epoch
# boundaries land identically however the trace is split
CHUNK_RECORDS = 20 * SWAP_INTERVAL


def main() -> None:
    cfg = repro.scaled_config(
        algorithm="live", macro_page_bytes=64 * repro.KB,
        swap_interval=SWAP_INTERVAL,
    )
    trace = generate_trace(
        "pgbench", N_ACCESSES, seed=1,
        footprint_bytes=cfg.total_bytes // 2,
    )

    with tempfile.TemporaryDirectory() as workdir:
        trace_path = os.path.join(workdir, "campaign.trace")
        ckpt_path = os.path.join(workdir, "campaign.ckpt")
        write_trace(trace_path, trace)

        # the reference: one uninterrupted in-memory run
        reference = repro.EpochSimulator(cfg).run(trace)

        # a campaign that dies after 3 chunks (simulated kill -9)
        class Killed(RuntimeError):
            pass

        chunks_run = 0
        original = repro.EpochSimulator.run_into

        def dying_run_into(self, chunk, result):
            nonlocal chunks_run
            if chunks_run == 3:
                raise Killed("process killed mid-campaign")
            chunks_run += 1
            original(self, chunk, result)

        repro.EpochSimulator.run_into = dying_run_into
        try:
            repro.run_resumable(
                cfg, trace_path, ckpt_path, chunk_records=CHUNK_RECORDS
            )
        except Killed as exc:
            print(f"first attempt:  died after {chunks_run} chunks ({exc})")
        finally:
            repro.EpochSimulator.run_into = original

        # the checkpoint survived the crash; the same call resumes
        bundle = repro.load_checkpoint(ckpt_path)
        print(f"checkpoint:     {bundle.extra['chunks_done']} chunks done, "
              f"{bundle.result.n_accesses} accesses folded in")
        resumed = repro.run_resumable(
            cfg, trace_path, ckpt_path, chunk_records=CHUNK_RECORDS
        )
        print(f"second attempt: resumed and finished "
              f"({resumed.n_accesses} accesses, "
              f"{resumed.swaps_triggered} swaps)")

        ref_fields = dataclasses.asdict(reference)
        res_fields = dataclasses.asdict(resumed)
        mismatched = [k for k in ref_fields if ref_fields[k] != res_fields[k]]
        assert not mismatched, mismatched
        print("verdict:        resumed run is field-for-field identical "
              "to the uninterrupted run")
        print(f"                avg latency {resumed.average_latency:.2f} "
              f"cycles/access, {resumed.onpkg_fraction:.0%} on-package")

        # a corrupted checkpoint is refused, not silently mis-resumed
        with open(ckpt_path, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            last = fh.read(1)
            fh.seek(-1, os.SEEK_END)
            fh.write(bytes([last[0] ^ 0xFF]))
        try:
            repro.load_checkpoint(ckpt_path)
        except CheckpointError as exc:
            print(f"tamper check:   {exc}")


if __name__ == "__main__":
    main()
