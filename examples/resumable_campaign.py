"""Kill-safe simulation campaigns: checkpoint, kill, resume.

Long trace-driven campaigns die for boring reasons — preemption, OOM,
power. This example demonstrates both recovery layers:

* **intra-task resume** — one long chunked run checkpoints after every
  chunk (`run_resumable`), is killed partway through, then resumes
  from the checkpoint with a field-for-field identical result;
* **campaign-level resume** — a multi-point sweep runs under the
  `CampaignSupervisor`: one worker crashes mid-campaign (simulated
  `kill -9`) and is retried; the finished campaign's manifest lets a
  re-invocation skip every completed point.

Run:  python examples/resumable_campaign.py
"""

import dataclasses
import os
import tempfile

import repro
from repro.campaign import CampaignSupervisor, CampaignTask, RetryPolicy
from repro.errors import CheckpointError
from repro.trace.io import write_trace
from repro.workloads.registry import generate_trace

N_ACCESSES = 200_000
SWAP_INTERVAL = 1_000
# resumability rule: chunk at a multiple of the swap interval so epoch
# boundaries land identically however the trace is split
CHUNK_RECORDS = 20 * SWAP_INTERVAL


# ---------------------------------------------------------------------------
# campaign-level resume: a sweep of points under the supervisor
# ---------------------------------------------------------------------------

SWEEP_GRANULARITIES_KB = (16, 64, 256, 1024)
SWEEP_ACCESSES = 60_000


def sweep_point(granularity_kb: int, crash_flag: str | None = None) -> dict:
    """One simulation point (module-level so workers can run it).

    If ``crash_flag`` names a file that does not exist yet, the worker
    creates it and dies with ``os._exit`` — a one-shot stand-in for an
    OOM kill. The supervisor's retry then succeeds.
    """
    if crash_flag is not None and not os.path.exists(crash_flag):
        open(crash_flag, "w").close()
        os._exit(1)
    cfg = repro.scaled_config(
        algorithm="live", macro_page_bytes=granularity_kb * repro.KB,
        swap_interval=SWAP_INTERVAL,
    )
    trace = generate_trace(
        "pgbench", SWEEP_ACCESSES, seed=1,
        footprint_bytes=cfg.total_bytes // 2,
    )
    result = repro.HeterogeneousMainMemory(cfg).run(trace)
    return {
        "avg_latency": result.average_latency,
        "onpkg_fraction": result.onpkg_fraction,
    }


def campaign_demo(workdir: str) -> None:
    manifest = os.path.join(workdir, "sweep-manifest.json")
    crash_flag = os.path.join(workdir, "crashed-once")
    tasks = [
        CampaignTask(
            f"sweep/{kb}KB", sweep_point, (kb,),
            # the 64 KB point crashes on its first attempt
            {"crash_flag": crash_flag if kb == 64 else None},
        )
        for kb in SWEEP_GRANULARITIES_KB
    ]
    supervisor = CampaignSupervisor(
        jobs=2, task_timeout=300.0,
        retry=RetryPolicy(max_attempts=3, base_delay=0.2),
        manifest_path=manifest,
    )
    report = supervisor.run(tasks)
    assert report.ok, [o.error for o in report.failed]
    for outcome in report.outcomes:
        note = " (crashed once, retried)" if outcome.attempts > 1 else ""
        print(f"  {outcome.task_id}: "
              f"{outcome.result['avg_latency']:.1f} cycles/access, "
              f"attempt(s)={outcome.attempts}{note}")

    # a re-invocation — after a supervisor kill, say — recomputes nothing
    again = CampaignSupervisor(jobs=2, manifest_path=manifest).run(tasks)
    assert all(o.status == "skipped" for o in again.outcomes)
    print(f"resume:         all {len(again.skipped)} points skipped "
          f"(reprinted from the manifest)")
    assert again.result("sweep/16KB") == report.result("sweep/16KB")


def main() -> None:
    cfg = repro.scaled_config(
        algorithm="live", macro_page_bytes=64 * repro.KB,
        swap_interval=SWAP_INTERVAL,
    )
    trace = generate_trace(
        "pgbench", N_ACCESSES, seed=1,
        footprint_bytes=cfg.total_bytes // 2,
    )

    with tempfile.TemporaryDirectory() as workdir:
        trace_path = os.path.join(workdir, "campaign.trace")
        ckpt_path = os.path.join(workdir, "campaign.ckpt")
        write_trace(trace_path, trace)

        # the reference: one uninterrupted in-memory run
        reference = repro.EpochSimulator(cfg).run(trace)

        # a campaign that dies after 3 chunks (simulated kill -9)
        class Killed(RuntimeError):
            pass

        chunks_run = 0
        original = repro.EpochSimulator.run_into

        def dying_run_into(self, chunk, result):
            nonlocal chunks_run
            if chunks_run == 3:
                raise Killed("process killed mid-campaign")
            chunks_run += 1
            original(self, chunk, result)

        repro.EpochSimulator.run_into = dying_run_into
        try:
            repro.run_resumable(
                cfg, trace_path, ckpt_path, chunk_records=CHUNK_RECORDS
            )
        except Killed as exc:
            print(f"first attempt:  died after {chunks_run} chunks ({exc})")
        finally:
            repro.EpochSimulator.run_into = original

        # the checkpoint survived the crash; the same call resumes
        bundle = repro.load_checkpoint(ckpt_path)
        print(f"checkpoint:     {bundle.extra['chunks_done']} chunks done, "
              f"{bundle.result.n_accesses} accesses folded in")
        resumed = repro.run_resumable(
            cfg, trace_path, ckpt_path, chunk_records=CHUNK_RECORDS
        )
        print(f"second attempt: resumed and finished "
              f"({resumed.n_accesses} accesses, "
              f"{resumed.swaps_triggered} swaps)")

        ref_fields = dataclasses.asdict(reference)
        res_fields = dataclasses.asdict(resumed)
        mismatched = [k for k in ref_fields if ref_fields[k] != res_fields[k]]
        assert not mismatched, mismatched
        print("verdict:        resumed run is field-for-field identical "
              "to the uninterrupted run")
        print(f"                avg latency {resumed.average_latency:.2f} "
              f"cycles/access, {resumed.onpkg_fraction:.0%} on-package")

        # a corrupted checkpoint is refused, not silently mis-resumed
        with open(ckpt_path, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            last = fh.read(1)
            fh.seek(-1, os.SEEK_END)
            fh.write(bytes([last[0] ^ 0xFF]))
        try:
            repro.load_checkpoint(ckpt_path)
        except CheckpointError as exc:
            print(f"tamper check:   {exc}")

        print("\ncampaign-level resume (supervisor + manifest):")
        campaign_demo(workdir)


if __name__ == "__main__":
    main()
