"""Bring your own workload: define a model, persist traces, simulate.

Shows the full user path: compose access-pattern primitives into a
:class:`SyntheticWorkload`, save the generated trace in the binary trace
format (so expensive generation happens once), reload it in chunks, and
evaluate the memory system on it — including the power bill.

Run:  python examples/custom_workload.py
"""

import tempfile
from pathlib import Path

import repro
from repro.power.energy import MemoryEnergyModel
from repro.trace.io import TraceReader, TraceWriter
from repro.trace.stats import compute_stats
from repro.units import KB, MB
from repro.workloads.base import PatternSpec, PhaseSpec, SyntheticWorkload

# A key-value store: hot index (zipf over scattered clusters), value log
# appends (stream), and compaction sweeps (strided), with the hot index
# drifting as keys churn.
kv_store = SyntheticWorkload(
    name="kvstore",
    footprint_bytes=96 * MB,
    phases=(
        PhaseSpec(PatternSpec("zipf", {"alpha": 1.4, "spread_blocks": 32}),
                  weight=2.0, drift=0.05),
        PhaseSpec(PatternSpec("stream", {"stride_blocks": 1}), weight=0.7),
        PhaseSpec(PatternSpec("stream", {"stride_blocks": 64}), weight=0.3),
    ),
    write_fraction=0.40,
    cycles_per_access=70.0,
    n_cpus=4,
)


def main() -> None:
    trace = kv_store.generate(300_000, seed=7)
    print("generated:", compute_stats(trace).describe())

    # persist + reload in chunks (the format streams, nothing is resident)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "kvstore.rptrace"
        with TraceWriter(path) as writer:
            writer.write(trace)
        print(f"trace file: {path.stat().st_size >> 20} MB on disk")

        cfg = repro.SystemConfig(
            total_bytes=512 * MB,
            onpkg_bytes=64 * MB,
            migration=repro.MigrationConfig(
                algorithm="live", macro_page_bytes=256 * KB, swap_interval=2_000
            ),
        )
        system = repro.HeterogeneousMainMemory(cfg)
        from repro.core.simulator import SimulationResult

        result = SimulationResult()
        for chunk in TraceReader(path, chunk_records=64_000):
            system.simulator.run_into(chunk, result)

    static = repro.baseline_latency(cfg, trace, "static")
    print(f"\nlatency: {result.average_latency:.1f} cycles/access with migration "
          f"vs {static.average_latency:.1f} static "
          f"({result.onpkg_fraction:.0%} on-package, {result.swaps_triggered} swaps)")

    report = MemoryEnergyModel(cfg.power).report(result)
    print(f"memory energy: {report.total_pj / 1e6:.1f} µJ "
          f"({report.migration_energy_pj / report.total_pj:.0%} spent on migration), "
          f"{report.normalized:.2f}x the off-package-only system")


if __name__ == "__main__":
    main()
