"""Pick a migration configuration for a server consolidation scenario.

Sweeps algorithm x macro-page granularity x swap interval for a
SPECjbb-like multi-JVM load, reports the best operating point, and
prices it: pure-hardware table cost (Fig 10) for coarse pages vs the
OS-assisted scheme for fine ones.

Run:  python examples/granularity_tuning.py
"""

import repro
from repro.experiments.common import migration_config, migration_trace
from repro.migration.overhead import hardware_bits
from repro.stats.report import Table
from repro.units import GB, KB, MB, format_size

N_ACCESSES = 300_000
GRANULARITIES = (4 * KB, 64 * KB, 1 * MB, 4 * MB)
INTERVALS = (1_000, 10_000)


def main() -> None:
    trace = migration_trace("SPECjbb", N_ACCESSES)
    table = Table(
        "SPECjbb consolidation: migration configuration sweep",
        ["algorithm", "page", "interval", "latency", "on-pkg", "scheme"],
    )
    best = None
    for algorithm in ("N", "N-1", "live"):
        for page in GRANULARITIES:
            for interval in INTERVALS:
                cfg = migration_config(
                    algorithm=algorithm, macro_page_bytes=page, swap_interval=interval
                )
                res = repro.HeterogeneousMainMemory(cfg).run(trace)
                scheme = "OS-assisted" if cfg.migration.os_assisted else "pure HW"
                table.add_row(
                    algorithm,
                    format_size(page),
                    interval,
                    f"{res.average_latency:.1f}",
                    f"{res.onpkg_fraction:.0%}",
                    scheme,
                )
                key = (res.average_latency, algorithm, page, interval)
                if best is None or key < best:
                    best = key
    table.print()

    latency, algorithm, page, interval = best
    print(f"best: {algorithm} at {format_size(page)} pages, swap check every "
          f"{interval} accesses -> {latency:.1f} cycles/access")
    cost = hardware_bits(1 * GB, page)
    if page >= 1 * MB:
        print(f"pure-hardware cost at paper scale (1 GB on-package): "
              f"{cost.total_bits:,} bits — TLB-sized, feasible")
    else:
        print(f"pure hardware would need {cost.total_bits:,} bits at this "
              f"granularity — use the OS-assisted scheme "
              f"(127-cycle kernel entry per table update)")


if __name__ == "__main__":
    main()
