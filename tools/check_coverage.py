#!/usr/bin/env python3
"""Gate line coverage of the migration + datamodel trees.

Reads a Cobertura ``coverage.xml`` (as written by ``pytest --cov
--cov-report=xml``) with nothing but the standard library, aggregates
line coverage per target source tree, and exits non-zero when any tree
falls below the threshold::

    python tools/check_coverage.py coverage.xml --min-percent 90

The data-safe abort recovery lives in ``src/repro/migration``, the
shadow memory in ``src/repro/datamodel``, and the tenant isolation /
reclamation layer in ``src/repro/tenancy``; all are correctness-critical
bookkeeping whose untested lines are exactly where a silent
data-corruption bug would hide, hence the dedicated gate.
"""

from __future__ import annotations

import argparse
import sys
import xml.etree.ElementTree as ET
from pathlib import PurePosixPath

DEFAULT_TARGETS = ("repro/migration", "repro/datamodel", "repro/tenancy")


def _normalize(filename: str) -> str:
    """Cobertura filenames vary by invocation dir; strip leading src/."""
    path = PurePosixPath(filename.replace("\\", "/"))
    parts = path.parts
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    return str(PurePosixPath(*parts)) if parts else ""


def collect_line_rates(xml_path: str) -> dict[str, tuple[int, int]]:
    """Per-file ``(covered, total)`` line counts from a Cobertura report."""
    try:
        root = ET.parse(xml_path).getroot()
    except (OSError, ET.ParseError) as exc:
        raise SystemExit(f"check_coverage: cannot read {xml_path}: {exc}")
    out: dict[str, tuple[int, int]] = {}
    for cls in root.iter("class"):
        filename = _normalize(cls.get("filename", ""))
        if not filename:
            continue
        covered, total = out.get(filename, (0, 0))
        for line in cls.iter("line"):
            total += 1
            if int(line.get("hits", "0")) > 0:
                covered += 1
        out[filename] = (covered, total)
    return out


def gate(
    per_file: dict[str, tuple[int, int]],
    targets: tuple[str, ...],
    min_percent: float,
) -> list[str]:
    """Human-readable failures (empty = every target meets the bar)."""
    failures = []
    for target in targets:
        prefix = target.rstrip("/") + "/"
        covered = total = 0
        for filename, (c, t) in per_file.items():
            if filename.startswith(prefix):
                covered += c
                total += t
        if total == 0:
            failures.append(f"{target}: no lines measured (wrong --cov set?)")
            continue
        pct = 100.0 * covered / total
        status = "ok" if pct >= min_percent else "FAIL"
        print(
            f"{target}: {covered}/{total} lines, {pct:.1f}% "
            f"(floor {min_percent:.0f}%) {status}"
        )
        if pct < min_percent:
            failures.append(
                f"{target}: {pct:.1f}% < {min_percent:.0f}% line coverage"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("xml", help="Cobertura coverage.xml from pytest --cov")
    parser.add_argument(
        "--min-percent", type=float, default=90.0,
        help="per-target line-coverage floor (default: %(default)s)",
    )
    parser.add_argument(
        "--target", action="append", metavar="TREE",
        help=f"source tree to gate, repeatable (default: {DEFAULT_TARGETS})",
    )
    args = parser.parse_args(argv)
    targets = tuple(args.target) if args.target else DEFAULT_TARGETS
    failures = gate(collect_line_rates(args.xml), targets, args.min_percent)
    for failure in failures:
        print(f"check_coverage: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
