"""Ablation — critical-sub-block-first fill order (Fig 9).

Live Migration copies the MRU sub-block first and wraps around. Against
sequential (block-0-first) filling, the critical-first order must serve
accesses to the incoming hot page on-package sooner, i.e. never lose.
"""

from repro.core.hetero_memory import HeterogeneousMainMemory
from repro.experiments.common import migration_config, migration_trace
from repro.stats.report import Table
from repro.units import MB


def test_fill_order_ablation(run_once, fast):
    n = 300_000 if fast else 1_200_000
    trace = migration_trace("pgbench", n)

    def sweep():
        out = {}
        for critical_first in (True, False):
            cfg = migration_config(
                algorithm="live", macro_page_bytes=4 * MB, swap_interval=10_000,
                critical_block_first=critical_first,
            )
            out[critical_first] = HeterogeneousMainMemory(cfg).run(trace)
        return out

    results = run_once(sweep)
    table = Table(
        "Ablation — critical-sub-block-first vs sequential fill (pgbench, 4MB pages)",
        ["fill order", "avg latency", "on-package fraction"],
    )
    for critical, res in results.items():
        table.add_row(
            "critical-first" if critical else "sequential",
            f"{res.average_latency:.1f}",
            f"{res.onpkg_fraction:.1%}",
        )
    print()
    table.print()
    assert results[True].average_latency <= results[False].average_latency * 1.02
