"""CI perf-smoke: streaming must keep peak memory O(chunk).

Runs the same 1M-access pgbench simulation twice in clean
subprocesses — once materialized (``migration_trace`` → ``run``), once
streamed (``migration_stream`` → ``run_stream``) — and compares
``ru_maxrss``. Fails when the streamed run's peak RSS is not at least
``--min-ratio`` (default 2x) below the materialized run's, or when the
two runs disagree on swap count / access count (the equivalence tests
pin the numbers; this check pins the memory claim).
"""

import argparse
import json
import os
import subprocess
import sys

_SNIPPET = """
import json, resource
from repro.core.hetero_memory import HeterogeneousMainMemory
from repro.experiments.common import migration_config, migration_stream, migration_trace
from repro.trace.stream import aligned_chunk_size

cfg = migration_config(algorithm="live", macro_page_bytes=64 * 1024,
                       swap_interval=10_000)
n = {n}
if {streamed}:
    chunk = aligned_chunk_size(100_000, cfg.migration.swap_interval)
    r = HeterogeneousMainMemory(cfg).run_stream(
        migration_stream("pgbench", n, seed=0, chunk_accesses=chunk))
else:
    r = HeterogeneousMainMemory(cfg).run(migration_trace("pgbench", n, seed=0))
print(json.dumps({{
    "rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024,
    "n_accesses": r.n_accesses,
    "swaps": r.swaps_triggered,
}}))
"""


def _run(n, streamed):
    env = dict(os.environ)
    env.pop("REPRO_TRACE_CACHE", None)  # measure generation, not a memmap
    proc = subprocess.run(
        [sys.executable, "-c", _SNIPPET.format(n=n, streamed=streamed)],
        capture_output=True, text=True, env=env,
    )
    if proc.returncode != 0:
        raise SystemExit(f"subprocess failed:\n{proc.stderr}")
    return json.loads(proc.stdout.strip().splitlines()[-1])


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-n", "--accesses", type=int, default=1_000_000)
    parser.add_argument("--min-ratio", type=float, default=2.0,
                        help="required materialized/streamed peak-RSS ratio")
    args = parser.parse_args(argv)

    mat = _run(args.accesses, streamed=False)
    stream = _run(args.accesses, streamed=True)
    ratio = mat["rss_mb"] / stream["rss_mb"]
    print(f"materialized peak RSS {mat['rss_mb']:7.1f} MB  "
          f"({mat['n_accesses']} accesses, {mat['swaps']} swaps)")
    print(f"streamed     peak RSS {stream['rss_mb']:7.1f} MB  "
          f"({stream['n_accesses']} accesses, {stream['swaps']} swaps)")
    print(f"ratio {ratio:.2f}x (required >= {args.min_ratio:.2f}x)")

    failures = []
    if stream["n_accesses"] != mat["n_accesses"]:
        failures.append("access counts diverged between feedings")
    # streamed stamping draws per-part RNGs, so copy/boundary timing can
    # shift a swap across an epoch edge — allow 2% drift, not more
    if abs(stream["swaps"] - mat["swaps"]) > max(1, mat["swaps"] // 50):
        failures.append(
            f"swap counts diverged: materialized {mat['swaps']} "
            f"vs streamed {stream['swaps']}"
        )
    if ratio < args.min_ratio:
        failures.append(
            f"streaming saves only {ratio:.2f}x peak RSS "
            f"(required >= {args.min_ratio:.2f}x) — O(chunk) memory regressed"
        )
    if failures:
        print("\nstreaming-rss check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nstreaming-rss ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
