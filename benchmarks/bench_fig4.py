"""Fig 4 — LLC miss rate vs capacity: curves must flatten past each
workload's working set (the paper's anti-big-LLC argument)."""

from repro.experiments.fig4 import miss_rate_curves, run


def test_fig4(run_once, fast):
    table = run_once(run, fast)
    print()
    table.print()
    curves = miss_rate_curves(200_000 if fast else None)
    for name, rates in curves.items():
        # monotone non-increasing in capacity (LRU inclusion)
        assert all(a >= b - 1e-12 for a, b in zip(rates, rates[1:])), name
        # the knee: the last doubling of capacity buys almost nothing
        assert rates[-2] - rates[-1] < 0.05, name
