"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures and prints
it (run with ``pytest benchmarks/ --benchmark-only -s`` to see the
tables). Set ``REPRO_FULL=1`` for the full grids and trace lengths the
EXPERIMENTS.md results were produced with; the default subset finishes
in a few minutes.
"""

import os

import pytest


def full_mode() -> bool:
    return os.environ.get("REPRO_FULL", "").strip() not in ("", "0", "false")


@pytest.fixture(scope="session")
def fast() -> bool:
    return not full_mode()


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
