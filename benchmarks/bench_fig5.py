"""Fig 5 — IPC of the four memory organisations.

Shape assertions (Section II):
* footprint < 1 GB: static mapping ~= the all-on-package ideal;
* the three > 1 GB workloads: static gain is small, and for DC.B/FT.C
  the L4 cache wins over static ("cannot compete against the L4 cache");
* MG.C prefers heterogeneous memory over the L4.
"""

from repro.cpu.amat import MemoryOrganization
from repro.experiments.fig5 import ipc_improvements, run
from repro.units import GB, MB
from repro.workloads.npb import NPB_FOOTPRINTS_MB

L4 = MemoryOrganization.L4_CACHE
STATIC = MemoryOrganization.STATIC_ONPKG
IDEAL = MemoryOrganization.ALL_ONPKG


def test_fig5(run_once, fast):
    table = run_once(run, fast)
    print()
    table.print()
    imp = ipc_improvements(200_000 if fast else None)
    for name, bars in imp.items():
        fits = NPB_FOOTPRINTS_MB[name] * MB < 1 * GB
        if fits:
            assert bars[STATIC] == bars[IDEAL], name
            assert bars[STATIC] > bars[L4], name
        else:
            assert bars[STATIC] < 0.5 * bars[IDEAL], name
    # the paper's explicit orderings
    assert imp["DC.B"][L4] > imp["DC.B"][STATIC]
    assert imp["FT.C"][L4] > imp["FT.C"][STATIC]
    assert imp["MG.C"][STATIC] > imp["MG.C"][L4]
