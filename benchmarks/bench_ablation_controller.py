"""Ablation — heterogeneity-aware controller vs the conventional one.

Fig 2 vs Fig 3: the conventional controller cannot route anything to the
on-package region (everything leaves the package); the
heterogeneity-aware controller with even a *static* mapping captures the
low region, and with migration captures the hot set. This prices the
architectural change itself.
"""

from repro.core.hetero_memory import HeterogeneousMainMemory, baseline_latency
from repro.experiments.common import migration_config, migration_trace
from repro.stats.report import Table
from repro.units import KB


def test_controller_ablation(run_once, fast):
    n = 300_000 if fast else 1_200_000
    trace = migration_trace("pgbench", n)
    cfg = migration_config(algorithm="live", macro_page_bytes=64 * KB, swap_interval=1_000)

    def sweep():
        return {
            "conventional (all off-package)": baseline_latency(cfg, trace, "all-offpkg"),
            "heterogeneous, static mapping": baseline_latency(cfg, trace, "static"),
            "heterogeneous + migration": HeterogeneousMainMemory(cfg).run(trace),
        }

    results = run_once(sweep)
    table = Table(
        "Ablation — controller architecture (pgbench)",
        ["configuration", "avg latency", "off-package traffic"],
    )
    for name, res in results.items():
        table.add_row(name, f"{res.average_latency:.1f}", f"{res.offpkg_traffic_fraction:.1%}")
    print()
    table.print()
    conv = results["conventional (all off-package)"]
    static = results["heterogeneous, static mapping"]
    migrated = results["heterogeneous + migration"]
    assert static.average_latency < conv.average_latency
    assert migrated.average_latency < static.average_latency
    # the abstract's headline: large off-package traffic reduction
    reduction = 1 - migrated.offpkg_traffic_fraction / conv.offpkg_traffic_fraction
    print(f"off-package traffic reduction vs conventional: {reduction:.1%}")
    assert reduction > 0.5
