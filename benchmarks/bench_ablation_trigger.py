"""Ablation — the hottest-coldest trigger condition.

The paper swaps only when the off-package MRU page was accessed more
often than the on-package LRU page in the last epoch. Disabling the
comparison (swap unconditionally every epoch) must not help: it churns
pages whose heat does not justify the copy traffic.
"""

from repro.core.hetero_memory import HeterogeneousMainMemory
from repro.experiments.common import migration_config, migration_trace
from repro.stats.report import Table
from repro.units import KB


def test_trigger_ablation(run_once, fast):
    n = 300_000 if fast else 1_200_000
    trace = migration_trace("SPECjbb", n)

    def sweep():
        out = {}
        for guarded in (True, False):
            cfg = migration_config(
                algorithm="live", macro_page_bytes=64 * KB, swap_interval=1_000,
                hottest_coldest_trigger=guarded,
            )
            out[guarded] = HeterogeneousMainMemory(cfg).run(trace)
        return out

    results = run_once(sweep)
    table = Table(
        "Ablation — hottest-coldest trigger vs unconditional swapping (SPECjbb)",
        ["trigger", "avg latency", "swaps", "migrated MB"],
    )
    for guarded, res in results.items():
        table.add_row(
            "hottest-coldest" if guarded else "unconditional",
            f"{res.average_latency:.1f}",
            res.swaps_triggered,
            res.migrated_bytes >> 20,
        )
    print()
    table.print()
    guarded, unconditional = results[True], results[False]
    # the guard must not lose meaningfully, and must not migrate more
    assert guarded.average_latency <= unconditional.average_latency * 1.10
    assert guarded.migrated_bytes <= unconditional.migrated_bytes
