"""Fig 11 (a/b/c) — N vs N-1 vs Live across granularity x interval.

Shape assertions:
* at 4 MB pages with frequent swapping, N is far worse than N-1;
* Live <= N-1 (within noise) everywhere;
* at 4 KB the three algorithms converge.
"""

from repro.config import MigrationAlgorithm
from repro.experiments.fig11 import run, simulate
from repro.units import KB


def test_fig11(run_once, fast):
    tables = run_once(run, fast)
    print()
    for t in tables:
        t.print()

    n = 300_000 if fast else 1_200_000
    workload = "pgbench"
    lat = {
        (algo, page): simulate(workload, algo, page, 1_000, n).average_latency
        for algo in MigrationAlgorithm.ALL
        for page in (4 * KB, 4096 * KB)
    }
    # coarse + frequent: N stalls dominate
    assert lat[("N", 4096 * KB)] > 3 * lat[("N-1", 4096 * KB)]
    # live never loses to N-1 by more than noise
    assert lat[("live", 4096 * KB)] <= lat[("N-1", 4096 * KB)] * 1.02
    assert lat[("live", 4 * KB)] <= lat[("N-1", 4 * KB)] * 1.02
    # 4 KB convergence between the background algorithms
    assert abs(lat[("live", 4 * KB)] - lat[("N-1", 4 * KB)]) < 0.05 * lat[("N-1", 4 * KB)]
