"""Figs 12-14 — Live Migration latency vs granularity per interval.

Shape assertion: the most frequent interval (Fig 12, 1K) achieves the
lowest per-workload minimum of the three (the paper: "the migration
frequency is more important").
"""

from repro.experiments.fig12_14 import latency_grid, run
from repro.units import KB


def test_fig12_14(run_once, fast):
    tables = run_once(run, fast)
    print()
    for t in tables:
        t.print()

    n = 300_000 if fast else 1_200_000
    grans = (4 * KB, 64 * KB, 1024 * KB)
    workloads = ("pgbench", "MG.C")
    minima = {}
    for interval in (1_000, 10_000, 100_000):
        grid = latency_grid(interval, n, grans, workloads)
        minima[interval] = {wl: min(series) for wl, series in grid.items()}
    for wl in workloads:
        assert minima[1_000][wl] <= minima[100_000][wl] * 1.02, wl
