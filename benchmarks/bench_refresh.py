"""Extension — DRAM refresh and background power.

The paper's timing and power models ignore refresh (it cites Smart
Refresh [7] as related work). This bench turns on tREFI/tRFC refresh
windows in both regions and background power in the energy model, and
shows (a) refresh adds a small, similar latency tax to every
configuration — the migration story is unchanged; (b) background power
*dilutes* the relative migration-energy overhead, one candidate
explanation for why our Fig 16 ratios sit below the paper's.
"""

from repro.config import (
    DramTiming,
    PowerConfig,
    SystemConfig,
    offpkg_dram_timing,
    onpkg_dram_timing,
)
from repro.core.hetero_memory import HeterogeneousMainMemory
from repro.experiments.common import MIGRATION_SCALE, migration_trace
from repro.power.energy import MemoryEnergyModel
from repro.stats.report import Table
from repro.units import GB, KB, MB


def make_cfg(refresh: bool) -> SystemConfig:
    cfg = SystemConfig(
        total_bytes=4 * GB // MIGRATION_SCALE,
        onpkg_bytes=512 * MB // MIGRATION_SCALE,
        offpkg_dram=offpkg_dram_timing(refresh=refresh),
        onpkg_dram=onpkg_dram_timing(refresh=refresh),
    )
    return cfg.with_migration(
        algorithm="live", macro_page_bytes=64 * KB, swap_interval=1_000
    )


def test_refresh_extension(run_once, fast):
    n = 300_000 if fast else 1_200_000
    trace = migration_trace("pgbench", n)

    def sweep():
        out = {}
        for refresh in (False, True):
            out[refresh] = HeterogeneousMainMemory(make_cfg(refresh)).run(trace)
        return out

    results = run_once(sweep)
    table = Table(
        "Extension — refresh windows (tREFI 7.8us / tRFC 160ns) on both regions",
        ["refresh", "avg latency", "on-package fraction"],
    )
    for refresh, res in results.items():
        table.add_row("on" if refresh else "off",
                      f"{res.average_latency:.1f}", f"{res.onpkg_fraction:.1%}")
    print()
    table.print()

    off, on = results[False], results[True]
    # refresh adds a bounded tax (tRFC/tREFI ~ 2% duty + queue ripple)...
    assert on.average_latency > off.average_latency
    assert on.average_latency < off.average_latency * 1.5
    # ...and does not change the migration outcome
    assert abs(on.onpkg_fraction - off.onpkg_fraction) < 0.05

    # background power dilutes the migration overhead ratio
    plain = MemoryEnergyModel().report(results[False])
    background = MemoryEnergyModel(PowerConfig(background_mw_per_gb=50.0)).report(
        results[False], total_capacity_gb=4 / MIGRATION_SCALE
    )
    print(f"normalised power: {plain.normalized:.2f}x per-bit only, "
          f"{background.normalized:.2f}x with 50 mW/GB background")
    assert abs(background.normalized - 1.0) <= abs(plain.normalized - 1.0) + 0.05
