"""Ablation — the many-bank on-package DRAM (Section II).

The paper: accessing the off-package 8-bank DRAM costs ~107 cycles of
queuing while the 128-bank on-package DRAM costs < 3 on average. Sweep
the on-package bank count and show queuing collapse.
"""

import numpy as np

from repro.config import DramTiming
from repro.dram.fastmodel import FastDevice
from repro.dram.timing import DramGeometry
from repro.stats.report import Table


def test_bank_count_ablation(run_once, fast):
    rng = np.random.default_rng(0)
    n = 100_000 if fast else 400_000
    addr = rng.integers(0, (1 << 27) // 64, n) * 64
    arrivals = np.cumsum(rng.integers(1, 14, n))  # heavy load

    def sweep():
        out = {}
        for banks in (8, 16, 32, 64, 128):
            timing = DramTiming(io_cycles=5, n_banks=banks, n_channels=1)
            dev = FastDevice(DramGeometry(timing))
            lat = dev.service(addr, arrivals)
            # queuing = measured latency minus the pure service mix
            service = (
                dev.row_hit_rate * timing.hit_cycles
                + (1 - dev.row_hit_rate) * timing.miss_cycles
            )
            out[banks] = float(lat.mean() - service)
        return out

    queuing = run_once(sweep)
    table = Table(
        "Ablation — on-package bank count vs queuing delay (heavy load)",
        ["banks", "avg queuing (cycles)"],
    )
    for banks, q in queuing.items():
        table.add_row(banks, f"{q:.1f}")
    print()
    table.print()
    assert queuing[8] > 10 * max(queuing[128], 0.5)
    values = list(queuing.values())
    assert all(a >= b - 0.5 for a, b in zip(values, values[1:]))  # monotone
