"""Table I — NPB memory footprints (paper vs generated traces)."""

from repro.experiments.table1 import run


def test_table1(run_once, fast):
    table = run_once(run, fast)
    print()
    table.print()
    # every generated workload must realise >= 40% of its target footprint
    # even on a short trace (most reach 100%)
    for row in table.rows:
        coverage = int(row[-1].rstrip("%"))
        assert coverage >= 40, row
