"""Simulator throughput — the library's own performance envelope.

Not a paper figure: tracks how many trace accesses per second each
simulation path sustains, so performance regressions in the vectorised
hot loops are caught (per the optimisation-workflow guide: measure,
don't guess).

Two entry points share one workload definition:

* pytest-benchmark tests (``pytest benchmarks/bench_throughput.py
  --benchmark-only``) for interactive profiling;
* ``python benchmarks/bench_throughput.py --out BENCH_throughput.json``
  emits a machine-readable snapshot (best-of-N accesses/sec per path)
  that ``benchmarks/check_throughput.py`` diffs against the committed
  baseline in CI.
"""

import argparse
import json
import time

import numpy as np

from repro.config import MigrationConfig, SystemConfig, offpkg_dram_timing
from repro.core.detailed import DetailedSimulator
from repro.core.hetero_memory import HeterogeneousMainMemory
from repro.dram.fastmodel import FastDevice
from repro.dram.timing import DramGeometry
from repro.trace.record import make_chunk
from repro.units import KB, MB

#: accesses in the standard throughput workload
N_ACCESSES = 200_000


def _cfg():
    return SystemConfig(
        total_bytes=128 * MB,
        onpkg_bytes=16 * MB,
        migration=MigrationConfig(
            algorithm="live", macro_page_bytes=64 * KB, swap_interval=1_000
        ),
    )


def _trace(n, seed=0):
    rng = np.random.default_rng(seed)
    hot = rng.integers(0, 128 * MB // 4096)
    blocks = np.where(
        rng.random(n) < 0.8,
        (hot + rng.integers(0, 512, n)) % (128 * MB // 4096),
        rng.integers(0, 128 * MB // 4096, n),
    )
    return make_chunk(blocks * 4096, time=np.cumsum(rng.integers(1, 80, n)))


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------

def test_fast_dram_model_throughput(benchmark):
    geo = DramGeometry(offpkg_dram_timing())
    trace = _trace(N_ACCESSES)

    def run():
        dev = FastDevice(geo)
        return dev.service(trace.addr, trace.time)

    lat = benchmark(run)
    assert lat.shape[0] == N_ACCESSES


def test_epoch_simulator_throughput(benchmark):
    trace = _trace(N_ACCESSES)

    def run():
        return HeterogeneousMainMemory(_cfg()).run(trace)

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert res.n_accesses == N_ACCESSES
    # the vectorised path should clear ~100k accesses/sec with margin
    per_access_us = benchmark.stats["mean"] * 1e6 / N_ACCESSES
    assert per_access_us < 10.0


def test_epoch_simulator_unfused_throughput(benchmark):
    trace = _trace(N_ACCESSES)

    def run():
        return HeterogeneousMainMemory(_cfg(), fused=False).run(trace)

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert res.n_accesses == N_ACCESSES


def test_detailed_simulator_throughput(benchmark):
    trace = _trace(5_000)

    def run():
        return DetailedSimulator(_cfg()).run(trace)

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    assert res.n_accesses == 5_000


# ---------------------------------------------------------------------------
# JSON snapshot for the CI perf-smoke job
# ---------------------------------------------------------------------------

def _paths(n):
    """(name, callable) per measured simulation path, sharing one trace."""
    trace = _trace(n)
    geo = DramGeometry(offpkg_dram_timing())
    return [
        ("fast_dram_model",
         lambda: FastDevice(geo).service(trace.addr, trace.time)),
        ("epoch_simulator_fused",
         lambda: HeterogeneousMainMemory(_cfg()).run(trace)),
        ("epoch_simulator_unfused",
         lambda: HeterogeneousMainMemory(_cfg(), fused=False).run(trace)),
    ]


def measure(n=N_ACCESSES, rounds=5):
    """Best-of-``rounds`` accesses/sec for every path."""
    out = {}
    for name, fn in _paths(n):
        fn()  # warm-up: imports, allocator, branch caches
        best = min(
            _timed(fn) for _ in range(rounds)
        )
        out[name] = {
            "seconds": round(best, 6),
            "accesses_per_sec": round(n / best),
        }
    return out


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_throughput.json",
                        help="where to write the JSON snapshot")
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("-n", "--accesses", type=int, default=N_ACCESSES)
    args = parser.parse_args(argv)
    snapshot = {
        "schema": 1,
        "accesses": args.accesses,
        "rounds": args.rounds,
        "paths": measure(args.accesses, args.rounds),
    }
    with open(args.out, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for name, row in snapshot["paths"].items():
        print(f"{name:28s} {row['accesses_per_sec'] / 1e6:8.3f} M accesses/s")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
