"""Simulator throughput — the library's own performance envelope.

Not a paper figure: tracks how many trace accesses per second each
simulation path sustains, so performance regressions in the vectorised
hot loops are caught (per the optimisation-workflow guide: measure,
don't guess).
"""

import numpy as np
import pytest

from repro.config import MigrationConfig, SystemConfig
from repro.core.detailed import DetailedSimulator
from repro.core.hetero_memory import HeterogeneousMainMemory
from repro.dram.fastmodel import FastDevice
from repro.dram.timing import DramGeometry
from repro.config import offpkg_dram_timing
from repro.trace.record import make_chunk
from repro.units import KB, MB


def _cfg():
    return SystemConfig(
        total_bytes=128 * MB,
        onpkg_bytes=16 * MB,
        migration=MigrationConfig(
            algorithm="live", macro_page_bytes=64 * KB, swap_interval=1_000
        ),
    )


def _trace(n, seed=0):
    rng = np.random.default_rng(seed)
    hot = rng.integers(0, 128 * MB // 4096)
    blocks = np.where(
        rng.random(n) < 0.8,
        (hot + rng.integers(0, 512, n)) % (128 * MB // 4096),
        rng.integers(0, 128 * MB // 4096, n),
    )
    return make_chunk(blocks * 4096, time=np.cumsum(rng.integers(1, 80, n)))


def test_fast_dram_model_throughput(benchmark):
    geo = DramGeometry(offpkg_dram_timing())
    trace = _trace(200_000)

    def run():
        dev = FastDevice(geo)
        return dev.service(trace.addr, trace.time)

    lat = benchmark(run)
    assert lat.shape[0] == 200_000


def test_epoch_simulator_throughput(benchmark):
    trace = _trace(200_000)

    def run():
        return HeterogeneousMainMemory(_cfg()).run(trace)

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert res.n_accesses == 200_000
    # the vectorised path should clear ~100k accesses/sec with margin
    per_access_us = benchmark.stats["mean"] * 1e6 / 200_000
    assert per_access_us < 10.0


def test_detailed_simulator_throughput(benchmark):
    trace = _trace(5_000)

    def run():
        return DetailedSimulator(_cfg()).run(trace)

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    assert res.n_accesses == 5_000
