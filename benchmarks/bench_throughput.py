"""Simulator throughput — the library's own performance envelope.

Not a paper figure: tracks how many trace accesses per second each
simulation path sustains, so performance regressions in the vectorised
hot loops are caught (per the optimisation-workflow guide: measure,
don't guess).

Two entry points share one workload definition:

* pytest-benchmark tests (``pytest benchmarks/bench_throughput.py
  --benchmark-only``) for interactive profiling;
* ``python benchmarks/bench_throughput.py --out BENCH_throughput.json``
  emits a machine-readable snapshot (best-of-N and median-of-N
  accesses/sec per path, plus host metadata) that
  ``benchmarks/check_throughput.py`` diffs against the committed
  baseline in CI.

Measured paths (schema 2):

* ``fast_dram_model`` — the raw vectorised DRAM device service loop;
* ``epoch_simulator_fused`` — the fused multi-epoch fast path on the
  standard hot/uniform mix (migration on);
* ``epoch_simulator_fused_migrating`` — the fused path under a
  *drifting* hot set that keeps a SwapPlan in flight for most epochs;
  asserts the fused path covered every epoch (``stepwise_epochs == 0``)
  so a regression to the stepwise fallback fails loudly rather than
  showing up as a silent slowdown;
* ``epoch_simulator_unfused`` — the exact per-epoch reference loop;
* ``sharded_x4`` — :class:`repro.campaign.ShardedSimulator` with four
  address-space shards in worker processes. Only expect a speedup over
  the fused path on hosts with >= 4 usable cores (see the ``reference``
  block's ``cpu_count``); on a single-core host this measures the
  sharding overhead floor.
"""

import argparse
import json
import os
import platform
import statistics
import time

import numpy as np

from repro.campaign.sharded import ShardedSimulator
from repro.config import MigrationConfig, SystemConfig, offpkg_dram_timing
from repro.core.detailed import DetailedSimulator
from repro.core.hetero_memory import HeterogeneousMainMemory
from repro.dram.fastmodel import FastDevice
from repro.dram.timing import DramGeometry
from repro.trace.record import make_chunk
from repro.units import KB, MB

#: accesses in the standard throughput workload
N_ACCESSES = 200_000

#: top macro pages kept out of the sharded trace (they back the
#: per-shard ghost pages; see repro.campaign.sharded.shard_records)
SHARD_RESERVE_PAGES = 8


def _cfg():
    return SystemConfig(
        total_bytes=128 * MB,
        onpkg_bytes=16 * MB,
        migration=MigrationConfig(
            algorithm="live", macro_page_bytes=64 * KB, swap_interval=1_000
        ),
    )


def _trace(n, seed=0):
    rng = np.random.default_rng(seed)
    hot = rng.integers(0, 128 * MB // 4096)
    blocks = np.where(
        rng.random(n) < 0.8,
        (hot + rng.integers(0, 512, n)) % (128 * MB // 4096),
        rng.integers(0, 128 * MB // 4096, n),
    )
    return make_chunk(blocks * 4096, time=np.cumsum(rng.integers(1, 80, n)))


def _trace_migrating(n, seed=0):
    """Hot cluster that drifts every ~2k accesses: the trigger keeps
    firing, so nearly every epoch carries an active SwapPlan."""
    rng = np.random.default_rng(seed)
    n_blocks = 128 * MB // 4096
    drift = (np.arange(n, dtype=np.int64) // 2_000) * 256
    blocks = np.where(
        rng.random(n) < 0.8,
        (drift + rng.integers(0, 512, n)) % n_blocks,
        rng.integers(0, n_blocks, n),
    )
    return make_chunk(blocks * 4096, time=np.cumsum(rng.integers(1, 80, n)))


def _trace_sharded(n, seed=0):
    """The standard mix, folded away from the top ``SHARD_RESERVE_PAGES``
    macro pages (they back the per-shard ghost pages)."""
    rng = np.random.default_rng(seed)
    n_blocks = (128 * MB - SHARD_RESERVE_PAGES * 64 * KB) // 4096
    hot = rng.integers(0, n_blocks)
    blocks = np.where(
        rng.random(n) < 0.8,
        (hot + rng.integers(0, 512, n)) % n_blocks,
        rng.integers(0, n_blocks, n),
    )
    return make_chunk(blocks * 4096, time=np.cumsum(rng.integers(1, 80, n)))


def _run_fused_migrating(trace):
    res = HeterogeneousMainMemory(_cfg()).run(trace)
    # machine-independent invariants, checked on every measurement: the
    # workload actually migrates, and the fused path covered every epoch
    assert res.swaps_triggered > 0, "migrating benchmark stopped migrating"
    assert res.stepwise_epochs == 0 and res.fused_epochs > 0, (
        "migration-active epochs fell back to the stepwise loop"
    )
    return res


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------

def test_fast_dram_model_throughput(benchmark):
    geo = DramGeometry(offpkg_dram_timing())
    trace = _trace(N_ACCESSES)

    def run():
        dev = FastDevice(geo)
        return dev.service(trace.addr, trace.time)

    lat = benchmark(run)
    assert lat.shape[0] == N_ACCESSES


def test_epoch_simulator_throughput(benchmark):
    trace = _trace(N_ACCESSES)

    def run():
        return HeterogeneousMainMemory(_cfg()).run(trace)

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert res.n_accesses == N_ACCESSES
    # the vectorised path should clear ~100k accesses/sec with margin
    per_access_us = benchmark.stats["mean"] * 1e6 / N_ACCESSES
    assert per_access_us < 10.0


def test_epoch_simulator_fused_migrating_throughput(benchmark):
    trace = _trace_migrating(N_ACCESSES)

    res = benchmark.pedantic(
        lambda: _run_fused_migrating(trace), rounds=3, iterations=1
    )
    assert res.n_accesses == N_ACCESSES


def test_epoch_simulator_unfused_throughput(benchmark):
    trace = _trace(N_ACCESSES)

    def run():
        return HeterogeneousMainMemory(_cfg(), fused=False).run(trace)

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert res.n_accesses == N_ACCESSES


def test_sharded_simulator_throughput(benchmark):
    trace = _trace_sharded(N_ACCESSES)

    def run():
        sharded = ShardedSimulator(_cfg(), 4, poll_interval=0.005)
        return sharded.run(trace)

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    assert res.n_accesses == N_ACCESSES


def test_detailed_simulator_throughput(benchmark):
    trace = _trace(5_000)

    def run():
        return DetailedSimulator(_cfg()).run(trace)

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    assert res.n_accesses == 5_000


# ---------------------------------------------------------------------------
# JSON snapshot for the CI perf-smoke job
# ---------------------------------------------------------------------------

def _paths(n):
    """(name, callable) per measured simulation path, sharing one trace."""
    trace = _trace(n)
    trace_mig = _trace_migrating(n)
    trace_sh = _trace_sharded(n)
    geo = DramGeometry(offpkg_dram_timing())
    return [
        ("fast_dram_model",
         lambda: FastDevice(geo).service(trace.addr, trace.time)),
        ("epoch_simulator_fused",
         lambda: HeterogeneousMainMemory(_cfg()).run(trace)),
        ("epoch_simulator_fused_migrating",
         lambda: _run_fused_migrating(trace_mig)),
        ("epoch_simulator_unfused",
         lambda: HeterogeneousMainMemory(_cfg(), fused=False).run(trace)),
        ("sharded_x4",
         lambda: ShardedSimulator(_cfg(), 4, poll_interval=0.005).run(trace_sh)),
    ]


def host_metadata():
    """Where the snapshot was taken — raw accesses/sec only compare
    across snapshots with the same (or accounted-for) host."""
    return {
        "cpu_count": os.cpu_count(),
        "machine": platform.machine(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def measure(n=N_ACCESSES, rounds=5):
    """Best-of and median-of ``rounds`` accesses/sec for every path.

    Best-of is the regression gate (least scheduler noise); the median
    is recorded alongside so a snapshot also shows typical throughput.
    """
    out = {}
    for name, fn in _paths(n):
        fn()  # warm-up: imports, allocator, branch caches
        times = sorted(_timed(fn) for _ in range(rounds))
        best = times[0]
        med = statistics.median(times)
        out[name] = {
            "seconds": round(best, 6),
            "accesses_per_sec": round(n / best),
            "median_seconds": round(med, 6),
            "median_accesses_per_sec": round(n / med),
        }
    return out


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_throughput.json",
                        help="where to write the JSON snapshot")
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("-n", "--accesses", type=int, default=N_ACCESSES)
    args = parser.parse_args(argv)
    snapshot = {
        "schema": 2,
        "accesses": args.accesses,
        "rounds": args.rounds,
        "reference": {"host": host_metadata()},
        "paths": measure(args.accesses, args.rounds),
    }
    with open(args.out, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for name, row in snapshot["paths"].items():
        print(f"{name:34s} {row['accesses_per_sec'] / 1e6:8.3f} M accesses/s "
              f"(median {row['median_accesses_per_sec'] / 1e6:.3f})")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
