"""Fig 10 — hardware cost vs macro page size (exact analytic repro)."""

from repro.experiments.fig10 import run
from repro.migration.overhead import hardware_bits
from repro.units import GB, KB, MB


def test_fig10(run_once, fast):
    table = run_once(run, fast)
    print()
    table.print()
    assert hardware_bits(1 * GB, 4 * MB).total_bits == 9228  # the paper's number
    assert hardware_bits(1 * GB, 4 * KB).total_bits > 10_000_000
