"""Fig 15 — sensitivity to on-package capacity (128/256/512 MB).

Shape assertions: latency degrades gracefully as the region shrinks and
stays below the no-migration latency at every size.
"""

from repro.config import MigrationAlgorithm
from repro.core.hetero_memory import baseline_latency
from repro.experiments.common import migration_config, migration_trace
from repro.experiments.fig11 import simulate
from repro.experiments.fig15 import INTERVAL, PAGE, run


def test_fig15(run_once, fast):
    table = run_once(run, fast)
    print()
    table.print()

    n = 300_000 if fast else 1_200_000
    workload = "pgbench"
    lat = {
        mb: simulate(workload, MigrationAlgorithm.LIVE, PAGE, INTERVAL, n, mb).average_latency
        for mb in (128, 256, 512)
    }
    static = baseline_latency(
        migration_config(512), migration_trace(workload, n), "static"
    ).average_latency
    assert lat[512] <= lat[256] * 1.05 <= lat[128] * 1.10
    for mb in (128, 256, 512):
        assert lat[mb] < static, mb
