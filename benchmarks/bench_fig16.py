"""Fig 16 — memory power of the hybrid system vs off-package-only.

Shape assertions: migration power overhead grows with swap frequency;
the sweep's minimum sits near the paper's ~2x floor (4 KB, 100K).
"""

from repro.config import MigrationAlgorithm
from repro.experiments.fig16 import run
from repro.experiments.fig11 import simulate
from repro.power.energy import MemoryEnergyModel
from repro.units import KB


def test_fig16(run_once, fast):
    table = run_once(run, fast)
    print()
    table.print()

    n = 300_000 if fast else 1_200_000
    model = MemoryEnergyModel()
    norm = {}
    for interval in (1_000, 100_000):
        res = simulate("pgbench", MigrationAlgorithm.LIVE, 4 * KB, interval, n)
        norm[interval] = model.report(res).normalized
    assert norm[1_000] >= norm[100_000]
    # the sweep floor lands in the paper's ~2x neighbourhood
    assert 0.5 < norm[100_000] < 4.0
