"""Extension — adaptive migration granularity (the paper's future work).

Section IV-B: "it is necessary for the memory controller to adaptively
change the migration granularity according to different types of
workloads." The explore-then-commit controller probes the Fig 11-14
ladder online and commits; compare against every fixed granularity.
"""

from repro.core.hetero_memory import HeterogeneousMainMemory
from repro.experiments.common import migration_config, migration_trace
from repro.extensions.adaptive import AdaptiveGranularitySimulator
from repro.stats.report import Table
from repro.units import KB, format_size

LADDER = (4 * KB, 64 * KB, 1024 * KB)
WORKLOADS = ("pgbench", "MG.C")


def test_adaptive_granularity(run_once, fast):
    n = 400_000 if fast else 1_200_000

    def sweep():
        rows = {}
        for workload in WORKLOADS:
            trace = migration_trace(workload, n)
            cfg = migration_config(
                algorithm="live", macro_page_bytes=64 * KB, swap_interval=1_000
            )
            fixed = {
                g: HeterogeneousMainMemory(
                    cfg.with_migration(macro_page_bytes=g)
                ).run(trace).average_latency
                for g in LADDER
            }
            adaptive = AdaptiveGranularitySimulator(
                cfg, ladder=LADDER, adapt_every=20
            ).run(trace)
            rows[workload] = (fixed, adaptive)
        return rows

    rows = run_once(sweep)
    table = Table(
        "Extension — adaptive granularity vs fixed (Live, interval 1K)",
        ["workload"]
        + [f"fixed {format_size(g)}" for g in LADDER]
        + ["adaptive", "committed to"],
    )
    for workload, (fixed, adaptive) in rows.items():
        table.add_row(
            workload,
            *[f"{v:.1f}" for v in fixed.values()],
            f"{adaptive.average_latency:.1f}",
            format_size(adaptive.final_granularity),
        )
    print()
    table.print()
    for workload, (fixed, adaptive) in rows.items():
        worst = max(fixed.values())
        best = min(fixed.values())
        # exploration overhead must not sink it below the worst fixed rung
        assert adaptive.average_latency < worst * 1.15, workload
        # and it must commit to a rung whose fixed latency is near-best
        assert fixed[adaptive.final_granularity] <= best * 1.25, workload
