"""CI perf-smoke: fail when simulator throughput regresses.

Re-measures every path in ``bench_throughput.measure`` and compares
against the committed ``BENCH_throughput.json`` snapshot. A path that
falls more than ``--tolerance`` (default 30%) below its recorded
accesses/sec fails the check.

Raw accesses/sec varies with host speed, so the check also enforces a
machine-independent invariant: the fused epoch path must stay at least
``--min-fused-ratio`` (default 1.3x) faster than the unfused reference
loop on the *same* host — a regression that slips under the absolute
tolerance on fast hardware still trips this.

Usage::

    python benchmarks/check_throughput.py [--baseline BENCH_throughput.json]
"""

import argparse
import json
import os
import sys

from bench_throughput import measure


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default=os.path.join(os.path.dirname(__file__), "BENCH_throughput.json"),
    )
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop vs baseline (default 0.30)")
    parser.add_argument("--min-fused-ratio", type=float, default=1.3,
                        help="required fused/unfused speedup on this host")
    parser.add_argument("--rounds", type=int, default=5)
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    fresh = measure(baseline["accesses"], args.rounds)

    failures = []
    for name, ref in sorted(baseline["paths"].items()):
        ref_aps = ref["accesses_per_sec"]
        now_aps = fresh[name]["accesses_per_sec"]
        floor = ref_aps * (1.0 - args.tolerance)
        status = "ok" if now_aps >= floor else "REGRESSED"
        print(f"{name:28s} baseline {ref_aps / 1e6:8.3f} M/s   "
              f"now {now_aps / 1e6:8.3f} M/s   {status}")
        if now_aps < floor:
            failures.append(
                f"{name}: {now_aps / 1e6:.3f} M accesses/s is more than "
                f"{args.tolerance:.0%} below the baseline {ref_aps / 1e6:.3f} M/s"
            )

    ratio = (fresh["epoch_simulator_fused"]["accesses_per_sec"]
             / fresh["epoch_simulator_unfused"]["accesses_per_sec"])
    print(f"{'fused/unfused speedup':28s} {ratio:8.2f}x   "
          f"(required >= {args.min_fused_ratio:.2f}x)")
    if ratio < args.min_fused_ratio:
        failures.append(
            f"fused path is only {ratio:.2f}x the unfused loop "
            f"(required >= {args.min_fused_ratio:.2f}x)"
        )

    if failures:
        print("\nperf-smoke FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf-smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
