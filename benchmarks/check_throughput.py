"""CI perf-smoke: fail when simulator throughput regresses.

Re-measures every path in ``bench_throughput.measure`` and compares
against the committed ``BENCH_throughput.json`` snapshot (schema 2). A
path that falls below its per-path floor — ``--tolerance`` under the
recorded best-of accesses/sec, with wider per-path overrides in
``PATH_TOLERANCE`` for the noisier paths — fails the check.

Raw accesses/sec varies with host speed, so the check also enforces
machine-independent invariants:

* the fused epoch path must stay at least ``--min-fused-ratio``
  (default 1.3x) faster than the unfused reference loop on the *same*
  host — a regression that slips under the absolute tolerance on fast
  hardware still trips this;
* the migration-active fused path asserts inside the benchmark that no
  epoch fell back to the stepwise loop (``stepwise_epochs == 0``), so a
  fusion-coverage regression fails the measurement itself;
* ``sharded_x4``'s absolute floor is only enforced when this host has
  at least as many CPUs as the baseline host (recorded in the
  snapshot's ``reference.host`` block) — sharding buys wall-clock with
  cores, and a smaller host measures overhead, not capability.

Usage::

    python benchmarks/check_throughput.py [--baseline BENCH_throughput.json]
"""

import argparse
import json
import os
import sys

from bench_throughput import host_metadata, measure

#: per-path fractional-drop overrides (default: --tolerance).
#: sharded_x4 rides on process spawn/IPC, the noisiest component in a
#: shared CI runner, so it gets a wider band.
PATH_TOLERANCE = {
    "sharded_x4": 0.50,
}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default=os.path.join(os.path.dirname(__file__), "BENCH_throughput.json"),
    )
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop vs baseline (default 0.30)")
    parser.add_argument("--min-fused-ratio", type=float, default=1.3,
                        help="required fused/unfused speedup on this host")
    parser.add_argument("--rounds", type=int, default=5)
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    fresh = measure(baseline["accesses"], args.rounds)

    base_host = baseline.get("reference", {}).get("host", {})
    base_cpus = base_host.get("cpu_count")
    here_cpus = host_metadata()["cpu_count"]
    fewer_cores = (
        base_cpus is not None and here_cpus is not None and here_cpus < base_cpus
    )

    failures = []
    for name, ref in sorted(baseline["paths"].items()):
        ref_aps = ref["accesses_per_sec"]
        now_aps = fresh[name]["accesses_per_sec"]
        tol = PATH_TOLERANCE.get(name, args.tolerance)
        floor = ref_aps * (1.0 - tol)
        if name == "sharded_x4" and fewer_cores:
            status = f"skipped ({here_cpus} < baseline {base_cpus} cpus)"
        elif now_aps >= floor:
            status = "ok"
        else:
            status = "REGRESSED"
            failures.append(
                f"{name}: {now_aps / 1e6:.3f} M accesses/s is more than "
                f"{tol:.0%} below the baseline {ref_aps / 1e6:.3f} M/s"
            )
        print(f"{name:34s} baseline {ref_aps / 1e6:8.3f} M/s   "
              f"now {now_aps / 1e6:8.3f} M/s   {status}")

    ratio = (fresh["epoch_simulator_fused"]["accesses_per_sec"]
             / fresh["epoch_simulator_unfused"]["accesses_per_sec"])
    print(f"{'fused/unfused speedup':34s} {ratio:8.2f}x   "
          f"(required >= {args.min_fused_ratio:.2f}x)")
    if ratio < args.min_fused_ratio:
        failures.append(
            f"fused path is only {ratio:.2f}x the unfused loop "
            f"(required >= {args.min_fused_ratio:.2f}x)"
        )

    if failures:
        print("\nperf-smoke FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf-smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
