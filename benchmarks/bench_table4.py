"""Table IV — effectiveness η of controller-based migration.

Headline assertion: average effectiveness lands in the paper's band
(83% ± a band wide enough for the synthetic-trace substitution), with
FT.C the hardest workload.
"""

from repro.experiments.table4 import reports, run


def test_table4(run_once, fast):
    table = run_once(run, fast)
    print()
    table.print()

    n = 300_000 if fast else 1_200_000
    workloads = ("FT.C", "MG.C", "pgbench") if fast else None
    rows = reports(n, workloads)
    etas = {r.workload: min(1.0, r.effectiveness) for r in rows}
    average = sum(etas.values()) / len(etas)
    # the paper reports 83% on average; the scaled synthetic substrate
    # should land in a generous band around it
    assert 0.5 < average <= 1.0
    # FT (streaming) benefits least, pgbench (OLTP) near the top
    assert etas["FT.C"] == min(etas.values())
    assert etas["pgbench"] >= 0.75
    # per-row sanity: migration never makes things worse at the best point
    for r in rows:
        assert r.latency_with_migration <= r.latency_without_migration * 1.01
