"""Tests for the trace substrate: records, I/O, stats, filters."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceError
from repro.trace.record import READ, TRACE_DTYPE, WRITE, TraceChunk, make_chunk
from repro.trace.io import TraceReader, TraceWriter, read_trace, write_trace
from repro.trace.stats import access_skew, compute_stats, footprint_bytes, page_access_counts
from repro.trace.filters import concat, downsample, interleave, remap_into, time_window


class TestRecord:
    def test_make_chunk_defaults(self):
        c = make_chunk([0, 64, 128])
        assert len(c) == 3
        np.testing.assert_array_equal(c.time, [0, 1, 2])
        assert (c.rw == READ).all()
        assert (c.cpu == 0).all()

    def test_fields_are_views(self):
        c = make_chunk([0, 64])
        assert c.addr.base is c.records

    def test_slice_is_zero_copy_view(self):
        # the documented aliasing contract: slices share the parent's
        # records buffer; masks/fancy indexing copy
        c = make_chunk([0, 64, 128, 192])
        view = c[1:3]
        assert view.records.base is c.records
        c.records["addr"][1] = 4096
        assert view.addr[0] == 4096

    def test_mask_index_copies(self):
        c = make_chunk([0, 64, 128, 192])
        picked = c[np.array([True, False, True, False])]
        c.records["addr"][0] = 4096
        assert picked.addr[0] == 0

    def test_validation_rejects_negative_addr(self):
        with pytest.raises(TraceError):
            make_chunk([-1])

    def test_validation_rejects_time_regression(self):
        with pytest.raises(TraceError):
            make_chunk([0, 64], time=[5, 4])

    def test_validation_rejects_bad_rw(self):
        rec = np.zeros(1, dtype=TRACE_DTYPE)
        rec["rw"] = 7
        with pytest.raises(TraceError):
            TraceChunk(rec)

    def test_scalar_indexing_rejected(self):
        c = make_chunk([0, 64])
        with pytest.raises(TraceError):
            c[0]

    def test_slicing(self):
        c = make_chunk([0, 64, 128, 192])
        assert len(c[1:3]) == 2
        assert c[::2].addr.tolist() == [0, 128]

    def test_equality_and_copy(self):
        c = make_chunk([0, 64])
        assert c == c.copy()
        assert c != make_chunk([0, 128])

    def test_repr(self):
        assert "TraceChunk" in repr(make_chunk([0]))
        assert "empty" in repr(make_chunk([]))


class TestIO:
    def test_roundtrip(self, tmp_path):
        c = make_chunk([0, 64, 4096], time=[1, 5, 9], cpu=[0, 1, 2], rw=[0, 1, 0])
        path = tmp_path / "t.rptrace"
        write_trace(path, c)
        assert read_trace(path) == c

    def test_chunked_write_and_read(self, tmp_path):
        path = tmp_path / "t.rptrace"
        c1 = make_chunk([0, 64], time=[0, 1])
        c2 = make_chunk([128], time=[2])
        with TraceWriter(path) as w:
            w.write(c1)
            w.write(c2)
        reader = TraceReader(path, chunk_records=2)
        chunks = list(reader)
        assert len(reader) == 3
        assert [len(c) for c in chunks] == [2, 1]
        assert concat(chunks) == concat([c1, c2])

    def test_writer_rejects_time_regression_across_chunks(self, tmp_path):
        path = tmp_path / "t.rptrace"
        with TraceWriter(path) as w:
            w.write(make_chunk([0], time=[10]))
            with pytest.raises(TraceError):
                w.write(make_chunk([0], time=[5]))

    def test_reader_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rptrace"
        path.write_bytes(b"NOTATRACE" + b"\0" * 7)
        with pytest.raises(TraceError):
            TraceReader(path)

    def test_reader_rejects_truncated_body(self, tmp_path):
        path = tmp_path / "t.rptrace"
        write_trace(path, make_chunk([0, 64]))
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        with pytest.raises(TraceError):
            TraceReader(path)

    def test_empty_trace_roundtrip(self, tmp_path):
        path = tmp_path / "empty.rptrace"
        write_trace(path, make_chunk([]))
        assert len(read_trace(path)) == 0

    @settings(max_examples=20)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 40), max_size=50))
    def test_roundtrip_property(self, tmp_path_factory, addrs):
        path = tmp_path_factory.mktemp("t") / "p.rptrace"
        c = make_chunk(addrs)
        write_trace(path, c)
        assert read_trace(path) == c


class TestStats:
    def test_footprint_counts_unique_pages(self):
        c = make_chunk([0, 64, 4096, 4096 + 64, 8192])
        assert footprint_bytes(c, 4096) == 3 * 4096

    def test_compute_stats(self):
        c = make_chunk([0, 4096], time=[10, 30], rw=[WRITE, READ])
        s = compute_stats(c)
        assert s.n_accesses == 2
        assert s.n_writes == 1
        assert s.write_fraction == 0.5
        assert s.duration_cycles == 20
        assert "accesses" in s.describe()

    def test_empty_stats(self):
        s = compute_stats(make_chunk([]))
        assert s.n_accesses == 0 and s.write_fraction == 0.0

    def test_page_access_counts_sorted(self):
        c = make_chunk([0, 0, 0, 4096])
        pages, counts = page_access_counts(c, 4096)
        assert pages[0] == 0 and counts[0] == 3

    def test_access_skew_uniform_vs_hot(self):
        rng = np.random.default_rng(0)
        uniform = make_chunk(rng.integers(0, 1000, 5000) * 4096)
        hot = make_chunk(
            np.where(rng.random(5000) < 0.9, rng.integers(0, 10, 5000), rng.integers(0, 1000, 5000)) * 4096
        )
        assert access_skew(hot, 4096) > access_skew(uniform, 4096)


class TestFilters:
    def test_time_window(self):
        c = make_chunk([0, 64, 128, 192], time=[0, 10, 20, 30])
        w = time_window(c, 10, 30)
        assert w.time.tolist() == [10, 20]
        with pytest.raises(TraceError):
            time_window(c, 30, 10)

    def test_downsample(self):
        c = make_chunk([0, 64, 128, 192])
        assert len(downsample(c, 2)) == 2
        with pytest.raises(TraceError):
            downsample(c, 0)

    def test_interleave_merges_by_time(self):
        a = make_chunk([0, 64], time=[0, 10])
        b = make_chunk([128], time=[5])
        merged = interleave([a, b], cpu_ids=[0, 1])
        assert merged.time.tolist() == [0, 5, 10]
        assert merged.cpu.tolist() == [0, 1, 0]

    def test_interleave_offsets_separate_footprints(self):
        a = make_chunk([0], time=[0])
        b = make_chunk([0], time=[1])
        merged = interleave([a, b], offsets=[0, 1 << 20])
        assert merged.addr.tolist() == [0, 1 << 20]

    def test_interleave_validates_lengths(self):
        with pytest.raises(TraceError):
            interleave([make_chunk([0])], cpu_ids=[0, 1])

    def test_interleave_empty(self):
        assert len(interleave([])) == 0

    def test_remap_into_preserves_page_identity(self):
        c = make_chunk([5 << 20, (5 << 20) + 64])
        r = remap_into(c, 1 << 20)
        assert r.addr[1] - r.addr[0] == 64
        assert (r.addr < (1 << 20)).all()
