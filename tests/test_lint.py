"""The repro-lint engine: rules, suppressions, baseline, JSON schema."""

import json
import textwrap

import pytest

from repro.analysis.lint import (
    RULES,
    Baseline,
    FileContext,
    Finding,
    Severity,
    lint_file,
    resolve_rules,
    run_lint,
)
from repro.errors import AnalysisError

SIM_PATH = "src/repro/simulator/example.py"


def findings_for(source, path=SIM_PATH, select=None):
    rules = resolve_rules(select=select)
    return lint_file(path, rules, source=textwrap.dedent(source))


def rule_names(findings):
    return sorted({f.rule for f in findings})


# ----------------------------------------------------------------------
# one seeded synthetic violation per rule (the acceptance criterion)
# ----------------------------------------------------------------------
class TestRules:
    def test_wall_clock_flagged(self):
        found = findings_for(
            """
            import time
            stamp = time.time()
            """
        )
        assert rule_names(found) == ["wall-clock"]
        assert found[0].severity is Severity.ERROR
        assert found[0].line == 3

    def test_datetime_now_flagged(self):
        found = findings_for(
            """
            import datetime
            a = datetime.datetime.now()
            b = datetime.date.today()
            """
        )
        assert len(found) == 2
        assert rule_names(found) == ["wall-clock"]

    def test_wall_clock_allowed_in_campaign(self):
        found = findings_for(
            "import time\nt = time.time()\n",
            path="src/repro/campaign/supervisor.py",
        )
        assert not [f for f in found if f.rule == "wall-clock"]

    def test_monotonic_not_flagged(self):
        assert not findings_for("import time\nt = time.monotonic()\n")

    def test_unseeded_rng_flagged(self):
        found = findings_for(
            """
            import random
            import numpy as np
            a = random.random()
            b = np.random.rand(3)
            rng = np.random.default_rng()
            r = random.Random()
            """,
            select=["unseeded-rng"],
        )
        assert rule_names(found) == ["unseeded-rng"]
        assert len(found) == 4

    def test_seeded_rng_clean(self):
        assert not findings_for(
            """
            import random
            import numpy as np
            rng = np.random.default_rng(42)
            r = random.Random(7)
            s = np.random.default_rng(seed=0)
            """,
            select=["unseeded-rng"],
        )

    def test_float_equality_flagged(self):
        found = findings_for(
            """
            def hit_rate(x):
                if x == 0.5:
                    return True
                return x != -1.0
            """
        )
        assert rule_names(found) == ["float-equality"]
        assert len(found) == 2
        assert found[0].severity is Severity.WARNING

    def test_int_equality_clean(self):
        assert not findings_for("ok = 1 == 1\nother = x == 5\n")

    def test_unordered_iteration_flagged(self):
        found = findings_for(
            """
            pages = {1, 2, 3}
            for p in pages:
                emit(p)
            rows = [f(x) for x in {4, 5}]
            """
        )
        assert rule_names(found) == ["unordered-iteration"]
        assert len(found) == 2

    def test_sorted_and_reductions_clean(self):
        assert not findings_for(
            """
            pages = {1, 2, 3}
            for p in sorted(pages):
                emit(p)
            total = sum(x for x in {4, 5})
            """
        )

    def test_state_dict_symmetry_flagged(self):
        found = findings_for(
            """
            class Broken:
                def state_dict(self):
                    return {}
            """
        )
        assert rule_names(found) == ["state-dict-symmetry"]
        assert "load_state_dict" in found[0].message

    def test_state_dict_pair_and_subclass_clean(self):
        assert not findings_for(
            """
            class Good:
                def state_dict(self):
                    return {}
                def load_state_dict(self, state):
                    pass

            class Sub(Base):
                def state_dict(self):
                    return {}
            """
        )

    def test_broad_except_flagged_in_scope(self):
        src = """
        try:
            work()
        except Exception:
            pass
        try:
            work()
        except:
            pass
        """
        found = findings_for(src, path="src/repro/resilience/faults.py")
        assert rule_names(found) == ["broad-except"]
        assert len(found) == 2
        # same code outside campaign/resilience is not in scope
        assert not findings_for(src, path=SIM_PATH)


# ----------------------------------------------------------------------
# hot-path-copy
# ----------------------------------------------------------------------
HOT_PATH = "src/repro/core/example.py"


class TestHotPathCopy:
    def test_copy_in_loop_flagged(self):
        found = findings_for(
            """
            def f(chunks):
                for c in chunks:
                    x = c.copy()
            """,
            path=HOT_PATH,
        )
        assert rule_names(found) == ["hot-path-copy"]
        assert found[0].severity is Severity.WARNING

    def test_ascontiguousarray_in_while_flagged(self):
        found = findings_for(
            """
            import numpy as np

            def f(a):
                while a.size:
                    a = np.ascontiguousarray(a[1:])
            """,
            path="src/repro/dram/example.py",
        )
        assert rule_names(found) == ["hot-path-copy"]

    def test_copy_outside_loop_ok(self):
        assert not findings_for(
            """
            import numpy as np

            def f(a):
                b = np.ascontiguousarray(a)
                return b.copy()
            """,
            path=HOT_PATH,
        )

    def test_copy_with_arguments_ok(self):
        # copy(order="F") / copy.copy(x)-style calls with operands are
        # not the zero-arg array idiom the rule targets
        assert not findings_for(
            """
            import copy

            def f(items):
                for x in items:
                    y = copy.copy(x)
                    z = x.copy(order="F")
            """,
            path=HOT_PATH,
        )

    def test_nested_function_resets_loop_depth(self):
        assert not findings_for(
            """
            def f(chunks):
                for c in chunks:
                    def g():
                        return c.copy()
            """,
            path=HOT_PATH,
        )

    def test_out_of_scope_paths_ignored(self):
        src = """
        def f(chunks):
            for c in chunks:
                x = c.copy()
        """
        assert not findings_for(src, path=SIM_PATH)
        assert not findings_for(src, path="src/repro/campaign/supervisor.py")
        assert findings_for(src, path="src/repro/memctrl/example.py")

    def test_inline_suppression(self):
        assert not findings_for(
            """
            def f(chunks):
                for c in chunks:
                    x = c.copy()  # repro-lint: disable=hot-path-copy - detaches state
            """,
            path=HOT_PATH,
        )


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_inline_disable(self):
        assert not findings_for(
            "import time\nt = time.time()  # repro-lint: disable=wall-clock\n"
        )

    def test_disable_all(self):
        assert not findings_for(
            "import time\nt = time.time()  # repro-lint: disable=all\n"
        )

    def test_disable_wrong_rule_keeps_finding(self):
        found = findings_for(
            "import time\nt = time.time()  # repro-lint: disable=unseeded-rng\n"
        )
        assert rule_names(found) == ["wall-clock"]

    def test_marker_after_other_annotations(self):
        assert not findings_for(
            "import time\n"
            "t = time.time()  # noqa: X100  # repro-lint: disable=wall-clock - profiling\n"
        )

    def test_marker_inside_string_ignored(self):
        found = findings_for(
            'import time\nt = time.time(); s = "# repro-lint: disable=all"\n'
        )
        assert rule_names(found) == ["wall-clock"]

    def test_comma_separated_rules(self):
        assert not findings_for(
            "import time, random\n"
            "t = time.time() + random.random()"
            "  # repro-lint: disable=wall-clock,unseeded-rng\n"
        )


# ----------------------------------------------------------------------
# baseline round-trip + engine behaviour
# ----------------------------------------------------------------------
class TestForkSafety:
    def test_module_level_lock_flagged(self):
        found = findings_for(
            """
            import threading
            _LOCK = threading.Lock()
            """,
            select=["fork-safety"],
        )
        assert rule_names(found) == ["fork-safety"]
        assert "fork" in found[0].message

    def test_module_level_memmap_flagged(self):
        found = findings_for(
            """
            import numpy as np
            DATA = np.memmap("trace.bin", dtype=np.int64, mode="r")
            """,
            select=["fork-safety"],
        )
        assert rule_names(found) == ["fork-safety"]
        assert "memmap" in found[0].message

    def test_module_level_rng_flagged(self):
        found = findings_for(
            """
            import numpy as np
            RNG = np.random.default_rng(1234)
            """,
            select=["fork-safety"],
        )
        assert rule_names(found) == ["fork-safety"]
        assert "RNG" in found[0].message

    def test_class_level_lock_flagged(self):
        found = findings_for(
            """
            import threading


            class Worker:
                lock = threading.RLock()
            """,
            select=["fork-safety"],
        )
        assert rule_names(found) == ["fork-safety"]

    def test_per_worker_construction_clean(self):
        found = findings_for(
            """
            import threading
            import numpy as np


            def worker_init(path):
                lock = threading.Lock()
                rng = np.random.default_rng(7)
                data = np.memmap(path, dtype=np.int64, mode="r")
                return lock, rng, data
            """,
            select=["fork-safety"],
        )
        assert not found

    def test_tests_directory_excluded(self):
        found = findings_for(
            "import threading\n_L = threading.Lock()\n",
            path="tests/test_something.py",
            select=["fork-safety"],
        )
        assert not found

    def test_suppression_honored(self):
        found = findings_for(
            """
            import threading
            _LOCK = threading.Lock()  # repro-lint: disable=fork-safety
            """,
            select=["fork-safety"],
        )
        assert not found


BAD_SOURCE = "import time\n\n\ndef stamp():\n    return time.time()\n"


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = findings_for(BAD_SOURCE)
        base = Baseline.from_findings(findings)
        path = tmp_path / "baseline.json"
        base.save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == len(findings) == 1
        assert all(f in loaded for f in findings)

    def test_missing_file_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "absent.json")) == 0

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": {}}))
        with pytest.raises(AnalysisError):
            Baseline.load(path)

    def test_fingerprint_survives_line_shift(self):
        shifted = "\n\n\n" + BAD_SOURCE
        a = findings_for(BAD_SOURCE)[0]
        b = findings_for(shifted)[0]
        assert a.line != b.line
        assert a.fingerprint == b.fingerprint

    def test_baselined_findings_do_not_fail(self, tmp_path):
        target = tmp_path / "src" / "repro" / "simulator"
        target.mkdir(parents=True)
        (target / "bad.py").write_text(BAD_SOURCE)
        report = run_lint([str(tmp_path)], root=str(tmp_path))
        assert report.exit_code == 1 and len(report.findings) == 1

        base = Baseline.from_findings(report.findings)
        again = run_lint([str(tmp_path)], baseline=base, root=str(tmp_path))
        assert again.exit_code == 0
        assert not again.findings and len(again.baselined) == 1


class TestEngine:
    def test_unknown_rule_rejected(self):
        with pytest.raises(AnalysisError):
            resolve_rules(select=["no-such-rule"])
        with pytest.raises(AnalysisError):
            resolve_rules(disable=["no-such-rule"])

    def test_select_and_disable(self):
        only = resolve_rules(select=["wall-clock"])
        assert [r.name for r in only] == ["wall-clock"]
        rest = resolve_rules(disable=["wall-clock"])
        assert "wall-clock" not in [r.name for r in rest]
        assert len(rest) == len(RULES) - 1

    def test_missing_path_rejected(self):
        with pytest.raises(AnalysisError):
            run_lint(["/no/such/path"])

    def test_syntax_error_reported_not_raised(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        report = run_lint([str(tmp_path)], root=str(tmp_path))
        assert report.exit_code == 1
        assert report.parse_errors and not report.findings

    def test_json_schema(self, tmp_path):
        (tmp_path / "bad.py").write_text(BAD_SOURCE)
        report = run_lint([str(tmp_path)], root=str(tmp_path))
        data = json.loads(json.dumps(report.to_json()))
        assert set(data) == {
            "version", "tool", "rules", "findings", "baselined",
            "parse_errors", "summary",
        }
        assert data["tool"] == "repro-lint"
        assert sorted(data["rules"]) == sorted(RULES)
        (finding,) = data["findings"]
        assert set(finding) == {
            "rule", "severity", "path", "line", "col", "message",
            "fingerprint", "trace",
        }
        assert finding["trace"] == []
        assert data["summary"]["new"] == 1
        assert data["summary"]["by_rule"] == {"wall-clock": 1}

    def test_repo_source_tree_is_clean(self):
        report = run_lint(["src"], root=".")
        assert report.exit_code == 0, report.format_text()
