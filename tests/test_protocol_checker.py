"""The exhaustive swap-protocol model checker (repro.analysis.protocol).

The headline assertions mirror the paper's Section III-A claim: for
every reachable table state and every legal (MRU, LRU) pair, the
declarative step sequences keep every access resolvable at every step
boundary — and a deliberately mis-ordered plan is rejected with a
step-indexed counterexample.
"""

import dataclasses

import pytest

from repro.analysis.protocol import (
    ALL_INVARIANTS,
    QUIESCENCE,
    STALL_ONLY_N,
    VALID_COPY,
    _Machine,
    _model_recovery,
    _run_prefix,
    _sweep,
    candidate_pairs,
    check_plan,
    check_variant,
    fault_invariant_analysis,
    model_address_map,
    reachable_states,
)
from repro.config import MigrationAlgorithm
from repro.errors import AnalysisError
from repro.migration.algorithms import CopyStep, TableUpdate, build_swap_steps
from repro.migration.table import TranslationTable
from repro.resilience.faults import FaultKind

AMAP = model_address_map()


def fresh_table() -> TranslationTable:
    return TranslationTable(AMAP, reserve_empty_slot=True)


# ----------------------------------------------------------------------
# the unmodified protocol verifies clean, exhaustively
# ----------------------------------------------------------------------
class TestProtocolClean:
    def test_basic_n_verifies(self):
        r = check_variant(MigrationAlgorithm.N)
        assert r.ok, "\n".join(v.format() for v in r.violations)
        assert r.n_states > 1 and r.n_plans > 0 and r.n_checks > 0

    def test_n_minus_1_verifies(self):
        r = check_variant(MigrationAlgorithm.N_MINUS_1)
        assert r.ok, "\n".join(v.format() for v in r.violations)
        # the write sweep must actually run (non-stalling design)
        assert r.n_runs > r.n_plans

    def test_live_migration_verifies(self):
        r = check_variant(MigrationAlgorithm.LIVE)
        assert r.ok, "\n".join(v.format() for v in r.violations)
        # Live interleaves at sub-block granularity: strictly more runs
        # than N-1 over the same closure
        assert r.n_runs > r.n_plans

    def test_live_wrapped_fill_start_verifies(self):
        # the critical (demanded) sub-block is filled first; a wrapped
        # start order must be just as safe
        r = check_variant(
            MigrationAlgorithm.LIVE, first_subblock=2, max_states=6
        )
        assert r.ok, "\n".join(v.format() for v in r.violations)

    def test_unknown_variant_rejected(self):
        with pytest.raises(AnalysisError):
            check_variant("n+1")

    def test_report_json_schema(self):
        r = check_variant(MigrationAlgorithm.N, max_states=3)
        data = r.to_json()
        assert set(data) == {
            "variant", "states", "plans", "runs", "checks", "ok", "violations",
        }
        assert data["variant"] == MigrationAlgorithm.N
        assert data["ok"] is True and data["violations"] == []


class TestStateEnumeration:
    def test_closure_is_finite_and_reaches_migrated_states(self):
        states = reachable_states(AMAP, variant=MigrationAlgorithm.N_MINUS_1)
        assert 1 < len(states) < 200
        # every state yields at least one legal swap
        for state in states:
            t = fresh_table()
            t.load_state_dict(state)
            assert candidate_pairs(t)


# ----------------------------------------------------------------------
# satellite: a mis-ordered plan is rejected with a counterexample
# ----------------------------------------------------------------------
def _mutate_commit_before_copy(plan):
    """Move the table update that follows the incoming copy to *before*
    it — committing the new mapping while the slot still holds garbage."""
    steps = list(plan.steps)
    idx = next(
        i for i, s in enumerate(steps)
        if isinstance(s, CopyStep) and s.incoming
    )
    jdx = next(
        j for j in range(idx + 1, len(steps))
        if isinstance(steps[j], TableUpdate)
    )
    update = steps.pop(jdx)
    steps.insert(idx, update)
    return dataclasses.replace(plan, steps=tuple(steps))


class TestMutatedPlanRejected:
    def test_commit_before_copy_violates_valid_copy(self):
        t = fresh_table()
        mru, lru = candidate_pairs(t)[0]
        plan = build_swap_steps(fresh_table(), mru, lru)
        bad = _mutate_commit_before_copy(plan)
        assert bad.steps != plan.steps

        res = check_plan(fresh_table, bad, variant=MigrationAlgorithm.N_MINUS_1)
        assert not res.ok
        assert any(v.invariant == VALID_COPY for v in res.violations)

    def test_counterexample_is_step_indexed(self):
        t = fresh_table()
        mru, lru = candidate_pairs(t)[0]
        bad = _mutate_commit_before_copy(build_swap_steps(t, mru, lru))
        res = check_plan(fresh_table, bad, variant=MigrationAlgorithm.N_MINUS_1)
        v = next(v for v in res.violations if v.invariant == VALID_COPY)
        assert v.boundary >= 0 and v.step_index >= 0
        assert v.step_label
        assert v.trace, "counterexample must carry the executed-step trace"
        text = v.format()
        assert f"[{VALID_COPY}]" in text
        assert "boundary" in text and "trace" in text

    def test_unmutated_plan_from_same_state_passes(self):
        t = fresh_table()
        mru, lru = candidate_pairs(t)[0]
        plan = build_swap_steps(fresh_table(), mru, lru)
        res = check_plan(fresh_table, plan, variant=MigrationAlgorithm.N_MINUS_1)
        assert res.ok, "\n".join(v.format() for v in res.violations)

    def test_stalling_plan_rejected_outside_n(self):
        t = fresh_table()
        mru, lru = candidate_pairs(t)[0]
        plan = build_swap_steps(fresh_table(), mru, lru)
        stalled = dataclasses.replace(plan, stall=True)
        res = check_plan(
            fresh_table, stalled, variant=MigrationAlgorithm.N_MINUS_1
        )
        assert any(v.invariant == STALL_ONLY_N for v in res.violations)


# ----------------------------------------------------------------------
# satellite: fault kinds -> violated invariants
# ----------------------------------------------------------------------
class TestFaultImpacts:
    @pytest.fixture(scope="class")
    def impacts(self):
        return {
            (fi.fault, fi.scenario): fi for fi in fault_invariant_analysis()
        }

    def test_every_fault_kind_analysed(self, impacts):
        analysed = {fault for fault, _ in impacts}
        assert analysed == {k.value for k in FaultKind}

    def test_invariant_names_are_stable(self, impacts):
        for fi in impacts.values():
            assert set(fi.invariants) <= set(ALL_INVARIANTS)

    def test_stuck_p_bit_breaks_resolution_and_audit(self, impacts):
        (fi,) = [
            fi for fi in impacts.values()
            if fi.fault == FaultKind.STUCK_P_BIT.value
        ]
        assert set(fi.invariants) == {VALID_COPY, QUIESCENCE}

    def test_stuck_f_bit_only_fails_audit(self, impacts):
        (fi,) = [
            fi for fi in impacts.values()
            if fi.fault == FaultKind.STUCK_F_BIT.value
        ]
        assert fi.invariants == (QUIESCENCE,)

    def test_bitmap_corruption_serves_stale_subblock(self, impacts):
        (fi,) = [
            fi for fi in impacts.values()
            if fi.fault == FaultKind.BITMAP_CORRUPTION.value
        ]
        assert "stale-subblock" in fi.invariants

    def test_seu_scenarios_marked_not_clean(self, impacts):
        seu = {FaultKind.STUCK_P_BIT.value, FaultKind.STUCK_F_BIT.value,
               FaultKind.BITMAP_CORRUPTION.value}
        for fi in impacts.values():
            assert fi.expect_clean == (fi.fault not in seu)

    def test_abort_scenarios_recover_clean(self, impacts):
        aborts = {
            fi.scenario: fi for fi in impacts.values()
            if fi.fault == FaultKind.ABORT_SWAP.value
        }
        assert len(aborts) == 3
        # one scenario per landing: before the Ω copy, after it, and a
        # Live fill torn at a sub-block micro-boundary
        assert any("before" in s for s in aborts)
        assert any("after" in s for s in aborts)
        assert any("torn" in s for s in aborts)
        # the tentpole contract: data-safe recovery leaves every abort
        # landing with zero violated invariants
        for fi in aborts.values():
            assert fi.expect_clean
            assert fi.invariants == (), fi.scenario

    def test_dram_transient_out_of_scope(self, impacts):
        (fi,) = [
            fi for fi in impacts.values()
            if fi.fault == FaultKind.DRAM_TRANSIENT.value
        ]
        assert fi.invariants == ()


# ----------------------------------------------------------------------
# pinned regression: the late-abort counterexample the checker found
# ----------------------------------------------------------------------
class TestLateAbortCounterexample:
    """Abort after the Ω-resolution copy, then restore the table.

    A *bare* table rollback re-routes the incoming page to its old
    off-package home — which the Ω-resolution copy already overwrote —
    so a read sweep reports dead data (``valid-copy``). The data-safe
    recovery (copy the surviving on-package duplicate back home, *then*
    roll back) is what makes the same landing sweep clean. The runtime
    twin of this regression lives in tests/test_data_integrity.py.
    """

    @staticmethod
    def _late_abort_machine():
        t = fresh_table()
        mru = next(
            p for p in range(t.n_slots, AMAP.n_total_pages)
            if p != AMAP.ghost_page and t.slot_of(p) is None
        )
        plan = build_swap_steps(t, mru, 0)
        snapshot = t.state_dict()
        m = _Machine(t)
        # boundary 4 = map TU + incoming copy + Ω copy + pending clear
        _run_prefix(m, plan, 4)
        return m, snapshot

    def test_bare_rollback_reads_dead_data(self):
        m, snapshot = self._late_abort_machine()
        m.table.load_state_dict(snapshot)
        assert VALID_COPY in _sweep(m)

    def test_data_safe_recovery_sweeps_clean(self):
        m, snapshot = self._late_abort_machine()
        steps = _model_recovery(m, snapshot)
        assert steps, "late abort must require at least one copy-back"
        assert _sweep(m) == ()
