"""Tests for the epoch simulator, baselines, metrics and the
fast-vs-detailed cross-validation."""

import numpy as np
import pytest

from repro.config import MigrationConfig, SystemConfig
from repro.core.detailed import DetailedSimulator
from repro.core.hetero_memory import HeterogeneousMainMemory, baseline_latency
from repro.core.metrics import EffectivenessReport, effectiveness, traffic_reduction
from repro.core.simulator import EpochSimulator
from repro.errors import SimulationError
from repro.trace.record import make_chunk
from repro.units import KB, MB

from .conftest import synthetic_trace


def cfg(algorithm="live", page=256 * KB, interval=400, **kw) -> SystemConfig:
    return SystemConfig(
        total_bytes=64 * MB,
        onpkg_bytes=8 * MB,
        migration=MigrationConfig(
            algorithm=algorithm, macro_page_bytes=page, swap_interval=interval, **kw
        ),
    )


class TestEpochSimulator:
    def test_counts_add_up(self):
        trace = synthetic_trace(4000)
        res = HeterogeneousMainMemory(cfg()).run(trace)
        assert res.n_accesses == 4000
        assert res.onpkg_accesses + res.offpkg_accesses == 4000
        assert 0 <= res.onpkg_fraction <= 1
        assert res.average_latency > 0
        assert len(res.epoch_latency) == 10

    def test_migration_beats_static_on_skewed_trace(self):
        trace = synthetic_trace(40000, hot_weight=0.9)
        c = cfg(page=64 * KB, interval=1000)
        migrated = HeterogeneousMainMemory(c).run(trace)
        static = baseline_latency(c, trace, "static")
        assert migrated.swaps_triggered > 0
        assert migrated.onpkg_fraction > static.onpkg_fraction
        assert migrated.average_latency < static.average_latency

    def test_bounded_by_ideal_and_alloff(self):
        trace = synthetic_trace(20000)
        c = cfg()
        migrated = HeterogeneousMainMemory(c).run(trace)
        ideal = baseline_latency(c, trace, "all-onpkg")
        alloff = baseline_latency(c, trace, "all-offpkg")
        assert migrated.average_latency < alloff.average_latency
        # (the hybrid can slightly beat the ideal via load balancing, so
        # only sanity-check the ordering against the slow bound)

    def test_algorithm_ordering_on_coarse_pages(self):
        """Live <= N-1 << N at coarse granularity with frequent swaps."""
        trace = synthetic_trace(30000, hot_weight=0.85)
        res = {}
        for algo in ("N", "N-1", "live"):
            res[algo] = HeterogeneousMainMemory(
                cfg(algorithm=algo, page=1 * MB, interval=300)
            ).run(trace).average_latency
        assert res["live"] <= res["N-1"] * 1.02
        assert res["N"] > 2 * res["N-1"]

    def test_chunked_feeding_matches_single_run(self):
        trace = synthetic_trace(8000)
        whole = HeterogeneousMainMemory(cfg()).run(trace)
        sim = EpochSimulator(cfg())
        from repro.core.simulator import SimulationResult

        result = SimulationResult()
        sim.run_into(trace[:4000], result)
        sim.run_into(trace[4000:], result)
        assert result.n_accesses == whole.n_accesses
        assert result.total_latency == whole.total_latency
        assert result.swaps_triggered == whole.swaps_triggered

    def test_rejects_out_of_order_chunks(self):
        sim = EpochSimulator(cfg())
        trace = synthetic_trace(2000)
        sim.run(trace)
        with pytest.raises(SimulationError):
            sim.run(trace)  # same timestamps again: time went backwards

    def test_migrate_false_is_static(self):
        trace = synthetic_trace(5000)
        res = HeterogeneousMainMemory(cfg(), migrate=False).run(trace)
        assert res.swaps_triggered == 0
        assert res.migrated_bytes == 0

    def test_tail_average(self):
        trace = synthetic_trace(5000)
        res = HeterogeneousMainMemory(cfg()).run(trace)
        assert res.tail_average_latency(1.0) == pytest.approx(
            float(np.mean(res.epoch_latency))
        )
        assert res.tail_average_latency(0.2) > 0

    def test_table_invariants_after_run(self):
        trace = synthetic_trace(20000, hot_weight=0.9)
        system = HeterogeneousMainMemory(cfg())
        system.run(trace)
        system.table.check_invariants()


class TestBaselines:
    def test_all_three_kinds(self):
        trace = synthetic_trace(3000)
        c = cfg()
        for kind in ("all-offpkg", "all-onpkg", "static"):
            res = baseline_latency(c, trace, kind)
            assert res.n_accesses == 3000
        assert (
            baseline_latency(c, trace, "all-onpkg").average_latency
            < baseline_latency(c, trace, "all-offpkg").average_latency
        )

    def test_static_onpkg_fraction_tracks_capacity(self):
        rng = np.random.default_rng(0)
        addr = rng.integers(0, 64 * MB // 64, 20000) * 64  # uniform
        trace = make_chunk(addr, time=np.cumsum(rng.integers(1, 60, 20000)))
        res = baseline_latency(cfg(), trace, "static")
        assert res.onpkg_fraction == pytest.approx(8 / 64, abs=0.02)


class TestMetrics:
    def test_effectiveness_formula(self):
        assert effectiveness(200.0, 100.0, 100.0) == 1.0
        assert effectiveness(200.0, 200.0, 100.0) == 0.0
        assert effectiveness(200.0, 150.0, 100.0) == 0.5

    def test_effectiveness_needs_gap(self):
        with pytest.raises(SimulationError):
            effectiveness(100.0, 90.0, 100.0)

    def test_report_row(self):
        r = EffectivenessReport("pgbench", 107.0, 156.0, 127.0, 125.0)
        assert r.effectiveness == pytest.approx((156 - 127) / (156 - 125))
        assert "pgbench" in r.row()

    def test_traffic_reduction(self):
        assert traffic_reduction(0.8, 0.2) == pytest.approx(0.75)
        assert traffic_reduction(0.0, 0.0) == 0.0


class TestDetailedCrossValidation:
    """The per-access reference simulator must agree with the vectorised
    epoch simulator when no migration runs (identical semantics), and
    produce the same resident set under migration."""

    def test_no_migration_identical_totals(self):
        trace = synthetic_trace(3000)
        c = cfg()
        fast = HeterogeneousMainMemory(c, migrate=False).run(trace)
        slow = DetailedSimulator(c, migrate=False).run(trace)
        assert slow.n_accesses == fast.n_accesses
        assert slow.onpkg_accesses == fast.onpkg_accesses
        # the detailed path includes the 2-cycle translation the static
        # fast path omits; normalise before comparing
        adjusted = slow.total_latency - 2 * slow.n_accesses
        assert adjusted == fast.total_latency

    def test_migration_reduces_latency_in_both(self):
        trace = synthetic_trace(40000, hot_weight=0.9)
        c = cfg(page=64 * KB, interval=1000)
        fast = HeterogeneousMainMemory(c).run(trace)
        slow = DetailedSimulator(c).run(trace)
        static = baseline_latency(c, trace, "static")
        assert fast.average_latency < static.average_latency
        assert slow.average_latency < static.average_latency
        assert slow.swaps_triggered > 0

    def test_similar_onpkg_fractions(self):
        """Exact (clock/multi-queue) and vectorised policies may pick
        different victims occasionally, but the resident hot set — and
        with it the on-package fraction — must land close."""
        trace = synthetic_trace(40000, hot_weight=0.9)
        c = cfg(page=64 * KB, interval=1000)
        fast = HeterogeneousMainMemory(c).run(trace)
        slow = DetailedSimulator(c).run(trace)
        assert abs(fast.onpkg_fraction - slow.onpkg_fraction) < 0.15
