"""Tests for the memory controllers (Fig 2 vs Fig 3)."""

import numpy as np
import pytest

from repro.config import MigrationConfig, SystemConfig
from repro.memctrl.conventional import ConventionalController
from repro.memctrl.heterogeneous import HeterogeneousController
from repro.memctrl.routing import RegionRouter
from repro.migration.engine import MigrationEngine
from repro.migration.table import TranslationTable
from repro.trace.record import make_chunk
from repro.units import KB, MB


def small_system() -> SystemConfig:
    return SystemConfig(
        total_bytes=64 * MB,
        onpkg_bytes=8 * MB,
        migration=MigrationConfig(macro_page_bytes=1 * MB, swap_interval=500),
    )


class TestRouter:
    def test_split_by_msb(self):
        amap = small_system().address_map()
        router = RegionRouter(amap)
        machine = np.array([0, 7, 8, 63])
        on, off = router.split(machine)
        assert on.tolist() == [True, True, False, False]
        assert (on ^ off).all()

    def test_local_addresses(self):
        amap = small_system().address_map()
        router = RegionRouter(amap)
        # off-package machine page 8 maps to DIMM-local page 0
        assert router.offpkg_local_address(np.array([8]), np.array([5]))[0] == 5
        assert router.onpkg_local_address(np.array([2]), np.array([5]))[0] == 2 * MB + 5


class TestConventional:
    def test_baseline_latency_accounting(self):
        c = ConventionalController()
        chunk = make_chunk(np.arange(100) * 64, time=np.arange(100) * 200)
        lat = c.service_chunk(chunk)
        assert c.accesses == 100
        assert c.average_latency == pytest.approx(lat.mean())
        # every access pays at least path + a row hit
        assert lat.min() >= 34 + c.model.timing.hit_cycles


class TestHeterogeneous:
    def test_identity_table_routes_low_pages_onpkg(self):
        cfg = small_system()
        ctrl = HeterogeneousController(cfg)
        table = TranslationTable(cfg.address_map(), reserve_empty_slot=False)
        addr = np.array([0, 9 * MB])  # page 0 on, page 9 off
        chunk = make_chunk(addr, time=np.array([0, 300]))
        lat, on, machine = ctrl.service_chunk(chunk, table)
        assert on.tolist() == [True, False]
        assert machine.tolist() == [0, 9]
        assert lat[1] > lat[0]  # off-package path is longer

    def test_translation_cost_applied(self):
        cfg = small_system()
        table = TranslationTable(cfg.address_map(), reserve_empty_slot=False)
        chunk = make_chunk(np.array([0]), time=np.array([0]))
        with_t = HeterogeneousController(cfg)
        without_t = HeterogeneousController(cfg, translation_overhead=False)
        l1, _, _ = with_t.service_chunk(chunk, table)
        l2, _, _ = without_t.service_chunk(chunk, table)
        assert l1[0] - l2[0] == cfg.migration.hw_translation_cycles

    def test_migrated_page_served_onpkg(self):
        cfg = small_system()
        ctrl = HeterogeneousController(cfg)
        engine = MigrationEngine(cfg.address_map(), cfg.migration, cfg.bus)
        hot = 20  # off-package page
        engine.observe_epoch(
            slots=np.array([], dtype=np.int64),
            slot_times=np.array([], dtype=np.int64),
            offpkg_pages=np.full(5, hot), off_times=np.arange(5),
            off_subblocks=np.zeros(5, dtype=np.int64),
        )
        engine.maybe_swap(now=0)
        end = engine.active.end
        chunk = make_chunk(np.array([hot * MB]), time=np.array([end + 10]))
        _, on, machine = ctrl.service_chunk(chunk, engine.table, None)
        assert on[0]

    def test_inflight_page_served_from_old_copy_before_fill(self):
        cfg = small_system()
        ctrl = HeterogeneousController(cfg)
        engine = MigrationEngine(cfg.address_map(), cfg.migration, cfg.bus)
        hot = 20
        engine.observe_epoch(
            slots=np.array([], dtype=np.int64),
            slot_times=np.array([], dtype=np.int64),
            offpkg_pages=np.full(5, hot), off_times=np.arange(5),
            off_subblocks=np.zeros(5, dtype=np.int64),
        )
        engine.maybe_swap(now=1000)
        fill = engine.active.fill
        # an access just after the fill starts, to the sub-block copied LAST
        last_sb = (fill.first_subblock - 1) % fill.n_subblocks
        addr = hot * MB + last_sb * cfg.migration.subblock_bytes
        chunk = make_chunk(np.array([addr]), time=np.array([fill.start + 1]))
        _, on, machine = ctrl.service_chunk(chunk, engine.table, engine.active)
        assert not on[0] and machine[0] == hot
        # the same address after the fill completes is on-package
        chunk2 = make_chunk(np.array([addr]), time=np.array([fill.end + 10]))
        _, on2, _ = ctrl.service_chunk(chunk2, engine.table, engine.active)
        assert on2[0]

    def test_critical_subblock_available_early(self):
        cfg = small_system()
        ctrl = HeterogeneousController(cfg)
        engine = MigrationEngine(cfg.address_map(), cfg.migration, cfg.bus)
        hot, hot_sb = 20, 37
        engine.observe_epoch(
            slots=np.array([], dtype=np.int64),
            slot_times=np.array([], dtype=np.int64),
            offpkg_pages=np.full(5, hot), off_times=np.arange(5),
            off_subblocks=np.full(5, hot_sb, dtype=np.int64),
        )
        engine.maybe_swap(now=1000)
        fill = engine.active.fill
        assert fill.first_subblock == hot_sb
        addr = hot * MB + hot_sb * cfg.migration.subblock_bytes
        t = fill.start + fill.subblock_cycles + 1
        chunk = make_chunk(np.array([addr]), time=np.array([t]))
        _, on, _ = ctrl.service_chunk(chunk, engine.table, engine.active)
        assert on[0]  # the MRU sub-block landed first

    def test_stall_penalty_under_basic_design(self):
        cfg = small_system().with_migration(algorithm="N")
        ctrl = HeterogeneousController(cfg)
        engine = MigrationEngine(cfg.address_map(), cfg.migration, cfg.bus)
        hot = 20
        engine.observe_epoch(
            slots=np.array([], dtype=np.int64),
            slot_times=np.array([], dtype=np.int64),
            offpkg_pages=np.full(5, hot), off_times=np.arange(5),
            off_subblocks=np.zeros(5, dtype=np.int64),
        )
        engine.maybe_swap(now=1000)
        active = engine.active
        stalled = make_chunk(np.array([0]), time=np.array([active.start + 10]))
        lat, _, _ = ctrl.service_chunk(stalled, engine.table, active)
        assert lat[0] >= active.end - (active.start + 10)

    def test_offpkg_interference_during_migration(self):
        cfg = small_system()
        ctrl_a = HeterogeneousController(cfg)
        ctrl_b = HeterogeneousController(cfg)
        engine = MigrationEngine(cfg.address_map(), cfg.migration, cfg.bus)
        hot = 20
        engine.observe_epoch(
            slots=np.array([], dtype=np.int64),
            slot_times=np.array([], dtype=np.int64),
            offpkg_pages=np.full(5, hot), off_times=np.arange(5),
            off_subblocks=np.zeros(5, dtype=np.int64),
        )
        engine.maybe_swap(now=0)
        off_addr = 30 * MB
        inside = make_chunk(np.array([off_addr]), time=np.array([engine.active.start + 5]))
        outside = make_chunk(np.array([off_addr]), time=np.array([engine.active.end + 5]))
        l_in, _, _ = ctrl_a.service_chunk(inside, engine.table, engine.active)
        l_out, _, _ = ctrl_b.service_chunk(outside, engine.table, None)
        assert l_in[0] - l_out[0] == cfg.migration.interference_cycles

    def test_empty_chunk(self):
        cfg = small_system()
        ctrl = HeterogeneousController(cfg)
        table = TranslationTable(cfg.address_map())
        lat, on, machine = ctrl.service_chunk(make_chunk([]), table)
        assert lat.size == on.size == machine.size == 0
