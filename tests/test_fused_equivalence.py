"""Fused multi-epoch fast path must be bit-identical to the stepwise loop.

The fused path defers all DRAM servicing to one segmented flush per
chunk; these tests pin the contract from the optimisation work: not a
single simulated number may change — total latency, the full
``epoch_latency`` series, swap counters, row-hit rates, everything.
"""

import dataclasses

import numpy as np
import pytest

from repro.config import (
    MigrationConfig,
    SystemConfig,
    offpkg_dram_timing,
    onpkg_dram_timing,
)
from repro.core.hetero_memory import HeterogeneousMainMemory
from repro.trace.record import make_chunk
from repro.units import KB, MB

ALGORITHMS = ("N", "N-1", "live")


def _trace(n=60_000, seed=0, writes=True):
    rng = np.random.default_rng(seed)
    span = 128 * MB // 4096
    hot = rng.integers(0, span)
    blocks = np.where(
        rng.random(n) < 0.8,
        (hot + rng.integers(0, 512, n)) % span,
        rng.integers(0, span, n),
    )
    rw = (rng.random(n) < 0.3).astype(np.int8) if writes else 0
    return make_chunk(
        blocks * 4096, time=np.cumsum(rng.integers(1, 80, n)), rw=rw
    )


def _cfg(**migration_kwargs):
    kwargs = dict(algorithm="live", macro_page_bytes=64 * KB, swap_interval=1_000)
    kwargs.update(migration_kwargs)
    return SystemConfig(
        total_bytes=128 * MB,
        onpkg_bytes=16 * MB,
        migration=MigrationConfig(**kwargs),
    )


def _scalar_fields(result):
    # fused_epochs/stepwise_epochs say which loop ran, not what was
    # simulated — they are asserted separately in assert_identical
    return {
        f.name: getattr(result, f.name)
        for f in dataclasses.fields(result)
        if f.name not in ("epoch_latency", "degradation_events",
                          "fused_epochs", "stepwise_epochs")
    }


def assert_identical(cfg, trace, *, migrate=True, chunks=1, arm=None):
    fused = HeterogeneousMainMemory(cfg, migrate=migrate, fused=True)
    plain = HeterogeneousMainMemory(cfg, migrate=migrate, fused=False)
    if arm is not None:
        arm(fused)
        arm(plain)
    if chunks == 1:
        r_fused = fused.run(trace)
        r_plain = plain.run(trace)
    else:
        bounds = np.linspace(0, len(trace), chunks + 1).astype(int)
        r_fused = fused.simulator.run(trace[: bounds[1]])
        r_plain = plain.simulator.run(trace[: bounds[1]])
        for lo, hi in zip(bounds[1:-1], bounds[2:]):
            fused.simulator.run_into(trace[lo:hi], r_fused)
            plain.simulator.run_into(trace[lo:hi], r_plain)
    assert _scalar_fields(r_fused) == _scalar_fields(r_plain)
    assert r_fused.epoch_latency == r_plain.epoch_latency
    # coverage: the fused simulator must never fall back to the
    # stepwise loop (migration-active epochs included), and the two
    # counters must partition the same epoch count
    assert r_fused.stepwise_epochs == 0
    assert r_plain.fused_epochs == 0
    assert r_fused.fused_epochs == r_plain.stepwise_epochs
    return r_fused


class TestAlgorithms:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_bit_identical(self, algorithm):
        cfg = _cfg(algorithm=algorithm)
        r = assert_identical(cfg, _trace())
        assert r.swaps_triggered > 0  # exercise the migration machinery

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_bit_identical_without_writes(self, algorithm):
        assert_identical(_cfg(algorithm=algorithm), _trace(writes=False))


class TestVariants:
    def test_os_assisted_translation(self):
        # macro page below hw_min_page_bytes -> OS-assisted table updates
        cfg = _cfg(macro_page_bytes=16 * KB, hw_min_page_bytes=1 * MB)
        assert_identical(cfg, _trace())

    def test_critical_block_first_off(self):
        assert_identical(_cfg(critical_block_first=False), _trace())

    def test_hottest_coldest_trigger_off(self):
        assert_identical(_cfg(hottest_coldest_trigger=False), _trace())

    def test_no_migration(self):
        assert_identical(_cfg(), _trace(), migrate=False)

    def test_chunked_feeding(self):
        # chunk boundaries must not perturb either path, including
        # boundaries that do not line up with epoch boundaries
        assert_identical(_cfg(), _trace(), chunks=7)

    def test_large_epochs(self):
        assert_identical(_cfg(swap_interval=25_000), _trace())

    def test_tiny_queue_wait_forces_fallback(self):
        # a tiny cap makes the boundary-binding check fire, forcing the
        # fused flush to fall back to per-segment servicing — results
        # must still be identical
        base = _cfg()
        timing = dataclasses.replace(base.offpkg_dram, max_queue_wait=8)
        cfg = dataclasses.replace(base, offpkg_dram=timing)
        assert_identical(cfg, _trace(n=30_000))

    def test_empty_and_tiny_traces(self):
        cfg = _cfg()
        assert_identical(cfg, make_chunk([]))
        assert_identical(cfg, make_chunk([0, 4096, 8192]))


class TestMigrationActive:
    """Epochs with an active SwapPlan must run through the fused path.

    The matrix crosses the three paper algorithms with write traffic,
    OS-assisted translation, a one-shot abort mid-plan, and refresh on
    both tiers. Every cell goes through :func:`assert_identical`, which
    pins bit-identical ``epoch_latency`` *and* ``stepwise_epochs == 0``
    on the fused run — a regression that sends migration-active epochs
    back to the stepwise fallback fails here, not just in the
    throughput numbers.
    """

    VARIANTS = ("writes", "os-assisted", "abort", "refresh")

    def _cell(self, algorithm, variant):
        cfg = _cfg(algorithm=algorithm)
        if variant == "os-assisted":
            cfg = _cfg(algorithm=algorithm, macro_page_bytes=16 * KB,
                       hw_min_page_bytes=1 * MB)
        elif variant == "refresh":
            cfg = dataclasses.replace(
                cfg,
                offpkg_dram=offpkg_dram_timing(refresh=True),
                onpkg_dram=onpkg_dram_timing(refresh=True),
            )
        arm = None
        if variant == "abort":
            arm = lambda mem: mem.engine.inject_abort(1)
        return cfg, _trace(writes=variant == "writes"), arm

    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_matrix(self, algorithm, variant):
        cfg, trace, arm = self._cell(algorithm, variant)
        r = assert_identical(cfg, trace, arm=arm)
        assert r.swaps_triggered > 0
        assert r.data_violations == 0
        if variant != "os-assisted":
            # plans span epoch boundaries (a later trigger found the
            # previous one still in flight): the fused path simulated
            # epochs with P/F bits live, not just plan-free epochs
            assert r.swaps_suppressed_busy > 0

    def test_abort_changes_behavior(self):
        # guard: the armed abort genuinely takes a different path
        cfg = _cfg()
        clean = HeterogeneousMainMemory(cfg).run(_trace())
        aborted_mem = HeterogeneousMainMemory(cfg)
        aborted_mem.engine.inject_abort(1)
        aborted = aborted_mem.run(_trace())
        assert aborted.total_latency != clean.total_latency


class TestRefresh:
    """The tREFI/tRFC time warp is a pure function of global time, so
    it must commute with segment boundaries: enabling refresh keeps the
    fused path bit-identical while exercising mid-service suspensions
    and refresh-stretched migration copies."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_bit_identical_with_refresh_both_tiers(self, algorithm):
        cfg = dataclasses.replace(
            _cfg(algorithm=algorithm),
            offpkg_dram=offpkg_dram_timing(refresh=True),
            onpkg_dram=onpkg_dram_timing(refresh=True),
        )
        r = assert_identical(cfg, _trace())
        assert r.swaps_triggered > 0  # refresh-stretched copies included

    def test_bit_identical_with_refresh_offpkg_only(self):
        cfg = dataclasses.replace(
            _cfg(), offpkg_dram=offpkg_dram_timing(refresh=True)
        )
        assert_identical(cfg, _trace())

    def test_refresh_survives_chunked_feeding(self):
        # chunk boundaries land at arbitrary phases of the tREFI period
        cfg = dataclasses.replace(
            _cfg(),
            offpkg_dram=offpkg_dram_timing(refresh=True),
            onpkg_dram=onpkg_dram_timing(refresh=True),
        )
        assert_identical(cfg, _trace(), chunks=7)

    def test_refresh_changes_the_numbers(self):
        # guard against the refresh flag silently not reaching the model
        base = assert_identical(_cfg(), _trace(), migrate=False)
        taxed = assert_identical(
            dataclasses.replace(
                _cfg(), offpkg_dram=offpkg_dram_timing(refresh=True)
            ),
            _trace(),
            migrate=False,
        )
        assert taxed.total_latency > base.total_latency


class TestMultiTenant:
    """A tenant-tagged interleaved stream must keep the fused fast path:
    window translation, QoS constraints and per-tenant attribution ride
    on ``run_into`` and may not force (or perturb) the stepwise loop."""

    N_TENANTS = 3

    def _tenant_trace(self, n, seed, span_bytes):
        rng = np.random.default_rng(seed)
        hot = rng.integers(0, span_bytes)
        addr = np.where(
            rng.random(n) < 0.8,
            (hot + rng.integers(0, 2 * MB, n)) % span_bytes,
            rng.integers(0, span_bytes, n),
        )
        addr = (addr // 4096) * 4096
        rw = (rng.random(n) < 0.3).astype(np.int8)
        return make_chunk(
            addr.astype(np.int64), time=np.cumsum(rng.integers(1, 80, n)), rw=rw
        )

    def _run(self, fused):
        from repro.tenancy import (
            MultiTenantSimulator,
            ProportionalSharePolicy,
            TenantSpec,
        )

        cfg = _cfg()
        amap = cfg.address_map()
        n_pages = amap.ghost_page // self.N_TENANTS
        mts = MultiTenantSimulator(
            cfg, policy=ProportionalSharePolicy(), fused=fused
        )
        for i in range(self.N_TENANTS):
            mts.add_tenant(
                TenantSpec(tenant_id=i, name=f"t{i}", n_pages=n_pages,
                           weight=1.0 + 0.5 * i),
                self._tenant_trace(
                    20_000, seed=i, span_bytes=n_pages * amap.macro_page_bytes
                ),
            )
        return mts.run()

    def test_bit_identical_under_tenant_tags(self):
        r_fused = self._run(fused=True)
        r_plain = self._run(fused=False)
        # TenantMetrics is an eq dataclass: the tenants dicts compare
        # field-for-field inside _scalar_fields
        assert _scalar_fields(r_fused) == _scalar_fields(r_plain)
        assert r_fused.epoch_latency == r_plain.epoch_latency
        assert r_fused.stepwise_epochs == 0
        assert r_plain.fused_epochs == 0
        assert r_fused.fused_epochs == r_plain.stepwise_epochs
        assert r_fused.swaps_triggered > 0
