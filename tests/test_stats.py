"""Tests for streaming accumulators and the report table."""

import numpy as np
import pytest

from repro.errors import ReproError, SimulationError
from repro.stats.accumulators import LatencyAccumulator, StreamingMean
from repro.stats.report import Table, format_cycles


class TestStreamingMean:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        m = StreamingMean()
        all_vals = []
        for _ in range(5):
            chunk = rng.integers(1, 1000, 100)
            m.add(chunk)
            all_vals.append(chunk)
        vals = np.concatenate(all_vals)
        assert m.mean == pytest.approx(vals.mean())
        assert m.min == vals.min() and m.max == vals.max()
        assert m.count == vals.size

    def test_empty(self):
        m = StreamingMean()
        m.add(np.array([]))
        assert m.mean == 0.0 and m.count == 0


class TestLatencyAccumulator:
    def test_average_and_percentiles(self):
        rng = np.random.default_rng(1)
        acc = LatencyAccumulator()
        vals = rng.integers(50, 500, 10000)
        acc.add(vals)
        assert acc.average == pytest.approx(vals.mean())
        p50 = acc.percentile(50)
        assert np.percentile(vals, 40) < p50 < np.percentile(vals, 60) * 1.1

    def test_percentile_bounds(self):
        acc = LatencyAccumulator()
        with pytest.raises(SimulationError):
            acc.percentile(101)
        assert acc.percentile(50) == 0.0  # empty

    def test_rejects_bad_config(self):
        with pytest.raises(SimulationError):
            LatencyAccumulator(max_latency=0)


class TestReportFormatting:
    @pytest.mark.parametrize(
        "value,expected",
        [(123.4, "123.4"), (12_345.0, "12.3k"), (2_500_000.0, "2.50M")],
    )
    def test_format_cycles(self, value, expected):
        assert format_cycles(value) == expected

    def test_table_needs_columns(self):
        with pytest.raises(ReproError):
            Table("t", [])

    def test_row_arity_checked(self):
        t = Table("t", ["a"])
        with pytest.raises(ReproError):
            t.add_row(1, 2)

    def test_render_alignment(self):
        t = Table("t", ["name", "value"])
        t.add_row("x", 1)
        t.add_row("longer", 123456)
        lines = t.render().splitlines()
        assert len({len(line) for line in lines[2:5]}) == 1  # aligned
