"""Tests for the adaptive-granularity extension."""

import pytest

from repro.config import MigrationConfig, SystemConfig
from repro.errors import ConfigError
from repro.extensions.adaptive import AdaptiveGranularitySimulator
from repro.units import KB, MB

from .conftest import synthetic_trace


def cfg(page=64 * KB, interval=500) -> SystemConfig:
    return SystemConfig(
        total_bytes=64 * MB,
        onpkg_bytes=8 * MB,
        migration=MigrationConfig(
            algorithm="live", macro_page_bytes=page, swap_interval=interval
        ),
    )


LADDER = (4 * KB, 64 * KB, 1 * MB)


class TestValidation:
    def test_rejects_unsorted_ladder(self):
        with pytest.raises(ConfigError):
            AdaptiveGranularitySimulator(cfg(), ladder=(64 * KB, 4 * KB))

    def test_rejects_bad_segment(self):
        with pytest.raises(ConfigError):
            AdaptiveGranularitySimulator(cfg(), adapt_every=0)


class TestAdaptation:
    def test_probes_every_rung_then_commits(self):
        trace = synthetic_trace(40000, hot_weight=0.9)
        sim = AdaptiveGranularitySimulator(cfg(), ladder=LADDER, adapt_every=4)
        res = sim.run(trace)
        assert set(res.granularity_trace) == set(LADDER)  # all probed
        # once committed, the granularity never changes again
        final = res.final_granularity
        tail = res.granularity_trace[-(len(res.granularity_trace) // 3):]
        assert all(g == final for g in tail)
        assert res.switches >= len(LADDER) - 1
        assert res.n_accesses == 40000

    def test_flush_traffic_accounted(self):
        trace = synthetic_trace(40000, hot_weight=0.9)
        sim = AdaptiveGranularitySimulator(cfg(), ladder=LADDER, adapt_every=4)
        res = sim.run(trace)
        assert res.flush_bytes > 0
        assert res.migrated_bytes >= res.flush_bytes

    def test_commits_to_a_competitive_granularity(self):
        """The committed rung's fixed-config latency is within the fixed
        sweep's range — never worse than the worst rung."""
        from repro.core.hetero_memory import HeterogeneousMainMemory

        trace = synthetic_trace(60000, hot_weight=0.9)
        fixed = {
            g: HeterogeneousMainMemory(cfg(page=g)).run(trace).average_latency
            for g in LADDER
        }
        sim = AdaptiveGranularitySimulator(cfg(), ladder=LADDER, adapt_every=5)
        res = sim.run(trace)
        assert fixed[res.final_granularity] <= max(fixed.values())
        # the whole adaptive run (exploration included) beats a plainly
        # bad fixed choice by the end
        assert res.average_latency < max(fixed.values()) * 1.3

    def test_single_rung_ladder_never_switches(self):
        trace = synthetic_trace(20000)
        sim = AdaptiveGranularitySimulator(cfg(), ladder=(64 * KB,), adapt_every=4)
        res = sim.run(trace)
        assert res.switches == 0
        assert res.final_granularity == 64 * KB
