"""Tests for the command-line entry points."""

import pytest

from repro.experiments import runner
from repro.experiments.runner import main as experiments_main
from repro.stats.report import Table
from repro.trace.__main__ import main as trace_main


def _table(name: str) -> Table:
    table = Table(f"stub {name}", ["value"])
    table.add_row(name)
    return table


# module-level stub experiments: picklable for --jobs > 1 campaigns
def stub_alpha(fast=True):
    return _table("alpha")


def stub_beta(fast=True):
    return [_table("beta-1"), _table("beta-2")]


def stub_broken(fast=True):
    raise RuntimeError("experiment exploded")


class TestTraceCli:
    def test_gen_stats_head_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "t.rptrace")
        assert trace_main(["gen", "pgbench", path, "-n", "2000",
                           "--footprint", "16MB"]) == 0
        assert trace_main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "accesses:   2000" in out
        assert trace_main(["head", path, "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("cpu=") == 3

    def test_rejects_unknown_workload(self, tmp_path):
        with pytest.raises(SystemExit):
            trace_main(["gen", "nope", str(tmp_path / "x")])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            trace_main([])


class TestExperimentsCli:
    def test_fig10(self, capsys):
        assert experiments_main(["fig10"]) == 0
        assert "9228" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            experiments_main(["fig99"])

    def test_bad_jobs_rejected(self):
        from repro.errors import CampaignError

        with pytest.raises(CampaignError):
            experiments_main(["fig10", "--jobs", "0"])


class TestAllMode:
    """`all` keeps going past a broken experiment (campaign semantics)."""

    @pytest.fixture
    def stub_experiments(self, monkeypatch):
        monkeypatch.setattr(runner, "EXPERIMENTS", {
            "alpha": stub_alpha, "beta": stub_beta, "broken": stub_broken,
        })

    def test_all_success_exit_zero(self, stub_experiments, monkeypatch, capsys):
        monkeypatch.setitem(runner.EXPERIMENTS, "broken", stub_alpha)
        assert experiments_main(["all"]) == 0
        out = capsys.readouterr().out
        # sorted experiment order, every table printed
        assert out.index("stub alpha") < out.index("stub beta-1") \
            < out.index("stub beta-2")

    def test_failure_does_not_abort_the_sweep(self, stub_experiments, capsys):
        assert experiments_main(["all"]) == 1
        captured = capsys.readouterr()
        # the siblings of the broken experiment still ran and printed
        assert "stub alpha" in captured.out
        assert "stub beta-2" in captured.out
        # failure summary names the culprit; exit code was nonzero
        assert "RuntimeError: experiment exploded" in captured.err
        assert "1/3 experiments failed: broken" in captured.err
        assert "Campaign summary" in captured.out

    def test_all_parallel_jobs(self, stub_experiments, monkeypatch, capsys):
        monkeypatch.setitem(runner.EXPERIMENTS, "broken", stub_beta)
        assert experiments_main(["all", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        # deterministic print order even with parallel workers
        assert out.index("stub alpha") < out.index("stub beta-1")

    def test_manifest_resume_skips_completed(self, stub_experiments,
                                             monkeypatch, tmp_path, capsys):
        manifest = str(tmp_path / "run.json")
        assert experiments_main(["all", "--manifest", manifest]) == 1
        capsys.readouterr()

        # "fix" the broken experiment and resume from the manifest
        monkeypatch.setitem(runner.EXPERIMENTS, "broken", stub_alpha)
        assert experiments_main(["all", "--manifest", manifest]) == 0
        captured = capsys.readouterr()
        assert "[alpha skipped — already completed in the manifest]" in captured.err
        assert "[broken done in" in captured.err
        # skipped experiments reprint their manifest-stored tables
        assert "stub alpha" in captured.out


class TestGridExperimentFlags:
    def test_table4_accepts_supervisor_kwarg(self, monkeypatch, capsys):
        """The runner passes a supervisor to grid experiments."""
        seen = {}

        def fake_table4(fast=True, supervisor=None):
            seen["supervisor"] = supervisor
            return _table("t4")

        monkeypatch.setitem(runner.EXPERIMENTS, "table4", fake_table4)
        assert experiments_main(["table4", "--jobs", "1"]) == 0
        from repro.campaign import CampaignSupervisor

        assert isinstance(seen["supervisor"], CampaignSupervisor)
        assert seen["supervisor"].jobs == 1
        assert "stub t4" in capsys.readouterr().out

    def test_flags_reach_the_supervisor(self, monkeypatch):
        seen = {}

        def fake(fast=True, supervisor=None):
            seen["supervisor"] = supervisor
            return _table("x")

        monkeypatch.setitem(runner.EXPERIMENTS, "fig12-14", fake)
        assert experiments_main([
            "fig12-14", "--jobs", "3", "--task-timeout", "120",
            "--max-retries", "4",
        ]) == 0
        supervisor = seen["supervisor"]
        assert supervisor.jobs == 3
        assert supervisor.task_timeout == 120.0
        assert supervisor.retry.max_attempts == 5


class TestFiguresCli:
    def test_fig10_svg(self, tmp_path, monkeypatch):
        # render only the cheap analytic figure by calling it directly
        from repro.plotting.figures import fig10

        fig10(tmp_path)
        svg = (tmp_path / "fig10_hw_bits.svg").read_text()
        assert svg.startswith("<svg")
