"""Tests for the command-line entry points."""

import pytest

from repro.experiments.runner import main as experiments_main
from repro.trace.__main__ import main as trace_main


class TestTraceCli:
    def test_gen_stats_head_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "t.rptrace")
        assert trace_main(["gen", "pgbench", path, "-n", "2000",
                           "--footprint", "16MB"]) == 0
        assert trace_main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "accesses:   2000" in out
        assert trace_main(["head", path, "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("cpu=") == 3

    def test_rejects_unknown_workload(self, tmp_path):
        with pytest.raises(SystemExit):
            trace_main(["gen", "nope", str(tmp_path / "x")])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            trace_main([])


class TestExperimentsCli:
    def test_fig10(self, capsys):
        assert experiments_main(["fig10"]) == 0
        assert "9228" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            experiments_main(["fig99"])


class TestFiguresCli:
    def test_fig10_svg(self, tmp_path, monkeypatch):
        # render only the cheap analytic figure by calling it directly
        from repro.plotting.figures import fig10

        fig10(tmp_path)
        svg = (tmp_path / "fig10_hw_bits.svg").read_text()
        assert svg.startswith("<svg")
