"""Tests for the cross-process trace cache and mmap-backed chunks."""

import json
import os

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core.hetero_memory import HeterogeneousMainMemory
from repro.errors import TraceError
from repro.trace.cache import TRACE_CACHE_ENV, TraceCache, canonical_key, shared_cache
from repro.trace.io import open_trace_mmap, write_trace
from repro.trace.record import make_chunk
from repro.units import KB, MB


def _chunk(n=500, seed=3):
    rng = np.random.default_rng(seed)
    addr = rng.integers(0, 1 << 20, size=n) * 64
    time = np.cumsum(rng.integers(1, 50, size=n))
    rw = (rng.random(n) < 0.25).astype(np.int8)
    return make_chunk(addr, time=time, rw=rw)


class TestOpenTraceMmap:
    def test_round_trip(self, tmp_path):
        c = _chunk()
        path = tmp_path / "t.trace"
        write_trace(path, c)
        m = open_trace_mmap(path)
        assert isinstance(m.records, np.memmap)
        np.testing.assert_array_equal(m.records, c.records)

    def test_mmap_chunk_validates_and_slices(self, tmp_path):
        c = _chunk()
        path = tmp_path / "t.trace"
        write_trace(path, c)
        m = open_trace_mmap(path)
        m.validate()  # must not raise
        view = m[10:20]
        assert len(view) == 10
        np.testing.assert_array_equal(view.addr, c.addr[10:20])

    def test_rejects_torn_file(self, tmp_path):
        c = _chunk()
        path = tmp_path / "t.trace"
        write_trace(path, c)
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 7)
        with pytest.raises(TraceError):
            open_trace_mmap(path)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "t.trace"
        write_trace(path, make_chunk([]))
        assert len(open_trace_mmap(path)) == 0


class TestTraceCache:
    def test_hit_equals_fresh_generation(self, tmp_path):
        cache = TraceCache(tmp_path)
        params = {"workload": "x", "n": 500, "seed": 3}
        calls = []

        def gen():
            calls.append(1)
            return _chunk()

        first = cache.get_or_create(params, gen)
        second = cache.get_or_create(params, gen)
        assert len(calls) == 1
        assert cache.misses == 1 and cache.hits == 1
        np.testing.assert_array_equal(first.records, _chunk().records)
        np.testing.assert_array_equal(second.records, first.records)
        assert cache.generation_count() == 1
        assert cache.generation_count(params) == 1

    def test_distinct_params_distinct_entries(self, tmp_path):
        cache = TraceCache(tmp_path)
        a = cache.get_or_create({"seed": 1}, lambda: _chunk(seed=1))
        b = cache.get_or_create({"seed": 2}, lambda: _chunk(seed=2))
        assert not np.array_equal(a.records, b.records)
        assert cache.misses == 2
        assert cache.generation_count() == 2

    def test_key_is_order_insensitive(self):
        assert canonical_key({"a": 1, "b": 2}) == canonical_key({"b": 2, "a": 1})
        assert canonical_key({"a": 1}) != canonical_key({"a": 2})

    def test_crashed_writer_partial_file_is_ignored(self, tmp_path):
        cache = TraceCache(tmp_path)
        params = {"seed": 9}
        # a crashed writer can only leave (a) a tmp orphan, (b) a torn
        # file at the final path if the directory was damaged; both must
        # read as a miss and be regenerated over
        orphan = os.path.join(cache.root, "deadbeef.trace.tmp-xyz")
        with open(orphan, "wb") as fh:
            fh.write(b"garbage")
        final = cache.path_for(params)
        write_trace(final, _chunk(n=100, seed=9))
        with open(final, "r+b") as fh:
            fh.truncate(os.path.getsize(final) - 3)
        got = cache.get_or_create(params, lambda: _chunk(n=100, seed=9))
        assert cache.misses == 1
        np.testing.assert_array_equal(got.records, _chunk(n=100, seed=9).records)

    def test_stale_lock_is_broken(self, tmp_path):
        cache = TraceCache(tmp_path, stale_lock_s=0.0, poll_interval_s=0.01)
        params = {"seed": 4}
        lock = cache.path_for(params) + ".lock"
        with open(lock, "w") as fh:
            fh.write("99999\n")
        got = cache.get_or_create(params, lambda: _chunk(seed=4))
        assert cache.misses == 1
        assert len(got) == 500
        assert not os.path.exists(lock)

    def test_generation_log_lines_are_json(self, tmp_path):
        cache = TraceCache(tmp_path)
        params = {"workload": "w", "n": 10}
        cache.get_or_create(params, lambda: _chunk(n=10))
        log = os.path.join(cache.root, "generation.log")
        lines = [json.loads(x) for x in open(log) if x.strip()]
        assert lines[0]["key"] == canonical_key(params)
        assert lines[0]["params"]["workload"] == "w"

    def test_shared_cache_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(TRACE_CACHE_ENV, raising=False)
        assert shared_cache() is None
        monkeypatch.setenv(TRACE_CACHE_ENV, str(tmp_path))
        cache = shared_cache()
        assert cache is not None and cache.root == str(tmp_path)
        assert shared_cache() is cache  # per-directory singleton


def _campaign_trace_worker(workload, n, seed):
    """Module-level (picklable) worker: pull a shared trace, checksum it."""
    from repro.experiments.common import migration_trace

    trace = migration_trace(workload, n, seed)
    return int(trace.addr[:256].sum())


class TestCampaignSharing:
    def test_two_worker_campaign_generates_each_trace_once(
        self, tmp_path, monkeypatch
    ):
        from collections import Counter

        from repro.campaign import CampaignSupervisor, CampaignTask

        monkeypatch.delenv(TRACE_CACHE_ENV, raising=False)
        cache_dir = tmp_path / "cache"
        tasks = [
            CampaignTask(f"t{i}-s{seed}", _campaign_trace_worker,
                         ("pgbench", 40_000, seed))
            for seed in (0, 1)
            for i in range(2)
        ]
        report = CampaignSupervisor(jobs=2, trace_cache_dir=cache_dir).run(tasks)
        assert report.ok
        # same params -> same trace, across processes
        by_seed = {}
        for o in report.outcomes:
            by_seed.setdefault(o.task_id.split("-s")[1], set()).add(o.result)
        assert all(len(v) == 1 for v in by_seed.values())
        # exactly one generation per distinct trace, per the audit log
        log = os.path.join(cache_dir, "generation.log")
        keys = Counter(json.loads(x)["key"] for x in open(log) if x.strip())
        assert len(keys) == 2
        assert all(count == 1 for count in keys.values())
        assert TraceCache(cache_dir).generation_count() == 2
        # the supervisor restored the parent environment
        assert TRACE_CACHE_ENV not in os.environ
        # published entries are valid, mappable traces
        entries = [f for f in os.listdir(cache_dir) if f.endswith(".trace")]
        assert len(entries) == 2
        for name in entries:
            open_trace_mmap(os.path.join(cache_dir, name)).validate()


class TestMmapSimulation:
    def test_simulator_results_match_in_memory(self, tmp_path):
        c = _chunk(n=4_000, seed=11)
        path = tmp_path / "t.trace"
        write_trace(path, c)
        m = open_trace_mmap(path)
        cfg = SystemConfig(total_bytes=64 * MB, onpkg_bytes=8 * MB).with_migration(
            algorithm="live", macro_page_bytes=64 * KB, swap_interval=500
        )
        r_mem = HeterogeneousMainMemory(cfg).run(c)
        r_map = HeterogeneousMainMemory(cfg).run(m)
        assert r_mem.total_latency == r_map.total_latency
        assert r_mem.swaps_triggered == r_map.swaps_triggered
        assert r_mem.epoch_latency == r_map.epoch_latency

    def test_mmap_chunk_survives_checkpoint_round_trip(self, tmp_path):
        c = _chunk(n=3_000, seed=12)
        path = tmp_path / "t.trace"
        write_trace(path, c)
        m = open_trace_mmap(path)
        cfg = SystemConfig(total_bytes=64 * MB, onpkg_bytes=8 * MB).with_migration(
            algorithm="N-1", macro_page_bytes=64 * KB, swap_interval=500
        )
        straight = HeterogeneousMainMemory(cfg).run(m)

        system = HeterogeneousMainMemory(cfg)
        result = system.simulator.run(m[:1_500])
        ckpt = tmp_path / "ckpt.npz"
        system.save_checkpoint(ckpt, result)
        resumed, partial, _ = HeterogeneousMainMemory.resume(ckpt)
        resumed.simulator.run_into(m[1_500:], partial)
        assert partial.total_latency == straight.total_latency
        assert partial.swaps_triggered == straight.swaps_triggered
