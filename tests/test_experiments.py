"""Smoke/shape tests for the experiment runners (tiny inputs).

Full-size runs live in ``benchmarks/``; here we only check each runner
produces well-formed tables and that the cheap analytic ones hit their
paper reference points exactly.
"""

import pytest

from repro.experiments import common
from repro.experiments.fig10 import run as fig10_run
from repro.experiments.table1 import run as table1_run
from repro.stats.report import Table
from repro.units import MB


class TestCommon:
    def test_migration_config_geometry(self):
        cfg = common.migration_config()
        # the 12.5% on-package ratio of Table III is preserved
        assert cfg.onpkg_bytes * 8 == cfg.total_bytes

    def test_fig15_capacity_override(self):
        cfg = common.migration_config(onpkg_paper_mb=128)
        assert cfg.onpkg_bytes == 128 * MB // common.MIGRATION_SCALE

    def test_footprints_fit_total_memory(self):
        total = common.migration_config().total_bytes
        for wl in common.all_migration_workloads():
            assert common.scaled_footprint(wl) < total

    def test_footprint_ratios_all_exceed_onpkg(self):
        onpkg = common.migration_config().onpkg_bytes
        for wl in common.all_migration_workloads():
            assert common.scaled_footprint(wl) >= 4 * onpkg

    def test_trace_cache_returns_same_object(self):
        a = common.migration_trace("pgbench", 2000)
        b = common.migration_trace("pgbench", 2000)
        assert a is b


class TestFig10Runner:
    def test_table_contains_paper_number(self):
        table = fig10_run()
        assert isinstance(table, Table)
        rendered = table.render()
        assert "9228" in rendered
        assert "4096KB" in rendered


class TestTable1Runner:
    def test_rows_for_all_ten_workloads(self):
        table = table1_run(fast=True)
        assert len(table.rows) == 10
        rendered = table.render()
        for name in ("FT.C", "DC.B", "EP.C"):
            assert name in rendered


class TestReportTable:
    def test_render_and_validation(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, 2)
        t.add_footnote("note")
        out = t.render()
        assert "demo" in out and "note" in out
        with pytest.raises(Exception):
            t.add_row(1)
