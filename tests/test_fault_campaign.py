"""Seeded fault-injection campaign (``pytest -m fault_campaign``).

Hundreds of randomized-but-reproducible scenarios: every injected fault
must be corrected, retried, or surfaced as a structured
DegradationEvent — never an uncaught exception — and the translation
table's invariants must hold when the dust settles.

Excluded from the default run by the ``fault_campaign`` marker; CI has
a dedicated job for it.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.campaign import CampaignSupervisor, CampaignTask, RetryPolicy
from repro.config import MigrationConfig, SystemConfig
from repro.errors import TraceError
from repro.resilience import (
    MIGRATION_QUARANTINED,
    FaultKind,
    FaultPlan,
    corrupt_trace_file,
    summarize_events,
    truncate_trace_file,
)
from repro.trace.io import TraceReader, write_trace
from repro.trace.record import TRACE_DTYPE
from repro.units import MB

from .conftest import synthetic_trace

pytestmark = pytest.mark.fault_campaign

INTERVAL = 200
N_EPOCHS = 10
SEEDS = range(64)
ALGOS = ["N", "N-1", "live"]

#: scenario IDs are sorted up front so every pytest worker (xdist) and
#: cache key sees the identical, order-independent parametrization
SCENARIOS = sorted((seed, algo) for seed in SEEDS for algo in ALGOS)
SCENARIO_IDS = [f"{algo}-{seed:03d}" for seed, algo in SCENARIOS]


def campaign_config(algo: str) -> SystemConfig:
    return SystemConfig(
        total_bytes=64 * MB,
        onpkg_bytes=8 * MB,
        migration=MigrationConfig(
            algorithm=algo, macro_page_bytes=1 * MB, swap_interval=INTERVAL
        ),
    ).with_resilience(audit_interval=2, max_consecutive_failures=2)


# 64 seeds x 3 algorithms = 192 in-memory scenarios; the trace-file
# sweep below adds 3 x 8 = 24 more for a 216-scenario campaign.
@pytest.mark.parametrize(("seed", "algo"), SCENARIOS, ids=SCENARIO_IDS)
def test_seeded_fault_scenario(seed, algo):
    cfg = campaign_config(algo)
    trace = synthetic_trace(n=N_EPOCHS * INTERVAL, seed=seed)
    plan = FaultPlan.random(
        seed=seed, n_epochs=N_EPOCHS, n_slots=cfg.address_map().n_onpkg_pages,
        rate=0.6,
    )

    sim = repro.EpochSimulator(cfg)
    sim.attach_faults(plan)
    result = sim.run(trace)  # acceptance: must not raise

    # the whole trace was served despite the faults
    assert result.n_accesses == len(trace)
    assert result.faults_injected == len(plan)

    # every transient DRAM error got an ECC verdict
    injected_dram = sum(
        max(1, ev.param) for ev in plan.events
        if ev.kind is FaultKind.DRAM_TRANSIENT
    )
    verdicts = (
        result.dram_errors_corrected
        + result.dram_errors_retried
        + result.dram_errors_uncorrectable
    )
    assert verdicts == injected_dram

    # faults either leave no trace (masked) or a structured event —
    # quarantine in particular must be recorded, and the table must be
    # internally consistent at the end either way
    kinds = summarize_events(result.degradation_events)
    if result.quarantined:
        assert kinds.get(MIGRATION_QUARANTINED) == 1
    sim.table.check_invariants()
    sim.table.audit()

    # the scenario replays bit-identically from its seed
    replay = repro.EpochSimulator(cfg)
    replay.attach_faults(
        FaultPlan.random(
            seed=seed, n_epochs=N_EPOCHS,
            n_slots=cfg.address_map().n_onpkg_pages, rate=0.6,
        )
    )
    again = replay.run(synthetic_trace(n=N_EPOCHS * INTERVAL, seed=seed))
    assert again.total_latency == result.total_latency
    assert again.degradation_events == result.degradation_events


def fault_scenario_point(scenario_seed: int, algo: str) -> dict:
    """One fault scenario as a campaign point (module-level so the
    supervisor can run it in a worker process)."""
    cfg = campaign_config(algo)
    trace = synthetic_trace(n=N_EPOCHS * INTERVAL, seed=scenario_seed)
    plan = FaultPlan.random(
        seed=scenario_seed, n_epochs=N_EPOCHS,
        n_slots=cfg.address_map().n_onpkg_pages, rate=0.6,
    )
    sim = repro.EpochSimulator(cfg)
    sim.attach_faults(plan)
    result = sim.run(trace)
    sim.table.check_invariants()
    return {
        "n_accesses": int(result.n_accesses),
        "faults_injected": int(result.faults_injected),
        "total_latency": float(result.total_latency),
        "quarantined": bool(result.quarantined),
    }


def test_sweep_under_campaign_supervisor(tmp_path):
    """The seeded sweep runs as a parallel fault-tolerant campaign: the
    supervisor fans scenarios out to worker processes, records every
    point in the manifest, and a re-invocation recomputes nothing."""
    manifest = tmp_path / "sweep.json"
    tasks = sorted(
        (
            CampaignTask(
                f"fault/{algo}/{seed}", fault_scenario_point, (seed, algo)
            )
            for algo in ALGOS
            for seed in range(6)
        ),
        key=lambda task: task.task_id,
    )
    supervisor = CampaignSupervisor(
        jobs=2, task_timeout=300.0,
        retry=RetryPolicy(max_attempts=2, base_delay=0.1),
        manifest_path=manifest,
    )
    report = supervisor.run(tasks)
    assert report.ok, [o.error for o in report.failed]
    assert len(report.completed) == len(tasks)

    # spot-check a point against a direct in-process run
    direct = fault_scenario_point(3, "N-1")
    assert report.result("fault/N-1/3") == direct

    # resume: the whole sweep is already in the manifest
    again = supervisor.run(tasks)
    assert len(again.skipped) == len(tasks)
    assert again.result("fault/live/5") == report.result("fault/live/5")


FILE_CASES = sorted((case, algo) for case in range(8) for algo in ALGOS)


@pytest.mark.parametrize(
    ("case", "algo"), FILE_CASES,
    ids=[f"{algo}-{case}" for case, algo in FILE_CASES],
)
def test_trace_file_fault_scenario(case, algo, tmp_path):
    """Torn/corrupted trace files: salvage what is whole, reject cleanly."""
    cfg = campaign_config(algo)
    trace = synthetic_trace(n=N_EPOCHS * INTERVAL, seed=case)
    path = tmp_path / "trace.bin"
    write_trace(path, trace)
    itemsize = TRACE_DTYPE.itemsize
    rng = np.random.default_rng(case)

    if case % 2 == 0:
        # torn tail: drop a non-record-aligned span, as a crashed writer
        # or a partial copy would
        drop = int(rng.integers(1, 3 * itemsize))
        truncate_trace_file(path, drop)
        with pytest.raises(TraceError, match="salvage=True"):
            TraceReader(path)
        reader = TraceReader(path, salvage=True)
        assert reader.salvaged
        whole = (len(trace) * itemsize - drop) // itemsize
        assert len(reader) == whole
        assert reader.dropped_bytes == (len(trace) * itemsize - drop) % itemsize
    else:
        # header corruption: count scribbled, every record still on disk
        corrupt_trace_file(
            path, offset=8,
            data=rng.integers(0, 256, 8, dtype=np.uint8).tobytes(),
        )
        reader = TraceReader(path, salvage=True)
        if not reader.salvaged:
            # the scribble happened to encode the true count
            assert len(reader) == len(trace)
        else:
            assert len(reader) == len(trace)
            assert reader.dropped_bytes == 0

    salvaged = reader.read_all()
    if len(salvaged):
        result = repro.EpochSimulator(cfg).run(salvaged)
        assert result.n_accesses == len(salvaged)
