"""Tests for the zero-dependency SVG chart module."""

import math

import pytest

from repro.errors import ReproError
from repro.plotting.svg import BarChart, LineChart, _fmt, _ticks


class TestHelpers:
    def test_ticks_cover_range(self):
        ticks = _ticks(0.0, 100.0)
        assert ticks[0] >= 0.0 and ticks[-1] <= 100.0
        assert 3 <= len(ticks) <= 12

    def test_ticks_degenerate_range(self):
        assert _ticks(5.0, 5.0)  # does not crash / loop

    @pytest.mark.parametrize(
        "value,expected",
        [(0, "0"), (1500, "1.5k"), (2_000_000, "2M"), (0.001, "1e-03")],
    )
    def test_fmt(self, value, expected):
        assert _fmt(value) == expected


class TestLineChart:
    def _chart(self):
        c = LineChart("t", ylabel="y")
        c.categories = ["a", "b", "c"]
        c.add_series("s1", [1.0, 2.0, 3.0])
        c.add_series("s2", [3.0, 2.0, 1.0])
        return c

    def test_renders_valid_svg(self):
        svg = self._chart().render()
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert svg.count("<polyline") == 2
        assert "s1" in svg and "s2" in svg

    def test_escapes_markup(self):
        c = LineChart("a < b & c")
        c.categories = ["x"]
        c.add_series("<s>", [1.0])
        svg = c.render()
        assert "a &lt; b &amp; c" in svg
        assert "&lt;s&gt;" in svg

    def test_series_length_checked(self):
        c = self._chart()
        with pytest.raises(ReproError):
            c.add_series("bad", [1.0])

    def test_log_scale_rejects_nonpositive(self):
        c = LineChart("t", log_y=True)
        c.categories = ["x"]
        with pytest.raises(ReproError):
            c.add_series("s", [0.0])

    def test_log_scale_positions_decades(self):
        c = LineChart("t", log_y=True)
        c.categories = ["a", "b", "c"]
        c.add_series("s", [10.0, 100.0, 1000.0])
        lo, hi = c._y_range()
        y1 = c._y_pos(10.0, lo, hi)
        y2 = c._y_pos(100.0, lo, hi)
        y3 = c._y_pos(1000.0, lo, hi)
        assert math.isclose(y1 - y2, y2 - y3, rel_tol=1e-6)

    def test_empty_chart_rejected(self):
        with pytest.raises(ReproError):
            LineChart("t").render()

    def test_save(self, tmp_path):
        path = tmp_path / "c.svg"
        self._chart().save(path)
        assert path.read_text().startswith("<svg")


class TestBarChart:
    def test_grouped_bars(self):
        c = BarChart("t")
        c.categories = ["a", "b"]
        c.add_series("s1", [1.0, 2.0])
        c.add_series("s2", [2.0, 1.0])
        svg = c.render()
        assert svg.count("<rect") == 1 + 4 + 2  # bg + bars + legend swatches

    def test_negative_values_draw_below_zero(self):
        c = BarChart("t")
        c.categories = ["a"]
        c.add_series("s", [-1.0])
        assert "<rect" in c.render()
