"""Tests for the CPU/IPC model (Fig 5 machinery) and the power model
(Fig 16 machinery)."""

import numpy as np
import pytest

from repro.cache.stackdist import StackDistanceProfile
from repro.config import CacheHierarchyConfig, CacheLevelConfig, PowerConfig
from repro.core.simulator import SimulationResult
from repro.cpu.amat import (
    FixedLatencies,
    MemoryOrganization,
    amat_for_organization,
    static_lowaddr_fraction,
)
from repro.cpu.core import BlockingCore
from repro.cpu.system import IpcModel
from repro.errors import ConfigError
from repro.power.energy import MemoryEnergyModel
from repro.units import KB, MB


def small_caches() -> CacheHierarchyConfig:
    return CacheHierarchyConfig(
        l1=CacheLevelConfig(4 * KB, 4, 2),
        l2=CacheLevelConfig(16 * KB, 8, 5),
        l3=CacheLevelConfig(128 * KB, 16, 25, shared=True),
        n_cores=1,
    )


class TestFixedLatencies:
    def test_table2_totals(self):
        """off = 34 + 50 + 116 = 200; on = 20 + 50 = 70 (Table II)."""
        lat = FixedLatencies.from_components()
        assert lat.offpkg == 200
        assert lat.onpkg == 70


class TestAmat:
    def _profile(self, seed=0, n=4000, lines=200_000):
        rng = np.random.default_rng(seed)
        return StackDistanceProfile((rng.zipf(1.3, n) % lines) * 64)

    def test_baseline_and_ideal(self):
        p = self._profile()
        base = amat_for_organization(
            MemoryOrganization.BASELINE, p,
            onpkg_capacity_bytes=1 * MB, l3_capacity_bytes=128 * KB,
        )
        ideal = amat_for_organization(
            MemoryOrganization.ALL_ONPKG, p,
            onpkg_capacity_bytes=1 * MB, l3_capacity_bytes=128 * KB,
        )
        assert (base, ideal) == (200.0, 70.0)

    def test_l4_between_hit_and_miss_cost(self):
        p = self._profile()
        l4 = amat_for_organization(
            MemoryOrganization.L4_CACHE, p,
            onpkg_capacity_bytes=1 * MB, l3_capacity_bytes=128 * KB,
        )
        assert 140 <= l4 <= 270

    def test_static_needs_fraction(self):
        p = self._profile()
        with pytest.raises(ConfigError):
            amat_for_organization(
                MemoryOrganization.STATIC_ONPKG, p,
                onpkg_capacity_bytes=1 * MB, l3_capacity_bytes=128 * KB,
            )

    def test_static_fraction_interpolates(self):
        p = self._profile()
        for f, expected in ((0.0, 200.0), (1.0, 70.0), (0.5, 135.0)):
            assert amat_for_organization(
                MemoryOrganization.STATIC_ONPKG, p,
                onpkg_capacity_bytes=1 * MB, l3_capacity_bytes=128 * KB,
                lowaddr_onpkg_fraction=f,
            ) == pytest.approx(expected)

    def test_static_lowaddr_fraction(self):
        addr = np.array([0, 1 * MB, 2 * MB, 3 * MB]) + 0
        p = StackDistanceProfile(addr)  # all cold -> all post-L3
        f = static_lowaddr_fraction(addr, p, l3_capacity_bytes=64, onpkg_capacity_bytes=2 * MB)
        assert f == pytest.approx(0.5)


class TestIpcModel:
    def test_ideal_always_best(self):
        rng = np.random.default_rng(1)
        from repro.trace.record import make_chunk

        trace = make_chunk((rng.zipf(1.2, 5000) % 500_000) * 64)
        model = IpcModel(small_caches(), onpkg_capacity_bytes=1 * MB)
        results = model.compare_all(trace)
        ideal = results[MemoryOrganization.ALL_ONPKG]
        for org, res in results.items():
            assert ideal.ipc >= res.ipc - 1e-12, org

    def test_small_footprint_static_equals_ideal(self):
        rng = np.random.default_rng(2)
        from repro.trace.record import make_chunk

        trace = make_chunk(rng.integers(0, (1 * MB) // 64, 5000) * 64)
        model = IpcModel(small_caches(), onpkg_capacity_bytes=4 * MB)
        results = model.compare_all(trace)
        assert results[MemoryOrganization.STATIC_ONPKG].ipc == pytest.approx(
            results[MemoryOrganization.ALL_ONPKG].ipc
        )

    def test_improvement_over(self):
        model = IpcModel(small_caches(), onpkg_capacity_bytes=1 * MB)
        rng = np.random.default_rng(3)
        from repro.trace.record import make_chunk

        trace = make_chunk(rng.integers(0, 10_000_000, 3000) // 64 * 64)
        res = model.compare_all(trace)
        base = res[MemoryOrganization.BASELINE]
        assert res[MemoryOrganization.ALL_ONPKG].improvement_over(base) > 0
        assert base.improvement_over(base) == 0.0

    def test_rejects_bad_refs_per_instruction(self):
        with pytest.raises(ConfigError):
            IpcModel(small_caches(), onpkg_capacity_bytes=1 * MB, refs_per_instruction=0)


class TestBlockingCore:
    def test_amat_matches_analytic_on_shared_stream(self):
        """Mechanical per-set simulation vs stack-distance analytics."""
        rng = np.random.default_rng(4)
        addr = (rng.zipf(1.5, 6000) % 4096) * 64
        caches = small_caches()
        core = BlockingCore(caches, memory_latency=200.0)
        stats = core.run(addr)
        from repro.cache.hierarchy import CacheHierarchy

        profile = StackDistanceProfile(addr)
        analytic = CacheHierarchy(caches).amat_cycles(profile, 200.0)
        # set conflicts make the mechanical sim slightly worse than the
        # fully-associative analytic bound
        assert stats.amat == pytest.approx(analytic, rel=0.15)
        assert stats.amat >= analytic * 0.85


class TestPowerModel:
    def test_offpkg_access_costs_more(self):
        m = MemoryEnergyModel()
        assert m.access_energy_pj(onpkg=False) > m.access_energy_pj(onpkg=True)

    def test_paper_constants(self):
        c = PowerConfig()
        assert (c.dram_core_pj_per_bit, c.onpkg_link_pj_per_bit, c.offpkg_link_pj_per_bit) == (
            5.0, 1.66, 13.0,
        )

    def test_access_energy_value(self):
        m = MemoryEnergyModel()
        # 64 B x 8 bits x (5 + 13) pJ/bit
        assert m.access_energy_pj(onpkg=False) == pytest.approx(512 * 18.0)

    def test_report_normalisation(self):
        m = MemoryEnergyModel()
        res = SimulationResult(
            n_accesses=1000, onpkg_accesses=600, offpkg_accesses=400,
            migrated_bytes=0, cross_boundary_migrated_bytes=0,
        )
        report = m.report(res)
        assert report.migration_energy_pj == 0.0
        assert report.normalized < 1.0  # hybrid without migration is cheaper

    def test_migration_traffic_adds_energy(self):
        m = MemoryEnergyModel()
        a = SimulationResult(n_accesses=1000, onpkg_accesses=600, offpkg_accesses=400)
        b = SimulationResult(
            n_accesses=1000, onpkg_accesses=600, offpkg_accesses=400,
            migrated_bytes=1 * MB, cross_boundary_migrated_bytes=1 * MB,
        )
        assert m.report(b).total_pj > m.report(a).total_pj

    def test_frequent_small_swaps_cost_about_2x(self):
        """The paper's Fig 16 floor: ~2x at (4 KB pages, 100K interval)
        rises steeply as swapping gets more frequent."""
        m = MemoryEnergyModel()

        def result(migrated):
            return SimulationResult(
                n_accesses=100_000, onpkg_accesses=70_000, offpkg_accesses=30_000,
                migrated_bytes=migrated, cross_boundary_migrated_bytes=migrated,
            )

        rare = m.report(result(3 * 4096 * 1))         # one 4 KB swap
        frequent = m.report(result(3 * 4096 * 100))   # a hundred
        assert frequent.normalized > rare.normalized
