"""Tests for the migration engine: triggers, scheduling, timelines,
and a long-run stress property (invariants across hundreds of swaps)."""

import numpy as np
import pytest

from repro.address import AddressMap
from repro.config import BusConfig, MigrationConfig
from repro.migration.engine import MigrationEngine
from repro.migration.table import EMPTY
from repro.units import KB, MB

N_SLOTS = 8


def make_engine(algorithm="live", interval=100, **kwargs) -> MigrationEngine:
    amap = AddressMap(
        total_bytes=N_SLOTS * 4 * MB,
        onpkg_bytes=N_SLOTS * MB,
        macro_page_bytes=1 * MB,
        subblock_bytes=64 * KB,
    )
    cfg = MigrationConfig(
        algorithm=algorithm, macro_page_bytes=1 * MB, subblock_bytes=64 * KB,
        swap_interval=interval, **kwargs,
    )
    return MigrationEngine(amap, cfg)


def observe_hot_page(engine: MigrationEngine, page: int, count: int = 5, t0: int = 0):
    engine.observe_epoch(
        slots=np.array([], dtype=np.int64),
        slot_times=np.array([], dtype=np.int64),
        offpkg_pages=np.full(count, page, dtype=np.int64),
        off_times=np.arange(t0, t0 + count, dtype=np.int64),
        off_subblocks=np.zeros(count, dtype=np.int64),
    )


class TestTrigger:
    def test_no_offpkg_traffic_no_swap(self):
        e = make_engine()
        d = e.maybe_swap(now=100)
        assert not d.triggered

    def test_hot_offpkg_page_triggers(self):
        e = make_engine()
        hot = N_SLOTS + 3
        observe_hot_page(e, hot)
        d = e.maybe_swap(now=100)
        assert d.triggered and d.mru == hot
        assert e.active is not None

    def test_busy_suppression(self):
        """P/F bits block re-triggering while a swap is in flight."""
        e = make_engine()
        observe_hot_page(e, N_SLOTS + 3)
        assert e.maybe_swap(now=100).triggered
        busy_until = e.active.end
        observe_hot_page(e, N_SLOTS + 4)
        d = e.maybe_swap(now=busy_until - 1)
        assert not d.triggered
        assert e.swaps_suppressed_busy == 1
        # after completion, a new swap goes through
        observe_hot_page(e, N_SLOTS + 4, t0=busy_until)
        assert e.maybe_swap(now=busy_until + 1).triggered

    def test_hottest_coldest_comparison(self):
        """No swap when the coldest slot is at least as hot (Section III-A)."""
        e = make_engine()
        hot = N_SLOTS + 3
        e.observe_epoch(
            slots=np.full(10, 2, dtype=np.int64),          # slot 2 very hot
            slot_times=np.arange(10, dtype=np.int64),
            offpkg_pages=np.full(3, hot, dtype=np.int64),  # off page less hot
            off_times=np.arange(10, 13, dtype=np.int64),
        )
        # make every other slot even hotter so slot 2 is the coldest
        e.monitor.slot_last_touch[:] = 100
        e.monitor.slot_last_touch[2] = 1
        e.monitor.slot_epoch_counts[:] = 20
        e.monitor.slot_epoch_counts[2] = 10
        d = e.maybe_swap(now=50)
        assert not d.triggered
        assert e.swaps_suppressed_cold == 1

    def test_trigger_disabled_swaps_unconditionally(self):
        e = make_engine(hottest_coldest_trigger=False)
        hot = N_SLOTS + 3
        e.observe_epoch(
            slots=np.full(10, 2, dtype=np.int64),
            slot_times=np.arange(10, dtype=np.int64),
            offpkg_pages=np.full(1, hot, dtype=np.int64),
            off_times=np.array([10], dtype=np.int64),
        )
        assert e.maybe_swap(now=50).triggered

    def test_ghost_physical_page_never_migrates(self):
        e = make_engine()
        observe_hot_page(e, e.amap.ghost_page)
        assert not e.maybe_swap(now=10).triggered

    def test_already_onpkg_candidate_skipped(self):
        e = make_engine()
        observe_hot_page(e, 2)  # page 2 is on-package (OF)
        # monitor thinks it's off-package (stale mid-epoch observation)
        d = e.maybe_swap(now=10)
        assert not d.triggered


class TestScheduling:
    def test_timeline_starts_with_pre_swap_state(self):
        e = make_engine()
        hot = N_SLOTS + 3
        observe_hot_page(e, hot)
        e.maybe_swap(now=1000)
        tl = e.active.timelines[hot]
        assert tl[0][1:] == (False, hot)  # initially off-package at home
        assert tl[-1][1] is True or tl[-1][1] == np.True_  # ends on-package

    def test_fill_info_timing(self):
        e = make_engine()
        hot = N_SLOTS + 3
        observe_hot_page(e, hot)
        e.maybe_swap(now=1000)
        fill = e.active.fill
        assert fill is not None and fill.live
        assert fill.start >= 1000
        copy_cycles = BusConfig().copy_cycles(1 * MB)
        assert fill.end - fill.start == pytest.approx(copy_cycles, rel=0.01)
        # critical-first wraparound ordering
        avail = fill.available_at(np.array([fill.first_subblock,
                                            (fill.first_subblock + 1) % fill.n_subblocks]))
        assert avail[0] < avail[1]

    def test_nonlive_fill_is_whole_page(self):
        e = make_engine(algorithm="N-1")
        hot = N_SLOTS + 3
        observe_hot_page(e, hot)
        e.maybe_swap(now=1000)
        fill = e.active.fill
        assert not fill.live
        avail = fill.available_at(np.array([0, 7]))
        assert (avail == fill.end).all()

    def test_stall_plan_for_basic_design(self):
        e = make_engine(algorithm="N")
        hot = N_SLOTS + 3
        observe_hot_page(e, hot)
        e.maybe_swap(now=1000)
        assert e.active.stall
        assert e.active.fill is None
        assert e.active.end > 1000

    def test_byte_accounting(self):
        e = make_engine()
        observe_hot_page(e, N_SLOTS + 3)
        e.maybe_swap(now=0)
        assert e.migrated_bytes == 3 * MB       # case A: 3 copies
        assert e.cross_boundary_bytes == 3 * MB

    def test_table_final_state_after_schedule(self):
        """The engine applies plans eagerly; the table ends consistent."""
        e = make_engine()
        hot = N_SLOTS + 3
        observe_hot_page(e, hot)
        e.maybe_swap(now=0)
        e.table.check_invariants()
        assert e.table.resolve(hot)[0]  # on-package


class TestLongRunStress:
    @pytest.mark.parametrize("algorithm", ["N", "N-1", "live"])
    def test_hundreds_of_swaps_keep_invariants(self, algorithm):
        """Drive the engine with a shifting hot set for many epochs; the
        table must stay consistent and exactly one slot stays empty
        (N-1/live) the whole time."""
        rng = np.random.default_rng(0)
        e = make_engine(algorithm=algorithm)
        n_pages = e.amap.n_total_pages
        now = 0
        for epoch in range(300):
            hot = int(rng.integers(0, n_pages - 1))  # never Ω
            on, _ = e.table.resolve(hot)
            slots_touched = rng.integers(0, N_SLOTS, 5)
            e.observe_epoch(
                slots=slots_touched,
                slot_times=np.full(5, now, dtype=np.int64),
                offpkg_pages=np.array([] if on else [hot] * 9, dtype=np.int64),
                off_times=np.arange(now, now + (0 if on else 9), dtype=np.int64),
                off_subblocks=np.zeros(0 if on else 9, dtype=np.int64),
            )
            # a 1 MB swap takes ~1M cycles; space epochs so most complete
            now += 1_200_000
            e.maybe_swap(now)
            e.table.check_invariants()
            if algorithm != "N":
                assert e.table.empty_slot() is not None
            assert (e.table.pair != EMPTY).sum() >= N_SLOTS - 1
        assert e.swaps_triggered > 20


class TestTimelineConsistency:
    """The recorded routing timelines must end exactly at the table's
    final (mirror) state — the epoch simulator's correctness hinges on
    the hand-off between per-time overrides and the dense mirrors."""

    @pytest.mark.parametrize("algorithm", ["N", "N-1", "live"])
    def test_final_timeline_state_matches_mirrors(self, algorithm):
        rng = np.random.default_rng(7)
        e = make_engine(algorithm=algorithm)
        now = 0
        for _ in range(60):
            hot = int(rng.integers(0, e.amap.n_total_pages - 1))
            if bool(e.table.onpkg[hot]):
                continue
            observe_hot_page(e, hot, t0=now)
            now += 1_200_000
            d = e.maybe_swap(now)
            if not d.triggered:
                continue
            active = e.active
            for page, timeline in active.timelines.items():
                t_final, on_final, machine_final = timeline[-1]
                assert t_final <= active.end
                on, machine = e.table.resolve(page)
                assert (bool(on_final), int(machine_final)) == (on, machine), page
                # times strictly ordered within a timeline
                times = [t for t, _, _ in timeline]
                assert times == sorted(times)

    def test_fill_covers_whole_page_once(self):
        e = make_engine()
        observe_hot_page(e, N_SLOTS + 2)
        e.maybe_swap(now=0)
        fill = e.active.fill
        sbs = np.arange(fill.n_subblocks)
        avail = fill.available_at(sbs)
        # every sub-block lands within the copy window, each at a distinct time
        assert avail.min() > fill.start
        assert avail.max() <= fill.end + fill.subblock_cycles
        assert len(np.unique(avail)) == fill.n_subblocks
